//! Open-loop overload harness: drives a live cluster front with a
//! deterministic seeded arrival process at fixed multiples of its
//! measured capacity, and records what the overload-control plane did
//! about it — goodput, shed rate, degraded-serve rate, and
//! accepted-request tail latency.
//!
//! "Open loop" means arrivals do not wait for completions: requests
//! are stamped onto the wire on a schedule drawn from an exponential
//! inter-arrival process, exactly the regime where an unprotected
//! bounded-capacity server melts down (queues grow without bound,
//! every request times out). The interesting multipliers are ≥ 1×:
//! a correct shed ladder keeps goodput near capacity and the accepted
//! tail bounded, paying with explicit `Overloaded` rejections rather
//! than silent collapse.
//!
//! Capacity is *measured*, not assumed: a closed-loop calibration pass
//! over the same single-request pipelined wire unit the open loop uses
//! (window of `PIPELINE_WINDOW` in-flight tickets) fixes `1×` to what
//! this host, this build, and this stack actually sustain — so the
//! multiplier rows mean the same thing on every machine.

use econcast_cluster::{ClusterConfig, ClusterFront, ClusterRouter, FrontConfig, SlotSpec};
use econcast_service::{
    PolicyClient, PolicyRequest, PolicyServer, RouterConfig, ServerConfig, ServiceConfig,
    ServiceErrorCode,
};
use std::collections::VecDeque;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// In-flight tickets during the closed-loop calibration pass. Deep
/// enough to keep the front's pipeline busy, shallow enough that the
/// measured number is a service rate and not a queueing artifact.
const PIPELINE_WINDOW: usize = 32;

/// Size of the deterministic request pool the arrivals cycle through
/// (the same mixed workload the closed-loop service entries use).
const POOL: usize = 64;

/// Parameters of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Seed for the arrival process (xorshift64*). Same seed + same
    /// rate → the same inter-arrival schedule, every run.
    pub seed: u64,
    /// Requests per multiplier pass.
    pub requests: usize,
    /// Closed-loop requests for the capacity calibration pass (half
    /// warm-up, half timed).
    pub calibration_requests: usize,
    /// Offered-load multipliers, each a fraction of measured capacity.
    pub multipliers: Vec<f64>,
    /// Per-request deadline budget stamped on every arrival; `None`
    /// leaves requests unbudgeted (deadline_us = 0 on the wire).
    pub deadline: Option<Duration>,
    /// Client connections the arrivals round-robin across. Load must
    /// arrive on *concurrent* connections to press on the server's
    /// admission queue — a single pipelined stream serializes in the
    /// connection handler and its backlog hides in the socket buffer,
    /// never showing up as queue depth.
    pub connections: usize,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            seed: 0xEC0_CA57_0AD,
            requests: 400,
            calibration_requests: 400,
            multipliers: vec![0.5, 1.0, 2.0, 4.0],
            deadline: None,
            connections: 24,
        }
    }
}

impl OpenLoopConfig {
    /// The reduced pass for `--quick` smoke runs.
    pub fn quick() -> Self {
        OpenLoopConfig {
            requests: 120,
            calibration_requests: 120,
            ..OpenLoopConfig::default()
        }
    }
}

/// What one offered-load multiplier did to the stack.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopRow {
    /// Offered load as a fraction of measured capacity.
    pub multiplier: f64,
    /// Requests submitted this pass.
    pub offered: u64,
    /// Requests served with a result.
    pub accepted: u64,
    /// Requests answered `Overloaded`.
    pub shed: u64,
    /// Requests/sec actually offered (submitted / submit-window wall
    /// time) — trails the target when the generator itself saturates.
    pub offered_rps: f64,
    /// Accepted requests/sec over the whole pass (submit + drain).
    pub goodput_rps: f64,
    /// Fraction of requests answered `Overloaded` (explicit, with a
    /// retry hint — never a dropped request or a reset stream).
    pub shed_rate: f64,
    /// Fraction of requests served at the degraded grid tier, from the
    /// server's own counters (the response payload doesn't mark it).
    pub degraded_rate: f64,
    /// Deadline expiries observed by the server during the pass.
    pub deadline_expired: u64,
    /// Typed per-request errors other than `Overloaded`. The open-loop
    /// contract is that this stays zero at every multiplier.
    pub error_count: u64,
    /// Accepted-request p50 latency (µs, submit → collect); `None`
    /// when nothing was accepted.
    pub accepted_p50_us: Option<f64>,
    /// Accepted-request p99 latency (µs).
    pub accepted_p99_us: Option<f64>,
    /// Accepted-request p99.9 latency (µs).
    pub accepted_p999_us: Option<f64>,
}

/// Result of a full open-loop run: the calibrated capacity and one row
/// per multiplier.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Closed-loop single-request capacity the multipliers scale
    /// (requests/sec at `PIPELINE_WINDOW` in-flight).
    pub capacity_rps: f64,
    /// One row per configured multiplier, in order.
    pub rows: Vec<OpenLoopRow>,
}

/// xorshift64* — deterministic, seedable, and good enough for
/// exponential inter-arrival draws. No external RNG state leaks in.
struct Xorshift64Star(u64);

impl Xorshift64Star {
    fn new(seed: u64) -> Self {
        Xorshift64Star(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in (0, 1] — open at zero so `ln` stays finite.
    fn next_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// Exponential inter-arrival gap (seconds) at `rate` arrivals/sec.
    fn next_gap_s(&mut self, rate: f64) -> f64 {
        -self.next_unit().ln() / rate
    }
}

/// Exact order statistic over a sorted sample (same convention as the
/// suite's tail-latency passes).
fn percentile_us(sorted: &[u64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    Some(sorted[idx.min(sorted.len() - 1)] as f64)
}

/// Closed-loop capacity of the single-request pipelined wire unit:
/// keep `PIPELINE_WINDOW` batch-of-1 tickets in flight, count
/// completions per second. The first half of the pass warms caches
/// and dialer connections; only the second half is timed.
fn calibrate_capacity_rps(
    client: &mut PolicyClient,
    pool: &[PolicyRequest],
    requests: usize,
) -> io::Result<f64> {
    let timed_start = requests / 2;
    let mut fifo: VecDeque<econcast_service::Ticket> = VecDeque::new();
    let mut t0 = Instant::now();
    let mut timed = 0usize;
    for i in 0..requests {
        if i == timed_start {
            // Drain the warm-up window so its completions don't count.
            while let Some(t) = fifo.pop_front() {
                client.collect(t)?;
            }
            t0 = Instant::now();
        }
        let req = &pool[i % pool.len()];
        fifo.push_back(client.submit_batch_deadline(std::slice::from_ref(req), None)?);
        if fifo.len() >= PIPELINE_WINDOW {
            client.collect(fifo.pop_front().expect("non-empty fifo"))?;
            if i >= timed_start {
                timed += 1;
            }
        }
    }
    while let Some(t) = fifo.pop_front() {
        client.collect(t)?;
        timed += 1;
    }
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    Ok(timed as f64 / elapsed)
}

/// One client connection's lane of the open-loop generator.
struct Lane {
    client: PolicyClient,
    inflight: VecDeque<(econcast_service::Ticket, Instant)>,
}

impl Lane {
    /// Harvests every ready completion at the lane's FIFO head,
    /// feeding (results, latency) pairs to `classify`.
    fn poll(
        &mut self,
        classify: &mut impl FnMut(Vec<econcast_service::WireResult>, Duration),
    ) -> io::Result<()> {
        while let Some((ticket, submitted)) = self.inflight.front() {
            match self.client.try_collect(ticket)? {
                Some(results) => {
                    let latency = submitted.elapsed();
                    self.inflight.pop_front();
                    classify(results, latency);
                }
                None => break,
            }
        }
        Ok(())
    }
}

/// One open-loop pass at a fixed arrival rate. Arrivals are submitted
/// on the seeded schedule (late submissions go out immediately —
/// lateness is reported through `offered_rps`, never silently
/// dropped), round-robin across the lanes; completions are harvested
/// opportunistically while waiting for the next arrival and drained
/// at the end.
fn open_loop_pass(
    lanes: &mut [Lane],
    pool: &[PolicyRequest],
    cfg: &OpenLoopConfig,
    rate_rps: f64,
    multiplier: f64,
) -> io::Result<OpenLoopRow> {
    let mut rng = Xorshift64Star::new(cfg.seed ^ (multiplier * 1024.0) as u64);
    let mut accepted_us: Vec<u64> = Vec::with_capacity(cfg.requests);
    let mut shed = 0u64;
    let mut errors = 0u64;

    let before = lanes[0].client.stats(None)?;

    let mut classify = |results: Vec<econcast_service::WireResult>, latency: Duration| {
        for r in results {
            match r {
                Ok(_) => accepted_us.push(latency.as_micros() as u64),
                Err(e) if e.code == ServiceErrorCode::Overloaded => shed += 1,
                Err(_) => errors += 1,
            }
        }
    };

    let start = Instant::now();
    let mut due_s = 0.0f64;
    for i in 0..cfg.requests {
        due_s += rng.next_gap_s(rate_rps);
        // Wait out the inter-arrival gap, polling lane heads while
        // idle so completion timestamps stay tight. When the generator
        // is behind schedule it skips the sweep entirely — keeping the
        // offered rate honest matters more than prompt harvesting
        // (stragglers are drained, and timestamped, at the end).
        while start.elapsed().as_secs_f64() < due_s {
            for lane in lanes.iter_mut() {
                lane.poll(&mut classify)?;
            }
            let now_s = start.elapsed().as_secs_f64();
            if now_s >= due_s {
                break;
            }
            let gap = Duration::from_secs_f64(due_s - now_s);
            std::thread::sleep(gap.min(Duration::from_micros(200)));
        }
        let req = &pool[i % pool.len()];
        let lane = &mut lanes[i % lanes.len()];
        // The submit lane's head is always harvested first, so a slow
        // pass can't blame queued-but-ready completions for latency.
        lane.poll(&mut classify)?;
        let submitted = Instant::now();
        let ticket = lane
            .client
            .submit_batch_deadline(std::slice::from_ref(req), cfg.deadline)?;
        lane.inflight.push_back((ticket, submitted));
    }
    let submit_window_s = start.elapsed().as_secs_f64().max(1e-9);

    // Blocking drain: every outstanding ticket resolves to a result or
    // an explicit error — an io failure here is a harness failure.
    for lane in lanes.iter_mut() {
        while let Some((ticket, submitted)) = lane.inflight.pop_front() {
            let results = lane.client.collect(ticket)?;
            classify(results, submitted.elapsed());
        }
    }
    let total_s = start.elapsed().as_secs_f64().max(1e-9);

    let after = lanes[0].client.stats(None)?;
    accepted_us.sort_unstable();
    let n = cfg.requests as f64;
    Ok(OpenLoopRow {
        multiplier,
        offered: cfg.requests as u64,
        accepted: accepted_us.len() as u64,
        shed,
        offered_rps: n / submit_window_s,
        goodput_rps: accepted_us.len() as f64 / total_s,
        shed_rate: shed as f64 / n,
        degraded_rate: after.degraded_serves.saturating_sub(before.degraded_serves) as f64 / n,
        deadline_expired: after
            .deadline_expired
            .saturating_sub(before.deadline_expired),
        error_count: errors,
        accepted_p50_us: percentile_us(&accepted_us, 0.50),
        accepted_p99_us: percentile_us(&accepted_us, 0.99),
        accepted_p999_us: percentile_us(&accepted_us, 0.999),
    })
}

/// Runs the full open-loop suite against a live service or cluster
/// front at `addr`: calibrate capacity on one pipelined connection,
/// then one pass per multiplier across `cfg.connections` lanes.
pub fn run_open_loop(addr: SocketAddr, cfg: &OpenLoopConfig) -> io::Result<OpenLoopReport> {
    let pool = crate::perf::service_batch(POOL);
    let mut lanes: Vec<Lane> = (0..cfg.connections.max(1))
        .map(|_| -> io::Result<Lane> {
            let client = PolicyClient::connect(addr, 1)?;
            client.set_io_timeout(Some(Duration::from_secs(30)))?;
            Ok(Lane {
                client,
                inflight: VecDeque::new(),
            })
        })
        .collect::<io::Result<_>>()?;
    let capacity_rps =
        calibrate_capacity_rps(&mut lanes[0].client, &pool, cfg.calibration_requests)?;
    let mut rows = Vec::with_capacity(cfg.multipliers.len());
    for &m in &cfg.multipliers {
        let rate = (capacity_rps * m).max(1.0);
        rows.push(open_loop_pass(&mut lanes, &pool, cfg, rate, m)?);
    }
    Ok(OpenLoopReport { capacity_rps, rows })
}

/// Everything the CI `overload-smoke` job asserts about a 2×-capacity
/// open-loop run against a deliberately small front queue.
#[derive(Debug)]
pub struct SmokeReport {
    /// Calibrated closed-loop capacity (requests/sec).
    pub capacity_rps: f64,
    /// The 2× multiplier row.
    pub row: OpenLoopRow,
    /// The front's configured admission bound.
    pub queue_capacity: usize,
    /// Peak admission-queue depth the front ever saw. Bounded memory
    /// means `<= queue_capacity` under all-v6 traffic.
    pub queue_depth_peak: usize,
    /// Accepted-p99 budget (µs): `max_queue_delay` plus a generous
    /// service-time allowance derived from the calibrated capacity.
    pub p99_budget_us: f64,
}

impl SmokeReport {
    /// The smoke criteria, as (label, pass) pairs — printed by the
    /// `repro --overload-smoke` driver so a red CI log says *which*
    /// promise broke.
    pub fn checks(&self) -> Vec<(&'static str, bool)> {
        vec![
            (
                "zero caller-visible errors (typed, non-Overloaded)",
                self.row.error_count == 0,
            ),
            (
                "every request accounted (accepted + shed == offered)",
                self.row.accepted + self.row.shed == self.row.offered,
            ),
            (
                "bounded queue memory (peak <= capacity)",
                self.queue_depth_peak <= self.queue_capacity,
            ),
            (
                "accepted p99 within queue-delay + service budget",
                match self.row.accepted_p99_us {
                    Some(p99) => p99 <= self.p99_budget_us,
                    None => false, // 2× load must still accept *something*
                },
            ),
            (
                "nonzero goodput under 2x overload",
                self.row.goodput_rps > 0.0,
            ),
        ]
    }

    /// Whether every check passed.
    pub fn pass(&self) -> bool {
        self.checks().iter().all(|(_, ok)| *ok)
    }
}

/// The admission bound of the dedicated overload stack. Deliberately
/// below the generator's lane count, so concurrent connections can
/// press the queue past its degrade threshold and over the top of the
/// shed ladder — overload is exercised, not just survived.
pub const STACK_QUEUE_CAPACITY: usize = 16;

/// The dedicated stack's queueing-delay bound.
pub const STACK_MAX_QUEUE_DELAY: Duration = Duration::from_millis(10);

/// An open-loop run against the dedicated overload stack, plus the
/// front-side observations the caller can't get over the wire.
#[derive(Debug)]
pub struct StackRun {
    /// The open-loop report (calibration + one row per multiplier).
    pub report: OpenLoopReport,
    /// The front's configured admission bound ([`STACK_QUEUE_CAPACITY`]).
    pub queue_capacity: usize,
    /// Peak admission-queue depth the front ever saw across the whole
    /// run. Bounded memory means `<= queue_capacity` under all-v6
    /// traffic.
    pub queue_depth_peak: usize,
}

/// Binds a dedicated overload stack — two single-shard backends behind
/// a cluster front with a deliberately small admission queue — runs
/// the configured open-loop passes against it, and tears it down.
pub fn run_on_dedicated_stack(cfg: &OpenLoopConfig) -> io::Result<StackRun> {
    let mut backends = Vec::new();
    let mut slots = Vec::new();
    for _ in 0..2 {
        let srv = PolicyServer::bind(
            "127.0.0.1:0",
            ServerConfig {
                router: RouterConfig {
                    shards: 1,
                    service: ServiceConfig {
                        lru_capacity: 4096,
                        ..ServiceConfig::default()
                    },
                    ..RouterConfig::default()
                },
                background_prewarm: false,
                ..ServerConfig::default()
            },
        )?;
        let handle = srv.spawn();
        slots.push(SlotSpec::Remote(handle.addr()));
        backends.push(handle);
    }
    let front = ClusterFront::bind(
        "127.0.0.1:0",
        ClusterRouter::new(&slots, ClusterConfig::default()),
        FrontConfig {
            queue_capacity: STACK_QUEUE_CAPACITY,
            max_queue_delay: STACK_MAX_QUEUE_DELAY,
            max_connections: cfg.connections + 8,
            ..FrontConfig::default()
        },
    )?;
    let front = front.spawn();

    let result = run_open_loop(front.addr(), cfg);
    let queue_depth_peak = front.admission().depth_peak();
    front.shutdown();
    for b in backends {
        b.shutdown();
    }

    Ok(StackRun {
        report: result?,
        queue_capacity: STACK_QUEUE_CAPACITY,
        queue_depth_peak,
    })
}

/// Runs the CI smoke: a 2×-capacity open-loop pass on the dedicated
/// stack, packaged with the promises [`SmokeReport::checks`] asserts.
pub fn run_overload_smoke(quick: bool) -> io::Result<SmokeReport> {
    let cfg = OpenLoopConfig {
        multipliers: vec![2.0],
        ..if quick {
            OpenLoopConfig::quick()
        } else {
            OpenLoopConfig::default()
        }
    };
    let run = run_on_dedicated_stack(&cfg)?;

    let row = run.report.rows[0];
    // Budget: the admission bound's worst queueing delay, plus a
    // generous (16× the calibrated mean at full pipeline) allowance
    // for the request actually being served once admitted — sized as
    // a collapse detector, not a latency SLO: an accidentally
    // unbounded queue at sustained 2× blows through it, honest
    // queueing jitter on a noisy CI box does not. It self-scales:
    // a slower machine calibrates a lower capacity and earns a
    // proportionally wider allowance.
    let mean_service_us = PIPELINE_WINDOW as f64 / run.report.capacity_rps.max(1e-9) * 1e6;
    let p99_budget_us = STACK_MAX_QUEUE_DELAY.as_micros() as f64 + 16.0 * mean_service_us;

    Ok(SmokeReport {
        capacity_rps: run.report.capacity_rps,
        row,
        queue_capacity: run.queue_capacity,
        queue_depth_peak: run.queue_depth_peak,
        p99_budget_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_process_is_deterministic_and_exponential_ish() {
        let mut a = Xorshift64Star::new(42);
        let mut b = Xorshift64Star::new(42);
        let gaps_a: Vec<f64> = (0..1000).map(|_| a.next_gap_s(100.0)).collect();
        let gaps_b: Vec<f64> = (0..1000).map(|_| b.next_gap_s(100.0)).collect();
        assert_eq!(gaps_a, gaps_b, "same seed, same schedule");
        assert!(gaps_a.iter().all(|&g| g.is_finite() && g > 0.0));
        // Mean gap at rate 100/s should land near 10ms.
        let mean = gaps_a.iter().sum::<f64>() / gaps_a.len() as f64;
        assert!(
            (0.005..0.02).contains(&mean),
            "mean gap {mean} far from 1/rate"
        );
    }

    #[test]
    fn percentiles_are_exact_order_statistics() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&sorted, 0.50), Some(51.0));
        assert_eq!(percentile_us(&sorted, 0.99), Some(99.0));
        assert_eq!(percentile_us(&sorted, 1.0), Some(100.0));
        assert_eq!(percentile_us(&[], 0.5), None);
    }

    #[test]
    fn queue_peak_via_the_shared_gauge_matches_the_bespoke_reference() {
        // The bespoke queue-peak accounting the admission controller
        // used before the shared `econcast-metrics` gauge replaced it:
        // depth is a plain counter, and only a *held* slot advances
        // the peak (a shed held no slot). This pin holds the swapped
        // implementation to the old rule step by step, on the same
        // seeded admit/release schedule the open-loop harness draws
        // its arrivals from — so the peak the harness reports
        // (`StackRun::queue_depth_peak`) is identical before and
        // after the swap.
        use econcast_service::{Admission, AdmissionController};
        let ctl = AdmissionController::new(STACK_QUEUE_CAPACITY, STACK_MAX_QUEUE_DELAY);
        let mut rng = Xorshift64Star::new(0xEC0_CA57_0AD);
        let (mut ref_depth, mut ref_peak) = (0usize, 0usize);
        for step in 0..4000 {
            // Arrivals outnumber drains 3:1, so the queue genuinely
            // fills, saturates, and presses past capacity — every rung
            // of the ladder gets traffic.
            if rng.next_unit() < 0.75 {
                // Mostly v6 peers (sheddable); a pre-v6 straggler now
                // and then exercises the cannot-shed rung, which may
                // legitimately push the peak past capacity.
                let can_shed = rng.next_unit() < 0.9;
                let got = ctl.admit(can_shed);
                ref_depth += 1;
                if ref_depth > STACK_QUEUE_CAPACITY && can_shed {
                    ref_depth -= 1; // a shed holds no slot, no peak
                    assert!(matches!(got, Admission::Shed { .. }), "step {step}");
                } else {
                    ref_peak = ref_peak.max(ref_depth);
                    assert!(!matches!(got, Admission::Shed { .. }), "step {step}");
                }
            } else if ref_depth > 0 {
                let n = 1 + (rng.next_u64() as usize) % ref_depth.min(3);
                ctl.release(n, Duration::from_micros(50 * n as u64));
                ref_depth -= n;
            }
            assert_eq!(ctl.depth(), ref_depth, "depth diverged at step {step}");
            assert_eq!(ctl.depth_peak(), ref_peak, "peak diverged at step {step}");
        }
        assert!(
            ref_peak > STACK_QUEUE_CAPACITY,
            "schedule never pressed past capacity"
        );
        // And the harness-visible number *is* the gauge's high-water
        // mark — one object feeds the ladder, the stats overlay, and
        // a v7 scrape.
        assert_eq!(ctl.queue_gauge().peak() as usize, ctl.depth_peak());
    }

    #[test]
    fn open_loop_against_a_single_server_accounts_for_every_request() {
        // The harness itself, end to end, against a plain (non-cluster)
        // server: every submitted request must come back accepted or
        // explicitly shed — nothing dropped, no stream errors.
        let handle = PolicyServer::bind(
            "127.0.0.1:0",
            ServerConfig {
                router: RouterConfig {
                    shards: 1,
                    service: ServiceConfig {
                        workers: Some(1),
                        ..ServiceConfig::default()
                    },
                    ..RouterConfig::default()
                },
                background_prewarm: false,
                ..ServerConfig::default()
            },
        )
        .expect("bind")
        .spawn();
        let cfg = OpenLoopConfig {
            requests: 60,
            calibration_requests: 60,
            multipliers: vec![1.0, 2.0],
            connections: 4,
            ..OpenLoopConfig::default()
        };
        let report = run_open_loop(handle.addr(), &cfg).expect("open loop");
        assert!(report.capacity_rps > 0.0);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            assert_eq!(row.error_count, 0, "no typed errors at {}x", row.multiplier);
            assert_eq!(
                row.accepted + row.shed,
                row.offered,
                "every request accounted at {}x",
                row.multiplier
            );
            assert!(row.offered_rps > 0.0);
            if row.accepted > 0 {
                assert!(
                    row.accepted_p50_us.is_some(),
                    "accepted requests have tails"
                );
            }
        }
        handle.shutdown();
    }
}
