//! Self-healing acceptance tests: a deterministic fault plan fired
//! against a live cluster (process kills, frame corruption, stalls,
//! partial writes) while the supervisor policy loop heals — every
//! response bit-identical to the single-process path and zero
//! caller-visible errors throughout. Plus: live ring rebalancing with
//! warm `MixSeed` handoffs, crash-loop quarantine, and the graceful
//! drain of a mid-frame request.

use bytes::BytesMut;
use econcast_cluster::{
    add_backend_with_warmup, remove_backend_with_handoff, ClusterConfig, ClusterFront,
    ClusterHealer, ClusterRouter, Fault, FaultEvent, FaultPlan, FaultProxy, FrontConfig,
    HealerConfig, RemoteConfig, SlotSpec, Supervisor, SupervisorConfig,
};
use econcast_core::{NodeParams, ThroughputMode};
use econcast_proto::service::{ServiceCodec, ServiceMessage, WireHello};
use econcast_service::workload::mixed_batch;
use econcast_service::{
    PolicyClient, PolicyRequest, PolicyResponse, PolicyServer, RouterConfig, ServerConfig,
    ServerHandle, ServiceConfig, ServiceError, ShardRouter,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The backend executable Cargo built for this crate's tests.
fn backend_bin() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_policy_backend"))
}

/// Shared per-shard service config: backends, fallback, and reference
/// must match for the bit-identical guarantee.
fn service_cfg() -> ServiceConfig {
    ServiceConfig::default()
}

/// Dialer config for fault runs: tight timeouts so stalls surface as
/// failures well inside a round, and no spontaneous reprobe — the
/// healer's ping sweep is the only re-adoption path, which is exactly
/// what the tests exercise.
fn chaos_cfg() -> ClusterConfig {
    ClusterConfig {
        service: service_cfg(),
        remote: RemoteConfig {
            dial_retries: 2,
            backoff: Duration::from_millis(10),
            io_timeout: Some(Duration::from_millis(800)),
            unhealthy_after: 1,
            reprobe_after: Duration::from_secs(3600),
            ..RemoteConfig::default()
        },
        ..ClusterConfig::default()
    }
}

/// Asserts a wire result carries identical payload bits to the
/// reference (tier labels may shift where `Exact` is involved — the
/// PR 3 socket-test convention; same helper as `tests/cluster.rs`).
fn assert_payload_identical(
    i: usize,
    wire: &econcast_service::WireResult,
    exp: &Result<PolicyResponse, ServiceError>,
) {
    let wire = wire
        .as_ref()
        .unwrap_or_else(|e| panic!("request {i}: caller-visible error {e:?}"));
    let exp = exp.as_ref().expect("reference served");
    assert_eq!(wire.policies.len(), exp.policies.len(), "request {i}");
    for (wp, np) in wire.policies.iter().zip(&exp.policies) {
        assert_eq!(wp.listen.to_bits(), np.listen.to_bits(), "request {i}");
        assert_eq!(wp.transmit.to_bits(), np.transmit.to_bits(), "request {i}");
    }
    assert_eq!(
        wire.throughput.to_bits(),
        exp.throughput.to_bits(),
        "request {i}"
    );
    assert_eq!(
        wire.cert_t_sigma.to_bits(),
        exp.certificate.t_sigma.to_bits(),
        "request {i}"
    );
    assert_eq!(
        wire.cert_oracle.to_bits(),
        exp.certificate.oracle.to_bits(),
        "request {i}"
    );
    assert_eq!(
        wire.cert_dual_upper.to_bits(),
        exp.certificate.dual_upper.to_bits(),
        "request {i}"
    );
    assert_eq!(wire.converged, exp.converged, "request {i}");
    assert!(
        wire.tier == exp.tier
            || wire.tier == econcast_service::ServedTier::Exact
            || exp.tier == econcast_service::ServedTier::Exact,
        "request {i}: tier {:?} vs expected {:?}",
        wire.tier,
        exp.tier
    );
}

/// The native-response sibling of [`assert_payload_identical`], for
/// tests that drive the router directly instead of over the wire.
fn assert_resp_identical(
    i: usize,
    got: &Result<PolicyResponse, ServiceError>,
    exp: &Result<PolicyResponse, ServiceError>,
) {
    let got = got
        .as_ref()
        .unwrap_or_else(|e| panic!("request {i}: caller-visible error {e:?}"));
    let exp = exp.as_ref().expect("reference served");
    assert_eq!(got.policies.len(), exp.policies.len(), "request {i}");
    for (gp, ep) in got.policies.iter().zip(&exp.policies) {
        assert_eq!(gp.listen.to_bits(), ep.listen.to_bits(), "request {i}");
        assert_eq!(gp.transmit.to_bits(), ep.transmit.to_bits(), "request {i}");
    }
    assert_eq!(
        got.throughput.to_bits(),
        exp.throughput.to_bits(),
        "request {i}"
    );
    assert_eq!(
        got.certificate.t_sigma.to_bits(),
        exp.certificate.t_sigma.to_bits(),
        "request {i}"
    );
}

/// The chaos acceptance test: a seeded fault plan covering every
/// fault class fires across sustained mixed batches; the policy loop
/// heals (respawn + readiness probe + retarget) with no operator
/// call; every response stays bit-identical to the single-process
/// path and no caller ever sees an error.
#[test]
fn chaos_plan_is_absorbed_bit_identically_while_the_policy_loop_heals() {
    const ROUNDS: usize = 12;
    const STALL: Duration = Duration::from_millis(1500);
    let plan = FaultPlan::seeded(0x00EC_0CA5, ROUNDS, 2, STALL);
    // The plan guarantees class coverage by construction; pin it so a
    // generator regression cannot silently weaken this test.
    assert!(plan.contains(|e| matches!(e, FaultEvent::Kill { .. })));
    assert!(plan.contains(|e| matches!(
        e,
        FaultEvent::Proxy {
            fault: Fault::CorruptFrame,
            ..
        }
    )));
    assert!(plan.contains(|e| matches!(
        e,
        FaultEvent::Proxy {
            fault: Fault::Stall(_),
            ..
        }
    )));
    assert!(plan.contains(|e| matches!(
        e,
        FaultEvent::Proxy {
            fault: Fault::PartialWrite,
            ..
        }
    )));

    let batch = mixed_batch(256);
    let reference = ShardRouter::new(RouterConfig {
        shards: 2,
        service: service_cfg(),
        ..RouterConfig::default()
    });
    let expected = reference.serve_batch(&batch);

    // Two supervised backend processes, each behind a fault proxy; the
    // router dials the proxies, so every byte of backend traffic
    // passes the injection point.
    let sup = Arc::new(Mutex::new(
        Supervisor::spawn(backend_bin(), 2, SupervisorConfig::default()).expect("spawn backends"),
    ));
    let addrs = sup.lock().unwrap().addrs();
    let mut router = ClusterRouter::new(
        &[SlotSpec::Remote(addrs[0]), SlotSpec::Remote(addrs[1])],
        chaos_cfg(),
    );
    let fired = router.injected_fault_counter();
    let proxies: Arc<Vec<FaultProxy>> = Arc::new(
        addrs
            .iter()
            .map(|&a| FaultProxy::spawn(a, Arc::clone(&fired)).expect("spawn proxy"))
            .collect(),
    );
    for (slot, proxy) in proxies.iter().enumerate() {
        assert!(router.retarget_slot(slot, proxy.addr()));
    }
    let front = ClusterFront::bind("127.0.0.1:0", router, FrontConfig::default())
        .expect("bind front")
        .spawn();

    // The policy loop: respawn dead backends, and keep the router
    // dialing the proxy by retargeting the proxy's *upstream* at the
    // replacement instead of the ring slot.
    let healer = ClusterHealer::spawn_supervised(
        Arc::clone(front.router()),
        Arc::clone(&sup),
        vec![0, 1],
        Some(Box::new({
            let proxies = Arc::clone(&proxies);
            move |backend, fresh| {
                proxies[backend].set_upstream(fresh);
                proxies[backend].addr()
            }
        })),
        HealerConfig {
            sweep_interval: Duration::from_millis(50),
            respawn_backoff: Duration::from_millis(100),
            max_respawns_per_window: 10, // kills here are scripted, not crash loops
            ..HealerConfig::default()
        },
    );

    let mut client = PolicyClient::connect(front.addr(), 64).expect("connect");
    let mut kills = 0u64;
    for (round, event) in plan.events.iter().enumerate() {
        match event {
            None => {}
            Some(FaultEvent::Proxy { backend, fault }) => proxies[*backend].arm(*fault),
            Some(FaultEvent::Kill { backend }) => {
                sup.lock().unwrap().kill(*backend).expect("scripted kill");
                // Proxies count their own firings; scripted kills are
                // the harness's to count.
                fired.fetch_add(1, Ordering::Relaxed);
                kills += 1;
            }
        }
        for (c, chunk) in batch.chunks(64).enumerate() {
            let got = client.serve_batch(chunk).expect("front round trip");
            assert_eq!(got.len(), chunk.len());
            for (k, wire) in got.iter().enumerate() {
                let i = c * 64 + k;
                assert_payload_identical(i, wire, &expected[i]);
            }
        }
        // Quiet gap between rounds: healing (sweep, respawn, probe,
        // retarget) happens concurrently with serving, and the even
        // plan rounds are quiet by construction to let it land.
        std::thread::sleep(Duration::from_millis(200));
        let _ = round;
    }

    // Convergence: the policy loop must bring the whole cluster back
    // with no operator call — both processes alive, both slots
    // healthy.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let healthy = {
            let router = front.router();
            let guard = router.lock().unwrap();
            guard.cluster_stats().healthy
        };
        if healthy.iter().all(|&h| h) && sup.lock().unwrap().alive_count() == 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "cluster never converged back to healthy: {healthy:?}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    let stats = {
        let router = front.router();
        let guard = router.lock().unwrap();
        guard.cluster_stats()
    };
    assert!(kills >= 1, "the plan must script at least one kill");
    assert!(
        stats.auto_respawns >= kills,
        "every scripted kill must be healed by the policy loop: {stats:?}"
    );
    assert_eq!(stats.quarantines, 0, "scripted kills are not crash loops");
    assert!(
        stats.injected_faults >= kills + 3,
        "kill + corruption + stall + partial write must all have fired: {stats:?}"
    );
    assert!(
        stats.backend_failures >= 1 && stats.local_fallbacks >= 1,
        "faults must have been absorbed by failover, not invisible: {stats:?}"
    );
    assert!(stats.remote_served > 0, "healthy rounds served remotely");

    // The robustness counters ride the ordinary stats plane: the wire
    // aggregate carries the router's overlay. (The fan-in's own dials
    // pass through the proxies and may consume a still-armed fault,
    // so bracket the fault counter instead of pinning it.)
    let aggregate = client.stats(None).expect("aggregate stats");
    let after = {
        let router = front.router();
        let guard = router.lock().unwrap();
        guard.cluster_stats()
    };
    assert_eq!(aggregate.auto_respawns, stats.auto_respawns);
    assert!(
        aggregate.injected_faults >= stats.injected_faults
            && aggregate.injected_faults <= after.injected_faults,
        "overlay {} outside [{}, {}]",
        aggregate.injected_faults,
        stats.injected_faults,
        after.injected_faults
    );

    // The flight recorder survived the turbulence: the forced
    // failovers and the policy loop's respawns are in the ring, the
    // ring is globally ordered (monotone sequence numbers and
    // timestamps), and the black-box dump is structurally sound
    // Perfetto JSON naming the events.
    let events = econcast_metrics::recorder_events();
    assert!(
        events
            .iter()
            .any(|e| e.kind == econcast_metrics::OpsKind::FailoverReserve),
        "failover re-serves must be on the record"
    );
    assert!(
        events
            .iter()
            .any(|e| e.kind == econcast_metrics::OpsKind::Respawn),
        "policy-loop respawns must be on the record"
    );
    assert!(
        events
            .windows(2)
            .all(|w| w[0].seq < w[1].seq && w[0].ts_ns <= w[1].ts_ns),
        "recorder events must be in order"
    );
    let dump = econcast_metrics::recorder_dump_json();
    assert!(dump.starts_with("{\"traceEvents\":["));
    assert!(dump.trim_end().ends_with("]}"));
    assert_eq!(
        dump.matches('{').count(),
        dump.matches('}').count(),
        "dump braces must balance"
    );
    assert!(dump.contains("\"name\":\"failover_reserve\""));
    assert!(dump.contains("\"name\":\"respawn\""));

    drop(client);
    healer.shutdown();
    front.shutdown();
}

/// One in-process backend server for rebalance tests (in-process so
/// the test controls its config; no background prewarm so every grid
/// on it is attributable to the warm handoff or an inline build).
fn bind_backend() -> (ServerHandle, SocketAddr) {
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            router: RouterConfig {
                shards: 2,
                service: service_cfg(),
                ..RouterConfig::default()
            },
            background_prewarm: false,
            ..ServerConfig::default()
        },
    )
    .expect("bind backend");
    let addr = server.local_addr();
    (server.spawn(), addr)
}

/// A homogeneous request in one fixed family (grid-coverable budget,
/// coarse tolerance so the grid tier serves), varying only the
/// budget.
fn family_req(rho_uw: f64) -> PolicyRequest {
    PolicyRequest {
        tolerance: 1e-1,
        ..PolicyRequest::homogeneous(
            6,
            NodeParams::from_microwatts(rho_uw, 500.0, 450.0),
            0.5,
            ThroughputMode::Groupput,
            1e-2,
        )
    }
}

/// Live ring rebalancing with warm handoff, pinned by a bounded
/// throughput dip: the backend added under load inherits keys *and*
/// the shadow mix, so it grid-serves inherited families from the
/// first request with zero inline builds — and retiring a backend
/// ships its mix to the survivors the same way.
#[test]
fn live_reshard_warm_handoff_avoids_inline_builds_on_the_inheritor() {
    let (handle_a, addr_a) = bind_backend();
    let (handle_b, addr_b) = bind_backend();
    let router = Arc::new(Mutex::new(ClusterRouter::new(
        &[SlotSpec::Remote(addr_a), SlotSpec::Remote(addr_b)],
        chaos_cfg(),
    )));
    let reference = ShardRouter::new(RouterConfig {
        shards: 2,
        service: service_cfg(),
        ..RouterConfig::default()
    });

    // Warm phase: make one family hot so the router's shadow
    // recorders learn it (8 hits ≫ the prewarm min_hits of 3).
    let warm: Vec<PolicyRequest> = (0..8)
        .map(|i| family_req(10.0 + 0.1 * f64::from(i)))
        .collect();
    let expected_warm = reference.serve_batch(&warm);
    let got = router.lock().unwrap().serve_batch(&warm);
    for (i, (g, e)) in got.iter().zip(&expected_warm).enumerate() {
        assert_resp_identical(i, g, e);
    }
    assert!(
        !router.lock().unwrap().export_mix().is_empty(),
        "shadow recorders must have learned the warm family"
    );

    // Grow the ring under load: the new backend takes its vnodes and
    // is seeded with the merged shadow mix before any request hits it.
    let (handle_c, addr_c) = bind_backend();
    let slot = add_backend_with_warmup(&router, addr_c);
    assert_eq!(slot, 2);
    let warmed = PolicyClient::connect(addr_c, 1)
        .expect("connect new backend")
        .stats(None)
        .expect("new backend stats");
    assert!(
        warmed.grid_prewarms >= 1,
        "the handoff must have prewarmed the hot family: {warmed:?}"
    );
    assert_eq!(warmed.grid_builds, 0);
    assert_eq!(warmed.requests, 0, "warmed before any request arrived");
    assert!(router.lock().unwrap().cluster_stats().reshard_handoffs >= 1);

    // Post-handoff probes: fresh budgets in the hot family. About a
    // third land on the new slot; it must serve them from the
    // prewarmed grid — zero inline builds is the bounded-dip pin.
    let probes: Vec<PolicyRequest> = (0..40)
        .map(|i| family_req(5.0 + 0.6 * f64::from(i)))
        .collect();
    let expected_probes = reference.serve_batch(&probes);
    let got = router.lock().unwrap().serve_batch(&probes);
    for (i, (g, e)) in got.iter().zip(&expected_probes).enumerate() {
        assert_resp_identical(i, g, e);
    }
    let after = PolicyClient::connect(addr_c, 1)
        .expect("connect new backend")
        .stats(None)
        .expect("new backend stats");
    assert!(after.requests > 0, "the new slot must have inherited keys");
    assert_eq!(
        after.grid_builds, 0,
        "inherited requests must never pay an inline build: {after:?}"
    );
    assert!(
        after.grid_hits >= 1,
        "the prewarmed grid must actually serve: {after:?}"
    );

    // Shrink the ring under load: retire slot 0; its shadow mix ships
    // to every survivor (any of them may inherit any key), its vnodes
    // vanish, and serving continues bit-identically with zero errors.
    let handoffs_before = router.lock().unwrap().cluster_stats().reshard_handoffs;
    let routed_0_before = router.lock().unwrap().cluster_stats().routed[0];
    assert!(remove_backend_with_handoff(&router, 0));
    let probes2: Vec<PolicyRequest> = (0..20)
        .map(|i| family_req(35.0 + 0.4 * f64::from(i)))
        .collect();
    let expected_probes2 = reference.serve_batch(&probes2);
    let got = router.lock().unwrap().serve_batch(&probes2);
    for (i, (g, e)) in got.iter().zip(&expected_probes2).enumerate() {
        assert_resp_identical(i, g, e);
    }
    let stats = router.lock().unwrap().cluster_stats();
    assert_eq!(stats.healthy, vec![false, true, true], "slot 0 retired");
    assert_eq!(
        stats.routed[0], routed_0_before,
        "a retired slot owns no vnodes and takes no new keys"
    );
    assert!(
        stats.reshard_handoffs > handoffs_before,
        "retirement must have shipped the departing mix: {stats:?}"
    );

    handle_a.shutdown();
    handle_b.shutdown();
    handle_c.shutdown();
}

/// Crash-loop damping: a backend that keeps dying right after
/// readiness burns its respawn window and gets quarantined onto a
/// local in-process slot — serving continues bit-identically the
/// whole time and the healer stops restarting it.
#[test]
fn crash_looping_backend_is_quarantined_onto_a_local_slot() {
    let sup = Arc::new(Mutex::new(
        Supervisor::spawn(
            backend_bin(),
            1,
            SupervisorConfig {
                extra_args: vec!["--crash-after-ms".into(), "400".into()],
                ..SupervisorConfig::default()
            },
        )
        .expect("spawn crash-looping backend"),
    ));
    let addr = sup.lock().unwrap().addr(0);
    let router = Arc::new(Mutex::new(ClusterRouter::new(
        &[SlotSpec::Remote(addr)],
        chaos_cfg(),
    )));
    let _healer = ClusterHealer::spawn_supervised(
        Arc::clone(&router),
        Arc::clone(&sup),
        vec![0],
        None,
        HealerConfig {
            sweep_interval: Duration::from_millis(50),
            respawn_backoff: Duration::from_millis(50),
            max_respawns_per_window: 2,
            probe_retries: 3,
            ..HealerConfig::default()
        },
    );

    let batch = mixed_batch(24);
    let reference = ShardRouter::new(RouterConfig {
        shards: 1,
        service: service_cfg(),
        ..RouterConfig::default()
    });
    let expected = reference.serve_batch(&batch);

    // Keep serving through the crash loop until the healer gives up
    // on the backend; every response must stay clean throughout.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let got = router.lock().unwrap().serve_batch(&batch);
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_resp_identical(i, g, e);
        }
        if router.lock().unwrap().cluster_stats().quarantines >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "healer never quarantined the crash loop"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    let stats = router.lock().unwrap().cluster_stats();
    assert_eq!(stats.quarantines, 1);
    assert!(
        stats.auto_respawns <= 2,
        "damping must bound the respawn churn: {stats:?}"
    );
    assert_eq!(
        stats.healthy,
        vec![true],
        "a quarantined slot is a healthy local slot"
    );

    // The quarantined slot serves in-process from here on.
    let served_before = stats.local_served;
    let got = router.lock().unwrap().serve_batch(&batch);
    for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
        assert_resp_identical(i, g, e);
    }
    assert!(router.lock().unwrap().cluster_stats().local_served > served_before);
}

/// Reads the next complete protocol message off a raw stream.
fn read_msg(stream: &mut TcpStream, codec: &mut ServiceCodec) -> ServiceMessage {
    let mut buf = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Some(msg) = codec.next_message().expect("clean stream") {
            return msg;
        }
        assert!(Instant::now() < deadline, "timed out awaiting a reply");
        match stream.read(&mut buf) {
            Ok(0) => panic!("peer closed before replying"),
            Ok(n) => codec.feed(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => panic!("client-visible stream error: {e}"),
        }
    }
}

/// Graceful-drain regression: a front shutdown issued while a client
/// is mid-frame must wait for the frame's tail, serve the request,
/// write the reply, and only then close — never a client-visible
/// stream error.
#[test]
fn front_shutdown_drains_a_mid_frame_request_without_stream_errors() {
    let front = ClusterFront::bind(
        "127.0.0.1:0",
        ClusterRouter::new(&[SlotSpec::Local], chaos_cfg()),
        FrontConfig::default(),
    )
    .expect("bind front")
    .spawn();
    let addr = front.addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .expect("read timeout");
    let mut codec = ServiceCodec::new();

    // Handshake by hand — the test owns the framing.
    let mut out = BytesMut::new();
    ServiceCodec::encode(
        &ServiceMessage::Hello(WireHello {
            id: 1,
            max_batch: 1,
        }),
        &mut out,
    );
    stream.write_all(&out).expect("send hello");
    assert!(matches!(
        read_msg(&mut stream, &mut codec),
        ServiceMessage::Welcome(_)
    ));

    // Send only the first half of a request frame, then shut the
    // front down while the frame is dangling.
    let req = mixed_batch(1).pop().expect("one request");
    let mut frame = BytesMut::new();
    ServiceCodec::encode(&ServiceMessage::Request(req.to_wire(42)), &mut frame);
    let split = frame.len() / 2;
    stream.write_all(&frame[..split]).expect("send frame head");
    std::thread::sleep(Duration::from_millis(250)); // handler buffers the head
    let shutdown = std::thread::spawn(move || front.shutdown());
    std::thread::sleep(Duration::from_millis(500)); // stop flag observed; drain grace running

    // The tail arrives inside the grace window: the request must be
    // served and answered before the connection closes.
    stream.write_all(&frame[split..]).expect("send frame tail");
    match read_msg(&mut stream, &mut codec) {
        ServiceMessage::Response(r) => assert_eq!(r.id, 42),
        other => panic!("expected the drained response, got {other:?}"),
    }

    // And then a clean EOF — not an error, not a reset.
    let mut tail = [0u8; 64];
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match stream.read(&mut tail) {
            Ok(0) => break,
            Ok(_) => panic!("unexpected bytes after the drained response"),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                assert!(Instant::now() < deadline, "no EOF after drain");
            }
            Err(e) => panic!("client-visible stream error on drain: {e}"),
        }
    }
    shutdown.join().expect("shutdown thread");
}
