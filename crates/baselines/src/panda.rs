//! Panda (reference 14 of the paper): sleep → carrier-sense/listen → receive-or-transmit.
//!
//! Protocol structure (from the Panda paper's description): each node
//! repeats a cycle of
//!
//! 1. **sleep** for an exponential time with rate `λ`;
//! 2. **listen** (carrier sense) for up to a window `ω`;
//!    * if a transmission starts while listening, receive it fully and
//!      go back to sleep;
//!    * if the node wakes *into* an ongoing packet it cannot decode it
//!      (the preamble is gone) — it waits out the packet, pays the
//!      listen energy, and sleeps;
//! 3. if the window expires with an idle channel, **transmit** one
//!    packet (heard by every currently listening node) and sleep.
//!
//! Panda's own evaluation derives the optimal `λ` analytically; that
//! derivation is not in the EconCast text, so this module reproduces it
//! operationally: a faithful discrete-event Monte-Carlo of the cycle
//! above plus a bisection on `λ` that drives measured average power to
//! the budget `ρ` (consumption is monotone in the wake rate). This is
//! the documented substitution discussed in `DESIGN.md`.
//!
//! Time unit: one packet, as everywhere in this workspace.

use econcast_core::NodeParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Packet airtime (the global time unit).
const PACKET: f64 = 1.0;

/// Configuration of a Panda run on a homogeneous clique.
#[derive(Debug, Clone, Copy)]
pub struct PandaConfig {
    /// Number of nodes (Panda requires homogeneity and known `N`).
    pub n: usize,
    /// Per-node power parameters.
    pub params: NodeParams,
    /// Listen window `ω` in packet-times.
    pub listen_window: f64,
    /// Simulated duration per evaluation (packet-times).
    pub sim_duration: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Measured outcome of a Panda simulation.
#[derive(Debug, Clone, Copy)]
pub struct PandaResult {
    /// Receiver-packets per packet-time (Definition 1's groupput).
    pub groupput: f64,
    /// Packets with ≥ 1 receiver per packet-time.
    pub anyput: f64,
    /// The wake rate `λ` used.
    pub wake_rate: f64,
    /// Mean per-node power consumption (same unit as the params).
    pub avg_power: f64,
}

/// Per-node simulation state.
#[derive(Debug, Clone, Copy, PartialEq)]
enum St {
    /// Asleep until the stored wake time.
    Sleep,
    /// Carrier-sensing; the stored time is the transmit deadline.
    Sense,
    /// Waiting out an undecodable packet (woke mid-air).
    Blocked,
    /// Receiving a decodable packet until its end.
    Receive,
    /// Transmitting until the stored time.
    Transmit,
}

impl PandaConfig {
    /// Sensible defaults for quick evaluations: `ω` of one packet and a
    /// duration long enough for stable estimates at paper-scale duty
    /// cycles.
    pub fn new(n: usize, params: NodeParams) -> Self {
        assert!(n >= 2, "panda needs at least two nodes");
        PandaConfig {
            n,
            params,
            listen_window: 1.0,
            sim_duration: 2_000_000.0,
            seed: 0xECC0,
        }
    }

    /// Simulates the protocol at an explicit wake rate `λ`.
    pub fn simulate(&self, wake_rate: f64) -> PandaResult {
        assert!(wake_rate > 0.0 && wake_rate.is_finite());
        let n = self.n;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let exp = |rng: &mut StdRng| -> f64 {
            let u: f64 = 1.0 - rng.gen::<f64>();
            -u.ln() / wake_rate
        };

        let mut state = vec![St::Sleep; n];
        // Next decision time per node.
        let mut at: Vec<f64> = (0..n).map(|_| exp(&mut rng)).collect();
        let mut energy = vec![0.0f64; n];
        // Ongoing transmission: (transmitter, end_time).
        let mut on_air: Option<(usize, f64)> = None;

        let mut receptions = 0u64;
        let mut delivered = 0u64;
        let (l, x) = (self.params.listen_w, self.params.transmit_w);
        let t_end = self.sim_duration;

        loop {
            // Next node event.
            let (i, t) = at
                .iter()
                .copied()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("times are never NaN"))
                .expect("n >= 2");
            if t > t_end {
                break;
            }
            match state[i] {
                St::Sleep => {
                    // Wake up at t.
                    match on_air {
                        Some((_, end)) => {
                            // Mid-packet: undecodable; wait it out.
                            state[i] = St::Blocked;
                            energy[i] += (end - t) * l;
                            at[i] = end;
                        }
                        None => {
                            state[i] = St::Sense;
                            at[i] = t + self.listen_window;
                        }
                    }
                }
                St::Sense => {
                    // Window expired on an idle channel: transmit.
                    debug_assert!(on_air.is_none(), "deadline inside a packet");
                    energy[i] += self.listen_window * l;
                    let end = t + PACKET;
                    state[i] = St::Transmit;
                    at[i] = end;
                    energy[i] += PACKET * x;
                    on_air = Some((i, end));
                    // Every sensing node becomes a receiver.
                    let mut hearers = 0u64;
                    for j in 0..n {
                        if j != i && state[j] == St::Sense {
                            // They sensed from their wake until t, then
                            // receive until `end`.
                            let sensed_since = at[j] - self.listen_window;
                            energy[j] += (t - sensed_since) * l + PACKET * l;
                            state[j] = St::Receive;
                            at[j] = end;
                            hearers += 1;
                        }
                    }
                    receptions += hearers;
                    if hearers > 0 {
                        delivered += 1;
                    }
                }
                St::Transmit => {
                    // Packet done; sleep.
                    on_air = None;
                    state[i] = St::Sleep;
                    at[i] = t + exp(&mut rng);
                }
                St::Receive | St::Blocked => {
                    // Finished hearing the packet (energy already
                    // charged); sleep.
                    state[i] = St::Sleep;
                    at[i] = t + exp(&mut rng);
                }
            }
        }

        let avg_power = energy.iter().sum::<f64>() / (n as f64 * t_end);
        PandaResult {
            groupput: receptions as f64 * PACKET / t_end,
            anyput: delivered as f64 * PACKET / t_end,
            wake_rate,
            avg_power,
        }
    }

    /// Finds the wake rate whose measured consumption meets the budget
    /// (relative tolerance 2%) and returns the corresponding result —
    /// the operational analogue of Panda's parameter optimization.
    pub fn calibrated(&self) -> PandaResult {
        let rho = self.params.budget_w;
        // Bracket: power is monotone increasing in λ.
        let mut lo = 1e-9;
        let mut hi = 1.0;
        let mut r_hi = self.simulate(hi);
        let mut guard = 0;
        while r_hi.avg_power < rho {
            hi *= 4.0;
            r_hi = self.simulate(hi);
            guard += 1;
            assert!(guard < 20, "budget unreachable: node is always awake");
        }
        let mut best = r_hi;
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            let r = self.simulate(mid);
            if r.avg_power > rho {
                hi = mid;
            } else {
                lo = mid;
            }
            best = r;
            if (r.avg_power - rho).abs() / rho < 0.02 {
                break;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_params() -> NodeParams {
        NodeParams::from_microwatts(10.0, 500.0, 500.0)
    }

    fn quick(n: usize) -> PandaConfig {
        let mut c = PandaConfig::new(n, paper_params());
        c.sim_duration = 400_000.0;
        c
    }

    #[test]
    fn power_scales_with_wake_rate() {
        let c = quick(5);
        let slow = c.simulate(1e-4);
        let fast = c.simulate(1e-2);
        assert!(fast.avg_power > slow.avg_power);
    }

    #[test]
    fn calibration_meets_budget() {
        let c = quick(5);
        let r = c.calibrated();
        let rho = paper_params().budget_w;
        assert!(
            (r.avg_power - rho).abs() / rho < 0.05,
            "calibrated power {} vs budget {rho}",
            r.avg_power
        );
        assert!(r.groupput > 0.0);
    }

    #[test]
    fn panda_well_below_oracle_at_symmetric_powers() {
        // The paper's headline: at X ≈ L EconCast outperforms Panda by
        // 6–17×; equivalently Panda sits far below the oracle.
        let p = paper_params();
        let r = quick(5).calibrated();
        let beta = p.budget_w / (p.transmit_w + 4.0 * p.listen_w);
        let t_star = 20.0 * beta; // 0.08
        assert!(
            r.groupput < 0.25 * t_star,
            "panda groupput {} not ≪ oracle {t_star}",
            r.groupput
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let c = quick(4);
        let a = c.simulate(1e-3);
        let b = c.simulate(1e-3);
        assert_eq!(a.groupput, b.groupput);
        assert_eq!(a.avg_power, b.avg_power);
    }

    #[test]
    fn anyput_never_exceeds_groupput_or_one() {
        let r = quick(5).simulate(5e-3);
        assert!(r.anyput <= r.groupput + 1e-12);
        assert!(r.anyput <= 1.0);
    }

    #[test]
    fn more_nodes_more_groupput_per_transmission() {
        // With more sensing nodes per transmission, groupput grows.
        let small = quick(3).calibrated();
        let large = quick(8).calibrated();
        assert!(large.groupput > small.groupput);
    }
}
