//! The interpolation-grid tier: precomputed homogeneous policies over
//! `(N, ρ)`.
//!
//! For a *family* of homogeneous clique instances — fixed node count
//! `N`, radio powers `(L, X)`, temperature σ, and objective — the
//! optimal scalar dual multiplier `η*(ρ)` is a smooth, monotone
//! function of the budget. The grid samples it at log-spaced budget
//! knots (one exact scalar-dual bisection each) and serves an
//! intermediate budget with **one** Gibbs evaluation at the
//! linearly-interpolated multiplier, instead of a full bisection:
//!
//! * the served policy is a genuine Gibbs policy (the marginals at
//!   `η̃`), so its weak-duality certificate is valid *exactly* — `D(η)`
//!   upper-bounds the optimum at every `η ≥ 0`, interpolated or not;
//! * the policy's distance from the true optimum is controlled by the
//!   interpolation error of `η̃`, which the build certifies empirically:
//!   every inter-knot interval is validated at its midpoint against an
//!   exact solve, and the observed error (× a safety factor) gates
//!   which tolerance tiers the interval may serve.
//!
//! Grids build lazily, on the first homogeneous request of a family
//! that reaches this tier, and are keyed by [`FamilyKey`].

use crate::cache::CachedPolicy;
use econcast_core::{NodeParams, ThroughputMode};
use econcast_oracle::certificate_for_homogeneous;
use econcast_statespace::homogeneous::{HomogeneousGibbs, HomogeneousP4Solution};
use econcast_statespace::HomogeneousP4;

/// Tuning for the grid tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridConfig {
    /// Number of budget knots per family (≥ 2).
    pub points: usize,
    /// Smallest budget covered (W).
    pub rho_min_w: f64,
    /// Largest budget covered (W).
    pub rho_max_w: f64,
    /// Multiplier applied to the midpoint-validated interval error
    /// before comparing against a request's tolerance tier — headroom
    /// for the error's variation away from the midpoint.
    pub safety: f64,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            // 33 knots over five decades of budget: ~2.6 knots per
            // octave, fine enough for 1e-3 tiers at paper-scale N.
            points: 33,
            rho_min_w: 1e-7,
            rho_max_w: 1e-2,
            safety: 4.0,
        }
    }
}

/// Identifies one grid family: everything that pins the homogeneous
/// instance except the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FamilyKey {
    /// Node count.
    pub n: usize,
    /// `L` bits.
    pub listen: u64,
    /// `X` bits.
    pub transmit: u64,
    /// `σ` bits.
    pub sigma: u64,
    /// 0 = groupput, 1 = anyput.
    pub mode: u8,
}

impl FamilyKey {
    /// The family of a homogeneous instance.
    pub fn new(n: usize, listen_w: f64, transmit_w: f64, sigma: f64, mode: ThroughputMode) -> Self {
        FamilyKey {
            n,
            listen: listen_w.to_bits(),
            transmit: transmit_w.to_bits(),
            sigma: sigma.to_bits(),
            mode: match mode {
                ThroughputMode::Groupput => 0,
                ThroughputMode::Anyput => 1,
            },
        }
    }
}

/// A built grid for one family.
#[derive(Debug, Clone)]
pub struct PolicyGrid {
    n: usize,
    listen_w: f64,
    transmit_w: f64,
    sigma: f64,
    mode: ThroughputMode,
    safety: f64,
    /// Knot abscissae, `ln ρ`, ascending.
    ln_rho: Vec<f64>,
    /// Exact scalar multipliers at the knots.
    eta: Vec<f64>,
    /// Midpoint-validated relative policy error per interval.
    interval_err: Vec<f64>,
}

impl PolicyGrid {
    /// Builds the grid for one family: `cfg.points` exact solves for
    /// the knots plus one validation solve per interval midpoint.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.points < 2` or the budget range is not a
    /// positive, ordered pair.
    pub fn build(
        n: usize,
        listen_w: f64,
        transmit_w: f64,
        sigma: f64,
        mode: ThroughputMode,
        cfg: &GridConfig,
    ) -> Self {
        assert!(cfg.points >= 2, "grid needs at least two knots");
        assert!(cfg.rho_min_w > 0.0 && cfg.rho_min_w < cfg.rho_max_w);
        let (lo, hi) = (cfg.rho_min_w.ln(), cfg.rho_max_w.ln());
        let step = (hi - lo) / (cfg.points - 1) as f64;
        let ln_rho: Vec<f64> = (0..cfg.points).map(|k| lo + step * k as f64).collect();

        let solve = |rho: f64| {
            let p = NodeParams::new(rho, listen_w, transmit_w);
            HomogeneousP4::new(n, p, sigma, mode).solve()
        };
        let eta: Vec<f64> = ln_rho.iter().map(|&lr| solve(lr.exp()).eta).collect();

        let mut grid = PolicyGrid {
            n,
            listen_w,
            transmit_w,
            sigma,
            mode,
            safety: cfg.safety,
            ln_rho,
            eta,
            interval_err: Vec::new(),
        };
        // Certify each interval at its midpoint: interpolated-η policy
        // vs exact bisection.
        grid.interval_err = (0..grid.eta.len() - 1)
            .map(|k| {
                let mid = 0.5 * (grid.ln_rho[k] + grid.ln_rho[k + 1]);
                let rho = mid.exp();
                let exact = solve(rho);
                let interp = grid.eval_at(rho, grid.eta_interp(mid, k));
                let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-300);
                rel(interp.alpha, exact.alpha)
                    .max(rel(interp.beta, exact.beta))
                    .max(rel(interp.throughput, exact.throughput))
            })
            .collect();
        grid
    }

    /// Linear interpolation of η on interval `k` at abscissa `ln ρ`.
    fn eta_interp(&self, ln_rho: f64, k: usize) -> f64 {
        let (x0, x1) = (self.ln_rho[k], self.ln_rho[k + 1]);
        let t = (ln_rho - x0) / (x1 - x0);
        // η is clamped non-negative; interpolation between
        // non-negative knots stays non-negative.
        self.eta[k] + t * (self.eta[k + 1] - self.eta[k])
    }

    /// One Gibbs evaluation at multiplier `eta` for budget `rho`.
    fn eval_at(&self, rho: f64, eta: f64) -> HomogeneousP4Solution {
        let p = NodeParams::new(rho, self.listen_w, self.transmit_w);
        let s = HomogeneousGibbs::new(self.n, p, self.sigma, self.mode).summarize(eta);
        HomogeneousP4Solution {
            throughput: s.expected_throughput,
            eta,
            alpha: s.alpha,
            beta: s.beta,
            summary: s,
        }
    }

    /// Serves a budget if it falls inside the grid and the covering
    /// interval's certified error (× safety) meets `tolerance`.
    /// Returns the policy in canonical per-node form.
    pub fn serve(&self, rho: f64, tolerance: f64) -> Option<CachedPolicy> {
        let x = rho.ln();
        if !(self.ln_rho[0]..=*self.ln_rho.last().unwrap()).contains(&x) {
            return None;
        }
        // Binary search for the covering interval.
        let k = match self.ln_rho.binary_search_by(|probe| probe.total_cmp(&x)) {
            Ok(i) => i.min(self.ln_rho.len() - 2),
            Err(i) => i - 1,
        };
        if self.interval_err[k] * self.safety > tolerance {
            return None;
        }
        let sol = self.eval_at(rho, self.eta_interp(x, k));
        let params = NodeParams::new(rho, self.listen_w, self.transmit_w);
        let certificate = certificate_for_homogeneous(self.n, &params, self.sigma, self.mode, &sol);
        Some(CachedPolicy {
            alpha: vec![sol.alpha; self.n],
            beta: vec![sol.beta; self.n],
            throughput: sol.throughput,
            converged: true,
            kernel: econcast_proto::service::PolicyKernel::Grid,
            certificate,
        })
    }

    /// The worst certified interval error (diagnostic).
    pub fn max_interval_err(&self) -> f64 {
        self.interval_err.iter().cloned().fold(0.0, f64::max)
    }

    /// Approximate resident bytes of this grid (struct + knot/interval
    /// heap) — what a build charges against the service's shared cache
    /// byte budget.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + 8 * (self.ln_rho.len() + self.eta.len() + self.interval_err.len())
    }

    /// What [`PolicyGrid::approx_bytes`] will report for a grid built
    /// with `cfg` — known *before* paying the ~2·points solves, so a
    /// byte-budgeted service can skip builds that could never fit
    /// instead of build-evict thrashing.
    pub fn estimate_bytes(cfg: &GridConfig) -> usize {
        std::mem::size_of::<Self>() + 8 * (3 * cfg.points - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use econcast_core::ThroughputMode::{Anyput, Groupput};

    const L: f64 = 500e-6;
    const X: f64 = 450e-6;

    #[test]
    fn grid_serves_within_certified_error() {
        let cfg = GridConfig::default();
        let grid = PolicyGrid::build(10, L, X, 0.5, Groupput, &cfg);
        // Off-knot budgets across the range: grid policy vs exact
        // bisection stays within the certified interval error × safety.
        for rho in [2.3e-7, 7.7e-6, 1.9e-5, 4.1e-4, 6.5e-3] {
            let served = grid.serve(rho, 1e-2);
            let Some(served) = served else { continue };
            let p = NodeParams::new(rho, L, X);
            let exact = HomogeneousP4::new(10, p, 0.5, Groupput).solve();
            let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-300);
            assert!(
                rel(served.alpha[0], exact.alpha) <= 1e-2,
                "rho {rho}: alpha {} vs {}",
                served.alpha[0],
                exact.alpha
            );
            assert!(rel(served.beta[0], exact.beta) <= 1e-2);
            assert!(rel(served.throughput, exact.throughput) <= 1e-2);
        }
    }

    #[test]
    fn grid_refuses_out_of_range_and_too_tight() {
        let grid = PolicyGrid::build(5, L, X, 0.5, Groupput, &GridConfig::default());
        assert!(grid.serve(1e-9, 1e-1).is_none(), "below the grid range");
        assert!(grid.serve(1.0, 1e-1).is_none(), "above the grid range");
        // A tolerance far below the certified error is declined.
        let tighter_than_possible = grid.max_interval_err() / 1e6;
        assert!(grid.serve(3.3e-6, tighter_than_possible).is_none());
    }

    #[test]
    fn grid_certificates_sandwich_the_oracle() {
        let grid = PolicyGrid::build(8, L, X, 0.5, Groupput, &GridConfig::default());
        for rho in [3.1e-6, 2.9e-5] {
            let served = grid.serve(rho, 1e-1).expect("loose tier must serve");
            let c = &served.certificate;
            assert!(
                c.t_sigma <= c.oracle + 1e-9 && c.oracle <= c.dual_upper + 1e-9,
                "rho {rho}: T^σ={} T*={} D={}",
                c.t_sigma,
                c.oracle,
                c.dual_upper
            );
        }
    }

    #[test]
    fn knot_budgets_are_served_exactly() {
        let cfg = GridConfig::default();
        let grid = PolicyGrid::build(6, L, X, 0.25, Anyput, &cfg);
        // At a knot the interpolated η equals the exact knot η.
        let rho = cfg.rho_min_w * (cfg.rho_max_w / cfg.rho_min_w).powf(0.5); // middle knot (odd count)
        let served = grid.serve(rho, 1e-1).expect("in range");
        let p = NodeParams::new(rho, L, X);
        let exact = HomogeneousP4::new(6, p, 0.25, Anyput).solve();
        assert!((served.alpha[0] - exact.alpha).abs() / exact.alpha < 1e-9);
        assert!((served.beta[0] - exact.beta).abs() / exact.beta < 1e-9);
    }
}
