//! A single collision-free network state `w ∈ W`.

use econcast_core::{NodeState, ThroughputMode};

/// One collision-free network state: at most one node transmits and any
/// subset of the *other* nodes listens; everyone else sleeps
/// (Section III-C). Nodes are indexed `0..n` with `n ≤ 64` (listener
/// membership is a bitmask).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetworkState {
    transmitter: Option<u8>,
    listeners: u64,
}

impl NetworkState {
    /// The all-sleep state.
    pub fn all_sleep() -> Self {
        NetworkState {
            transmitter: None,
            listeners: 0,
        }
    }

    /// Builds a state from an optional transmitter and a listener
    /// bitmask (bit `i` set ⇔ node `i` listens).
    ///
    /// # Panics
    ///
    /// Panics if the transmitter's bit is also set in `listeners`
    /// (a node cannot be in two states) or the transmitter index
    /// exceeds 63.
    pub fn new(transmitter: Option<usize>, listeners: u64) -> Self {
        if let Some(t) = transmitter {
            assert!(t < 64, "node index {t} out of range (max 63)");
            assert!(
                listeners & (1u64 << t) == 0,
                "node {t} cannot transmit and listen simultaneously"
            );
        }
        NetworkState {
            transmitter: transmitter.map(|t| t as u8),
            listeners,
        }
    }

    /// Builds a state from explicit listener indices.
    pub fn with_listeners(transmitter: Option<usize>, listeners: &[usize]) -> Self {
        let mut mask = 0u64;
        for &l in listeners {
            assert!(l < 64, "node index {l} out of range (max 63)");
            mask |= 1 << l;
        }
        Self::new(transmitter, mask)
    }

    /// The transmitting node, if any.
    #[inline]
    pub fn transmitter(&self) -> Option<usize> {
        self.transmitter.map(|t| t as usize)
    }

    /// The listener bitmask.
    #[inline]
    pub fn listener_mask(&self) -> u64 {
        self.listeners
    }

    /// `ν_w` — exactly one transmitter present (Section III-C).
    #[inline]
    pub fn nu(&self) -> bool {
        self.transmitter.is_some()
    }

    /// `c_w` — number of listeners.
    #[inline]
    pub fn listener_count(&self) -> usize {
        self.listeners.count_ones() as usize
    }

    /// `γ_w` — whether any node is listening.
    #[inline]
    pub fn gamma(&self) -> bool {
        self.listeners != 0
    }

    /// Whether node `i` is listening.
    #[inline]
    pub fn is_listening(&self, i: usize) -> bool {
        i < 64 && self.listeners & (1 << i) != 0
    }

    /// The state of node `i` in this network state.
    pub fn node_state(&self, i: usize) -> NodeState {
        if self.transmitter() == Some(i) {
            NodeState::Transmit
        } else if self.is_listening(i) {
            NodeState::Listen
        } else {
            NodeState::Sleep
        }
    }

    /// The per-state throughput `T_w` of Definition 3.
    pub fn throughput(&self, mode: ThroughputMode) -> f64 {
        mode.state_throughput(self.nu(), self.listener_count())
    }

    /// Iterates over listener indices in ascending order.
    pub fn listeners(&self) -> impl Iterator<Item = usize> + '_ {
        let mask = self.listeners;
        (0..64).filter(move |i| mask & (1 << i) != 0)
    }

    /// Whether this state is a "successfully received burst" state,
    /// i.e. a member of `W' = {w : ν_w = 1, c_w ≥ 1}` from the
    /// burstiness analysis (Appendix E).
    pub fn is_burst_state(&self) -> bool {
        self.nu() && self.gamma()
    }

    /// Renders the state as the paper's letter string, e.g. `"slxl"`
    /// for (sleep, listen, transmit, listen) over 4 nodes.
    pub fn letters(&self, n: usize) -> String {
        (0..n).map(|i| self.node_state(i).letter()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use econcast_core::ThroughputMode::{Anyput, Groupput};

    #[test]
    fn indicators_on_simple_states() {
        let idle = NetworkState::all_sleep();
        assert!(!idle.nu());
        assert!(!idle.gamma());
        assert_eq!(idle.listener_count(), 0);
        assert!(!idle.is_burst_state());

        let s = NetworkState::with_listeners(Some(2), &[0, 3]);
        assert!(s.nu());
        assert!(s.gamma());
        assert_eq!(s.listener_count(), 2);
        assert_eq!(s.transmitter(), Some(2));
        assert!(s.is_burst_state());
    }

    #[test]
    fn node_states_partition() {
        let s = NetworkState::with_listeners(Some(1), &[0, 2]);
        assert_eq!(s.node_state(0), NodeState::Listen);
        assert_eq!(s.node_state(1), NodeState::Transmit);
        assert_eq!(s.node_state(2), NodeState::Listen);
        assert_eq!(s.node_state(3), NodeState::Sleep);
        assert_eq!(s.letters(4), "lxls");
    }

    use econcast_core::NodeState;

    #[test]
    fn throughput_matches_definition3() {
        let s = NetworkState::with_listeners(Some(0), &[1, 2, 3]);
        assert_eq!(s.throughput(Groupput), 3.0);
        assert_eq!(s.throughput(Anyput), 1.0);
        let lonely_tx = NetworkState::new(Some(0), 0);
        assert_eq!(lonely_tx.throughput(Groupput), 0.0);
        assert_eq!(lonely_tx.throughput(Anyput), 0.0);
        let no_tx = NetworkState::with_listeners(None, &[0, 1]);
        assert_eq!(no_tx.throughput(Groupput), 0.0);
        assert_eq!(no_tx.throughput(Anyput), 0.0);
    }

    #[test]
    fn listener_iteration_is_sorted() {
        let s = NetworkState::with_listeners(None, &[5, 1, 9]);
        assert_eq!(s.listeners().collect::<Vec<_>>(), vec![1, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "cannot transmit and listen")]
    fn transmitter_listening_rejected() {
        NetworkState::new(Some(1), 0b10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_index_rejected() {
        NetworkState::new(Some(64), 0);
    }
}
