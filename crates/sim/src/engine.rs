//! The discrete-event simulation engine.
//!
//! ## Mechanics
//!
//! * **Timers.** Dwell times in sleep and listen are exponential with
//!   the rates (18); whenever a node's rates change (channel busy/free
//!   edge, multiplier update, state change) its pending timers are
//!   invalidated by bumping a per-node generation counter and fresh
//!   dwells are drawn. Re-drawing the *residual* dwell is exact because
//!   the exponential distribution is memoryless.
//! * **Carrier sense.** `busy_neighbors[i]` counts node `i`'s currently
//!   transmitting neighbors. While it is non-zero, `A(t) = 0` for node
//!   `i`: sleepers stay asleep and listeners stick to the transmission
//!   (Section V-E's description of the carrier-sense indicator).
//! * **Transmission.** A transmit visit is a sequence of unit packets.
//!   After each packet the transmitter obtains a listener estimate `ĉ`
//!   (from the configured estimator — perfect, noisy, or simulated ping
//!   collection) and continues with probability `1 − λ_xl` (18e)/(18f).
//! * **Delivery.** A packet is received by every neighbor that was
//!   listening for the packet's whole duration with no overlapping
//!   transmission in its own neighborhood. In a clique this is simply
//!   "all current listeners"; in general graphs overlaps void delivery
//!   (Section VII-E).
//! * **Energy.** Each node's ledger gains at `ρ_i` and drains at the
//!   power of its current state (plus the configured awake overhead);
//!   the multiplier update (17) runs every `τ` time units from the
//!   ledger's drift.

use econcast_core::{EnergyStore, Multiplier, NodeParams, NodeState, TransitionRates, Variant};
use rand::rngs::StdRng;
use rand::Rng;

use crate::config::{EstimatorKind, SimConfig};
use crate::events::{Event, EventQueue};
use crate::metrics::{Delivery, NodeStats, SimReport};
use crate::rng::{coin, exponential, seeded};

/// One data packet takes exactly one simulated time unit (1 ms in the
/// paper's setup); all rates are per packet-time.
pub const PACKET_TIME: f64 = 1.0;

/// Runtime state of one node.
struct NodeRt {
    params: NodeParams,
    state: NodeState,
    gen: u64,
    multiplier: Multiplier,
    energy: EnergyStore,
    /// Ledger level at the start of the current multiplier interval.
    energy_snapshot: f64,
    /// Time up to which this node's energy/state-time is integrated.
    last_advance: f64,
    /// Number of currently transmitting neighbors.
    busy_neighbors: usize,
    /// Number of neighbors currently in the listen state, maintained
    /// incrementally at every listen-enter/exit (mirrors
    /// `busy_neighbors`) so rate evaluations are O(1) instead of
    /// O(degree).
    listening_neighbors: usize,
    /// When the current listen period began (valid while listening).
    listen_since: f64,
    /// Last instant this node's neighborhood had ≥ 2 transmitters.
    last_interference: f64,
    /// Sleep-clock drift factor applied to sleep dwells.
    drift: f64,
    /// Packets received in the current listen period (current burst).
    current_burst: u64,
    /// Time of the first packet of the current burst.
    burst_start: f64,
    /// Time of the last packet of the current burst.
    burst_last_packet: f64,
    /// End time of the previous completed burst (for latency).
    prev_burst_end: Option<f64>,
    /// Whether the node slept since the previous burst completed.
    slept_since_burst: bool,
    /// Start of the in-flight packet (valid while transmitting).
    packet_start: f64,
    /// Successful recipients of the just-finished packet (set between
    /// PacketEnd and PingIntervalEnd when a ping interval is in use).
    pending_recipients: usize,
    stats: NodeStats,
}

/// The simulator. Construct with [`Simulator::new`], run with
/// [`Simulator::run`].
pub struct Simulator {
    cfg: SimConfig,
    queue: EventQueue,
    nodes: Vec<NodeRt>,
    neighbors: Vec<Vec<usize>>,
    rng: StdRng,
    now: f64,
    warmed: bool,
    // Global counters over the measurement window.
    reception_units: u64,
    anyput_units: u64,
    packets_transmitted: u64,
    packets_delivered: u64,
    packets_collided: u64,
    ping_histogram: Vec<u64>,
    deliveries: Vec<Delivery>,
    /// Scratch for the ping-collision estimator (reused across
    /// packets; the hot path allocates nothing).
    ping_offsets: Vec<f64>,
    /// Upper bound on genuinely live queue entries: per node at most
    /// two dwell timers or one packet/ping event, plus one multiplier
    /// update each, plus the global harvest edge.
    live_event_bound: usize,
}

impl Simulator {
    /// Builds a simulator from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the human-readable validation error for inconsistent
    /// configurations (see [`SimConfig::validate`]).
    pub fn new(cfg: SimConfig) -> Result<Self, String> {
        cfg.validate()?;
        let n = cfg.topology.len();
        let neighbors: Vec<Vec<usize>> = (0..n).map(|i| cfg.topology.neighbors(i)).collect();
        let nodes = (0..n)
            .map(|i| {
                let params = cfg.nodes[i];
                let schedule = cfg.schedule.for_node(cfg.protocol.sigma, &params);
                NodeRt {
                    params,
                    state: NodeState::Sleep,
                    gen: 0,
                    multiplier: Multiplier::new(cfg.eta0, schedule),
                    energy: EnergyStore::ledger(0.0, params.budget_w),
                    energy_snapshot: 0.0,
                    last_advance: 0.0,
                    busy_neighbors: 0,
                    listening_neighbors: 0,
                    listen_since: 0.0,
                    last_interference: f64::NEG_INFINITY,
                    drift: cfg.clock_drift.as_ref().map_or(1.0, |d| d[i]),
                    current_burst: 0,
                    burst_start: 0.0,
                    burst_last_packet: 0.0,
                    prev_burst_end: None,
                    slept_since_burst: false,
                    packet_start: 0.0,
                    pending_recipients: 0,
                    stats: NodeStats::default(),
                }
            })
            .collect();
        let rng = seeded(cfg.seed);
        let mut sim = Simulator {
            cfg,
            queue: EventQueue::new(),
            nodes,
            neighbors,
            rng,
            now: 0.0,
            warmed: false,
            reception_units: 0,
            anyput_units: 0,
            packets_transmitted: 0,
            packets_delivered: 0,
            packets_collided: 0,
            ping_histogram: Vec::new(),
            deliveries: Vec::new(),
            ping_offsets: Vec::new(),
            live_event_bound: 3 * n + 2,
        };
        for i in 0..n {
            sim.reschedule(i);
            let tau = sim.nodes[i].multiplier.current_interval_length();
            sim.queue.schedule(tau, Event::EtaUpdate { node: i });
        }
        if let Some(h) = sim.cfg.harvest {
            // Start in the on-phase at the boosted rate; the first
            // off-edge comes after `duty·period`.
            for i in 0..n {
                let boosted = sim.cfg.nodes[i].budget_w / h.duty;
                sim.nodes[i].energy.set_harvest_rate(boosted);
            }
            sim.queue
                .schedule(h.duty * h.period, Event::HarvestSwitch { on: false });
        }
        Ok(sim)
    }

    /// Runs to `t_end` and returns the measurement report.
    pub fn run(mut self) -> SimReport {
        let t_end = self.cfg.t_end;
        let warmup = self.cfg.warmup;
        while let Some((t, event)) = self.queue.pop() {
            if t > t_end {
                break;
            }
            if !self.event_is_live(&event) {
                self.queue.note_stale_drop();
                continue;
            }
            if !self.warmed && t >= warmup {
                self.cross_warmup(warmup);
            }
            self.now = t;
            // Dispatch as "X" events named by variant, with a queue
            // depth counter track beside them — off, this is one
            // relaxed load per event.
            let t0 = econcast_trace::armed_now();
            let name = event_span_name(&event);
            self.handle(event);
            econcast_trace::complete_from("sim", name, t0, &[]);
            econcast_trace::trace_counter!("sim", "queue_depth", self.queue.len() as u64);
            // Long runs with frequent rate changes strand invalidated
            // timers in the heap; compact once they dominate.
            if self.queue.wants_compaction(self.live_event_bound) {
                let nodes = &self.nodes;
                self.queue.compact(|ev| match *ev {
                    Event::Transition { node, gen, .. }
                    | Event::PacketEnd { node, gen }
                    | Event::PingIntervalEnd { node, gen } => nodes[node].gen == gen,
                    Event::EtaUpdate { .. } | Event::HarvestSwitch { .. } => true,
                });
            }
        }
        if !self.warmed {
            self.cross_warmup(warmup);
        }
        self.now = t_end;
        for i in 0..self.nodes.len() {
            self.advance(i);
            self.nodes[i].stats.final_eta = self.nodes[i].multiplier.eta();
        }
        let elapsed = t_end - warmup;
        SimReport {
            elapsed,
            stale_events_dropped: self.queue.stale_drops(),
            heap_compactions: self.queue.compactions(),
            groupput: self.reception_units as f64 * PACKET_TIME / elapsed,
            anyput: self.anyput_units as f64 * PACKET_TIME / elapsed,
            packets_transmitted: self.packets_transmitted,
            packets_delivered: self.packets_delivered,
            packets_collided: self.packets_collided,
            ping_histogram: self.ping_histogram,
            nodes: self.nodes.into_iter().map(|n| n.stats).collect(),
            deliveries: self.deliveries,
        }
    }

    /// Integrates every node to the warm-up instant and zeroes the
    /// metric accumulators so the report covers only the steady window.
    fn cross_warmup(&mut self, warmup: f64) {
        self.now = warmup;
        for i in 0..self.nodes.len() {
            self.advance(i);
            self.nodes[i].stats = NodeStats::default();
            // Latency/burst bookkeeping restarts clean.
            self.nodes[i].current_burst = 0;
            self.nodes[i].prev_burst_end = None;
            self.nodes[i].slept_since_burst = false;
        }
        self.reception_units = 0;
        self.anyput_units = 0;
        self.packets_transmitted = 0;
        self.packets_delivered = 0;
        self.packets_collided = 0;
        self.ping_histogram.clear();
        self.deliveries.clear();
        self.warmed = true;
    }

    /// Integrates node `i`'s state-time and energy up to `self.now`.
    fn advance(&mut self, i: usize) {
        let node = &mut self.nodes[i];
        let dt = self.now - node.last_advance;
        debug_assert!(dt >= -1e-9, "time went backwards by {dt}");
        if dt <= 0.0 {
            node.last_advance = self.now;
            return;
        }
        let drain = node.energy.drain_rate();
        // The overhead (regulator quiescent current, MCU standby) draws
        // at all times, sleep included.
        let overhead = self.cfg.overhead_w;
        match node.state {
            NodeState::Sleep => node.stats.time_sleep += dt,
            NodeState::Listen => node.stats.time_listen += dt,
            NodeState::Transmit => node.stats.time_transmit += dt,
        }
        // The virtual battery (and thus the multiplier update) sees
        // only the protocol's modeled drain; the physical meter also
        // pays the awake overhead — reproducing the testbed's measured
        // consumption sitting a few percent above the budget
        // (Section VIII-B).
        node.stats.protocol_energy_consumed += drain * dt;
        node.stats.energy_consumed += (drain + overhead) * dt;
        node.energy.advance(dt);
        node.last_advance = self.now;
    }

    /// Sets node `i`'s state and protocol drain rate (call after
    /// [`Simulator::advance`]); the awake overhead is added by the
    /// physical meter in `advance`, not here.
    fn set_state(&mut self, i: usize, state: NodeState) {
        let node = &mut self.nodes[i];
        node.state = state;
        let drain = match state {
            NodeState::Sleep => 0.0,
            NodeState::Listen => node.params.listen_w,
            NodeState::Transmit => node.params.transmit_w,
        };
        node.energy.set_drain_rate(drain);
    }

    /// Current transition rates of node `i`.
    fn rates(&self, i: usize) -> TransitionRates {
        let node = &self.nodes[i];
        // The listen/transmit decision rates (18a)–(18d) do not depend
        // on the listener estimate in the capture variant; pass the
        // current listening-neighbor count for the non-capture boost
        // (18d).
        let listeners = self.listening_neighbors(i) as f64;
        TransitionRates::evaluate(
            &self.cfg.protocol,
            node.multiplier.eta(),
            node.params.listen_w,
            node.params.transmit_w,
            node.busy_neighbors == 0,
            listeners,
        )
    }

    /// Number of node `i`'s neighbors currently in the listen state
    /// (incrementally maintained; the O(degree) rescan survives as a
    /// debug cross-check).
    fn listening_neighbors(&self, i: usize) -> usize {
        debug_assert_eq!(
            self.nodes[i].listening_neighbors,
            self.neighbors[i]
                .iter()
                .filter(|&&j| self.nodes[j].state == NodeState::Listen)
                .count(),
            "listening_neighbors counter out of sync for node {i}"
        );
        self.nodes[i].listening_neighbors
    }

    /// Adjusts every neighbor's listening count when node `i` enters
    /// (`+1`) or leaves (`-1`) the listen state.
    fn shift_listening_neighbors(&mut self, i: usize, delta: isize) {
        for idx in 0..self.neighbors[i].len() {
            let j = self.neighbors[i][idx];
            let c = &mut self.nodes[j].listening_neighbors;
            *c = c
                .checked_add_signed(delta)
                .expect("listening_neighbors underflow");
        }
    }

    /// Invalidates node `i`'s pending timers and schedules fresh ones
    /// for its current (sleep or listen) state. Transmitting nodes are
    /// driven by packet-boundary events instead.
    fn reschedule(&mut self, i: usize) {
        self.nodes[i].gen += 1;
        let gen = self.nodes[i].gen;
        if self.nodes[i].busy_neighbors > 0 {
            return; // frozen: A(t) = 0 zeroes every awake/asleep exit rate
        }
        let rates = self.rates(i);
        match self.nodes[i].state {
            NodeState::Sleep => {
                let dwell = exponential(&mut self.rng, rates.sleep_to_listen) * self.nodes[i].drift;
                self.queue.schedule(
                    self.now + dwell,
                    Event::Transition {
                        node: i,
                        gen,
                        to: NodeState::Listen,
                    },
                );
            }
            NodeState::Listen => {
                let to_sleep = exponential(&mut self.rng, rates.listen_to_sleep);
                self.queue.schedule(
                    self.now + to_sleep,
                    Event::Transition {
                        node: i,
                        gen,
                        to: NodeState::Sleep,
                    },
                );
                let to_tx = exponential(&mut self.rng, rates.listen_to_transmit);
                self.queue.schedule(
                    self.now + to_tx,
                    Event::Transition {
                        node: i,
                        gen,
                        to: NodeState::Transmit,
                    },
                );
            }
            NodeState::Transmit => {}
        }
    }

    /// Whether a popped event is still valid (generation-stamped
    /// events are invalidated by bumping the owning node's counter).
    fn event_is_live(&self, event: &Event) -> bool {
        match *event {
            Event::Transition { node, gen, .. }
            | Event::PacketEnd { node, gen }
            | Event::PingIntervalEnd { node, gen } => self.nodes[node].gen == gen,
            Event::EtaUpdate { .. } | Event::HarvestSwitch { .. } => true,
        }
    }

    fn handle(&mut self, event: Event) {
        debug_assert!(self.event_is_live(&event), "stale event reached handle()");
        match event {
            Event::Transition { node, to, .. } => match (self.nodes[node].state, to) {
                (NodeState::Sleep, NodeState::Listen) => self.wake(node),
                (NodeState::Listen, NodeState::Sleep) => self.go_to_sleep(node),
                (NodeState::Listen, NodeState::Transmit) => self.begin_transmission(node),
                (from, to) => {
                    unreachable!("invalid live transition {from:?} → {to:?}")
                }
            },
            Event::PacketEnd { node, .. } => {
                self.packet_end(node);
            }
            Event::PingIntervalEnd { node, .. } => {
                self.ping_interval_end(node);
            }
            Event::EtaUpdate { node } => self.eta_update(node),
            Event::HarvestSwitch { on } => self.harvest_switch(on),
        }
    }

    /// Flips the global harvest phase (time-varying budgets with
    /// constant mean, Section III-A).
    fn harvest_switch(&mut self, on: bool) {
        let h = self
            .cfg
            .harvest
            .expect("switch only scheduled when configured");
        for i in 0..self.nodes.len() {
            self.advance(i);
            let rate = if on {
                self.cfg.nodes[i].budget_w / h.duty
            } else {
                0.0
            };
            self.nodes[i].energy.set_harvest_rate(rate);
        }
        let dwell = if on {
            h.duty * h.period
        } else {
            (1.0 - h.duty) * h.period
        };
        self.queue
            .schedule(self.now + dwell, Event::HarvestSwitch { on: !on });
    }

    fn wake(&mut self, i: usize) {
        debug_assert_eq!(self.nodes[i].busy_neighbors, 0, "woke under a busy channel");
        self.advance(i);
        self.set_state(i, NodeState::Listen);
        self.shift_listening_neighbors(i, 1);
        self.nodes[i].listen_since = self.now;
        self.reschedule(i);
    }

    fn go_to_sleep(&mut self, i: usize) {
        self.advance(i);
        self.finalize_burst(i);
        self.set_state(i, NodeState::Sleep);
        self.shift_listening_neighbors(i, -1);
        self.nodes[i].slept_since_burst = true;
        self.reschedule(i);
    }

    /// Closes node `i`'s current receive burst (if any): records its
    /// length and, when the gap from the previous burst contained a
    /// sleep period, a latency sample (Section VII-D's definitions).
    ///
    /// A burst is the run of packets a receiver gets from *one*
    /// channel capture — finalized when the transmitter releases the
    /// channel, when the receiver leaves the listen state, or when
    /// interference corrupts the reception — matching the quantity the
    /// analytic formula (34) computes (`e^{c_w/σ}` packets per capture).
    fn finalize_burst(&mut self, i: usize) {
        let node = &mut self.nodes[i];
        if node.current_burst == 0 {
            return;
        }
        node.stats.bursts += 1;
        node.stats.burst_packets += node.current_burst;
        if let Some(prev_end) = node.prev_burst_end {
            if node.slept_since_burst {
                node.stats.latency_samples.push(node.burst_start - prev_end);
            }
        }
        node.prev_burst_end = Some(node.burst_last_packet);
        node.slept_since_burst = false;
        node.current_burst = 0;
    }

    fn begin_transmission(&mut self, u: usize) {
        self.advance(u);
        // Leaving listen ends any receive burst in progress.
        self.finalize_burst(u);
        self.set_state(u, NodeState::Transmit);
        self.shift_listening_neighbors(u, -1);
        self.nodes[u].gen += 1;
        let gen = self.nodes[u].gen;
        self.nodes[u].packet_start = self.now;
        // Raise carrier on every neighbor.
        for idx in 0..self.neighbors[u].len() {
            let j = self.neighbors[u][idx];
            self.nodes[j].busy_neighbors += 1;
            match self.nodes[j].busy_neighbors {
                1 => {
                    // Channel just became busy: freeze j's timers.
                    self.nodes[j].gen += 1;
                }
                _ => {
                    // Overlap: whatever j was receiving is corrupted.
                    self.nodes[j].last_interference = self.now;
                }
            }
        }
        self.queue
            .schedule(self.now + PACKET_TIME, Event::PacketEnd { node: u, gen });
    }

    fn packet_end(&mut self, u: usize) {
        self.advance(u);
        let packet_start = self.nodes[u].packet_start;
        // Deliver to every neighbor that listened cleanly for the whole
        // packet.
        let mut successful = 0usize;
        let mut interfered_prospects = false;
        let mut receiver_mask = 0u64;
        for idx in 0..self.neighbors[u].len() {
            let j = self.neighbors[u][idx];
            let nj = &self.nodes[j];
            if nj.state != NodeState::Listen {
                continue;
            }
            if nj.busy_neighbors == 1
                && nj.listen_since <= packet_start
                && nj.last_interference <= packet_start
            {
                successful += 1;
                let nj = &mut self.nodes[j];
                nj.stats.packets_received += 1;
                if nj.current_burst == 0 {
                    nj.burst_start = packet_start;
                }
                nj.current_burst += 1;
                nj.burst_last_packet = self.now;
                if j < 64 {
                    receiver_mask |= 1 << j;
                }
            } else {
                interfered_prospects = true;
                // Interference broke j's reception: its burst is over.
                self.finalize_burst(j);
            }
        }
        self.nodes[u].stats.packets_sent += 1;
        self.packets_transmitted += 1;
        self.reception_units += successful as u64;
        if successful >= 1 {
            self.anyput_units += 1;
            self.packets_delivered += 1;
            if self.cfg.record_deliveries {
                self.deliveries.push(Delivery {
                    time: self.now,
                    source: u,
                    receivers: receiver_mask,
                });
            }
        } else if interfered_prospects {
            self.packets_collided += 1;
        }

        if self.cfg.ping_interval > 0.0 {
            // EconCast-C on real hardware: the transmitter listens for
            // recipients' pings before deciding whether to keep the
            // channel. It draws listen power during the interval; the
            // channel stays occupied so receivers remain stuck.
            self.nodes[u].pending_recipients = successful;
            let listen_w = self.nodes[u].params.listen_w;
            self.nodes[u].energy.set_drain_rate(listen_w);
            let gen = self.nodes[u].gen;
            self.queue.schedule(
                self.now + self.cfg.ping_interval,
                Event::PingIntervalEnd { node: u, gen },
            );
        } else {
            let estimate = self.estimate_listeners(successful);
            self.continue_or_release(u, estimate);
        }
    }

    fn ping_interval_end(&mut self, u: usize) {
        self.advance(u);
        let recipients = self.nodes[u].pending_recipients;
        let estimate = self.estimate_listeners(recipients);
        // Table IV bookkeeping: decoded ping count after this packet.
        let k = estimate.round().max(0.0) as usize;
        if self.ping_histogram.len() <= k {
            self.ping_histogram.resize(k + 1, 0);
        }
        self.ping_histogram[k] += 1;
        // Restore transmit drain in case the burst continues.
        let transmit_w = self.nodes[u].params.transmit_w;
        self.nodes[u].energy.set_drain_rate(transmit_w);
        self.continue_or_release(u, estimate);
    }

    /// Applies (18e)/(18f): keep the channel for another packet with
    /// probability `1 − λ_xl`, else transition x → l.
    fn continue_or_release(&mut self, u: usize, listener_estimate: f64) {
        let node = &self.nodes[u];
        let rates = TransitionRates::evaluate(
            &self.cfg.protocol,
            node.multiplier.eta(),
            node.params.listen_w,
            node.params.transmit_w,
            false, // the transmitter's own carrier state is irrelevant to λ_xl
            listener_estimate,
        );
        let keep = match self.cfg.protocol.variant {
            Variant::Capture => coin(&mut self.rng, rates.continue_transmission_probability()),
            Variant::NonCapture => false, // (18f): release after every packet
        };
        if keep {
            self.nodes[u].packet_start = self.now;
            let gen = self.nodes[u].gen;
            self.queue
                .schedule(self.now + PACKET_TIME, Event::PacketEnd { node: u, gen });
        } else {
            self.end_transmission(u);
        }
    }

    fn end_transmission(&mut self, u: usize) {
        self.set_state(u, NodeState::Listen);
        self.shift_listening_neighbors(u, 1);
        self.nodes[u].listen_since = self.now;
        for idx in 0..self.neighbors[u].len() {
            let j = self.neighbors[u][idx];
            debug_assert!(self.nodes[j].busy_neighbors >= 1);
            self.nodes[j].busy_neighbors -= 1;
            // The capture is over: close every receiver's burst.
            self.finalize_burst(j);
            if self.nodes[j].busy_neighbors == 0 {
                // Channel freed: thaw j's timers.
                self.reschedule(j);
            }
        }
        self.reschedule(u);
    }

    fn eta_update(&mut self, i: usize) {
        self.advance(i);
        let node = &mut self.nodes[i];
        let delta = node.energy.level() - node.energy_snapshot;
        node.multiplier.update(delta);
        node.energy_snapshot = node.energy.level();
        let tau = node.multiplier.current_interval_length();
        self.queue
            .schedule(self.now + tau, Event::EtaUpdate { node: i });
        // Rates changed: refresh pending timers unless frozen or
        // mid-transmission (the next packet boundary reads the new η).
        if self.nodes[i].state != NodeState::Transmit {
            self.reschedule(i);
        }
    }

    /// Derives `ĉ` from the true recipient count per the configured
    /// estimator (Section V-C / VIII-C).
    fn estimate_listeners(&mut self, true_count: usize) -> f64 {
        match self.cfg.estimator {
            EstimatorKind::Perfect => true_count as f64,
            EstimatorKind::Noisy { gain, bias, cap } => {
                (gain * true_count as f64 + bias).clamp(0.0, cap)
            }
            EstimatorKind::PingCollision { ping_len } => {
                let window = (self.cfg.ping_interval - ping_len).max(0.0);
                if true_count == 0 {
                    return 0.0;
                }
                if window == 0.0 {
                    // All pings collide unless there is exactly one.
                    return if true_count == 1 { 1.0 } else { 0.0 };
                }
                // A ping decodes iff no other ping lands within
                // `ping_len` of it. Sorting the offsets turns the
                // all-pairs check into a neighbor-gap check:
                // O(c log c) on a reused buffer instead of O(c²) on a
                // fresh allocation. The RNG draw order is unchanged,
                // so fixed-seed runs are bit-identical.
                self.ping_offsets.clear();
                for _ in 0..true_count {
                    self.ping_offsets.push(self.rng.gen::<f64>() * window);
                }
                self.ping_offsets
                    .sort_unstable_by(|a, b| a.partial_cmp(b).expect("offsets are finite"));
                let o = &self.ping_offsets;
                let decoded = (0..o.len())
                    .filter(|&i| {
                        let clear_left = i == 0 || o[i] - o[i - 1] >= ping_len;
                        let clear_right = i + 1 == o.len() || o[i + 1] - o[i] >= ping_len;
                        clear_left && clear_right
                    })
                    .count();
                decoded as f64
            }
        }
    }
}

/// The trace span name for one dispatched event — a static label per
/// variant so the sim's event track groups by kind in Perfetto.
fn event_span_name(event: &Event) -> &'static str {
    match event {
        Event::Transition { .. } => "transition",
        Event::PacketEnd { .. } => "packet_end",
        Event::PingIntervalEnd { .. } => "ping_interval_end",
        Event::EtaUpdate { .. } => "eta_update",
        Event::HarvestSwitch { .. } => "harvest_switch",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use econcast_core::{ProtocolConfig, ThroughputMode, Topology};

    fn uw_params() -> NodeParams {
        NodeParams::from_microwatts(10.0, 500.0, 500.0)
    }

    fn quick_cfg(n: usize, sigma: f64, t_end: f64, seed: u64) -> SimConfig {
        SimConfig::ideal_clique(
            n,
            uw_params(),
            ProtocolConfig::capture_groupput(sigma),
            t_end,
            seed,
        )
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Simulator::new(quick_cfg(4, 0.5, 20_000.0, 7))
            .unwrap()
            .run();
        let b = Simulator::new(quick_cfg(4, 0.5, 20_000.0, 7))
            .unwrap()
            .run();
        assert_eq!(a.groupput, b.groupput);
        assert_eq!(a.packets_transmitted, b.packets_transmitted);
        assert_eq!(a.nodes[0].packets_received, b.nodes[0].packets_received);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulator::new(quick_cfg(4, 0.5, 20_000.0, 1))
            .unwrap()
            .run();
        let b = Simulator::new(quick_cfg(4, 0.5, 20_000.0, 2))
            .unwrap()
            .run();
        assert_ne!(a.packets_transmitted, b.packets_transmitted);
    }

    #[test]
    fn cliques_never_collide() {
        let r = Simulator::new(quick_cfg(5, 0.5, 50_000.0, 3))
            .unwrap()
            .run();
        assert_eq!(r.packets_collided, 0);
        assert!(r.packets_transmitted > 0, "no traffic simulated");
    }

    #[test]
    fn time_accounting_sums_to_elapsed() {
        let cfg = quick_cfg(4, 0.5, 30_000.0, 5);
        let warmup = cfg.warmup;
        let t_end = cfg.t_end;
        let r = Simulator::new(cfg).unwrap().run();
        for (i, n) in r.nodes.iter().enumerate() {
            let total = n.time_sleep + n.time_listen + n.time_transmit;
            assert!(
                (total - (t_end - warmup)).abs() < 1e-6,
                "node {i}: accounted {total} vs window {}",
                t_end - warmup
            );
        }
    }

    /// The converged multiplier for the homogeneous test network, used
    /// to warm-start runs so short tests measure steady-state behaviour
    /// rather than the adaptation transient.
    fn eta_star(n: usize, sigma: f64) -> f64 {
        econcast_statespace::HomogeneousP4::new(n, uw_params(), sigma, ThroughputMode::Groupput)
            .solve()
            .eta
    }

    #[test]
    fn power_tracks_budget() {
        // The multiplier controller keeps long-run consumption near ρ.
        let mut cfg = quick_cfg(5, 0.5, 400_000.0, 11);
        cfg.eta0 = eta_star(5, 0.5);
        cfg.warmup = 50_000.0;
        let r = Simulator::new(cfg).unwrap().run();
        for (i, n) in r.nodes.iter().enumerate() {
            let p = n.average_power(r.elapsed);
            let rho = uw_params().budget_w;
            assert!(
                (p - rho).abs() / rho < 0.15,
                "node {i}: avg power {p} vs budget {rho}"
            );
        }
    }

    #[test]
    fn groupput_in_sane_range() {
        // σ=0.5, N=5, ρ=10µW, L=X=500µW: T* = 0.08; EconCast at σ=0.5
        // achieves a modest fraction of it. Sanity bounds only (the
        // integration tests compare against (P4) precisely).
        let mut cfg = quick_cfg(5, 0.5, 400_000.0, 13);
        cfg.eta0 = eta_star(5, 0.5);
        cfg.warmup = 50_000.0;
        let r = Simulator::new(cfg).unwrap().run();
        assert!(r.groupput > 0.0);
        assert!(
            r.groupput < 0.08,
            "groupput {} above the oracle",
            r.groupput
        );
        // Anyput ≤ groupput by definition when counted per packet, and
        // anyput ≤ 1.
        assert!(r.anyput <= r.groupput + 1e-12);
        assert!(r.anyput <= 1.0);
    }

    #[test]
    fn multiplier_adapts_from_cold_start() {
        // Starting at η = 0 the node initially over-consumes; the
        // update (17) must push η up toward the converged value.
        let cfg = quick_cfg(5, 0.5, 150_000.0, 59);
        let r = Simulator::new(cfg).unwrap().run();
        let target = eta_star(5, 0.5);
        for (i, n) in r.nodes.iter().enumerate() {
            assert!(
                n.final_eta > 0.5 * target,
                "node {i}: η stuck at {} (target ≈ {target})",
                n.final_eta
            );
        }
    }

    #[test]
    fn receptions_equal_deliveries() {
        let r = Simulator::new(quick_cfg(5, 0.5, 50_000.0, 17))
            .unwrap()
            .run();
        let received: u64 = r.nodes.iter().map(|n| n.packets_received).sum();
        // Every counted reception unit is a packet at some receiver.
        assert_eq!(received, (r.groupput * r.elapsed).round() as u64);
        let sent: u64 = r.nodes.iter().map(|n| n.packets_sent).sum();
        assert_eq!(sent, r.packets_transmitted);
        assert!(r.packets_delivered <= r.packets_transmitted);
    }

    #[test]
    fn non_capture_variant_runs() {
        let mut cfg = quick_cfg(5, 0.5, 50_000.0, 19);
        cfg.protocol = ProtocolConfig::new(0.5, Variant::NonCapture, ThroughputMode::Groupput);
        let r = Simulator::new(cfg).unwrap().run();
        assert!(r.packets_transmitted > 0);
        // Non-capture bursts are single packets: the mean received
        // burst can still exceed 1 only when a listener catches several
        // consecutive (separate) transmissions without leaving listen.
        assert!(r.groupput > 0.0);
    }

    #[test]
    fn anyput_mode_runs() {
        let mut cfg = quick_cfg(5, 0.5, 50_000.0, 23);
        cfg.protocol = ProtocolConfig::capture_anyput(0.5);
        let r = Simulator::new(cfg).unwrap().run();
        assert!(r.anyput > 0.0);
        assert!(r.anyput <= 1.0);
    }

    #[test]
    fn grid_topology_counts_collisions() {
        let mut cfg = quick_cfg(9, 0.5, 100_000.0, 29);
        cfg.topology = Topology::square_grid(3);
        cfg.nodes = vec![uw_params(); 9];
        let r = Simulator::new(cfg).unwrap().run();
        assert!(r.packets_transmitted > 0);
        // Collisions are possible but not guaranteed in a short run;
        // the structural check is that the counter never exceeds
        // transmissions.
        assert!(r.packets_collided <= r.packets_transmitted);
    }

    #[test]
    fn ping_interval_reduces_throughput() {
        // Warm-start the multipliers: from a cold start the adaptation
        // transient dominates the ~20% ping tax and the comparison is
        // seed noise.
        let mk = |ping: f64| {
            let mut cfg = quick_cfg(5, 0.5, 400_000.0, 31);
            cfg.eta0 = eta_star(5, 0.5);
            cfg.warmup = 100_000.0;
            cfg.ping_interval = ping;
            Simulator::new(cfg).unwrap().run()
        };
        let base = mk(0.0);
        let taxed = mk(0.2); // 20% tax after every packet
        assert!(
            taxed.groupput < base.groupput,
            "ping tax did not reduce throughput: {} vs {}",
            taxed.groupput,
            base.groupput
        );
    }

    #[test]
    fn clock_drift_accepted_and_runs() {
        let mut cfg = quick_cfg(3, 0.5, 20_000.0, 37);
        cfg.clock_drift = Some(vec![0.98, 1.0, 1.02]);
        let r = Simulator::new(cfg).unwrap().run();
        assert!(r.packets_transmitted > 0);
    }

    #[test]
    fn bursts_and_latencies_recorded() {
        let mut cfg = quick_cfg(5, 0.5, 400_000.0, 41);
        cfg.eta0 = eta_star(5, 0.5);
        cfg.warmup = 40_000.0;
        let r = Simulator::new(cfg).unwrap().run();
        let bursts: u64 = r.nodes.iter().map(|n| n.bursts).sum();
        assert!(bursts > 0, "no bursts recorded");
        assert!(r.mean_burst_length().unwrap() >= 1.0);
        let lat: usize = r.nodes.iter().map(|n| n.latency_samples.len()).sum();
        assert!(lat > 0, "no latency samples");
        assert!(r
            .nodes
            .iter()
            .flat_map(|n| &n.latency_samples)
            .all(|&s| s > 0.0));
    }

    #[test]
    fn stale_events_accounted_and_heap_bounded() {
        // Frequent multiplier updates invalidate pending dwell timers
        // constantly; the queue must count the corpses and keep its
        // heap within the compaction envelope.
        let mut cfg = quick_cfg(6, 0.5, 200_000.0, 61);
        cfg.schedule = crate::config::ScheduleSpec::Shared(econcast_core::StepSchedule::Constant {
            delta: 1e-3,
            tau: 5.0, // an eta update every 5 packet-times per node
        });
        let r = Simulator::new(cfg).unwrap().run();
        assert!(
            r.stale_events_dropped > 0,
            "rate churn must strand some timers"
        );
        assert!(r.packets_transmitted > 0);
    }

    #[test]
    fn sorted_ping_estimator_matches_all_pairs_reference() {
        let mut cfg = quick_cfg(5, 0.5, 1000.0, 53);
        cfg.ping_interval = 8.0 / 40.0;
        cfg.estimator = EstimatorKind::PingCollision {
            ping_len: 0.4 / 40.0,
        };
        let ping_len = 0.4 / 40.0;
        let mut sim = Simulator::new(cfg).unwrap();
        // Replay the estimator's RNG stream through the naive
        // all-pairs rule and compare decisions draw for draw.
        let window = (8.0 / 40.0f64 - ping_len).max(0.0);
        for c in 2usize..8 {
            for _ in 0..200 {
                let mut probe = sim.rng.clone();
                let offsets: Vec<f64> = (0..c).map(|_| probe.gen::<f64>() * window).collect();
                let expected = offsets
                    .iter()
                    .enumerate()
                    .filter(|(i, &oi)| {
                        offsets
                            .iter()
                            .enumerate()
                            .all(|(j, &oj)| *i == j || (oi - oj).abs() >= ping_len)
                    })
                    .count() as f64;
                let got = sim.estimate_listeners(c);
                assert_eq!(got, expected, "c={c} offsets {offsets:?}");
            }
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = quick_cfg(3, 0.5, 1000.0, 1);
        cfg.nodes.pop();
        assert!(Simulator::new(cfg).is_err());
    }

    #[test]
    fn single_node_network_idles() {
        // One node alone can transmit to nobody; groupput must be 0.
        let r = Simulator::new(quick_cfg(1, 0.5, 20_000.0, 43))
            .unwrap()
            .run();
        assert_eq!(r.groupput, 0.0);
        assert_eq!(r.anyput, 0.0);
    }

    #[test]
    fn ping_collision_estimator_bounds() {
        let mut cfg = quick_cfg(5, 0.5, 1000.0, 47);
        cfg.ping_interval = 8.0 / 40.0; // 8 ms interval / 40 ms packets
        cfg.estimator = EstimatorKind::PingCollision {
            ping_len: 0.4 / 40.0,
        };
        let mut sim = Simulator::new(cfg).unwrap();
        for c in 0..6 {
            for _ in 0..100 {
                let e = sim.estimate_listeners(c);
                assert!(e >= 0.0 && e <= c as f64, "estimate {e} for c={c}");
            }
        }
        // Zero listeners always estimate zero; one listener never
        // collides.
        assert_eq!(sim.estimate_listeners(0), 0.0);
        assert_eq!(sim.estimate_listeners(1), 1.0);
    }
}
