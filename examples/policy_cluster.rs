//! The multi-process cluster end-to-end: supervise two backend
//! `policy_backend` processes, front them with a `ClusterFront`,
//! round-trip the canonical 256-request mixed batch over real TCP,
//! pin the responses bit-for-bit against the single-process
//! `ShardRouter` path, then kill a backend mid-run and show failover
//! absorbing the loss with zero caller-visible errors.
//!
//! ```text
//! cargo build --release -p econcast-cluster --bin policy_backend
//! cargo run --release --example policy_cluster
//! ```

use econcast::cluster::{
    default_backend_binary, ClusterConfig, ClusterFront, ClusterRouter, FrontConfig, SlotSpec,
    Supervisor, SupervisorConfig,
};
use econcast::service::workload::mixed_batch;
use econcast::service::{PolicyClient, RouterConfig, ShardRouter};

fn main() {
    let Some(binary) = default_backend_binary() else {
        eprintln!(
            "policy_cluster: cannot find the `policy_backend` executable.\n\
             Build it first (same profile as this example), e.g.:\n\
             \n    cargo build --release -p econcast-cluster --bin policy_backend\n\
             \nor point ECONCAST_BACKEND_BIN at it."
        );
        std::process::exit(2);
    };

    // The canonical 256-request mixed acceptance batch, and the
    // single-process reference every deployment layer is pinned to.
    let batch = mixed_batch(256);
    let reference = ShardRouter::new(RouterConfig {
        shards: 2,
        ..RouterConfig::default()
    });
    let expected = reference.serve_batch(&batch);

    // Two backend processes under supervision, one front-end address.
    let mut sup = Supervisor::spawn(&binary, 2, SupervisorConfig::default())
        .expect("spawn backend processes");
    println!("supervisor: spawned 2 backends at {:?}", sup.addrs());
    let slots: Vec<SlotSpec> = sup.addrs().into_iter().map(SlotSpec::Remote).collect();
    let front = ClusterFront::bind(
        "127.0.0.1:0",
        ClusterRouter::new(&slots, ClusterConfig::default()),
        FrontConfig::default(),
    )
    .expect("bind front")
    .spawn();
    println!("cluster front listening on {}", front.addr());

    let mut client = PolicyClient::connect(front.addr(), 64).expect("connect");
    println!(
        "handshake: front advertises {} slots, batch cap {}",
        client.shards(),
        client.server_max_batch()
    );

    // Serve in 64-request chunks; kill backend 0 after the first —
    // mid-run — and keep going.
    let mut mismatches = 0;
    for (c, chunk) in batch.chunks(64).enumerate() {
        let replies = client.serve_batch(chunk).expect("serve over TCP");
        for (k, (wire, exp)) in replies.iter().zip(&expected[c * 64..]).enumerate() {
            let wire = wire
                .as_ref()
                .unwrap_or_else(|e| panic!("request {}: caller-visible error {e:?}", c * 64 + k));
            let exp = exp.as_ref().expect("reference served");
            let same = wire.throughput.to_bits() == exp.throughput.to_bits()
                && wire.policies.len() == exp.policies.len()
                && wire.policies.iter().zip(&exp.policies).all(|(w, n)| {
                    w.listen.to_bits() == n.listen.to_bits()
                        && w.transmit.to_bits() == n.transmit.to_bits()
                })
                && wire.cert_t_sigma.to_bits() == exp.certificate.t_sigma.to_bits()
                && wire.cert_oracle.to_bits() == exp.certificate.oracle.to_bits()
                && wire.cert_dual_upper.to_bits() == exp.certificate.dual_upper.to_bits();
            mismatches += usize::from(!same);
        }
        if c == 0 {
            sup.kill(0).expect("kill backend 0");
            println!("killed backend 0 mid-run (chunk 1 of 4 served)");
        }
    }
    assert_eq!(
        mismatches, 0,
        "cluster responses diverged from single-process"
    );
    println!("256/256 responses bit-identical to the single-process ShardRouter path");

    // Where did the work go? The distribution layer knows.
    let stats = front.router().lock().unwrap().cluster_stats();
    println!(
        "distribution: {} remote · {} failed over locally · {} backend failures · health {:?}",
        stats.remote_served, stats.local_fallbacks, stats.backend_failures, stats.healthy
    );
    assert!(
        stats.local_fallbacks > 0,
        "the kill must have forced failover"
    );

    // The operator loop: respawn the dead backend, re-target its
    // slot, and traffic flows remotely again.
    let fresh = sup.respawn(0).expect("respawn backend 0");
    front.router().lock().unwrap().retarget_slot(0, fresh);
    let before = front.router().lock().unwrap().cluster_stats().remote_served;
    client
        .serve_batch(&batch[..64])
        .expect("post-respawn batch");
    let stats = front.router().lock().unwrap().cluster_stats();
    println!(
        "respawned backend 0 at {fresh}: +{} requests served remotely, health {:?}",
        stats.remote_served - before,
        stats.healthy
    );

    // Cluster-wide serving counters fan in over the ordinary
    // StatsRequest path.
    let aggregate = client.stats(None).expect("aggregate stats");
    println!(
        "fan-in: {} requests seen cluster-wide, {} served solver-free",
        aggregate.requests,
        aggregate.solver_free()
    );

    drop(client);
    front.shutdown();
}
