//! Request-mix-driven grid prewarming.
//!
//! The interpolation-grid tier builds lazily: the first homogeneous
//! request of a family pays ~2·`points` exact solves before being
//! served. Under live traffic that latency spike lands on an unlucky
//! caller. The prewarmer moves it off the request path: each shard
//! records the observed mix of homogeneous `(N, ρ)` families (a
//! [`MixRecorder`]), and a background pass builds grids for the
//! hottest not-yet-resident families between batches.
//!
//! Prewarming is a pure latency optimization — a prewarmed grid is
//! bit-identical to the lazily built one (the build is deterministic),
//! so responses never depend on whether, or when, the prewarmer ran.

use crate::grid::FamilyKey;
use econcast_proto::service::{WireMixFamily, MAX_WIRE_FAMILIES, MAX_WIRE_NODES};
use std::collections::HashMap;
use std::time::Duration;

/// Tuning knobs for the prewarmer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrewarmConfig {
    /// Observations of a family before it qualifies for prewarming —
    /// a one-off request never justifies a grid build.
    pub min_hits: u64,
    /// Upper bound on grid builds per prewarm cycle, keeping each
    /// background pass short so it never starves request serving.
    pub max_per_cycle: usize,
    /// Period of the server's background prewarm thread.
    pub interval: Duration,
}

impl Default for PrewarmConfig {
    fn default() -> Self {
        PrewarmConfig {
            min_hits: 3,
            max_per_cycle: 2,
            interval: Duration::from_millis(100),
        }
    }
}

/// Per-shard record of the observed homogeneous request mix.
#[derive(Debug, Default)]
pub struct MixRecorder {
    counts: HashMap<FamilyKey, u64>,
    observations: u64,
}

impl MixRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observed homogeneous request of `family`.
    pub fn record(&mut self, family: FamilyKey) {
        *self.counts.entry(family).or_insert(0) += 1;
        self.observations += 1;
    }

    /// Total homogeneous requests recorded.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Distinct families observed.
    pub fn families(&self) -> usize {
        self.counts.len()
    }

    /// Records `hits` observations of `family` at once — how a warm
    /// handoff folds a departing shard's heat into this recorder.
    pub fn record_many(&mut self, family: FamilyKey, hits: u64) {
        *self.counts.entry(family).or_insert(0) += hits;
        self.observations += hits;
    }

    /// Snapshot of the recorded mix for shipping to another shard:
    /// every family with its hit count, hottest first with
    /// deterministic tie-breaks (the [`candidates`](Self::candidates)
    /// order with no heat floor).
    pub fn export(&self) -> Vec<(FamilyKey, u64)> {
        self.candidates(1)
    }

    /// Folds an exported mix into this recorder (counter-wise sum).
    pub fn absorb(&mut self, mix: &[(FamilyKey, u64)]) {
        for &(family, hits) in mix {
            self.record_many(family, hits);
        }
    }

    /// Families with at least `min_hits` observations, hottest first.
    /// Ties break on the family fields so the order never depends on
    /// hash-map iteration order.
    pub fn candidates(&self, min_hits: u64) -> Vec<(FamilyKey, u64)> {
        let mut out: Vec<(FamilyKey, u64)> = self
            .counts
            .iter()
            .filter(|(_, &c)| c >= min_hits)
            .map(|(&f, &c)| (f, c))
            .collect();
        out.sort_by(|(fa, ca), (fb, cb)| {
            cb.cmp(ca)
                .then_with(|| fa.n.cmp(&fb.n))
                .then_with(|| fa.sigma.cmp(&fb.sigma))
                .then_with(|| fa.listen.cmp(&fb.listen))
                .then_with(|| fa.transmit.cmp(&fb.transmit))
                .then_with(|| fa.mode.cmp(&fb.mode))
        });
        out
    }
}

/// The wire form of an exported mix, for a `MixSeed` handoff message:
/// truncated to the hottest [`MAX_WIRE_FAMILIES`] families (the export
/// order is hottest-first, so truncation drops the coldest tail).
pub fn mix_to_wire(mix: &[(FamilyKey, u64)]) -> Vec<WireMixFamily> {
    mix.iter()
        .filter(|(f, _)| f.n <= MAX_WIRE_NODES)
        .take(MAX_WIRE_FAMILIES)
        .map(|&(f, hits)| WireMixFamily {
            n: f.n as u16,
            listen_w: f64::from_bits(f.listen),
            transmit_w: f64::from_bits(f.transmit),
            sigma: f64::from_bits(f.sigma),
            mode: f.mode,
            hits,
        })
        .collect()
}

/// Rebuilds an exported mix from its wire form. Family identity is
/// exact: the floats ride as bit patterns.
pub fn mix_from_wire(families: &[WireMixFamily]) -> Vec<(FamilyKey, u64)> {
    families
        .iter()
        .map(|f| {
            (
                FamilyKey {
                    n: f.n as usize,
                    listen: f.listen_w.to_bits(),
                    transmit: f.transmit_w.to_bits(),
                    sigma: f.sigma.to_bits(),
                    mode: f.mode,
                },
                f.hits,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use econcast_core::ThroughputMode::{Anyput, Groupput};

    fn family(n: usize) -> FamilyKey {
        FamilyKey::new(n, 500e-6, 450e-6, 0.5, Groupput)
    }

    #[test]
    fn candidates_rank_by_heat_with_deterministic_ties() {
        let mut rec = MixRecorder::new();
        for _ in 0..5 {
            rec.record(family(12));
        }
        for _ in 0..2 {
            rec.record(family(50));
        }
        // Tied families order by their fields, not hash order.
        for _ in 0..5 {
            rec.record(family(8));
        }
        rec.record(FamilyKey::new(12, 500e-6, 450e-6, 0.5, Anyput));
        assert_eq!(rec.observations(), 13);
        assert_eq!(rec.families(), 4);

        let hot = rec.candidates(2);
        assert_eq!(hot.len(), 3, "the single-hit anyput family is cold");
        assert_eq!((hot[0].0.n, hot[0].1), (8, 5));
        assert_eq!((hot[1].0.n, hot[1].1), (12, 5));
        assert_eq!((hot[2].0.n, hot[2].1), (50, 2));
    }

    #[test]
    fn export_absorb_roundtrip_preserves_heat() {
        let mut src = MixRecorder::new();
        for _ in 0..5 {
            src.record(family(12));
        }
        src.record(family(50));

        let mix = src.export();
        assert_eq!(mix.len(), 2);
        assert_eq!((mix[0].0.n, mix[0].1), (12, 5), "hottest first");

        // Absorbing into a recorder with prior heat sums counts.
        let mut dst = MixRecorder::new();
        dst.record(family(50));
        dst.absorb(&mix);
        assert_eq!(dst.observations(), 7);
        assert_eq!(dst.families(), 2);
        let hot = dst.candidates(2);
        assert_eq!((hot[0].0.n, hot[0].1), (12, 5));
        assert_eq!((hot[1].0.n, hot[1].1), (50, 2));
    }

    #[test]
    fn wire_mix_roundtrip_is_exact() {
        let mut rec = MixRecorder::new();
        for _ in 0..4 {
            rec.record(family(12));
        }
        rec.record(FamilyKey::new(96, 500e-6, 450e-6, 0.25, Anyput));
        let mix = rec.export();
        let wire = mix_to_wire(&mix);
        assert_eq!(mix_from_wire(&wire), mix);
        assert_eq!(wire[0].n, 12);
        assert_eq!(wire[0].hits, 4);
        assert_eq!(wire[1].mode, 1);
    }
}
