//! The readiness-driven connection driver: one thread multiplexing
//! every in-flight backend sub-batch.
//!
//! The pre-pipeline router spawned one OS thread per backend with
//! work and joined them all — a full scatter/gather barrier whose
//! thread spawns cost more than the I/O on small sub-batches (and on
//! a single-CPU host the "parallel" gather was a context-switch
//! carousel). The driver replaces the barrier: sub-batches are
//! submitted back-to-back ([`RemoteShard::begin_batch`]), then one
//! loop polls every backend's socket at once ([`ready::wait`]) and
//! absorbs whichever replies arrive first
//! ([`RemoteShard::try_finish`]) — gathering from a fast backend
//! starts while a slow one is still solving, with zero extra threads.

use crate::remote::{RemoteShard, RemoteTicket};
use econcast_service::ready;
use econcast_service::WireResult;
use std::time::Duration;

/// One submitted sub-batch being driven to completion.
#[derive(Debug)]
pub struct Job<'a> {
    /// The router slot the results belong to.
    pub slot: usize,
    /// The dialer owning the in-flight connection.
    pub shard: &'a mut RemoteShard,
    /// The submitted batch's ticket.
    pub ticket: RemoteTicket,
}

/// Upper bound on one poll parking interval: keeps the loop
/// responsive to deadline expiry even when no backend is delivering
/// (a wedged backend's descriptor never turns readable).
const PARK_CAP: Duration = Duration::from_millis(100);

/// Drives every job to completion (success, stream failure, or
/// deadline) and returns `(slot, outcome)` pairs in completion order.
/// Failures are per-job: one backend's error never voids another's
/// sub-batch.
pub fn drive(mut jobs: Vec<Job<'_>>) -> Vec<(usize, std::io::Result<Vec<WireResult>>)> {
    let mut done = Vec::with_capacity(jobs.len());
    while !jobs.is_empty() {
        let mut k = 0;
        while k < jobs.len() {
            let job = &mut jobs[k];
            match job.shard.try_finish(&job.ticket) {
                Ok(None) => k += 1,
                Ok(Some(out)) => {
                    let job = jobs.swap_remove(k);
                    done.push((job.slot, Ok(out)));
                }
                Err(e) => {
                    let job = jobs.swap_remove(k);
                    done.push((job.slot, Err(e)));
                }
            }
        }
        if jobs.is_empty() {
            break;
        }
        // Park until any remaining backend has bytes for us (or the
        // cap elapses — deadlines are enforced inside try_finish). A
        // connection that lost its descriptor mid-flight polls as an
        // invalid fd, which poll(2) reports immediately, so the next
        // try_finish round surfaces its NotConnected error instead of
        // the loop wedging.
        let fds: Vec<(ready::RawFdAlias, i16)> = jobs
            .iter()
            .map(|j| (j.shard.poll_fd().unwrap_or(-1), ready::READABLE))
            .collect();
        let _ = ready::wait(&fds, Some(PARK_CAP));
    }
    done
}
