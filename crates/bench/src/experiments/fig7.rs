//! Fig. 7: the emulated testbed — experimental throughput normalized
//! to the achievable throughput, plus the virtual-battery band.
//!
//! Grid: `N ∈ {5, 10}` × `ρ ∈ {1 mW, 5 mW}` × `σ ∈ {0.25, 0.5}` on
//! the CC2500 model (L = 67.08 mW, X = 56.29 mW, 40 ms packets, 8 ms
//! ping intervals with 0.4 ms colliding pings, drifting sleep clocks,
//! regulator overhead). Paper findings: "Ideal" ratio 57–77%,
//! "Relaxed" 67–81%, battery within 7% (σ = 0.25) / 3% (σ = 0.5) of
//! the budget.

use crate::Scale;
use econcast_hw::TestbedConfig;

/// Runs the experiment.
pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("Fig. 7 — emulated eZ430-RF2500-SEH testbed (EconCast-C, groupput)\n");
    out.push_str("paper: Ideal 57–77%, Relaxed 67–81%, battery within 3–7% of budget\n\n");
    out.push_str("  N  rho(mW)  sigma   Ideal  Relaxed  battery(min/mean/max)  P/rho\n");
    for rho_mw in [1.0, 5.0] {
        for n in [5usize, 10] {
            for sigma in [0.25, 0.5] {
                let mut cfg = TestbedConfig::paper_setup(n, rho_mw, sigma);
                cfg.duration_s = scale.duration(6.0 * 3600.0);
                let run = cfg.run();
                out.push_str(&format!(
                    "{n:>3}  {rho_mw:>7.1}  {sigma:<5}  {:>5.1}%  {:>6.1}%   {:.3}/{:.3}/{:.3}       {:.3}\n",
                    100.0 * run.ratio_ideal(),
                    100.0 * run.ratio_relaxed(),
                    run.battery_ratio_min,
                    run.battery_ratio_mean,
                    run.battery_ratio_max,
                    run.measured_power_w / (rho_mw * 1e-3),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_grid_point_in_band() {
        let mut cfg = TestbedConfig::paper_setup(5, 5.0, 0.25);
        cfg.duration_s = 1800.0;
        let run = cfg.run();
        assert!(
            (0.3..1.1).contains(&run.ratio_ideal()),
            "ideal ratio {} implausible",
            run.ratio_ideal()
        );
    }
}
