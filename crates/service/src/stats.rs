//! Per-tier serving counters.

/// A snapshot of the service's counters since construction. Obtained
/// from `PolicyService::stats`; plain data, cheap to copy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests received (including failed ones).
    pub requests: u64,
    /// Batches served.
    pub batches: u64,
    /// Requests answered from the exact-match LRU tier.
    pub exact_hits: u64,
    /// Requests answered by grid interpolation.
    pub grid_hits: u64,
    /// Requests answered by the homogeneous closed-form tier.
    pub closed_form_hits: u64,
    /// Requests that ran the exact (P4) dual-descent solver.
    pub solver_solves: u64,
    /// Requests answered by referencing an identical instance solved
    /// earlier in the *same* batch (no extra solve).
    pub batch_dedup_hits: u64,
    /// Requests rejected (validation or size).
    pub errors: u64,
    /// Grid families built lazily so far.
    pub grid_builds: u64,
    /// Entries inserted into the LRU.
    pub lru_inserts: u64,
    /// Entries evicted from the LRU.
    pub lru_evictions: u64,
    /// Entries currently resident in the LRU.
    pub lru_len: u64,
}

impl ServiceStats {
    /// Requests served without touching any solver (exact + grid +
    /// in-batch dedup).
    pub fn solver_free(&self) -> u64 {
        self.exact_hits + self.grid_hits + self.batch_dedup_hits
    }

    /// Total requests answered successfully.
    pub fn served(&self) -> u64 {
        self.exact_hits
            + self.grid_hits
            + self.closed_form_hits
            + self.solver_solves
            + self.batch_dedup_hits
    }
}
