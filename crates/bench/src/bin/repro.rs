//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro all [--quick]          run every experiment in paper order
//! repro <id> [--quick]         run one experiment (table2, fig2, …)
//! repro list                   list experiment ids
//! ```
//!
//! Output goes to stdout; pipe it into `EXPERIMENTS.md` blocks or a
//! plotting script as needed. `--quick` trades fidelity for speed
//! (~10× fewer samples / shorter simulations).

use econcast_bench::experiments::registry;
use econcast_bench::Scale;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let target = args.iter().find(|a| !a.starts_with("--")).cloned();

    let reg = registry();
    match target.as_deref() {
        None | Some("help") => {
            eprintln!("usage: repro <all|list|EXPERIMENT> [--quick]");
            eprintln!("experiments:");
            for (id, desc, _) in &reg {
                eprintln!("  {id:<8} {desc}");
            }
            std::process::exit(2);
        }
        Some("list") => {
            for (id, desc, _) in &reg {
                println!("{id:<8} {desc}");
            }
        }
        Some("all") => {
            for (id, desc, runner) in &reg {
                banner(id, desc);
                let t0 = Instant::now();
                print!("{}", runner(scale));
                eprintln!("[{id} done in {:.1}s]", t0.elapsed().as_secs_f64());
            }
        }
        Some(id) => match reg.iter().find(|(rid, _, _)| *rid == id) {
            Some((id, desc, runner)) => {
                banner(id, desc);
                let t0 = Instant::now();
                print!("{}", runner(scale));
                eprintln!("[{id} done in {:.1}s]", t0.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment `{id}`; try `repro list`");
                std::process::exit(2);
            }
        },
    }
}

fn banner(id: &str, desc: &str) {
    println!("\n{}", "=".repeat(72));
    println!("== {id}: {desc}");
    println!("{}", "=".repeat(72));
}
