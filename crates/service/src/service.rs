//! The in-process policy server: tiered lookup + deterministic
//! batched solving.
//!
//! ## Serving pipeline
//!
//! A batch is served in three phases:
//!
//! 1. **Probe (serial, request order)** — validate, canonicalize
//!    (sorted budgets + permutation + tolerance tier), then walk the
//!    tier ladder: exact-match LRU → interpolation grid (homogeneous,
//!    in-range, error-certified) → queue a solve. Queued solves are
//!    deduplicated within the batch: two requests that canonicalize to
//!    the same key share one solve.
//! 2. **Solve (parallel)** — pending solves fan out over
//!    `econcast-parallel` workers, each worker owning one reusable
//!    [`SolverPool`] (a `P4Solver` workspace per node count).
//!    Homogeneous instances use the scalar-dual closed form; the
//!    sorted heterogeneous instances run the exact dual descent with
//!    `tol` set to the request's tolerance tier.
//! 3. **Publish (serial, request order)** — solved policies are
//!    inserted into the LRU (canonical order, so any permutation of
//!    the instance hits them later) and every response is rotated back
//!    into its caller's node order.
//!
//! ## Determinism
//!
//! Responses are **bit-identical at any worker count**: each solve is
//! an independent, self-contained computation (workspace reuse leaks
//! no state — pinned by statespace's tests), the probe/publish phases
//! run serially in request order, and worker count only changes *who*
//! computes a job, never *what* it computes.

use crate::cache::{CachedPolicy, LruCache};
use crate::grid::{FamilyKey, GridConfig, PolicyGrid};
use crate::request::{NodePolicy, PolicyRequest, PolicyResponse, ServiceError};
use crate::stats::ServiceStats;
use econcast_core::NodeParams;
use econcast_oracle::{certificate_for, certificate_for_homogeneous};
use econcast_proto::service::{PolicyKernel, ServedTier};
use econcast_statespace::{
    CanonicalInstance, HomogeneousP4, KernelSelect, P4Options, SolverPool, SummaryKernel,
};
use std::collections::HashMap;

/// Tuning knobs for a [`PolicyService`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Exact-tier capacity (entries).
    pub lru_capacity: usize,
    /// Worker count for the solve phase; `None` follows
    /// `econcast_parallel::effective_threads`. Results are
    /// bit-identical either way.
    pub workers: Option<usize>,
    /// Largest heterogeneous *groupput* instance the exact solver
    /// accepts. Since the factorized kernel replaced enumeration on
    /// this path the ceiling is a latency budget, not a memory wall:
    /// a groupput solve is O(N) per dual iteration, so the default
    /// comfortably serves N ∈ {24, 32, 64, 256} where the old `2^N`
    /// tables stopped at 16.
    pub max_exact_nodes: usize,
    /// Largest heterogeneous *anyput* instance the exact solver
    /// accepts (the effective anyput ceiling is the `min` with
    /// [`max_exact_nodes`](Self::max_exact_nodes)). Anyput's
    /// factorized evaluation is now O(N) per dual iteration like
    /// groupput, but its marginal pass runs more exponentials per
    /// node, so the ceiling stays separately tunable; the default
    /// stays at the largest size the end-to-end tests pin.
    pub max_anyput_nodes: usize,
    /// Grid tier configuration; `None` disables the tier.
    pub grid: Option<GridConfig>,
    /// Cross-tier cache byte budget (`None` = unbounded): an
    /// approximate ceiling on resident cache bytes shared by the
    /// exact LRU **and** the interpolation grids. Grid builds charge
    /// the pool first (grids are few, hot, and expensive to rebuild);
    /// the LRU gets the remainder and evicts — size-aware, LRU-first —
    /// to fit, counting those evictions in
    /// `ServiceStats::byte_evictions`. A *lazy* (request-path) build
    /// only runs when its grid fits alongside the resident ones —
    /// never displacing a grid, so alternating hot families cannot
    /// build–evict thrash; families that don't fit serve through the
    /// closed form. The *prewarmer* may rotate the resident set:
    /// when its installs overflow the pool, oldest-built grids are
    /// evicted (`PolicyService::grid_evictions`), and a grid that
    /// could never fit alone is not built at all. The entry-count
    /// [`lru_capacity`](Self::lru_capacity) still applies; whichever
    /// bound bites first wins.
    ///
    /// One caveat: cache *contents* under a byte budget depend on
    /// request history, and an absent grid serves through the closed
    /// form — numerically within tolerance but not bit-identical to a
    /// grid serve. Deployments relying on the cross-topology
    /// bit-identical guarantee should size the budget above the
    /// working grid set (or disable the grid tier); the pinned
    /// acceptance configurations leave this `None`.
    pub max_cache_bytes: Option<usize>,
    /// Whether the first homogeneous in-range request of a family
    /// builds its grid inline (`true`, the default) or only
    /// already-resident grids serve (`false`) — the sharded server's
    /// mode, where the background prewarmer builds grids off the
    /// request path and cold requests fall through to the exact
    /// closed form instead of paying a ~2·points-solve build.
    pub lazy_grid_builds: bool,
    /// Tracing knob: arms span collection and/or latency histograms
    /// process-wide when this service is constructed (see
    /// [`econcast_trace::TraceConfig`]). Default off — every trace
    /// macro then costs one relaxed atomic load and a branch.
    pub trace: econcast_trace::TraceConfig,
    /// Admission-queue capacity (requests) in front of `serve_batch`
    /// on the socket server. Past it, wire-v6 callers get an explicit
    /// `Overloaded { retry_after_us }`; pre-v6 callers (which cannot
    /// decode that frame) are served through the full degrade ladder
    /// instead — never a silent drop or reset either way. The
    /// in-process `serve_batch` path is unaffected (closed-loop, the
    /// caller *is* the queue).
    pub queue_capacity: usize,
    /// Longest a request may wait in the admission queue before the
    /// shed ladder treats the queue as saturated; also the implied
    /// deadline for requests that carry none. Feeds the
    /// `retry_after_us` drain estimate on rejects.
    pub max_queue_delay: std::time::Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            lru_capacity: 1024,
            workers: None,
            max_exact_nodes: 256,
            max_anyput_nodes: 64,
            grid: Some(GridConfig::default()),
            lazy_grid_builds: true,
            max_cache_bytes: None,
            trace: econcast_trace::TraceConfig::default(),
            queue_capacity: 256,
            max_queue_delay: std::time::Duration::from_millis(50),
        }
    }
}

/// What the probe phase decided for one request.
///
/// Queued plans carry the *request's own* canonicalization: two
/// requests sharing one solve still differ in their permutations, and
/// each response must be rotated back into its own caller's node
/// order.
enum Plan {
    /// Answered without solving (tier hit) or rejected.
    Done(Result<PolicyResponse, ServiceError>),
    /// Waits for `jobs[i]`, which this request enqueued.
    Job(usize, CanonicalInstance),
    /// Waits for `jobs[i]`, enqueued by an earlier request with the
    /// same canonical key.
    Alias(usize, CanonicalInstance),
}

/// How a queued solve runs.
#[derive(Clone, Copy)]
enum JobKind {
    /// Exact dual descent on the sorted instance.
    Exact(P4Options),
    /// Homogeneous scalar-dual bisection.
    ClosedForm,
}

/// One queued solve.
struct SolveJob {
    /// Node parameters in canonical order.
    nodes: Vec<NodeParams>,
    sigma: f64,
    mode: econcast_core::ThroughputMode,
    kind: JobKind,
}

impl SolveJob {
    fn run(&self, pool: &mut SolverPool) -> CachedPolicy {
        match self.kind {
            JobKind::Exact(opts) => {
                let sol = pool.solve(&self.nodes, self.sigma, self.mode, opts);
                let certificate = certificate_for(&self.nodes, self.sigma, self.mode, &sol);
                CachedPolicy {
                    alpha: sol.alpha,
                    beta: sol.beta,
                    throughput: sol.throughput,
                    converged: sol.converged,
                    kernel: match sol.kernel {
                        SummaryKernel::GrayCode => PolicyKernel::GrayCode,
                        SummaryKernel::Factorized => PolicyKernel::Factorized,
                        SummaryKernel::Homogeneous => PolicyKernel::ClosedForm,
                    },
                    certificate,
                }
            }
            JobKind::ClosedForm => {
                let n = self.nodes.len();
                let params = self.nodes[0];
                let sol = HomogeneousP4::new(n, params, self.sigma, self.mode).solve();
                let certificate =
                    certificate_for_homogeneous(n, &params, self.sigma, self.mode, &sol);
                CachedPolicy {
                    alpha: vec![sol.alpha; n],
                    beta: vec![sol.beta; n],
                    throughput: sol.throughput,
                    converged: true,
                    kernel: PolicyKernel::ClosedForm,
                    certificate,
                }
            }
        }
    }

    fn tier(&self) -> ServedTier {
        match self.kind {
            JobKind::Exact(_) => ServedTier::Solver,
            JobKind::ClosedForm => ServedTier::ClosedForm,
        }
    }
}

/// The in-process policy server.
#[derive(Debug)]
pub struct PolicyService {
    cfg: ServiceConfig,
    lru: LruCache,
    grids: HashMap<FamilyKey, PolicyGrid>,
    /// Build order of the resident grids — the FIFO eviction queue
    /// when the grids alone overflow the shared byte budget.
    grid_order: std::collections::VecDeque<FamilyKey>,
    /// Bytes the resident grids have claimed from the shared cache
    /// budget (0 when unbudgeted or no grids are resident).
    grid_bytes: usize,
    /// One solver workspace pool per worker slot, reused across
    /// batches.
    scratch: Vec<SolverPool>,
    stats: Counters,
}

#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    requests: u64,
    batches: u64,
    exact_hits: u64,
    exact_hits_closed_form: u64,
    exact_hits_factorized: u64,
    grid_hits: u64,
    closed_form_hits: u64,
    solver_solves: u64,
    batch_dedup_hits: u64,
    errors: u64,
    grid_builds: u64,
    grid_prewarms: u64,
    grid_evictions: u64,
    lru_inserts: u64,
}

impl Default for PolicyService {
    fn default() -> Self {
        Self::new(ServiceConfig::default())
    }
}

impl PolicyService {
    /// Creates a service with the given configuration.
    pub fn new(cfg: ServiceConfig) -> Self {
        cfg.trace.apply();
        PolicyService {
            lru: LruCache::with_byte_budget(cfg.lru_capacity, cfg.max_cache_bytes),
            grids: HashMap::new(),
            grid_order: std::collections::VecDeque::new(),
            grid_bytes: 0,
            scratch: Vec::new(),
            stats: Counters::default(),
            cfg,
        }
    }

    /// Whether a grid built with `grid_cfg` could ever reside inside
    /// the byte budget *on its own* — the prewarm gate. The prewarmer
    /// runs off the request path and installs the currently-hottest
    /// families, so displacing an older resident grid there is
    /// intentional rotation, not waste.
    fn grid_could_fit_alone(&self, grid_cfg: &GridConfig) -> bool {
        self.cfg
            .max_cache_bytes
            .is_none_or(|budget| PolicyGrid::estimate_bytes(grid_cfg) <= budget)
    }

    /// Whether a grid built with `grid_cfg` fits **alongside** the
    /// grids already resident — the stricter *request-path* gate.
    /// Lazy builds never displace a resident grid: with a budget that
    /// fits one grid but not two, traffic alternating between two hot
    /// families would otherwise pay a full ~2·points-solve build per
    /// request, each install evicting the other family (build–evict
    /// thrash). A family that does not fit simply serves through the
    /// closed form; rotating the resident set is the prewarmer's job.
    fn grid_fits_alongside(&self, grid_cfg: &GridConfig) -> bool {
        self.cfg
            .max_cache_bytes
            .is_none_or(|budget| self.grid_bytes + PolicyGrid::estimate_bytes(grid_cfg) <= budget)
    }

    /// Installs a freshly built grid and rebalances the shared byte
    /// budget: grids charge the pool first — oldest-built grids are
    /// evicted when the grids alone overflow it — and the LRU's share
    /// shrinks to the remainder, evicting size-aware, LRU-first, to
    /// fit.
    fn install_grid(&mut self, family: FamilyKey, grid: PolicyGrid) {
        self.grid_bytes += grid.approx_bytes();
        self.grids.insert(family, grid);
        self.grid_order.push_back(family);
        let Some(budget) = self.cfg.max_cache_bytes else {
            return;
        };
        while self.grid_bytes > budget {
            let Some(oldest) = self.grid_order.pop_front() else {
                break;
            };
            if let Some(evicted) = self.grids.remove(&oldest) {
                self.grid_bytes -= evicted.approx_bytes();
                self.stats.grid_evictions += 1;
            }
        }
        self.lru
            .set_byte_budget(Some(budget.saturating_sub(self.grid_bytes)));
    }

    /// A snapshot of the per-tier counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.stats.requests,
            batches: self.stats.batches,
            exact_hits: self.stats.exact_hits,
            exact_hits_closed_form: self.stats.exact_hits_closed_form,
            exact_hits_factorized: self.stats.exact_hits_factorized,
            grid_hits: self.stats.grid_hits,
            closed_form_hits: self.stats.closed_form_hits,
            solver_solves: self.stats.solver_solves,
            batch_dedup_hits: self.stats.batch_dedup_hits,
            errors: self.stats.errors,
            grid_builds: self.stats.grid_builds,
            grid_prewarms: self.stats.grid_prewarms,
            lru_inserts: self.stats.lru_inserts,
            lru_evictions: self.lru.evictions(),
            lru_len: self.lru.len() as u64,
            byte_evictions: self.lru.byte_evictions(),
            // The cluster self-healing counters are overlays owned by
            // the cluster front, and the overload counters by the
            // socket server's admission controller; a plain service
            // never counts either.
            auto_respawns: 0,
            quarantines: 0,
            reshard_handoffs: 0,
            injected_faults: 0,
            shed_rejects: 0,
            degraded_serves: 0,
            deadline_expired: 0,
            queue_depth_peak: 0,
        }
    }

    /// Approximate resident cache bytes (exact LRU + grids) — the
    /// quantity [`ServiceConfig::max_cache_bytes`] bounds.
    pub fn cache_bytes(&self) -> usize {
        self.lru.bytes() + self.grid_bytes
    }

    /// Grids evicted (oldest-built first) because the resident grids
    /// alone overflowed the byte budget. Not a wire counter — the
    /// wire's `byte_evictions` counts the LRU side, where budget
    /// pressure normally lands.
    pub fn grid_evictions(&self) -> u64 {
        self.stats.grid_evictions
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Whether the interpolation grid for `family` is resident.
    pub fn has_grid(&self, family: &FamilyKey) -> bool {
        self.grids.contains_key(family)
    }

    /// Eagerly builds the interpolation grid for one homogeneous
    /// family, ahead of the lazy build a request would trigger.
    /// Returns `true` when a build actually ran; `false` when the grid
    /// tier is disabled, the family is already resident, or one grid
    /// cannot fit the byte budget. The prewarmed grid is *identical*
    /// to the lazily built one (the build is deterministic), so
    /// prewarming changes latency, never responses.
    pub fn prewarm_grid(&mut self, family: &FamilyKey) -> bool {
        let Some(grid_cfg) = self.cfg.grid else {
            return false;
        };
        if self.grids.contains_key(family) || !self.grid_could_fit_alone(&grid_cfg) {
            return false;
        }
        let grid = PolicyGrid::build(
            family.n,
            f64::from_bits(family.listen),
            f64::from_bits(family.transmit),
            f64::from_bits(family.sigma),
            if family.mode == 0 {
                econcast_core::ThroughputMode::Groupput
            } else {
                econcast_core::ThroughputMode::Anyput
            },
            &grid_cfg,
        );
        self.install_grid(*family, grid);
        self.stats.grid_prewarms += 1;
        true
    }

    /// Serves one request (a batch of one).
    pub fn serve(&mut self, req: &PolicyRequest) -> Result<PolicyResponse, ServiceError> {
        self.serve_batch(std::slice::from_ref(req))
            .pop()
            .expect("one request in, one response out")
    }

    /// Serves a batch: independent solves fan out across the worker
    /// pool; responses come back in request order, each in its
    /// caller's node order.
    pub fn serve_batch(
        &mut self,
        reqs: &[PolicyRequest],
    ) -> Vec<Result<PolicyResponse, ServiceError>> {
        let _serve = econcast_trace::trace_span!(
            "service",
            "serve_batch",
            "requests" => reqs.len() as u64
        );
        self.stats.batches += 1;
        self.stats.requests += reqs.len() as u64;
        let t0 = std::time::Instant::now();

        // Phase 1: probe tiers, queue deduplicated solves.
        let mut plans: Vec<Plan> = Vec::with_capacity(reqs.len());
        let mut jobs: Vec<SolveJob> = Vec::new();
        let mut pending: HashMap<econcast_statespace::InstanceKey, usize> = HashMap::new();
        {
            let _probe = econcast_trace::trace_span!("service", "probe");
            for req in reqs {
                plans.push(self.probe(req, &mut jobs, &mut pending));
            }
        }
        let results = self.solve_and_publish(plans, jobs);
        record_batch_metrics(t0, &results);
        results
    }

    /// The shard router's entry point: requests arrive with the
    /// canonicalization the router already computed for routing
    /// (`None` = the request failed validation), so the probe phase
    /// does not canonicalize a second time.
    pub(crate) fn serve_batch_prerouted(
        &mut self,
        reqs: Vec<(&PolicyRequest, Option<CanonicalInstance>)>,
    ) -> Vec<Result<PolicyResponse, ServiceError>> {
        let _serve = econcast_trace::trace_span!(
            "service",
            "serve_batch",
            "requests" => reqs.len() as u64
        );
        self.stats.batches += 1;
        self.stats.requests += reqs.len() as u64;
        let t0 = std::time::Instant::now();

        let mut plans: Vec<Plan> = Vec::with_capacity(reqs.len());
        let mut jobs: Vec<SolveJob> = Vec::new();
        let mut pending: HashMap<econcast_statespace::InstanceKey, usize> = HashMap::new();
        {
            let _probe = econcast_trace::trace_span!("service", "probe");
            for (req, canon) in reqs {
                plans.push(match canon {
                    Some(canon) => self.probe_canonical(req, canon, &mut jobs, &mut pending),
                    None => {
                        self.stats.errors += 1;
                        Plan::Done(Err(req
                            .validate()
                            .expect_err("router routes canon-less requests only on failure")))
                    }
                });
            }
        }
        let results = self.solve_and_publish(plans, jobs);
        record_batch_metrics(t0, &results);
        results
    }

    /// Phases 2 and 3, shared by every batch entry point.
    fn solve_and_publish(
        &mut self,
        plans: Vec<Plan>,
        jobs: Vec<SolveJob>,
    ) -> Vec<Result<PolicyResponse, ServiceError>> {
        // Phase 2: fan the queued solves out over per-worker solver
        // pools. Job assignment is round-robin by job index; each
        // job's computation is identical at every worker count.
        let workers = self
            .cfg
            .workers
            .unwrap_or_else(|| econcast_parallel::effective_threads(jobs.len()))
            .clamp(1, jobs.len().max(1));
        while self.scratch.len() < workers {
            self.scratch.push(SolverPool::new());
        }
        let jobs_ref = &jobs;
        let solved: Vec<Vec<(usize, CachedPolicy)>> =
            econcast_parallel::run_on_slices(&mut self.scratch[..workers], workers, |w, pool| {
                let mut acc = Vec::new();
                let mut j = w;
                while j < jobs_ref.len() {
                    // Complete ("X") events, not begin/end: solve
                    // workers are fresh scoped threads, so B/E pairs
                    // here would make the trace's nesting structure
                    // depend on the worker count.
                    let t0 = econcast_trace::armed_now();
                    let policy = jobs_ref[j].run(pool);
                    econcast_trace::complete_from(
                        "service",
                        kernel_span_name(policy.kernel),
                        t0,
                        &[("job", j as u64), ("n", jobs_ref[j].nodes.len() as u64)],
                    );
                    acc.push((j, policy));
                    j += workers;
                }
                acc
            });
        let mut results: Vec<Option<CachedPolicy>> = vec![None; jobs.len()];
        for (j, policy) in solved.into_iter().flatten() {
            results[j] = Some(policy);
        }

        // Phase 3: publish — count tiers, fill the LRU (once per
        // unique key, in job order == first-request order), and rotate
        // every response back into caller order.
        let _publish = econcast_trace::trace_span!(
            "service",
            "publish",
            "jobs" => jobs.len() as u64
        );
        let mut inserted: Vec<bool> = vec![false; jobs.len()];
        let mut out = Vec::with_capacity(plans.len());
        for plan in plans {
            match plan {
                Plan::Done(r) => out.push(r),
                Plan::Job(j, ref canon) | Plan::Alias(j, ref canon) => {
                    let job = &jobs[j];
                    let policy = results[j].as_ref().expect("every job ran");
                    if let Plan::Job(..) = plan {
                        match job.kind {
                            JobKind::Exact(_) => self.stats.solver_solves += 1,
                            JobKind::ClosedForm => self.stats.closed_form_hits += 1,
                        }
                    } else {
                        self.stats.batch_dedup_hits += 1;
                    }
                    if !inserted[j] {
                        inserted[j] = true;
                        self.lru.insert(canon.key.clone(), policy.clone());
                        self.stats.lru_inserts += 1;
                    }
                    out.push(Ok(respond(canon, policy, job.tier())));
                }
            }
        }
        out
    }

    /// Phase-1 logic for one request.
    fn probe(
        &mut self,
        req: &PolicyRequest,
        jobs: &mut Vec<SolveJob>,
        pending: &mut HashMap<econcast_statespace::InstanceKey, usize>,
    ) -> Plan {
        if let Err(e) = req.validate() {
            self.stats.errors += 1;
            return Plan::Done(Err(e));
        }
        let canon = CanonicalInstance::new(
            &req.budgets_w,
            req.listen_w,
            req.transmit_w,
            req.sigma,
            req.objective,
            req.tolerance,
        );
        self.probe_canonical(req, canon, jobs, pending)
    }

    /// Phase-1 tier walk for an already-validated, already-canonical
    /// request.
    fn probe_canonical(
        &mut self,
        req: &PolicyRequest,
        canon: CanonicalInstance,
        jobs: &mut Vec<SolveJob>,
        pending: &mut HashMap<econcast_statespace::InstanceKey, usize>,
    ) -> Plan {
        // Tier 1: exact-match LRU. The hit counter splits by the
        // kernel that originally produced the entry, so the exact
        // tier's behaviour at large N (factorized-solved entries) is
        // observable apart from the closed-form traffic.
        if let Some(hit) = self.lru.get(&canon.key) {
            self.stats.exact_hits += 1;
            match hit.kernel {
                PolicyKernel::ClosedForm => self.stats.exact_hits_closed_form += 1,
                PolicyKernel::Factorized => self.stats.exact_hits_factorized += 1,
                PolicyKernel::GrayCode | PolicyKernel::Grid => {}
            }
            let resp = respond(&canon, hit, ServedTier::Exact);
            econcast_trace::trace_instant!("service", "tier_exact");
            return Plan::Done(Ok(resp));
        }

        // Tier 2: interpolation grid (homogeneous cliques only). The
        // range gate runs *before* the lazy build: a budget the grid
        // can never cover must not trigger 65 knot/validation solves
        // for a family that will fall through to the closed form
        // anyway.
        if canon.homogeneous {
            if let Some(grid_cfg) = self
                .cfg
                .grid
                .filter(|g| (g.rho_min_w..=g.rho_max_w).contains(&canon.sorted_budgets[0]))
            {
                let family = FamilyKey::new(
                    canon.sorted_budgets.len(),
                    req.listen_w,
                    req.transmit_w,
                    req.sigma,
                    req.objective,
                );
                if self.cfg.lazy_grid_builds
                    && !self.grids.contains_key(&family)
                    && self.grid_fits_alongside(&grid_cfg)
                {
                    let grid = PolicyGrid::build(
                        canon.sorted_budgets.len(),
                        req.listen_w,
                        req.transmit_w,
                        req.sigma,
                        req.objective,
                        &grid_cfg,
                    );
                    self.stats.grid_builds += 1;
                    // Grids share the cache byte budget with the
                    // exact tier: charge the pool, shrink the LRU.
                    self.install_grid(family, grid);
                }
                // Prewarmed-only mode (`lazy_grid_builds = false`)
                // never builds on the request path; cold families
                // fall through to the closed form until the prewarmer
                // installs their grid.
                let served = self
                    .grids
                    .get(&family)
                    .and_then(|g| g.serve(canon.sorted_budgets[0], canon.tolerance_tier));
                if let Some(policy) = served {
                    self.stats.grid_hits += 1;
                    // Publish into the exact tier so a repeat of this
                    // instance is an O(1) LRU hit.
                    self.lru.insert(canon.key.clone(), policy.clone());
                    self.stats.lru_inserts += 1;
                    econcast_trace::trace_instant!("service", "tier_grid");
                    return Plan::Done(Ok(respond(&canon, &policy, ServedTier::Grid)));
                }
            }
        }

        // Heterogeneous instances beyond the solver's latency ceiling
        // have no tier left. The ceiling is mode-aware: anyput runs
        // more exponentials per node, so it caps lower than groupput.
        let ceiling = match req.objective {
            econcast_core::ThroughputMode::Groupput => self.cfg.max_exact_nodes,
            econcast_core::ThroughputMode::Anyput => {
                self.cfg.max_exact_nodes.min(self.cfg.max_anyput_nodes)
            }
        };
        if !canon.homogeneous && canon.sorted_budgets.len() > ceiling {
            self.stats.errors += 1;
            return Plan::Done(Err(ServiceError::TooLarge {
                n: canon.sorted_budgets.len(),
                max: ceiling,
            }));
        }

        // Tier 3 (homogeneous closed form) or the exact solver —
        // queued, deduplicated by canonical key.
        if let Some(&j) = pending.get(&canon.key) {
            econcast_trace::trace_instant!("service", "tier_dedup");
            return Plan::Alias(j, canon);
        }
        let kind = if canon.homogeneous {
            econcast_trace::trace_instant!("service", "tier_closed_form");
            JobKind::ClosedForm
        } else {
            econcast_trace::trace_instant!("service", "tier_solver");
            JobKind::Exact(P4Options {
                max_iters: 30_000,
                tol: canon.tolerance_tier,
                step0: 2.0,
                // Heterogeneous by construction here; Auto resolves to
                // the factorized kernel (groupput, and anyput beyond
                // the small-N Gray-code regime) deterministically.
                kernel: KernelSelect::Auto,
            })
        };
        let nodes: Vec<NodeParams> = canon
            .sorted_budgets
            .iter()
            .map(|&rho| NodeParams::new(rho, req.listen_w, req.transmit_w))
            .collect();
        let job = SolveJob {
            nodes,
            sigma: req.sigma,
            mode: req.objective,
            kind,
        };
        let j = jobs.len();
        pending.insert(canon.key.clone(), j);
        jobs.push(job);
        Plan::Job(j, canon)
    }
}

/// The trace span name for a solve that ran on `kernel` — the solve
/// phase's "X" events are labelled by the kernel that actually
/// executed, so a Perfetto timeline separates Gray-code, factorized,
/// and closed-form time at a glance.
fn kernel_span_name(kernel: PolicyKernel) -> &'static str {
    match kernel {
        PolicyKernel::GrayCode => "solve_graycode",
        PolicyKernel::Factorized => "solve_factorized",
        PolicyKernel::ClosedForm => "solve_closed_form",
        PolicyKernel::Grid => "solve_grid",
    }
}

/// Always-on metrics for one served batch: request/batch/error
/// counters plus the two latency histograms, recorded on the global
/// hub. One `recording_on` check, then a handful of relaxed atomics
/// amortized over the whole batch — the cost the `warm_rps_metrics_on`
/// bench row holds within noise of the unrecorded path. Unlike the
/// trace crate's armed histograms this is unconditional in production;
/// `set_recording(false)` exists for the bench harness to measure the
/// difference, not as an operating mode.
fn record_batch_metrics(t0: std::time::Instant, results: &[Result<PolicyResponse, ServiceError>]) {
    if !econcast_metrics::recording_on() {
        return;
    }
    let n = results.len() as u64;
    let elapsed = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let hub = econcast_metrics::hub();
    hub.counter_add(econcast_metrics::CTR_BATCHES, 1);
    hub.counter_add(econcast_metrics::CTR_REQUESTS, n);
    let errors = results.iter().filter(|r| r.is_err()).count() as u64;
    if errors > 0 {
        hub.counter_add(econcast_metrics::CTR_ERRORS, errors);
    }
    hub.record_n(econcast_metrics::HIST_BATCH_NS, elapsed, 1);
    // Per-request time is attributed as the batch mean: one bucket
    // update for the whole batch instead of per-request clock reads,
    // which is what keeps "always-on" near-free.
    if let Some(per_request) = elapsed.checked_div(n) {
        hub.record_n(econcast_metrics::HIST_REQUEST_NS, per_request, n);
    }
}

/// Builds a caller-order response from a canonical-order policy.
fn respond(canon: &CanonicalInstance, policy: &CachedPolicy, tier: ServedTier) -> PolicyResponse {
    let canonical: Vec<NodePolicy> = policy
        .alpha
        .iter()
        .zip(&policy.beta)
        .map(|(&listen, &transmit)| NodePolicy { listen, transmit })
        .collect();
    PolicyResponse {
        policies: canon.restore_order(&canonical),
        throughput: policy.throughput,
        tier,
        kernel: policy.kernel,
        converged: policy.converged,
        certificate: policy.certificate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PolicyRequest;
    use econcast_core::ThroughputMode::{Anyput, Groupput};

    const L: f64 = 500e-6;
    const X: f64 = 500e-6;

    fn het_request(budgets: &[f64], tol: f64) -> PolicyRequest {
        PolicyRequest {
            budgets_w: budgets.to_vec(),
            listen_w: L,
            transmit_w: X,
            sigma: 0.5,
            objective: Groupput,
            tolerance: tol,
        }
    }

    fn service() -> PolicyService {
        PolicyService::new(ServiceConfig {
            workers: Some(1),
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn permuted_budgets_keep_caller_order() {
        // Satellite regression: sorting budgets for the cache key must
        // not change which node each returned policy maps to.
        let mut svc = service();
        let a = het_request(&[5e-6, 20e-6, 10e-6], 1e-2);
        let b = het_request(&[10e-6, 5e-6, 20e-6], 1e-2);
        let ra = svc.serve(&a).unwrap();
        let rb = svc.serve(&b).unwrap();
        assert_eq!(rb.tier, ServedTier::Exact, "permutation is a cache hit");
        // Same budget value ⇒ bit-identical policy, at its own index.
        for (i, &rho_a) in a.budgets_w.iter().enumerate() {
            let j = b.budgets_w.iter().position(|&r| r == rho_a).unwrap();
            assert_eq!(
                ra.policies[i].listen.to_bits(),
                rb.policies[j].listen.to_bits()
            );
            assert_eq!(
                ra.policies[i].transmit.to_bits(),
                rb.policies[j].transmit.to_bits()
            );
        }
        // And richer nodes are more active — the policy really does
        // follow the budget, not the position.
        let idx_min = 0; // 5 µW in request a
        let idx_max = 1; // 20 µW in request a
        let awake = |p: &crate::request::NodePolicy| p.listen + p.transmit;
        assert!(awake(&ra.policies[idx_max]) > awake(&ra.policies[idx_min]));
    }

    #[test]
    fn in_batch_duplicates_are_deduplicated() {
        let mut svc = service();
        let r1 = het_request(&[5e-6, 10e-6, 20e-6], 1e-2);
        let r2 = het_request(&[20e-6, 5e-6, 10e-6], 1e-2); // permutation
        let out = svc.serve_batch(&[r1.clone(), r2.clone(), r1.clone()]);
        assert!(out.iter().all(|r| r.is_ok()));
        let s = svc.stats();
        assert_eq!(s.solver_solves, 1, "one canonical solve for all three");
        assert_eq!(s.batch_dedup_hits, 2);
        assert_eq!(s.lru_inserts, 1);
        // The aliased permutation must still answer in *its own* node
        // order: same budget value ⇒ bit-identical policy.
        let (o1, o2) = (out[0].as_ref().unwrap(), out[1].as_ref().unwrap());
        for (i, &rho) in r1.budgets_w.iter().enumerate() {
            let j = r2.budgets_w.iter().position(|&r| r == rho).unwrap();
            assert_eq!(
                o1.policies[i].listen.to_bits(),
                o2.policies[j].listen.to_bits(),
                "alias response must follow the alias's budget order"
            );
        }
    }

    #[test]
    fn homogeneous_requests_avoid_the_enumeration_solver() {
        let mut svc = service();
        let req = PolicyRequest::homogeneous(
            500,
            econcast_core::NodeParams::from_microwatts(10.0, 500.0, 500.0),
            0.5,
            Groupput,
            1e-3,
        );
        let resp = svc.serve(&req).unwrap();
        assert!(matches!(
            resp.tier,
            ServedTier::Grid | ServedTier::ClosedForm
        ));
        assert_eq!(svc.stats().solver_solves, 0);
        assert!(resp.converged);
        assert!(resp.throughput > 0.0);
        // Certificate sandwich holds.
        let c = &resp.certificate;
        assert!(c.t_sigma <= c.oracle + 1e-9 && c.oracle <= c.dual_upper + 1e-9);
    }

    #[test]
    fn out_of_range_budget_skips_the_grid_build() {
        let mut svc = service();
        // 25 mW sits above the default grid roof (10 mW): the closed
        // form must answer without a 65-solve grid build for a family
        // that could never serve the request.
        let req = PolicyRequest::homogeneous(
            8,
            econcast_core::NodeParams::from_milliwatts(25.0, 67.0, 33.0),
            0.5,
            Groupput,
            1e-2,
        );
        let resp = svc.serve(&req).unwrap();
        assert_eq!(resp.tier, ServedTier::ClosedForm);
        assert_eq!(svc.stats().grid_builds, 0, "no doomed grid build");
    }

    #[test]
    fn prewarmed_only_mode_never_builds_inline() {
        let mut svc = PolicyService::new(ServiceConfig {
            workers: Some(1),
            lazy_grid_builds: false,
            ..ServiceConfig::default()
        });
        let req = |rho_uw: f64| {
            PolicyRequest::homogeneous(
                10,
                econcast_core::NodeParams::from_microwatts(rho_uw, 500.0, 450.0),
                0.5,
                Groupput,
                1e-1, // coarsest tier: every certified interval serves it
            )
        };
        // Cold in-range homogeneous request: closed form, no build.
        let cold = svc.serve(&req(10.0)).unwrap();
        assert_eq!(cold.tier, ServedTier::ClosedForm);
        assert_eq!(svc.stats().grid_builds, 0);
        assert_eq!(svc.stats().grid_prewarms, 0);

        // Prewarm the family off the request path…
        let family = FamilyKey::new(10, 500e-6, 450e-6, 0.5, Groupput);
        assert!(svc.prewarm_grid(&family), "fresh family builds");
        assert!(!svc.prewarm_grid(&family), "resident family is a no-op");
        assert!(svc.has_grid(&family));
        assert_eq!(svc.stats().grid_prewarms, 1);

        // …and a novel budget in the family now grid-serves. (The
        // grid may still decline an interval whose certified error
        // exceeds even the coarse tier, so scan a few budgets and
        // require at least one grid hit.)
        let mut grid_hits = 0;
        for rho_uw in [11.0, 17.0, 29.0, 41.0] {
            if svc.serve(&req(rho_uw)).unwrap().tier == ServedTier::Grid {
                grid_hits += 1;
            }
        }
        assert!(grid_hits > 0, "prewarmed grid never served");
        assert_eq!(svc.stats().grid_hits, grid_hits);
        assert_eq!(svc.stats().grid_builds, 0, "still no inline build");
    }

    #[test]
    fn oversize_heterogeneous_is_rejected() {
        // The default ceiling is a latency budget now (256, not the
        // old 2^N wall at 16) — requests beyond it still get a typed
        // error, not a panic.
        let mut svc = service();
        let budgets: Vec<f64> = (0..300).map(|i| 1e-6 * (i + 1) as f64).collect();
        let err = svc.serve(&het_request(&budgets, 1e-2)).unwrap_err();
        assert_eq!(err, ServiceError::TooLarge { n: 300, max: 256 });
        assert_eq!(svc.stats().errors, 1);
        // Anyput's ceiling is separately tunable (and defaults
        // lower), so the mode-aware ceiling rejects sizes the
        // groupput path would accept.
        let anyput_100 = PolicyRequest {
            objective: Anyput,
            ..het_request(
                &(0..100).map(|i| 1e-6 * (i + 1) as f64).collect::<Vec<_>>(),
                1e-2,
            )
        };
        let err = svc.serve(&anyput_100).unwrap_err();
        assert_eq!(err, ServiceError::TooLarge { n: 100, max: 64 });
    }

    #[test]
    fn invalid_requests_are_rejected_not_panicked() {
        let mut svc = service();
        for bad in [
            het_request(&[], 1e-2),
            het_request(&[-1e-6], 1e-2),
            het_request(&[1e-6], 0.0),
            PolicyRequest {
                sigma: f64::NAN,
                ..het_request(&[1e-6, 2e-6], 1e-2)
            },
        ] {
            assert!(matches!(svc.serve(&bad), Err(ServiceError::BadRequest(_))));
        }
        assert_eq!(svc.stats().errors, 4);
    }

    #[test]
    fn anyput_and_groupput_do_not_share_entries() {
        let mut svc = service();
        // n = 3: groupput and anyput genuinely differ (at n = 2 every
        // delivery reaches exactly one listener and the two coincide).
        let g = het_request(&[5e-6, 10e-6, 20e-6], 1e-2);
        let a = PolicyRequest {
            objective: Anyput,
            ..g.clone()
        };
        let rg = svc.serve(&g).unwrap();
        let ra = svc.serve(&a).unwrap();
        assert_eq!(svc.stats().exact_hits, 0, "different objectives, no hit");
        assert!(ra.throughput <= 1.0 + 1e-9);
        assert!(rg.throughput != ra.throughput);
    }

    #[test]
    fn byte_budget_bounds_the_cache_across_tiers() {
        // Calibrate one entry's cost on an unbudgeted twin.
        let mut probe = PolicyService::new(ServiceConfig {
            workers: Some(1),
            grid: None,
            ..ServiceConfig::default()
        });
        probe.serve(&het_request(&[5e-6, 10e-6], 1e-2)).unwrap();
        let unit = probe.cache_bytes();
        assert!(unit > 0);

        // Room for two entries (grid tier off: only the LRU charges).
        let mut svc = PolicyService::new(ServiceConfig {
            workers: Some(1),
            grid: None,
            max_cache_bytes: Some(2 * unit + unit / 2),
            ..ServiceConfig::default()
        });
        let reqs: Vec<PolicyRequest> = (0..3)
            .map(|k| het_request(&[(5 + k) as f64 * 1e-6, (10 + k) as f64 * 1e-6], 1e-2))
            .collect();
        for req in &reqs {
            svc.serve(req).unwrap();
        }
        let s = svc.stats();
        assert_eq!(s.lru_len, 2, "budget holds two entries");
        assert_eq!(s.byte_evictions, 1, "third insert evicted the oldest");
        assert_eq!(s.lru_evictions, 1);
        assert!(svc.cache_bytes() <= 2 * unit + unit / 2);
        // The oldest entry is the one that went: re-serving it solves
        // again, the newer two replay from the exact tier.
        assert_eq!(svc.serve(&reqs[2]).unwrap().tier, ServedTier::Exact);
        assert_eq!(svc.serve(&reqs[0]).unwrap().tier, ServedTier::Solver);

        // A grid build charges the same pool: with a budget that fits
        // one grid but not grid + entry, installing the grid squeezes
        // every LRU entry out.
        let grid_bytes = PolicyGrid::estimate_bytes(&GridConfig::default());
        let mut svc = PolicyService::new(ServiceConfig {
            workers: Some(1),
            max_cache_bytes: Some(grid_bytes + unit / 2),
            ..ServiceConfig::default()
        });
        svc.serve(&het_request(&[5e-6, 10e-6], 1e-2)).unwrap();
        assert_eq!(svc.stats().lru_len, 1);
        let family = FamilyKey::new(10, 500e-6, 450e-6, 0.5, Groupput);
        assert!(svc.prewarm_grid(&family), "one grid fits the budget");
        let s = svc.stats();
        assert_eq!(s.lru_len, 0, "grid claimed the whole pool");
        assert!(s.byte_evictions >= 1);
        assert!(svc.cache_bytes() <= grid_bytes + unit / 2);

        // A second family overflows the grid share: the oldest-built
        // grid is evicted (FIFO), keeping the total bounded.
        let family2 = FamilyKey::new(12, 500e-6, 450e-6, 0.5, Groupput);
        assert!(svc.prewarm_grid(&family2));
        assert_eq!(svc.grid_evictions(), 1, "oldest grid evicted");
        assert!(!svc.has_grid(&family), "FIFO victim is the first family");
        assert!(svc.has_grid(&family2));
        assert!(svc.cache_bytes() <= grid_bytes + unit / 2);

        // The request path never displaces a resident grid: a lazy
        // build for a *third* family (in grid range, budget already
        // full) is skipped — closed form serves, no thrash.
        let in_range = PolicyRequest::homogeneous(
            11,
            econcast_core::NodeParams::from_microwatts(10.0, 500.0, 450.0),
            0.5,
            Groupput,
            1e-1,
        );
        let resp = svc.serve(&in_range).unwrap();
        assert_eq!(resp.tier, ServedTier::ClosedForm);
        assert_eq!(svc.stats().grid_builds, 0, "no lazy build-evict thrash");
        assert_eq!(svc.grid_evictions(), 1, "resident grid undisturbed");
        assert!(svc.has_grid(&family2));

        // A budget too small for any grid skips builds outright — no
        // build-evict thrash, the closed form serves instead.
        let mut tiny = PolicyService::new(ServiceConfig {
            workers: Some(1),
            max_cache_bytes: Some(grid_bytes / 2),
            ..ServiceConfig::default()
        });
        assert!(!tiny.prewarm_grid(&family), "oversize grid never builds");
        let resp = tiny
            .serve(&PolicyRequest::homogeneous(
                10,
                econcast_core::NodeParams::from_microwatts(10.0, 500.0, 450.0),
                0.5,
                Groupput,
                1e-1,
            ))
            .unwrap();
        assert_eq!(resp.tier, ServedTier::ClosedForm);
        assert_eq!(tiny.stats().grid_builds, 0, "no lazy build either");
    }

    #[test]
    fn lru_eviction_forces_resolve() {
        let mut svc = PolicyService::new(ServiceConfig {
            lru_capacity: 1,
            workers: Some(1),
            grid: None,
            ..ServiceConfig::default()
        });
        let r1 = het_request(&[5e-6, 10e-6], 1e-2);
        let r2 = het_request(&[6e-6, 11e-6], 1e-2);
        svc.serve(&r1).unwrap();
        svc.serve(&r2).unwrap(); // evicts r1
        let again = svc.serve(&r1).unwrap();
        assert_eq!(again.tier, ServedTier::Solver, "evicted ⇒ solved again");
        assert_eq!(svc.stats().lru_evictions, 2);
        assert_eq!(svc.stats().solver_solves, 3);
    }
}
