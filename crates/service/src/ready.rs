//! Minimal `poll(2)` readiness binding for the pipelined data plane.
//!
//! The pre-pipeline client waited out short `WouldBlock` windows with
//! a fixed 200 µs sleep — on a single-CPU box that sleep granularity,
//! multiplied by every batch, *was* a visible slice of the wire
//! overhead. This module replaces the sleeps with real readiness: the
//! submit path parks in `poll` until the socket is writable (or a
//! reply arrived to absorb), and the cluster driver multiplexes every
//! backend connection on one thread by polling all their descriptors
//! at once.
//!
//! The binding is deliberately tiny — `poll` only, no registration
//! state, no libc dependency (the symbol comes from the C runtime the
//! std already links). On non-unix targets the fallback degrades to
//! the old short-sleep behaviour: report everything ready and let the
//! caller's non-blocking I/O sort it out.

use std::io;
use std::time::Duration;

/// Readiness bit: the descriptor has bytes to read (POLLIN).
pub const READABLE: i16 = 0x001;
/// Readiness bit: the descriptor accepts writes (POLLOUT).
pub const WRITABLE: i16 = 0x004;
/// Result-only bit: the peer hung up (POLLHUP).
pub const HANGUP: i16 = 0x010;
/// Result-only bit: error condition on the descriptor (POLLERR).
pub const ERROR: i16 = 0x008;

#[cfg(unix)]
mod imp {
    use super::*;
    use std::os::raw::{c_int, c_ulong};
    use std::os::unix::io::RawFd;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    extern "C" {
        // `nfds_t` is `unsigned long` on Linux, which is the only unix
        // this repo targets in CI; other unixes fall within c_ulong's
        // width anyway for the descriptor counts used here.
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Waits until at least one descriptor is ready (or the timeout
    /// passes; `None` blocks indefinitely) and returns each
    /// descriptor's result bits in input order — all zero on timeout.
    /// `EINTR` reports as a timeout-like all-zero result so callers
    /// simply re-loop.
    pub fn wait(fds: &[(RawFd, i16)], timeout: Option<Duration>) -> io::Result<Vec<i16>> {
        let mut pollfds: Vec<PollFd> = fds
            .iter()
            .map(|&(fd, events)| PollFd {
                fd,
                events,
                revents: 0,
            })
            .collect();
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(c_int::MAX as u128) as c_int,
        };
        let rc = unsafe { poll(pollfds.as_mut_ptr(), pollfds.len() as c_ulong, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(vec![0; fds.len()]);
            }
            return Err(err);
        }
        Ok(pollfds.into_iter().map(|p| p.revents).collect())
    }
}

#[cfg(not(unix))]
mod imp {
    use super::*;

    /// Portable fallback: a short nap, then report every descriptor
    /// ready — callers run non-blocking I/O and re-loop on
    /// `WouldBlock`, which reproduces the pre-pipeline short-sleep
    /// pump exactly.
    pub fn wait(fds: &[(i32, i16)], timeout: Option<Duration>) -> io::Result<Vec<i16>> {
        let nap = timeout
            .unwrap_or(Duration::from_micros(200))
            .min(Duration::from_micros(200));
        std::thread::sleep(nap);
        Ok(fds.iter().map(|&(_, events)| events).collect())
    }
}

pub use imp::wait;

/// Waits on a single descriptor; returns its result bits (0 = timed
/// out).
pub fn wait_one(fd: RawFdAlias, events: i16, timeout: Option<Duration>) -> io::Result<i16> {
    Ok(wait(&[(fd, events)], timeout)?[0])
}

/// The raw-descriptor type `wait` operates on (unix `RawFd`; a plain
/// `i32` stand-in elsewhere so call sites stay portable).
#[cfg(unix)]
pub type RawFdAlias = std::os::unix::io::RawFd;
#[cfg(not(unix))]
pub type RawFdAlias = i32;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    #[cfg(unix)]
    use std::os::unix::io::AsRawFd;

    #[cfg(unix)]
    #[test]
    fn poll_sees_readability_only_when_bytes_arrive() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        // Nothing written yet: a zero timeout reports not readable.
        let r = wait_one(client.as_raw_fd(), READABLE, Some(Duration::from_millis(0))).unwrap();
        assert_eq!(r & READABLE, 0);

        server.write_all(b"ping").unwrap();
        let r = wait_one(
            client.as_raw_fd(),
            READABLE,
            Some(Duration::from_millis(2000)),
        )
        .unwrap();
        assert_ne!(r & READABLE, 0);
        let mut buf = [0u8; 4];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        // A fresh, undrained socket is writable immediately.
        let r = wait_one(
            client.as_raw_fd(),
            WRITABLE,
            Some(Duration::from_millis(2000)),
        )
        .unwrap();
        assert_ne!(r & WRITABLE, 0);
    }

    #[cfg(unix)]
    #[test]
    fn poll_reports_hangup_on_peer_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        drop(server);
        // Readable-or-hangup: either bit satisfies a reader, which
        // then sees EOF. Give the kernel a moment to register it.
        let r = wait_one(
            client.as_raw_fd(),
            READABLE,
            Some(Duration::from_millis(2000)),
        )
        .unwrap();
        assert_ne!(r & (READABLE | HANGUP), 0);
    }
}
