//! The wire front-end: a [`PolicyService`] speaking the
//! `econcast-proto` service messages over a length-prefixed byte
//! stream.

use crate::request::{error_to_wire, PolicyRequest};
use crate::service::PolicyService;
use bytes::BytesMut;
use econcast_proto::service::{ServiceCodec, ServiceMessage};
use econcast_proto::DecodeError;

/// A policy server bound to a byte stream: feed it request bytes,
/// poll it for response bytes. One `poll_batch` call serves every
/// fully-received request as a single batch, so clients that pipeline
/// `k` requests before polling get `k`-way batching (and in-batch
/// dedup) for free.
#[derive(Debug, Default)]
pub struct WireServer {
    codec: ServiceCodec,
    service: PolicyService,
    /// Non-request messages received (protocol misuse; dropped).
    ignored: u64,
}

impl WireServer {
    /// Wraps a service.
    pub fn new(service: PolicyService) -> Self {
        WireServer {
            codec: ServiceCodec::new(),
            service,
            ignored: 0,
        }
    }

    /// Read access to the wrapped service (stats, …).
    pub fn service(&self) -> &PolicyService {
        &self.service
    }

    /// Non-request messages dropped so far.
    pub fn ignored_messages(&self) -> u64 {
        self.ignored
    }

    /// Appends received bytes to the reassembly buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.codec.feed(bytes);
    }

    /// Serves every fully-received request as one batch, returning the
    /// encoded length-prefixed responses (in request order, one
    /// response or error message per request). Returns an empty buffer
    /// when no complete request is buffered. Decode errors are fatal
    /// for the stream, matching the codec's semantics.
    pub fn poll_batch(&mut self) -> Result<BytesMut, DecodeError> {
        let mut ids = Vec::new();
        let mut requests = Vec::new();
        for msg in self.codec.drain()? {
            match msg {
                ServiceMessage::Request(w) => {
                    ids.push(w.id);
                    requests.push(PolicyRequest::from_wire(&w));
                }
                ServiceMessage::Response(_) | ServiceMessage::Error(_) => self.ignored += 1,
            }
        }
        let mut out = BytesMut::new();
        if requests.is_empty() {
            return Ok(out);
        }
        let results = self.service.serve_batch(&requests);
        for (id, result) in ids.iter().zip(&results) {
            let msg = match result {
                Ok(resp) => ServiceMessage::Response(resp.to_wire(*id)),
                Err(e) => ServiceMessage::Error(error_to_wire(e, *id)),
            };
            ServiceCodec::encode(&msg, &mut out);
        }
        Ok(out)
    }
}
