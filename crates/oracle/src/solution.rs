//! Shared result type for the oracle solvers.

use econcast_core::NodeParams;

/// An optimal oracle schedule: the fractions of time each node listens
/// (`α_i`) and transmits (`β_i`), plus the optimal throughput.
///
/// Lemma 1 shows any rational such solution can be realized by a
/// periodic slotted schedule after a one-time energy-accumulation
/// interval, so these fractions are genuinely *achievable*, not just an
/// upper bound.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleSolution {
    /// The oracle throughput `T*` (per-packet-time units, as in the
    /// paper: groupput ≤ N−1, anyput ≤ 1).
    pub throughput: f64,
    /// Listen-time fraction per node.
    pub alpha: Vec<f64>,
    /// Transmit-time fraction per node.
    pub beta: Vec<f64>,
}

impl OracleSolution {
    /// Fraction of time node `i` is awake: `α_i + β_i`.
    pub fn awake_fraction(&self, i: usize) -> f64 {
        self.alpha[i] + self.beta[i]
    }

    /// Fraction of its awake time node `i` spends transmitting —
    /// the `100·β*/(α*+β*)%` row of Table II. `None` when the node
    /// never wakes.
    pub fn transmit_share_when_awake(&self, i: usize) -> Option<f64> {
        let awake = self.awake_fraction(i);
        (awake > 0.0).then(|| self.beta[i] / awake)
    }

    /// Verifies the solution against the node parameters: power budget
    /// (9), time budget (10), and the single-transmitter bound (11).
    pub fn is_feasible(&self, nodes: &[NodeParams], tol: f64) -> bool {
        let per_node = nodes
            .iter()
            .enumerate()
            .all(|(i, p)| p.admits(self.alpha[i], self.beta[i], tol));
        let total_beta: f64 = self.beta.iter().sum();
        per_node && total_beta <= 1.0 + tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let s = OracleSolution {
            throughput: 0.3,
            alpha: vec![0.1, 0.0],
            beta: vec![0.1, 0.0],
        };
        assert!((s.awake_fraction(0) - 0.2).abs() < 1e-12);
        assert!((s.transmit_share_when_awake(0).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(s.transmit_share_when_awake(1), None);
    }

    #[test]
    fn feasibility_check() {
        let nodes = vec![NodeParams::from_microwatts(10.0, 500.0, 500.0); 2];
        let good = OracleSolution {
            throughput: 0.0,
            alpha: vec![0.01, 0.01],
            beta: vec![0.01, 0.01],
        };
        assert!(good.is_feasible(&nodes, 1e-9));
        let over_power = OracleSolution {
            throughput: 0.0,
            alpha: vec![0.05, 0.0],
            beta: vec![0.0, 0.0],
        };
        assert!(!over_power.is_feasible(&nodes, 1e-9));
    }
}
