//! Fig. 5: communication latency — CDF, mean, and 99th percentile,
//! with Searchlight's worst-case bound for reference.
//!
//! Homogeneous cliques, `N ∈ {5, 10}`, `σ ∈ {0.25, 0.5}`,
//! `ρ = 10 µW`, `L = X = 500 µW`. Latency is the gap between
//! consecutive received bursts containing at least one sleep period.
//! Paper findings: latency grows as σ falls; larger `N` lowers
//! latency; anyput's p99 beats groupput's at σ = 0.25; the p99
//! groupput latency stays within 120 s, under Searchlight's 125 s
//! worst case.

use crate::Scale;
use econcast_baselines::Searchlight;
use econcast_core::{NodeParams, ProtocolConfig, ThroughputMode};
use econcast_sim::{SimConfig, Simulator};
use econcast_statespace::HomogeneousP4;

fn params() -> NodeParams {
    NodeParams::from_microwatts(10.0, 500.0, 500.0)
}

/// Converts packet-times (1 ms packets) to seconds.
fn to_seconds(packets: f64) -> f64 {
    packets * 1e-3
}

/// Runs the experiment.
pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("Fig. 5 — latency CDF/mean/p99 (ρ = 10 µW, L = X = 500 µW; 1 ms packets)\n");
    out.push_str(
        "paper: p99 groupput within 120 s for all settings; Searchlight worst case 125 s\n\n",
    );

    for (label, mode) in [
        ("groupput", ThroughputMode::Groupput),
        ("anyput", ThroughputMode::Anyput),
    ] {
        out.push_str(&format!("[{label}]\n"));
        for n in [5usize, 10] {
            for sigma in [0.25, 0.5] {
                let t_end = scale.duration(if sigma < 0.4 {
                    8_000_000.0
                } else {
                    3_000_000.0
                });
                let protocol = match mode {
                    ThroughputMode::Groupput => ProtocolConfig::capture_groupput(sigma),
                    ThroughputMode::Anyput => ProtocolConfig::capture_anyput(sigma),
                };
                let mut cfg = SimConfig::ideal_clique(n, params(), protocol, t_end, 0xF15);
                cfg.eta0 = HomogeneousP4::new(n, params(), sigma, mode).solve().eta;
                cfg.warmup = t_end * 0.1;
                let report = Simulator::new(cfg).expect("valid config").run();
                match report.latency_summary() {
                    Some(s) => out.push_str(&format!(
                        "  N={n:<3} σ={sigma:<5} samples={:<6} mean={:>7.2}s  p50={:>7.2}s  p99={:>7.2}s  max={:>7.2}s\n",
                        s.count,
                        to_seconds(s.mean),
                        to_seconds(s.p50),
                        to_seconds(s.p99),
                        to_seconds(s.max),
                    )),
                    None => out.push_str(&format!(
                        "  N={n:<3} σ={sigma:<5} no latency samples (run too short)\n"
                    )),
                }
            }
        }
        out.push('\n');
    }

    let sl = Searchlight::paper_setup(2, params());
    out.push_str(&format!(
        "Searchlight pairwise worst case: {:.1} s (paper: 125 s)\n",
        to_seconds(sl.worst_case_latency())
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_nodes_lower_latency() {
        let latency = |n: usize| {
            let mut cfg = SimConfig::ideal_clique(
                n,
                params(),
                ProtocolConfig::capture_groupput(0.5),
                1_500_000.0,
                3,
            );
            cfg.eta0 = HomogeneousP4::new(n, params(), 0.5, ThroughputMode::Groupput)
                .solve()
                .eta;
            cfg.warmup = 100_000.0;
            Simulator::new(cfg)
                .expect("valid")
                .run()
                .latency_summary()
                .expect("samples")
                .mean
        };
        let l5 = latency(5);
        let l10 = latency(10);
        assert!(l10 < l5, "N=10 mean latency {l10} not below N=5's {l5}");
    }
}
