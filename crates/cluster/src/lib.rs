//! # econcast-cluster — multi-process deployment of the policy service
//!
//! The serving stack so far scales *within* one process: `PolicyServer`
//! consistent-hashes canonical instance keys across in-process
//! `PolicyService` shards. This crate adds the layer the wire
//! handshake was designed for: the same ring, but the slots are
//! **backend processes**.
//!
//! ```text
//!                        ┌────────────────────────────┐
//!   PolicyClient ──TCP──▶│ ClusterFront               │
//!                        │  └─ ClusterRouter          │
//!                        │      ├─ RemoteShard ──TCP──┼──▶ policy_backend (proc 1)
//!                        │      ├─ RemoteShard ──TCP──┼──▶ policy_backend (proc 2)
//!                        │      ├─ (Local slot)       │      ▲
//!                        │      └─ fallback solver    │      │ spawn/kill/respawn
//!                        └────────────────────────────┘   Supervisor
//! ```
//!
//! * [`RemoteShard`] — a pooled, reconnecting dialer over
//!   `PolicyClient` with bounded retry/backoff and a per-backend
//!   health machine (down after `unhealthy_after` consecutive
//!   failures, reprobed after `reprobe_after`).
//! * [`ClusterRouter`] — routes canonicalized `InstanceKey`s over the
//!   same 64-vnode FNV-1a ring as `ShardRouter`, fans batches out to
//!   backends concurrently, reassembles responses in request order,
//!   and re-serves any failed backend's sub-batch on a **local
//!   fallback solver** — recorded in [`ClusterStats`], never surfaced
//!   as a caller error, and bit-identical to what the backend would
//!   have answered (every solve is deterministic and the fallback runs
//!   the backends' config).
//! * [`ClusterFront`] — a `PolicyServer`-compatible TCP front-end:
//!   clients connect to one address and the cluster is transparent.
//!   Stats requests fan in cluster-wide over the existing
//!   `StatsRequest` wire path.
//! * [`Supervisor`] — spawns and monitors `policy_backend` child
//!   processes (readiness via their `LISTENING <addr>` line, liveness
//!   via `try_wait`, replacement via [`Supervisor::respawn`] +
//!   [`ClusterRouter::retarget_slot`]).
//! * [`ClusterHealer`] — the supervisor *policy* loop: a sweep thread
//!   that probes backend health, respawns dead processes with
//!   crash-loop damping (exponential backoff, quarantine onto a local
//!   solver after too many respawns per window), and retargets ring
//!   slots after a readiness probe — no operator in the loop. The
//!   same module rebalances the ring live
//!   ([`add_backend_with_warmup`], [`remove_backend_with_handoff`])
//!   with warm `MixSeed` handoffs of the router's shadow request-mix
//!   recorders.
//! * [`FaultProxy`] / [`FaultPlan`] — a deterministic fault-injection
//!   harness (connect refusals, frame corruption, stalls, partial
//!   writes, scripted process kills) that drives the chaos acceptance
//!   test in `tests/chaos.rs`, counting every fired fault in
//!   [`ClusterStats::injected_faults`].
//!
//! The load-bearing guarantee is unchanged from every prior layer: a
//! batch served through a cluster returns **bit-identical policies,
//! throughputs, and certificates** to the single-process path — only
//! tier labels may shift to `Exact` across batching boundaries —
//! including while backends are being killed mid-run (pinned by
//! `tests/cluster.rs` over supervisor-spawned processes on real TCP).

pub mod driver;
pub mod fault;
pub mod front;
pub mod policy;
pub mod remote;
pub mod router;
pub mod supervisor;
pub mod topology;

pub use fault::{Fault, FaultEvent, FaultPlan, FaultProxy};
pub use front::{ClusterFront, FrontConfig, FrontHandle};
pub use policy::{
    add_backend_with_warmup, remove_backend_with_handoff, ClusterHealer, HealerConfig, RetargetFn,
};
pub use remote::{RemoteConfig, RemoteShard, RemoteShardStats, RemoteTicket};
pub use router::{ClusterConfig, ClusterRouter, ClusterStats, SlotSpec, StatsSource};
pub use supervisor::{default_backend_binary, Supervisor, SupervisorConfig};
pub use topology::{Resolved, Source, Topology, TopologyError};
