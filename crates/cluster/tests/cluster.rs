//! Cluster acceptance tests: supervisor-spawned backend *processes*
//! on real TCP, pinned bit-for-bit against the single-process
//! `ShardRouter` path — including while a backend is killed mid-run —
//! plus stats fan-in and supervisor monitoring.

use econcast_cluster::{
    ClusterConfig, ClusterFront, ClusterRouter, FrontConfig, RemoteConfig, SlotSpec, Supervisor,
    SupervisorConfig,
};
use econcast_service::workload::mixed_batch;
use econcast_service::{
    PolicyClient, PolicyRequest, RouterConfig, ServiceConfig, ServiceStats, ShardRouter,
};
use std::path::Path;
use std::time::Duration;

/// The backend executable Cargo built for this crate's tests.
fn backend_bin() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_policy_backend"))
}

/// Per-shard service config shared by backends (their default), the
/// cluster fallback, and the single-process reference — the
/// bit-identical guarantee requires all three to match.
fn service_cfg() -> ServiceConfig {
    ServiceConfig::default()
}

fn cluster_cfg() -> ClusterConfig {
    ClusterConfig {
        service: service_cfg(),
        remote: RemoteConfig {
            dial_retries: 2,
            // Keep failover snappy in tests: one failure marks the
            // backend down, and it stays down (no reprobe racing the
            // assertions).
            unhealthy_after: 1,
            reprobe_after: Duration::from_secs(3600),
            ..RemoteConfig::default()
        },
        ..ClusterConfig::default()
    }
}

/// Asserts two responses carry identical payload bits (tier labels
/// may shift to `Exact`, the PR 3 socket-test convention).
fn assert_payload_identical(
    i: usize,
    wire: &econcast_service::WireResult,
    exp: &Result<econcast_service::PolicyResponse, econcast_service::ServiceError>,
) {
    let wire = wire
        .as_ref()
        .unwrap_or_else(|e| panic!("request {i}: caller-visible error {e:?}"));
    let exp = exp.as_ref().expect("reference served");
    assert_eq!(wire.policies.len(), exp.policies.len(), "request {i}");
    for (wp, np) in wire.policies.iter().zip(&exp.policies) {
        assert_eq!(wp.listen.to_bits(), np.listen.to_bits(), "request {i}");
        assert_eq!(wp.transmit.to_bits(), np.transmit.to_bits(), "request {i}");
    }
    assert_eq!(
        wire.throughput.to_bits(),
        exp.throughput.to_bits(),
        "request {i}"
    );
    assert_eq!(
        wire.cert_t_sigma.to_bits(),
        exp.certificate.t_sigma.to_bits(),
        "request {i}"
    );
    assert_eq!(
        wire.cert_oracle.to_bits(),
        exp.certificate.oracle.to_bits(),
        "request {i}"
    );
    assert_eq!(
        wire.cert_dual_upper.to_bits(),
        exp.certificate.dual_upper.to_bits(),
        "request {i}"
    );
    assert_eq!(wire.converged, exp.converged, "request {i}");
    // Tier labels may differ only where the exact tier is involved:
    // batching boundaries turn fresh serves into `Exact` replays
    // (the PR 3 socket convention), and failover re-serves turn
    // `Exact` replays back into fresh serves on the fallback's cold
    // caches (`Grid`/`ClosedForm`/`Solver`). Either way the LRU entry
    // *is* the producing tier's policy, so the payload asserts above
    // already pinned the bits.
    assert!(
        wire.tier == exp.tier
            || wire.tier == econcast_service::ServedTier::Exact
            || exp.tier == econcast_service::ServedTier::Exact,
        "request {i}: tier {:?} vs expected {:?}",
        wire.tier,
        exp.tier
    );
}

#[test]
fn two_backend_cluster_is_bit_identical_and_survives_a_kill() {
    // The acceptance batch: the canonical 256-request mix.
    let batch = mixed_batch(256);

    // Single-process reference: a ShardRouter over the same per-shard
    // config, serving the whole batch in one call.
    let reference = ShardRouter::new(RouterConfig {
        shards: 2,
        service: service_cfg(),
        ..RouterConfig::default()
    });
    let expected = reference.serve_batch(&batch);

    // The cluster: two supervisor-spawned backend processes behind a
    // front-end.
    let mut sup =
        Supervisor::spawn(backend_bin(), 2, SupervisorConfig::default()).expect("spawn backends");
    let slots: Vec<SlotSpec> = sup.addrs().into_iter().map(SlotSpec::Remote).collect();
    let front = ClusterFront::bind(
        "127.0.0.1:0",
        ClusterRouter::new(&slots, cluster_cfg()),
        FrontConfig::default(),
    )
    .expect("bind front")
    .spawn();

    let mut client = PolicyClient::connect(front.addr(), 64).expect("connect");
    assert_eq!(client.shards(), 2, "welcome advertises the slot count");

    // Serve in four 64-request chunks; kill backend 0 after the first
    // chunk — mid-run — and keep going. Every response must stay
    // bit-identical and error-free throughout.
    for (c, chunk) in batch.chunks(64).enumerate() {
        let got = client.serve_batch(chunk).expect("front round trip");
        assert_eq!(got.len(), chunk.len());
        for (k, wire) in got.iter().enumerate() {
            let i = c * 64 + k;
            assert_payload_identical(i, wire, &expected[i]);
        }
        if c == 0 {
            sup.kill(0).expect("kill backend 0");
            assert!(!sup.is_alive(0));
        }
    }

    // The failover really happened and was absorbed: requests landed
    // on the dead slot, were re-served locally, and none errored.
    let stats = {
        let router = front.router();
        let guard = router.lock().unwrap();
        guard.cluster_stats()
    };
    assert!(
        stats.local_fallbacks > 0,
        "the kill must have forced local re-serves: {stats:?}"
    );
    assert!(
        stats.backend_failures >= 1,
        "the dead backend failed a sub-batch"
    );
    assert_eq!(stats.healthy, vec![false, true], "slot 0 marked down");
    assert!(stats.remote_served > 0, "the live backend kept serving");
    assert_eq!(
        stats.routed.iter().sum::<u64>(),
        batch.len() as u64,
        "every valid request routed exactly once"
    );

    // Replace the dead backend (fresh process, fresh port), re-target
    // the slot, and verify traffic goes remote again — the full
    // operator loop: observe → respawn → retarget.
    let fresh_addr = sup.respawn(0).expect("respawn backend 0");
    {
        let router = front.router();
        let mut guard = router.lock().unwrap();
        assert!(guard.retarget_slot(0, fresh_addr));
    }
    let before = {
        let router = front.router();
        let guard = router.lock().unwrap();
        guard.cluster_stats().remote_served
    };
    let replay = client
        .serve_batch(&batch[..64])
        .expect("post-respawn batch");
    for (i, wire) in replay.iter().enumerate() {
        assert_payload_identical(i, wire, &expected[i]);
    }
    let stats = {
        let router = front.router();
        let guard = router.lock().unwrap();
        guard.cluster_stats()
    };
    assert!(
        stats.remote_served > before,
        "re-targeted slot serves remotely again: {stats:?}"
    );
    assert_eq!(stats.healthy, vec![true, true]);

    drop(client);
    front.shutdown();
}

#[test]
fn stats_fan_in_equals_the_sum_of_backend_stats() {
    let sup =
        Supervisor::spawn(backend_bin(), 2, SupervisorConfig::default()).expect("spawn backends");
    let slots: Vec<SlotSpec> = sup.addrs().into_iter().map(SlotSpec::Remote).collect();
    let front = ClusterFront::bind(
        "127.0.0.1:0",
        ClusterRouter::new(&slots, cluster_cfg()),
        FrontConfig::default(),
    )
    .expect("bind front")
    .spawn();

    let batch = mixed_batch(64);
    let mut client = PolicyClient::connect(front.addr(), 64).expect("connect");
    let out = client.serve_batch(&batch).expect("serve");
    assert!(out.iter().all(Result::is_ok));

    // Cluster-wide fan-in over the wire (the front's aggregate)…
    let aggregate = client.stats(None).expect("aggregate stats");

    // …must equal the sum of what each backend reports when asked
    // directly, plus the (here idle) fallback solver.
    let mut summed = ServiceStats::default();
    for i in 0..sup.len() {
        let mut direct = PolicyClient::connect(sup.addr(i), 1).expect("connect backend");
        summed.merge(&direct.stats(None).expect("backend stats"));
    }
    // The front's admission overlay rides the aggregate: closed-loop
    // traffic well under the queue bound sheds and degrades nothing,
    // but the front's queue peak (the whole pipelined batch) joins
    // the backends' peaks via max.
    assert_eq!(aggregate.shed_rejects, summed.shed_rejects);
    assert_eq!(aggregate.degraded_serves, summed.degraded_serves);
    assert_eq!(aggregate.deadline_expired, summed.deadline_expired);
    assert!(
        aggregate.queue_depth_peak >= summed.queue_depth_peak
            && aggregate.queue_depth_peak <= batch.len() as u64,
        "front peak {} vs backend peak {}",
        aggregate.queue_depth_peak,
        summed.queue_depth_peak
    );
    let mut tiers_only = aggregate;
    tiers_only.queue_depth_peak = summed.queue_depth_peak;
    assert_eq!(tiers_only, summed, "fan-in must equal the backend sum");
    assert_eq!(aggregate.requests, batch.len() as u64);

    // Per-slot stats ride the same path: shard i = backend i.
    let mut per_slot = ServiceStats::default();
    for s in 0..client.shards() {
        per_slot.merge(&client.stats(Some(s)).expect("slot stats"));
    }
    assert_eq!(per_slot, summed);

    // A ping through the front is answered and stat-free.
    client.ping().expect("front pong");
    assert_eq!(
        client.stats(None).expect("stats").requests,
        batch.len() as u64
    );

    // The robustness counters are distribution-layer facts: backends
    // report them as zero (so the sum equality above holds), and the
    // front overlays the router's values onto the wire aggregate.
    assert_eq!(aggregate.auto_respawns, 0);
    assert_eq!(aggregate.quarantines, 0);
    assert_eq!(aggregate.reshard_handoffs, 0);
    assert_eq!(aggregate.injected_faults, 0);
    {
        let router = front.router();
        let mut guard = router.lock().unwrap();
        guard.note_auto_respawn();
        guard.note_reshard_handoff();
        guard
            .injected_fault_counter()
            .fetch_add(3, std::sync::atomic::Ordering::Relaxed);
    }
    let overlaid = client.stats(None).expect("overlaid aggregate");
    assert_eq!(overlaid.auto_respawns, 1);
    assert_eq!(overlaid.quarantines, 0);
    assert_eq!(overlaid.reshard_handoffs, 1);
    assert_eq!(overlaid.injected_faults, 3);
    // …while a backend asked directly still knows nothing of them.
    let direct = PolicyClient::connect(sup.addr(0), 1)
        .expect("connect backend")
        .stats(None)
        .expect("backend stats");
    assert_eq!(direct.auto_respawns, 0);
    assert_eq!(direct.injected_faults, 0);

    drop(client);
    front.shutdown();
    drop(sup);
}

#[test]
fn supervisor_monitors_and_replaces_children() {
    let mut sup = Supervisor::spawn(
        backend_bin(),
        2,
        SupervisorConfig {
            backend_shards: 1,
            workers: Some(1),
            ..SupervisorConfig::default()
        },
    )
    .expect("spawn backends");
    assert_eq!(sup.len(), 2);
    assert_eq!(sup.alive_count(), 2);
    let old_addr = sup.addr(0);

    sup.kill(0).expect("kill");
    assert!(!sup.is_alive(0));
    assert_eq!(sup.alive_count(), 1);
    sup.kill(0).expect("idempotent kill");

    // The survivor still serves (straight to the backend, no front).
    let mut direct = PolicyClient::connect(sup.addr(1), 1).expect("connect survivor");
    direct.ping().expect("survivor pong");
    let out = direct
        .serve_batch(&mixed_batch(1))
        .expect("survivor serves");
    assert!(out[0].is_ok());

    // Respawn gives a fresh, live process (ephemeral port ⇒ the
    // address may differ; the important part is that it answers).
    let fresh = sup.respawn(0).expect("respawn");
    assert!(sup.is_alive(0));
    assert_eq!(sup.alive_count(), 2);
    assert_eq!(sup.addr(0), fresh);
    let mut revived = PolicyClient::connect(fresh, 1).expect("connect respawned");
    revived.ping().expect("respawned pong");
    let _ = old_addr; // the old address is dead; nothing to assert on it
}

/// A mixed local + remote topology serves the same bits as all-local.
#[test]
fn mixed_local_remote_topology_is_bit_identical() {
    let sup =
        Supervisor::spawn(backend_bin(), 1, SupervisorConfig::default()).expect("spawn backend");
    let slots = [SlotSpec::Remote(sup.addr(0)), SlotSpec::Local];
    let mut cluster = ClusterRouter::new(&slots, cluster_cfg());

    let batch: Vec<PolicyRequest> = mixed_batch(48);
    let reference = ShardRouter::new(RouterConfig {
        shards: 2,
        service: service_cfg(),
        ..RouterConfig::default()
    });
    let expected = reference.serve_batch(&batch);

    let got = cluster.serve_batch(&batch);
    for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
        let (g, e) = (g.as_ref().unwrap(), e.as_ref().unwrap());
        assert_eq!(
            g.throughput.to_bits(),
            e.throughput.to_bits(),
            "request {i}"
        );
        for (gp, ep) in g.policies.iter().zip(&e.policies) {
            assert_eq!(gp.listen.to_bits(), ep.listen.to_bits(), "request {i}");
            assert_eq!(gp.transmit.to_bits(), ep.transmit.to_bits(), "request {i}");
        }
    }
    let stats = cluster.cluster_stats();
    assert!(stats.remote_served > 0, "remote slot took traffic");
    assert!(stats.local_served > 0, "local slot took traffic");
    assert_eq!(stats.local_fallbacks, 0);
}

/// Topology discovery feeds a real front: addresses from the layered
/// config (CLI beating env) dial supervisor-spawned backends, the
/// discovered `FrontConfig` carries the overload knobs, and the served
/// bits match the single-process reference.
#[test]
fn discovered_topology_serves_through_a_real_front() {
    use econcast_cluster::{Source, Topology};

    let sup =
        Supervisor::spawn(backend_bin(), 2, SupervisorConfig::default()).expect("spawn backends");
    let addrs = sup.addrs();
    let cli = vec![
        "--backends".to_string(),
        format!("{},{}", addrs[0], addrs[1]),
        "--queue-capacity".to_string(),
        "64".to_string(),
    ];
    // The env layer offers a bogus backend list; the CLI layer must
    // win, and provenance must say so.
    let env = |var: &str| (var == "ECONCAST_CLUSTER_BACKENDS").then(|| "127.0.0.1:1".to_string());
    let topo = Topology::discover(None, env, &cli).expect("discover");
    assert_eq!(topo.backends.source, Source::Cli("--backends".into()));
    assert_eq!(topo.queue_capacity.value, 64);

    let slots = topo.slot_specs().expect("resolve backends");
    assert_eq!(slots.len(), 2);
    let front = ClusterFront::bind(
        topo.listen.value.as_str(),
        ClusterRouter::new(&slots, cluster_cfg()),
        topo.front_config(),
    )
    .expect("bind front")
    .spawn();

    let batch = mixed_batch(48);
    let reference = ShardRouter::new(RouterConfig {
        shards: 2,
        service: service_cfg(),
        ..RouterConfig::default()
    });
    let expected = reference.serve_batch(&batch);

    let mut client = PolicyClient::connect(front.addr(), 64).expect("connect");
    let got = client.serve_batch(&batch).expect("serve");
    for (i, wire) in got.iter().enumerate() {
        assert_payload_identical(i, wire, &expected[i]);
    }

    // The discovered backends really served it — no silent fallback.
    let stats = {
        let router = front.router();
        let guard = router.lock().unwrap();
        guard.cluster_stats()
    };
    assert_eq!(stats.local_fallbacks, 0, "{stats:?}");
    assert!(stats.remote_served >= batch.len() as u64, "{stats:?}");

    drop(client);
    front.shutdown();
}
