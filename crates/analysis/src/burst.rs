//! Analytical average burst length (Appendix E; Fig. 4).
//!
//! At the (P4) optimum π*, the average number of packets per channel
//! capture is
//!
//! ```text
//! B_g = Σ_{w∈W'} π*_w  /  Σ_{w∈W'} π*_w e^{−c_w/σ}        (34)
//! B_a = e^{1/σ}                                           (35)
//! ```
//!
//! with `W' = {w : ν_w = 1, c_w ≥ 1}`. The groupput burst length grows
//! dramatically as σ falls (e.g. 85 packets at σ = 0.25, N = 10 —
//! 4·10⁵ at σ = 0.1, Section VII-D), which is why small-σ simulations
//! stop converging in reasonable time.

use econcast_core::{NodeParams, ThroughputMode};
use econcast_statespace::HomogeneousP4;

/// One point of the Fig. 4 curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstPoint {
    /// Temperature σ.
    pub sigma: f64,
    /// Average burst length `B` (packets per capture).
    pub burst_length: f64,
    /// The achievable throughput `T^σ` at the same optimum (useful for
    /// annotating the tradeoff).
    pub throughput: f64,
}

/// The anyput burst length, eq. (35): `B_a = e^{1/σ}` regardless of
/// `N`, ρ, L, X.
pub fn anyput_burst_length(sigma: f64) -> f64 {
    assert!(sigma > 0.0 && sigma.is_finite());
    (1.0 / sigma).exp()
}

/// Computes the groupput burst curve `σ ↦ B_g` for a homogeneous
/// network by solving (P4) at each σ and applying (34).
pub fn groupput_burst_curve(n: usize, params: NodeParams, sigmas: &[f64]) -> Vec<BurstPoint> {
    sigmas
        .iter()
        .map(|&sigma| {
            let sol = HomogeneousP4::new(n, params, sigma, ThroughputMode::Groupput).solve();
            BurstPoint {
                sigma,
                burst_length: sol
                    .summary
                    .average_burst_length()
                    .expect("burst states always have mass for n ≥ 2"),
                throughput: sol.throughput,
            }
        })
        .collect()
}

/// The anyput burst curve (trivially (35), provided for symmetric
/// plotting code).
pub fn anyput_burst_curve(sigmas: &[f64]) -> Vec<BurstPoint> {
    sigmas
        .iter()
        .map(|&sigma| BurstPoint {
            sigma,
            burst_length: anyput_burst_length(sigma),
            throughput: f64::NAN, // not meaningful without network parameters
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> NodeParams {
        NodeParams::from_microwatts(10.0, 500.0, 500.0)
    }

    #[test]
    fn anyput_burst_is_exponential_in_inverse_sigma() {
        assert!((anyput_burst_length(1.0) - std::f64::consts::E).abs() < 1e-12);
        assert!((anyput_burst_length(0.5) - (2.0f64).exp()).abs() < 1e-12);
        assert!((anyput_burst_length(0.25) - (4.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn groupput_burst_grows_as_sigma_falls() {
        let curve = groupput_burst_curve(5, params(), &[0.75, 0.5, 0.375, 0.25]);
        for pair in curve.windows(2) {
            assert!(
                pair[1].burst_length > pair[0].burst_length,
                "burst not increasing: {pair:?}"
            );
            assert!(
                pair[1].throughput > pair[0].throughput,
                "throughput not increasing as σ falls: {pair:?}"
            );
        }
    }

    #[test]
    fn burst_exceeds_anyput_counterpart_for_multiple_listeners() {
        // With several listeners the groupput capture rate e^{−c/σ}
        // shrinks below e^{−1/σ}, so B_g ≥ B_a at the same σ.
        let bg = groupput_burst_curve(10, params(), &[0.25])[0].burst_length;
        let ba = anyput_burst_length(0.25);
        assert!(bg > ba, "B_g {bg} ≤ B_a {ba}");
    }

    #[test]
    fn paper_magnitude_sigma_025_n10() {
        // Section VII-D quotes ~85 packets for σ = 0.25, N = 10; our
        // substrate should land in the same decade.
        let bg = groupput_burst_curve(10, params(), &[0.25])[0].burst_length;
        assert!(
            (30.0..300.0).contains(&bg),
            "B_g at σ=0.25, N=10 is {bg}, expected order of 85"
        );
    }

    #[test]
    fn burst_length_at_least_one() {
        for sigma in [0.25, 0.5, 1.0, 2.0] {
            let b = groupput_burst_curve(3, params(), &[sigma])[0].burst_length;
            assert!(b >= 1.0, "σ={sigma}: burst {b} < 1");
        }
    }

    #[test]
    fn anyput_curve_matches_pointwise_function() {
        let sigmas = [0.2, 0.4, 0.8];
        let curve = anyput_burst_curve(&sigmas);
        for (p, &s) in curve.iter().zip(&sigmas) {
            assert_eq!(p.sigma, s);
            assert!((p.burst_length - anyput_burst_length(s)).abs() < 1e-12);
        }
    }
}
