//! The sharded TCP policy server end-to-end: spawn a 3-shard server
//! on a loopback socket, handshake, round-trip a 256-request mixed
//! batch over real TCP, and pin the responses bit-for-bit against an
//! in-process `PolicyService` serving the same batch.
//!
//! ```text
//! cargo run --release --example policy_server
//! ```

use econcast::service::workload::mixed_batch;
use econcast::service::{
    PolicyClient, PolicyServer, PolicyService, RouterConfig, ServerConfig, ServiceConfig,
};

fn main() {
    // The canonical 256-request mixed acceptance batch — the exact
    // workload the root tests pin across worker counts.
    let batch = mixed_batch(256);

    // In-process reference: one service, same per-shard config.
    let mut single = PolicyService::new(ServiceConfig::default());
    let expected = single.serve_batch(&batch);

    // The deployment: 3 shards behind a TCP listener.
    let server = PolicyServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            router: RouterConfig {
                shards: 3,
                ..RouterConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let handle = server.spawn();
    println!("policy server listening on {} with 3 shards", handle.addr());

    let mut client = PolicyClient::connect(handle.addr(), 256).expect("connect");
    println!(
        "handshake: server advertises {} shards, batch cap {}",
        client.shards(),
        client.server_max_batch()
    );

    let replies = client.serve_batch(&batch).expect("serve 256 over TCP");
    assert_eq!(replies.len(), batch.len());

    // Pin: the TCP/sharded path returns bit-identical policies,
    // throughputs, and certificates. (Only the tier *label* may read
    // `Exact` where the in-process single batch said `Solver` etc.,
    // when TCP segmentation splits the pipeline into sub-batches.)
    let mut mismatches = 0;
    for (wire, exp) in replies.iter().zip(&expected) {
        let (wire, exp) = (
            wire.as_ref().expect("served"),
            exp.as_ref().expect("served"),
        );
        let same = wire.throughput.to_bits() == exp.throughput.to_bits()
            && wire.policies.len() == exp.policies.len()
            && wire.policies.iter().zip(&exp.policies).all(|(w, n)| {
                w.listen.to_bits() == n.listen.to_bits()
                    && w.transmit.to_bits() == n.transmit.to_bits()
            })
            && wire.cert_t_sigma.to_bits() == exp.certificate.t_sigma.to_bits()
            && wire.cert_oracle.to_bits() == exp.certificate.oracle.to_bits()
            && wire.cert_dual_upper.to_bits() == exp.certificate.dual_upper.to_bits();
        mismatches += usize::from(!same);
    }
    assert_eq!(mismatches, 0, "sharded responses diverged from in-process");
    println!("256/256 responses bit-identical to the in-process service");

    // Where did the work land? Ask the server over the wire.
    for shard in 0..client.shards() {
        let s = client.stats(Some(shard)).expect("shard stats");
        println!(
            "shard {shard}: {:>3} requests | exact {:>2} · grid {:>2} · closed-form {:>2} · \
             solver {:>2} · dedup {:>2} | lru {} entries",
            s.requests,
            s.exact_hits,
            s.grid_hits,
            s.closed_form_hits,
            s.solver_solves,
            s.batch_dedup_hits,
            s.lru_len,
        );
    }
    let total = client.stats(None).expect("aggregate stats");
    println!(
        "aggregate: {} requests across {} shards, {} served solver-free",
        total.requests,
        client.shards(),
        total.solver_free(),
    );

    // Warm replay: every shard answers from its exact tier.
    let before = total;
    client.serve_batch(&batch).expect("warm replay");
    let after = client.stats(None).expect("aggregate stats");
    assert_eq!(after.exact_hits - before.exact_hits, 256);
    println!("warm replay served 256/256 from the shards' exact tiers");

    drop(client);
    handle.shutdown();
}
