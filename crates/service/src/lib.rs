//! # econcast-service — the batched policy-serving subsystem
//!
//! The paper's (P4) solver tells a power-budgeted node its optimal
//! listen/transmit policy; this crate turns the fast kernels built on
//! it into a request/response *service*: accept
//! `PolicyRequest { budgets ρ_i, objective, σ, tolerance }` batches,
//! return per-node `(listen, transmit)` policies plus the
//! weak-duality achievability certificate of `econcast-oracle::gap`.
//!
//! ## The tier ladder
//!
//! Every request walks a multi-tier policy cache, cheapest tier first:
//!
//! | tier | serves | cost | accuracy |
//! |------|--------|------|----------|
//! | **Exact** (LRU) | any previously-solved canonical instance | O(1) lookup | bit-identical to the producing solve |
//! | **Grid** | homogeneous cliques with ρ inside the precomputed (N, ρ) grid | one Gibbs evaluation | midpoint-certified ≤ tolerance tier |
//! | **ClosedForm** | any homogeneous clique | scalar-dual bisection, O(N log) | exact symmetric optimum |
//! | **Solver** | heterogeneous instances up to the enumeration ceiling | full (P4) dual descent | dual residual ≤ tolerance tier |
//!
//! Instances are canonicalized before keying (budgets sorted,
//! tolerance quantized onto decade tiers — see
//! `econcast_statespace::instance`), so permutations of one instance
//! share a cache entry; responses are always rotated back into the
//! caller's node order. Per-tier hit counters are exposed as a
//! [`ServiceStats`] snapshot.
//!
//! ## Batching
//!
//! [`PolicyService::serve_batch`] deduplicates canonically-identical
//! requests within a batch and fans the remaining independent solves
//! across `econcast-parallel` workers, one reusable solver workspace
//! pool per worker. Responses are **bit-identical at any worker
//! count** and come back in request order.
//!
//! ## Wire API
//!
//! [`WireServer`] exposes the whole thing over the versioned,
//! CRC-checked `econcast-proto::service` message family on a
//! length-prefixed byte stream.
//!
//! ## Deployment layer
//!
//! [`PolicyServer`] is the network-facing build of the same stack: a
//! `std::net` TCP acceptor (thread-per-connection, bounded pool) in
//! front of a [`ShardRouter`] that consistent-hashes canonical
//! instance keys across several `PolicyService` shards, keeping each
//! shard's LRU/grid caches hot and disjoint; [`PolicyClient`] is the
//! matching blocking client, and [`prewarm`] builds interpolation
//! grids in the background from each shard's observed request mix.

pub mod admission;
pub mod cache;
pub mod client;
pub mod grid;
pub mod metrics;
pub mod prewarm;
pub mod ready;
pub mod request;
pub mod server;
pub mod service;
pub mod shard;
pub mod stats;
pub mod wire;
pub mod workload;

pub use admission::{degraded_tolerance, Admission, AdmissionController};
pub use cache::{CachedPolicy, LruCache};
pub use client::{PolicyClient, Ticket, WireResult};
pub use econcast_trace::TraceConfig;
pub use grid::{FamilyKey, GridConfig, PolicyGrid};
pub use metrics::{snapshot_from_wire, snapshot_to_wire};
pub use prewarm::{mix_from_wire, mix_to_wire, MixRecorder, PrewarmConfig};
pub use request::{NodePolicy, PolicyRequest, PolicyResponse, ServiceError};
pub use server::{
    serve_connection, serve_connection_admitted, serve_connection_gated, serve_connection_opts,
    ConnOptions, PolicyServer, ServeTarget, ServerConfig, ServerHandle,
};
pub use service::{PolicyService, ServiceConfig};
pub use shard::{RouterConfig, ShardRouter};
pub use stats::ServiceStats;
pub use wire::WireServer;

// The tier and kernel discriminants live in the proto crate (they
// are part of the wire format); re-export them as native API too.
pub use econcast_proto::service::{PolicyKernel, ServedTier, ServiceErrorCode};
