//! Gossip dissemination: the anyput use case.
//!
//! In delay-tolerant gossip a node only needs *some* receiver per
//! transmission — information hops store-and-forward style. We run
//! EconCast-C in anyput mode with the delivery log on, then replay the
//! log as a rumor: node 0 knows a datum at t = 0; every node that has
//! the datum infects the receivers of its transmissions. The metric is
//! the time until the whole network is infected, compared across
//! anyput and groupput modes — anyput spends its budget on more
//! transmissions (`β* = ρ/(X+L)` vs `ρ/(X+(N−1)L)`), which is exactly
//! why it suits gossip.
//!
//! ```text
//! cargo run --release --example gossip_dissemination
//! ```

use econcast::core::{NodeParams, ProtocolConfig, ThroughputMode};
use econcast::sim::{SimConfig, SimReport, Simulator};
use econcast::statespace::HomogeneousP4;

fn run_mode(mode: ThroughputMode, n: usize, sigma: f64, seed: u64) -> SimReport {
    let params = NodeParams::from_microwatts(10.0, 500.0, 500.0);
    let protocol = match mode {
        ThroughputMode::Groupput => ProtocolConfig::capture_groupput(sigma),
        ThroughputMode::Anyput => ProtocolConfig::capture_anyput(sigma),
    };
    let mut cfg = SimConfig::ideal_clique(n, params, protocol, 3_000_000.0, seed);
    cfg.eta0 = HomogeneousP4::new(n, params, sigma, mode).solve().eta;
    cfg.warmup = 0.0;
    cfg.record_deliveries = true;
    Simulator::new(cfg).expect("valid config").run()
}

/// Replays the delivery log as a rumor starting at node 0; returns the
/// time each node first learned it.
fn infection_times(report: &SimReport, n: usize) -> Vec<f64> {
    let mut infected_at = vec![f64::INFINITY; n];
    infected_at[0] = 0.0;
    for d in &report.deliveries {
        if infected_at[d.source] <= d.time {
            for rx in d.receiver_ids() {
                if d.time < infected_at[rx] {
                    infected_at[rx] = d.time;
                }
            }
        }
    }
    infected_at
}

fn main() {
    let (n, sigma) = (8usize, 0.5);
    println!("rumor spreading over EconCast, N = {n}, σ = {sigma}, 1 ms packets\n");
    for (label, mode) in [
        ("anyput  ", ThroughputMode::Anyput),
        ("groupput", ThroughputMode::Groupput),
    ] {
        // Average over a few seeds — single gossip runs are noisy.
        let mut completion = Vec::new();
        let mut transmissions = Vec::new();
        for seed in 0..5u64 {
            let report = run_mode(mode, n, sigma, 0x905517 + seed);
            let times = infection_times(&report, n);
            let done = times.iter().cloned().fold(0.0f64, f64::max);
            if done.is_finite() {
                completion.push(done);
            }
            transmissions.push(report.packets_transmitted as f64 / report.elapsed);
        }
        let mean_done = completion.iter().sum::<f64>() / completion.len().max(1) as f64;
        let mean_tx = transmissions.iter().sum::<f64>() / transmissions.len() as f64;
        println!(
            "{label}: full dissemination in {:>7.1} s (mean of {} runs); {:.4} packets sent per packet-time",
            mean_done * 1e-3,
            completion.len(),
            mean_tx
        );
    }
    println!(
        "\nanyput converts the same power budget into more transmission opportunities,\n\
         finishing the gossip sooner — the Section I motivation for the second objective."
    );
}
