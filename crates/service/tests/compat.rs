//! Cross-version wire interop: v4-, v5- and v6-era clients against
//! today's v7 server, and today's client against a v4-pinned server,
//! must all negotiate down and round-trip a mixed batch bit-identical
//! to the in-process service — overload control (wire v6) and the
//! metrics plane (wire v7) must be invisible to a closed-loop legacy
//! peer, and v7 frames must never reach a pre-v7 connection.

use econcast_proto::service::WIRE_VERSION;
use econcast_service::workload::mixed_batch;
use econcast_service::{
    PolicyClient, PolicyResponse, PolicyServer, PolicyService, RouterConfig, ServerConfig,
    ServiceConfig, ServiceError,
};

fn server(max_wire_version: u8) -> ServerConfig {
    ServerConfig {
        router: RouterConfig {
            shards: 2,
            service: ServiceConfig {
                workers: Some(1),
                ..ServiceConfig::default()
            },
            ..RouterConfig::default()
        },
        background_prewarm: false,
        max_wire_version,
        ..ServerConfig::default()
    }
}

fn reference(
    batch: &[econcast_service::PolicyRequest],
) -> Vec<Result<PolicyResponse, ServiceError>> {
    PolicyService::new(ServiceConfig {
        workers: Some(1),
        ..ServiceConfig::default()
    })
    .serve_batch(batch)
}

fn assert_payload_bits(
    got: &[econcast_service::WireResult],
    expected: &[Result<PolicyResponse, ServiceError>],
) {
    assert_eq!(got.len(), expected.len());
    for (i, (wire, exp)) in got.iter().zip(expected).enumerate() {
        let (wire, exp) = (wire.as_ref().unwrap(), exp.as_ref().unwrap());
        assert_eq!(wire.policies.len(), exp.policies.len(), "request {i}");
        for (wp, np) in wire.policies.iter().zip(&exp.policies) {
            assert_eq!(wp.listen.to_bits(), np.listen.to_bits(), "request {i}");
            assert_eq!(wp.transmit.to_bits(), np.transmit.to_bits(), "request {i}");
        }
        assert_eq!(
            wire.throughput.to_bits(),
            exp.throughput.to_bits(),
            "request {i}"
        );
        assert_eq!(
            wire.cert_t_sigma.to_bits(),
            exp.certificate.t_sigma.to_bits(),
            "request {i}"
        );
        assert_eq!(
            wire.cert_oracle.to_bits(),
            exp.certificate.oracle.to_bits(),
            "request {i}"
        );
        assert_eq!(
            wire.cert_dual_upper.to_bits(),
            exp.certificate.dual_upper.to_bits(),
            "request {i}"
        );
        assert_eq!(wire.converged, exp.converged, "request {i}");
    }
}

#[test]
fn v4_client_against_current_server() {
    // A client pinned to wire v4 — on-the-wire identical to the
    // pre-pipelining binary — gets served by today's server: the
    // welcome downgrades the connection and the batch round-trips
    // bit-identical, with no correlation ids anywhere on the stream.
    assert_eq!(WIRE_VERSION, 7, "test written against wire v7");
    let batch = mixed_batch(24);
    let expected = reference(&batch);

    let handle = PolicyServer::bind("127.0.0.1:0", server(WIRE_VERSION))
        .expect("bind")
        .spawn();
    let mut client =
        PolicyClient::connect_versioned(handle.addr(), batch.len() as u16, 4).expect("connect v4");
    assert_eq!(client.wire_version(), 4, "server honors the v4 hello");

    let got = client.serve_batch(&batch).expect("round trip at v4");
    assert_payload_bits(&got, &expected);

    // Control plane still works on the downgraded connection.
    client.ping().expect("ping at v4");
    drop(client);
    handle.shutdown();
}

#[test]
fn v5_client_against_v6_server() {
    // A v5-pinned client (the PR-8 pipelined binary: correlation ids,
    // no deadline slot) against today's v6 server. Closed-loop — the
    // admission ladder never fires — so every reply must be
    // bit-identical to the in-process service, and the pipelined
    // ticket path must behave exactly as it did at v5.
    let batch = mixed_batch(24);
    let expected = reference(&batch);

    let handle = PolicyServer::bind("127.0.0.1:0", server(WIRE_VERSION))
        .expect("bind")
        .spawn();
    let mut client =
        PolicyClient::connect_versioned(handle.addr(), batch.len() as u16, 5).expect("connect v5");
    assert_eq!(client.wire_version(), 5, "server honors the v5 hello");

    let got = client.serve_batch(&batch).expect("round trip at v5");
    assert_payload_bits(&got, &expected);

    // Pipelined tickets interleave exactly like they did against a
    // v5 server.
    let (a, b) = batch.split_at(12);
    let ta = client.submit_batch(a).expect("submit a");
    let tb = client.submit_batch(b).expect("submit b");
    let got_b = client.collect(tb).expect("collect b");
    let got_a = client.collect(ta).expect("collect a");
    assert_payload_bits(&got_a, &expected[..12]);
    assert_payload_bits(&got_b, &expected[12..]);

    client.ping().expect("ping at v5");
    drop(client);
    handle.shutdown();
}

#[test]
fn v6_client_against_v7_server_sees_no_v7_frames() {
    // A v6-pinned client (the PR-9 overload-control binary) against
    // today's v7 server: the batch round-trips bit-identical, and the
    // metrics plane stays invisible — the client refuses to send the
    // v7 scrape pair on a v6 connection, so no v7 frame ever rides
    // the stream in either direction.
    let batch = mixed_batch(24);
    let expected = reference(&batch);

    let handle = PolicyServer::bind("127.0.0.1:0", server(WIRE_VERSION))
        .expect("bind")
        .spawn();
    let mut client =
        PolicyClient::connect_versioned(handle.addr(), batch.len() as u16, 6).expect("connect v6");
    assert_eq!(client.wire_version(), 6, "server honors the v6 hello");

    let got = client.serve_batch(&batch).expect("round trip at v6");
    assert_payload_bits(&got, &expected);

    let err = client
        .metrics()
        .expect_err("metrics scrape must refuse a v6 connection");
    assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);

    // The refusal sent nothing: the connection is still healthy.
    client.ping().expect("ping at v6");
    let got = client.serve_batch(&batch).expect("still serving at v6");
    assert_payload_bits(&got, &expected);
    drop(client);
    handle.shutdown();
}

#[test]
fn v6_client_against_v4_server() {
    // Today's client dials a server pinned to wire v4 (emulating an
    // older binary: it rejects the v5 hello outright). The client's
    // fallback redial lands the connection at v4 and the batch still
    // round-trips bit-identical.
    let batch = mixed_batch(24);
    let expected = reference(&batch);

    let handle = PolicyServer::bind("127.0.0.1:0", server(4))
        .expect("bind")
        .spawn();
    let mut client = PolicyClient::connect(handle.addr(), batch.len() as u16).expect("connect");
    assert_eq!(client.wire_version(), 4, "fallback redial negotiated v4");

    let got = client.serve_batch(&batch).expect("round trip at v4");
    assert_payload_bits(&got, &expected);

    // Pipelined tickets still work at v4 — replies are routed by id
    // range when the peer stamps no correlation ids.
    let (a, b) = batch.split_at(12);
    let ta = client.submit_batch(a).expect("submit a");
    let tb = client.submit_batch(b).expect("submit b");
    let got_b = client.collect(tb).expect("collect b");
    let got_a = client.collect(ta).expect("collect a");
    assert_payload_bits(&got_a, &expected[..12]);
    assert_payload_bits(&got_b, &expected[12..]);

    drop(client);
    handle.shutdown();
}
