//! Fig. 2: sensitivity of `T^σ/T*` to network heterogeneity.
//!
//! For each `h ∈ {10, 50, 100, 150, 200, 250}` and
//! `σ ∈ {0.1, 0.25, 0.5}`, sample `N = 5` heterogeneous networks
//! (1000 samples at full scale), solve (P4) for `T^σ` and (P2)/(P3)
//! for the oracle, and average the ratio. Paper findings to reproduce:
//! the ratio depends heavily on σ (→ 1 as σ → 0) and only weakly on
//! `h`; the anyput ratio slightly exceeds the groupput ratio at
//! `h = 10`.

use crate::Scale;
use econcast_analysis::{mean_and_ci95, HeterogeneitySampler, PAPER_H_VALUES};
use econcast_core::ThroughputMode;
use econcast_oracle::{oracle_anyput, oracle_groupput};
use econcast_statespace::{solve_p4, P4Options};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 5;

fn ratio_samples(h: f64, sigma: f64, mode: ThroughputMode, samples: usize) -> Vec<f64> {
    // Fan out across the shared worker pool; each worker gets a
    // deterministic seed and results are concatenated in worker order,
    // so the full run is reproducible at any thread count.
    let workers = 4usize;
    let per = samples.div_ceil(workers);
    econcast_parallel::run(workers, |w| {
        let mut rng = StdRng::seed_from_u64(0xF16_2 + 1000 * w as u64);
        let sampler = HeterogeneitySampler::new(h);
        let mut out = Vec::with_capacity(per);
        for _ in 0..per {
            let nodes = sampler.sample_network(&mut rng, N);
            let oracle = match mode {
                ThroughputMode::Groupput => oracle_groupput(&nodes).throughput,
                ThroughputMode::Anyput => oracle_anyput(&nodes).throughput,
            };
            if oracle <= 0.0 {
                continue;
            }
            let t = solve_p4(&nodes, sigma, mode, P4Options::fast()).throughput;
            out.push(t / oracle);
        }
        out
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Runs the experiment.
pub fn run(scale: Scale) -> String {
    let samples = scale.samples(1000);
    let sigmas = [0.1, 0.25, 0.5];
    let mut out = String::new();
    out.push_str(&format!(
        "Fig. 2 — T^σ/T* vs heterogeneity h (N = {N}, {samples} samples/point)\n"
    ));
    out.push_str("paper: ratio rises as σ falls (→1 as σ→0), nearly flat in h;\n");
    out.push_str("       anyput ratio slightly above groupput at h = 10\n\n");
    for (label, mode) in [
        ("groupput", ThroughputMode::Groupput),
        ("anyput", ThroughputMode::Anyput),
    ] {
        out.push_str(&format!("[{label}]\n      h:"));
        for h in PAPER_H_VALUES {
            out.push_str(&format!("  {h:>11.0}"));
        }
        out.push('\n');
        for sigma in sigmas {
            out.push_str(&format!("σ={sigma:<4}:"));
            for h in PAPER_H_VALUES {
                let rs = ratio_samples(h, sigma, mode, samples);
                let (mean, ci) = mean_and_ci95(&rs);
                out.push_str(&format!("  {mean:.3}±{ci:.3}"));
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_point_ordering() {
        // At h = 10 (homogeneous), smaller σ must give a higher ratio.
        let lo = ratio_samples(10.0, 0.5, ThroughputMode::Groupput, 3);
        let hi = ratio_samples(10.0, 0.25, ThroughputMode::Groupput, 3);
        let (m_lo, _) = mean_and_ci95(&lo);
        let (m_hi, _) = mean_and_ci95(&hi);
        assert!(m_hi > m_lo, "σ=0.25 ratio {m_hi} ≤ σ=0.5 ratio {m_lo}");
        assert!(m_lo > 0.0 && m_hi <= 1.0 + 1e-9);
    }
}
