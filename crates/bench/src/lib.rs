//! # econcast-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation
//! (Sections VII–VIII). Each experiment lives in its own module under
//! [`experiments`], exposes a `run(scale) -> String` function that
//! returns the formatted rows/series the paper reports, and is wired
//! into the `repro` binary:
//!
//! ```text
//! cargo run -p econcast-bench --release --bin repro -- all
//! cargo run -p econcast-bench --release --bin repro -- fig3 --quick
//! ```
//!
//! `--quick` shrinks sample counts and simulated durations by roughly
//! an order of magnitude for smoke runs; the default scale matches the
//! fidelity targets recorded in `EXPERIMENTS.md`.
//!
//! Criterion micro-benchmarks for the computational kernels (simplex,
//! state-space enumeration, Gibbs summaries, the simulator event loop)
//! live in `benches/microbench.rs`.

pub mod experiments;
pub mod gate;
pub mod metrics_smoke;
pub mod openloop;
pub mod perf;
pub mod timing;
pub mod top;
pub mod trace_demo;

/// Experiment fidelity scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-fidelity sample counts and durations.
    Full,
    /// ~10× cheaper smoke runs for CI.
    Quick,
}

impl Scale {
    /// Multiplies a full-scale count down for quick runs.
    pub fn samples(&self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / 10).max(3),
        }
    }

    /// Multiplies a full-scale duration down for quick runs.
    pub fn duration(&self, full: f64) -> f64 {
        match self {
            Scale::Full => full,
            Scale::Quick => full / 10.0,
        }
    }
}
