//! End-to-end acceptance tests for the policy-serving subsystem:
//! a 256-request mixed batch must be answered bit-identically at any
//! worker count, warm-cache exact-tier hits must skip the solvers
//! entirely, and the wire front-end must agree with the native path.

use econcast::proto::service::{ServiceCodec, ServiceMessage};
use econcast::service::{
    PolicyRequest, PolicyResponse, PolicyService, ServedTier, ServiceConfig, ServiceError,
    WireServer,
};

const L: f64 = 500e-6;
const X: f64 = 450e-6;

/// The deterministic 256-request mixed batch (the canonical
/// acceptance workload, shared with the socket tests and the
/// `policy_server` example).
fn mixed_batch() -> Vec<PolicyRequest> {
    econcast::service::workload::mixed_batch(256)
}

fn bits_equal(a: &PolicyResponse, b: &PolicyResponse) -> bool {
    a.throughput.to_bits() == b.throughput.to_bits()
        && a.converged == b.converged
        && a.policies.len() == b.policies.len()
        && a.policies.iter().zip(&b.policies).all(|(x, y)| {
            x.listen.to_bits() == y.listen.to_bits() && x.transmit.to_bits() == y.transmit.to_bits()
        })
        && a.certificate.t_sigma.to_bits() == b.certificate.t_sigma.to_bits()
        && a.certificate.oracle.to_bits() == b.certificate.oracle.to_bits()
        && a.certificate.dual_upper.to_bits() == b.certificate.dual_upper.to_bits()
}

fn serve_with_workers(workers: usize) -> Vec<Result<PolicyResponse, ServiceError>> {
    let mut svc = PolicyService::new(ServiceConfig {
        workers: Some(workers),
        ..ServiceConfig::default()
    });
    svc.serve_batch(&mixed_batch())
}

#[test]
fn mixed_batch_bit_identical_across_worker_counts() {
    let reference = serve_with_workers(1);
    assert_eq!(reference.len(), 256);
    assert!(
        reference.iter().all(|r| r.is_ok()),
        "mixed batch all serves"
    );
    for workers in [2usize, 4] {
        let got = serve_with_workers(workers);
        for (i, (a, b)) in reference.iter().zip(&got).enumerate() {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(
                a.tier, b.tier,
                "request {i}: tier diverged at {workers} workers"
            );
            assert!(
                bits_equal(a, b),
                "request {i}: response diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn mixed_batch_exercises_every_tier_and_warm_cache_skips_solvers() {
    let batch = mixed_batch();
    let mut svc = PolicyService::new(ServiceConfig {
        workers: Some(2),
        ..ServiceConfig::default()
    });
    let cold = svc.serve_batch(&batch);
    assert!(cold.iter().all(|r| r.is_ok()));
    let after_cold = svc.stats();
    assert!(
        after_cold.solver_solves > 0,
        "heterogeneous instances solved"
    );
    assert!(
        after_cold.grid_hits + after_cold.closed_form_hits > 0,
        "homogeneous tiers used"
    );
    assert!(after_cold.batch_dedup_hits > 0, "padding deduplicated");

    // Warm pass: every request is an exact-tier hit; no solver of any
    // kind runs again.
    let warm = svc.serve_batch(&batch);
    let after_warm = svc.stats();
    assert_eq!(
        after_warm.exact_hits - after_cold.exact_hits,
        256,
        "every warm request served from the exact tier"
    );
    assert_eq!(after_warm.solver_solves, after_cold.solver_solves);
    assert_eq!(after_warm.closed_form_hits, after_cold.closed_form_hits);
    assert_eq!(after_warm.grid_hits, after_cold.grid_hits);
    assert_eq!(after_warm.batch_dedup_hits, after_cold.batch_dedup_hits);

    // Warm answers are bit-identical to cold ones (modulo the tier
    // label, which now reads Exact).
    for (i, (c, w)) in cold.iter().zip(&warm).enumerate() {
        let (c, w) = (c.as_ref().unwrap(), w.as_ref().unwrap());
        assert_eq!(w.tier, ServedTier::Exact);
        assert!(
            bits_equal(c, w),
            "request {i}: warm replay diverged from cold"
        );
    }
}

#[test]
fn wire_server_matches_native_serving() {
    use bytes::BytesMut;

    let batch: Vec<PolicyRequest> = mixed_batch().into_iter().take(24).collect();

    // Native reference.
    let mut native = PolicyService::new(ServiceConfig {
        workers: Some(1),
        ..ServiceConfig::default()
    });
    let expected = native.serve_batch(&batch);

    // Wire path: encode all requests, feed in ragged chunks, poll once.
    let mut wire = BytesMut::new();
    for (id, req) in batch.iter().enumerate() {
        ServiceCodec::encode(&ServiceMessage::Request(req.to_wire(id as u32)), &mut wire);
    }
    let mut server = WireServer::new(PolicyService::new(ServiceConfig {
        workers: Some(1),
        ..ServiceConfig::default()
    }));
    for chunk in wire.chunks(7) {
        server.feed(chunk);
    }
    let out = server.poll_batch().expect("clean stream");

    // Decode the responses and compare with the native results.
    let mut codec = ServiceCodec::new();
    codec.feed(&out);
    let replies = codec.drain().expect("server output decodes");
    assert_eq!(replies.len(), batch.len());
    for (id, (reply, exp)) in replies.iter().zip(&expected).enumerate() {
        match (reply, exp) {
            (ServiceMessage::Response(w), Ok(native_resp)) => {
                assert_eq!(w.id, id as u32);
                assert_eq!(w.tier, native_resp.tier);
                assert_eq!(w.throughput.to_bits(), native_resp.throughput.to_bits());
                assert_eq!(w.policies.len(), native_resp.policies.len());
                for (wp, np) in w.policies.iter().zip(&native_resp.policies) {
                    assert_eq!(wp.listen.to_bits(), np.listen.to_bits());
                    assert_eq!(wp.transmit.to_bits(), np.transmit.to_bits());
                }
                assert_eq!(
                    w.cert_dual_upper.to_bits(),
                    native_resp.certificate.dual_upper.to_bits()
                );
            }
            other => panic!("request {id}: unexpected reply pairing {other:?}"),
        }
    }
    // Batching happened: one poll, one batch.
    assert_eq!(server.service().stats().batches, 1);
}

#[test]
fn wire_server_answers_bad_requests_with_error_messages() {
    use bytes::BytesMut;
    use econcast::proto::service::{ServiceErrorCode, WireObjective, WirePolicyRequest};

    let mut wire = BytesMut::new();
    // An invalid sigma and an oversized heterogeneous instance
    // (beyond the default 256-node ceiling — a latency budget since
    // the factorized kernel replaced enumeration, but still enforced).
    ServiceCodec::encode(
        &ServiceMessage::Request(WirePolicyRequest {
            corr: 0,
            id: 1,
            deadline_us: 0,
            objective: WireObjective::Groupput,
            sigma: -1.0,
            tolerance: 1e-2,
            listen_w: L,
            transmit_w: X,
            budgets_w: vec![1e-6, 2e-6],
        }),
        &mut wire,
    );
    ServiceCodec::encode(
        &ServiceMessage::Request(WirePolicyRequest {
            corr: 0,
            id: 2,
            deadline_us: 0,
            objective: WireObjective::Groupput,
            sigma: 0.5,
            tolerance: 1e-2,
            listen_w: L,
            transmit_w: X,
            budgets_w: (1..=300).map(|i| i as f64 * 1e-6).collect(),
        }),
        &mut wire,
    );
    let mut server = WireServer::new(PolicyService::default());
    server.feed(&wire);
    let out = server.poll_batch().unwrap();
    let mut codec = ServiceCodec::new();
    codec.feed(&out);
    let replies = codec.drain().unwrap();
    assert_eq!(replies.len(), 2);
    let codes: Vec<_> = replies
        .iter()
        .map(|m| match m {
            ServiceMessage::Error(e) => (e.id, e.code),
            other => panic!("expected error reply, got {other:?}"),
        })
        .collect();
    assert_eq!(codes[0], (1, ServiceErrorCode::BadRequest));
    assert_eq!(codes[1], (2, ServiceErrorCode::TooLarge));
    assert_eq!(server.service().stats().errors, 2);
}
