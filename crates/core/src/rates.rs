//! The EconCast transition rates, eq. (18a)–(18f) of Section V-E.
//!
//! For groupput maximization at any time `t` in the `k`-th interval:
//!
//! ```text
//! λ_sl(t) = A(t) · exp(−η[k]·L / σ)                       (18a)
//! λ_ls(t) = A(t)                                          (18b)
//! λ_lx(t) = A(t) · exp(η[k]·(L − X)/σ)                    (18c, EconCast-C)
//! λ_lx(t) = A(t) · exp(η[k]·(L − X)/σ + ĉ(t)/σ)           (18d, EconCast-NC)
//! λ_xl(t) = exp(−ĉ(t)/σ)                                  (18e, EconCast-C)
//! λ_xl(t) = 1                                             (18f, EconCast-NC)
//! ```
//!
//! For anyput maximization `ĉ(t)` is replaced by `γ̂(t)`. `A(t)` is the
//! carrier-sense indicator (1 when the channel is free) and σ is the
//! temperature parameter traded between throughput and burstiness
//! (Section V-F).

use crate::state::ThroughputMode;

/// Which of the two protocol variants of Section V-D is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// `EconCast-C`: the transmitter may *capture* the channel for
    /// several back-to-back packets, listening for pings after each one
    /// and continuing with probability `1 − λ_xl = 1 − e^{−ĉ/σ}`.
    Capture,
    /// `EconCast-NC`: the channel is released after every packet
    /// (`λ_xl = 1`); listeners continuously ping and the listener count
    /// instead boosts the listen→transmit rate (18d).
    NonCapture,
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant::Capture => write!(f, "EconCast-C"),
            Variant::NonCapture => write!(f, "EconCast-NC"),
        }
    }
}

/// Static protocol configuration shared by all nodes: the temperature
/// `σ`, the protocol variant, and the throughput objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolConfig {
    /// Temperature `σ > 0`. Smaller values push throughput toward the
    /// oracle but increase burstiness exponentially (Fig. 4).
    pub sigma: f64,
    /// Capture vs. non-capture variant.
    pub variant: Variant,
    /// Groupput vs. anyput objective.
    pub mode: ThroughputMode,
}

impl ProtocolConfig {
    /// Creates a configuration, validating `σ > 0`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive or non-finite `σ`.
    pub fn new(sigma: f64, variant: Variant, mode: ThroughputMode) -> Self {
        assert!(
            sigma > 0.0 && sigma.is_finite(),
            "sigma must be positive and finite, got {sigma}"
        );
        ProtocolConfig {
            sigma,
            variant,
            mode,
        }
    }

    /// Capture-variant groupput config — the combination implemented on
    /// the paper's testbed (Section VIII).
    pub fn capture_groupput(sigma: f64) -> Self {
        Self::new(sigma, Variant::Capture, ThroughputMode::Groupput)
    }

    /// Capture-variant anyput config.
    pub fn capture_anyput(sigma: f64) -> Self {
        Self::new(sigma, Variant::Capture, ThroughputMode::Anyput)
    }
}

/// The four transition rates of Fig. 1, evaluated for one node at one
/// instant. Rates are in events per packet-time (the CTMC's natural
/// unit; `λ_ls = 1` when the channel is free).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionRates {
    /// `λ_sl` — sleep → listen.
    pub sleep_to_listen: f64,
    /// `λ_ls` — listen → sleep.
    pub listen_to_sleep: f64,
    /// `λ_lx` — listen → transmit.
    pub listen_to_transmit: f64,
    /// `λ_xl` — transmit → listen (end of capture).
    pub transmit_to_listen: f64,
}

impl TransitionRates {
    /// Evaluates eq. (18a)–(18f).
    ///
    /// * `cfg` — protocol configuration (σ, variant, mode);
    /// * `eta` — the node's current Lagrange multiplier `η[k] ≥ 0`;
    /// * `listen_w`, `transmit_w` — the node's `L` and `X` (W);
    /// * `carrier_free` — the carrier-sense indicator `A(t)`;
    /// * `listener_estimate` — `ĉ(t)` (groupput) from which `γ̂(t)` is
    ///   derived in anyput mode.
    pub fn evaluate(
        cfg: &ProtocolConfig,
        eta: f64,
        listen_w: f64,
        transmit_w: f64,
        carrier_free: bool,
        listener_estimate: f64,
    ) -> Self {
        debug_assert!(eta >= 0.0, "Lagrange multiplier must be non-negative");
        let a = if carrier_free { 1.0 } else { 0.0 };
        let sigma = cfg.sigma;
        // The listener signal: ĉ for groupput, γ̂ for anyput.
        let signal = cfg.mode.listener_signal(listener_estimate);

        let sleep_to_listen = a * (-eta * listen_w / sigma).exp();
        let listen_to_sleep = a;
        let (listen_to_transmit, transmit_to_listen) = match cfg.variant {
            Variant::Capture => (
                a * (eta * (listen_w - transmit_w) / sigma).exp(),
                (-signal / sigma).exp(),
            ),
            Variant::NonCapture => (
                a * ((eta * (listen_w - transmit_w) + signal) / sigma).exp(),
                1.0,
            ),
        };
        TransitionRates {
            sleep_to_listen,
            listen_to_sleep,
            listen_to_transmit,
            transmit_to_listen,
        }
    }

    /// The probability that a capture-mode transmitter sends another
    /// back-to-back packet after finishing one: `1 − λ_xl` when
    /// `λ_xl ≤ 1` (Section V-B establishes the equivalence between the
    /// exponential transmit dwell and this geometric packet count).
    pub fn continue_transmission_probability(&self) -> f64 {
        (1.0 - self.transmit_to_listen).max(0.0)
    }

    /// Total rate of leaving the listen state (used to sample the dwell
    /// time in the listen state as `Exp(λ_ls + λ_lx)`).
    pub fn listen_exit_rate(&self) -> f64 {
        self.listen_to_sleep + self.listen_to_transmit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ThroughputMode;

    const L: f64 = 500e-6;
    const X: f64 = 500e-6;

    fn cfg_c() -> ProtocolConfig {
        ProtocolConfig::capture_groupput(0.5)
    }

    #[test]
    fn busy_channel_freezes_sleep_and_listen_exits() {
        let r = TransitionRates::evaluate(&cfg_c(), 1.0, L, X, false, 2.0);
        assert_eq!(r.sleep_to_listen, 0.0);
        assert_eq!(r.listen_to_sleep, 0.0);
        assert_eq!(r.listen_to_transmit, 0.0);
        // λ_xl does not carry the A(t) factor: the transmitter itself is
        // the one occupying the channel.
        assert!(r.transmit_to_listen > 0.0);
    }

    #[test]
    fn free_channel_listen_to_sleep_is_unit_rate() {
        let r = TransitionRates::evaluate(&cfg_c(), 0.7, L, X, true, 0.0);
        assert_eq!(r.listen_to_sleep, 1.0);
    }

    #[test]
    fn eq_18a_sleep_rate_decreases_with_eta() {
        let lo = TransitionRates::evaluate(&cfg_c(), 0.0, L, X, true, 0.0);
        let hi = TransitionRates::evaluate(&cfg_c(), 100.0, L, X, true, 0.0);
        assert_eq!(lo.sleep_to_listen, 1.0); // exp(0)
        assert!(hi.sleep_to_listen < lo.sleep_to_listen);
        // Exact value: exp(−η L / σ).
        let expected = (-100.0 * L / 0.5).exp();
        assert!((hi.sleep_to_listen - expected).abs() < 1e-15);
    }

    #[test]
    fn eq_18c_symmetric_powers_cancel_eta() {
        // With L = X the exponent η(L−X)/σ vanishes: λ_lx = A(t).
        let r = TransitionRates::evaluate(&cfg_c(), 42.0, L, X, true, 3.0);
        assert!((r.listen_to_transmit - 1.0).abs() < 1e-15);
    }

    #[test]
    fn eq_18e_capture_release_rate() {
        // λ_xl = exp(−ĉ/σ): with ĉ=1, σ=0.5 → e^{-2} ≈ 0.1353, so the
        // transmitter continues with probability ≈ 0.8647 — the exact
        // number quoted in Section VIII-D.
        let r = TransitionRates::evaluate(&cfg_c(), 0.0, L, X, true, 1.0);
        assert!((r.transmit_to_listen - (-2.0f64).exp()).abs() < 1e-12);
        assert!((r.continue_transmission_probability() - 0.8647).abs() < 1e-4);
        // And with σ = 0.25 → continue ≈ 0.9817 (same section).
        let cfg = ProtocolConfig::capture_groupput(0.25);
        let r = TransitionRates::evaluate(&cfg, 0.0, L, X, true, 1.0);
        assert!((r.continue_transmission_probability() - 0.9817).abs() < 1e-4);
    }

    #[test]
    fn eq_18d_noncapture_listen_boost() {
        let cfg = ProtocolConfig::new(0.5, Variant::NonCapture, ThroughputMode::Groupput);
        let base = TransitionRates::evaluate(&cfg, 0.0, L, X, true, 0.0);
        let boosted = TransitionRates::evaluate(&cfg, 0.0, L, X, true, 2.0);
        assert!((base.listen_to_transmit - 1.0).abs() < 1e-15);
        assert!((boosted.listen_to_transmit - (2.0f64 / 0.5).exp()).abs() < 1e-9);
    }

    #[test]
    fn eq_18f_noncapture_always_releases() {
        let cfg = ProtocolConfig::new(0.5, Variant::NonCapture, ThroughputMode::Groupput);
        let r = TransitionRates::evaluate(&cfg, 3.0, L, X, true, 5.0);
        assert_eq!(r.transmit_to_listen, 1.0);
        assert_eq!(r.continue_transmission_probability(), 0.0);
    }

    #[test]
    fn anyput_mode_uses_gamma_indicator() {
        let cfg = ProtocolConfig::capture_anyput(0.5);
        // 3 listeners and 1 listener give the same rates in anyput mode…
        let three = TransitionRates::evaluate(&cfg, 0.0, L, X, true, 3.0);
        let one = TransitionRates::evaluate(&cfg, 0.0, L, X, true, 1.0);
        assert_eq!(three.transmit_to_listen, one.transmit_to_listen);
        // …but zero listeners release at rate 1.
        let zero = TransitionRates::evaluate(&cfg, 0.0, L, X, true, 0.0);
        assert_eq!(zero.transmit_to_listen, 1.0);
    }

    #[test]
    fn asymmetric_powers_steer_listen_to_transmit() {
        // X > L discourages entering transmit as η grows.
        let r_cheap_tx = TransitionRates::evaluate(&cfg_c(), 2.0, 600e-6, 400e-6, true, 0.0);
        let r_dear_tx = TransitionRates::evaluate(&cfg_c(), 2.0, 400e-6, 600e-6, true, 0.0);
        assert!(r_cheap_tx.listen_to_transmit > 1.0);
        assert!(r_dear_tx.listen_to_transmit < 1.0);
    }

    #[test]
    fn listen_exit_rate_is_sum() {
        let r = TransitionRates::evaluate(&cfg_c(), 0.0, L, X, true, 0.0);
        assert!((r.listen_exit_rate() - (r.listen_to_sleep + r.listen_to_transmit)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn zero_sigma_rejected() {
        ProtocolConfig::new(0.0, Variant::Capture, ThroughputMode::Groupput);
    }
}
