//! The deterministic mixed acceptance workload.
//!
//! One canonical request-mix generator shared by the root acceptance
//! tests, the socket-path tests, and the `policy_server` example, so
//! "the 256-request mixed batch" pinned across worker counts, wire
//! framing, and sharding is literally the same batch everywhere.
//! (The bench suite's `service_batch` is intentionally *not* this
//! mix: its perturbation pattern is sized for cold/warm throughput
//! measurement and is frozen by the committed `BENCH_*.json`
//! baselines.)

use crate::request::PolicyRequest;
use econcast_core::{NodeParams, ThroughputMode};

/// Builds the deterministic mixed batch, truncated or cycle-padded to
/// `len` requests: homogeneous cliques in and out of the default grid
/// range, heterogeneous exact-solver instances plus a permutation of
/// each (the canonicalization regression rides along), both
/// objectives, and — once `len` exceeds the distinct prefix —
/// duplicates exercising the in-batch dedup path.
pub fn mixed_batch(len: usize) -> Vec<PolicyRequest> {
    let mut reqs = Vec::new();
    let modes = [ThroughputMode::Groupput, ThroughputMode::Anyput];
    // Homogeneous: several (n, ρ) points inside the grid range...
    for (i, n) in [5usize, 12, 50, 96].into_iter().enumerate() {
        for (j, rho_uw) in [4.0, 10.0, 37.0].into_iter().enumerate() {
            let params = NodeParams::from_microwatts(rho_uw, 500.0, 450.0);
            reqs.push(PolicyRequest::homogeneous(
                n,
                params,
                if j % 2 == 0 { 0.5 } else { 0.25 },
                modes[(i + j) % 2],
                1e-2,
            ));
        }
    }
    // ...and outside it (25 mW budget exceeds the grid's 10 mW roof).
    for n in [8usize, 64] {
        let params = NodeParams::from_milliwatts(25.0, 67.0, 33.0);
        reqs.push(PolicyRequest::homogeneous(
            n,
            params,
            0.5,
            ThroughputMode::Groupput,
            1e-2,
        ));
    }
    // Heterogeneous instances (exact solver) plus a permutation of
    // each.
    let bases: [&[f64]; 4] = [
        &[5e-6, 10e-6, 20e-6],
        &[3e-6, 3e-6, 9e-6, 27e-6],
        &[8e-6, 2e-6, 4e-6, 16e-6, 32e-6],
        &[1e-6, 50e-6, 7e-6],
    ];
    for (i, base) in bases.into_iter().enumerate() {
        let mut permuted = base.to_vec();
        permuted.rotate_left(1);
        for budgets in [base.to_vec(), permuted] {
            reqs.push(PolicyRequest {
                budgets_w: budgets,
                listen_w: 500e-6,
                transmit_w: 450e-6,
                sigma: 0.5,
                objective: modes[i % 2],
                tolerance: 1e-2,
            });
        }
    }
    // Pad by cycling the distinct prefix (duplicates exercise the
    // in-batch dedup path), or truncate for small workloads.
    let distinct = reqs.len();
    let mut k = 0;
    while reqs.len() < len {
        reqs.push(reqs[k % distinct].clone());
        k += 1;
    }
    reqs.truncate(len);
    reqs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_shape_is_stable() {
        let batch = mixed_batch(256);
        assert_eq!(batch.len(), 256);
        // Distinct prefix: 12 homogeneous in-range + 2 out-of-range +
        // 8 heterogeneous; everything after cycles it.
        assert_eq!(batch[22], batch[0]);
        assert!(batch.iter().all(|r| r.validate().is_ok()));
        // Truncation yields a prefix of the padded batch.
        assert_eq!(mixed_batch(7)[..], batch[..7]);
    }
}
