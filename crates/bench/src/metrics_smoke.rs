//! The CI `metrics-smoke` job's driver: scrape a live 2-backend
//! cluster front over v7, assert the fan-in equals the sum of what
//! each layer reports, force a failover, and dump the front's flight
//! recorder as a Perfetto-compatible artifact.
//!
//! The backends are *child processes* ([`Supervisor`]-spawned), not
//! in-process servers: the metrics hub is process-global, so an
//! in-process backend's counters would appear on both sides of the
//! fan-in equation and the equality check would prove nothing.

use econcast_cluster::{
    default_backend_binary, ClusterConfig, ClusterFront, ClusterRouter, FrontConfig, RemoteConfig,
    SlotSpec, Supervisor, SupervisorConfig,
};
use econcast_metrics::{MetricsSnapshot, OpsKind, CTR_FAILOVER_RESERVES, GAUGE_LIVE_BACKENDS};
use econcast_service::workload::mixed_batch;
use econcast_service::PolicyClient;
use std::io;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// What the smoke run found: one (label, pass) row per promise, plus
/// the flight-recorder artifact it wrote.
#[derive(Debug)]
pub struct SmokeOutcome {
    /// The smoke criteria, printed by `repro --metrics-smoke` so a red
    /// CI log names the broken promise.
    pub checks: Vec<(&'static str, bool)>,
    /// The Perfetto-compatible flight-recorder dump.
    pub artifact: PathBuf,
}

impl SmokeOutcome {
    /// Whether every check passed.
    pub fn pass(&self) -> bool {
        self.checks.iter().all(|(_, ok)| *ok)
    }
}

/// Ground truth for the fan-in: Σ direct backend scrapes plus this
/// process's own plane. Valid only while the local hub is quiescent —
/// metrics scrapes don't bump serve counters, so back-to-back scrapes
/// see the same local state.
fn expected_sum(addrs: &[SocketAddr]) -> io::Result<MetricsSnapshot> {
    let mut sum = econcast_metrics::snapshot();
    for &addr in addrs {
        let direct = PolicyClient::connect(addr, 1)?.metrics()?;
        sum.merge(&direct);
    }
    Ok(sum)
}

/// Runs the smoke against a freshly spawned 2-backend cluster and
/// writes `econcast_flight.json` into `out_dir`.
pub fn run(out_dir: &Path) -> io::Result<SmokeOutcome> {
    let backend = default_backend_binary().ok_or_else(|| {
        io::Error::other(
            "policy_backend binary not found — build it first \
             (cargo build --release -p econcast-cluster --bin policy_backend)",
        )
    })?;
    let mut sup = Supervisor::spawn(&backend, 2, SupervisorConfig::default())?;
    let slots: Vec<SlotSpec> = sup.addrs().into_iter().map(SlotSpec::Remote).collect();
    let cfg = ClusterConfig {
        remote: RemoteConfig {
            dial_retries: 2,
            // One failure marks a backend down, and it stays down — no
            // reprobe racing the post-kill assertions.
            unhealthy_after: 1,
            reprobe_after: Duration::from_secs(3600),
            ..RemoteConfig::default()
        },
        ..ClusterConfig::default()
    };
    let front = ClusterFront::bind(
        "127.0.0.1:0",
        ClusterRouter::new(&slots, cfg),
        FrontConfig::default(),
    )?
    .spawn();

    let mut checks = Vec::new();
    let run_result = (|| -> io::Result<()> {
        let batch = mixed_batch(64);
        let mut client = PolicyClient::connect(front.addr(), 64)?;
        let out = client.serve_batch(&batch)?;
        checks.push(("all requests served", out.iter().all(Result::is_ok)));

        // Fan-in: scrape the aggregate first, then ground truth — the
        // local hub holds still in between.
        let aggregate = client.metrics()?;
        let expected = expected_sum(&sup.addrs())?;
        checks.push((
            "counter fan-in = sum of backends + front-local",
            aggregate.counters == expected.counters,
        ));
        checks.push((
            "histogram fan-in = merge of backends + front-local",
            aggregate.hists == expected.hists,
        ));
        checks.push((
            "live-backends gauge sees both",
            aggregate.gauge(GAUGE_LIVE_BACKENDS) == 2,
        ));

        // Kill one backend mid-run; the next chunk fails over at the
        // front, and the fan-in must still balance against what the
        // cluster can currently see.
        sup.kill(0)?;
        let out = client.serve_batch(&batch[..32])?;
        checks.push(("failover serves the batch", out.iter().all(Result::is_ok)));
        let after = client.metrics()?;
        let expected = expected_sum(&sup.addrs()[1..])?;
        checks.push((
            "fan-in rebalances after the kill",
            after.counters == expected.counters && after.hists == expected.hists,
        ));
        checks.push((
            "live-backends gauge drops to the survivor",
            after.gauge(GAUGE_LIVE_BACKENDS) == 1,
        ));
        checks.push((
            "failover re-serves counted",
            after.counter(CTR_FAILOVER_RESERVES) > 0,
        ));
        checks.push((
            "flight recorder holds the failover",
            econcast_metrics::recorder_events()
                .iter()
                .any(|e| e.kind == OpsKind::FailoverReserve),
        ));
        Ok(())
    })();

    front.shutdown();
    run_result?;

    // The artifact: whatever the front's recorder saw, as Perfetto
    // JSON — and it must actually *be* JSON, validated with the same
    // parser the bench gate trusts.
    std::fs::create_dir_all(out_dir)?;
    let artifact = out_dir.join("econcast_flight.json");
    let dump = econcast_metrics::recorder_dump_json();
    checks.push((
        "flight-recorder dump parses as JSON",
        crate::gate::parse_json(&dump)
            .ok()
            .and_then(|j| {
                j.get("traceEvents")
                    .and_then(|t| t.as_arr().map(<[_]>::len))
            })
            .is_some_and(|n| n > 0),
    ));
    std::fs::write(&artifact, dump)?;

    Ok(SmokeOutcome { checks, artifact })
}
