//! The paper's comparative claims, end to end: at symmetric power
//! levels EconCast dominates Panda, Birthday, and Searchlight's
//! upper bound by large factors (Fig. 3, Table III).

use econcast::baselines::{BirthdayProtocol, PandaConfig, Searchlight};
use econcast::core::{NodeParams, ThroughputMode};
use econcast::statespace::HomogeneousP4;

fn params() -> NodeParams {
    NodeParams::from_microwatts(10.0, 500.0, 500.0)
}

#[test]
fn econcast_dominates_all_baselines_at_symmetric_powers() {
    let n = 5;
    let t_025 = HomogeneousP4::new(n, params(), 0.25, ThroughputMode::Groupput)
        .solve()
        .throughput;

    let (t_birthday, _, _) = BirthdayProtocol::new(n, params()).optimal_groupput();
    let t_searchlight = Searchlight::paper_setup(n, params()).groupput_upper_bound();
    let mut panda = PandaConfig::new(n, params());
    panda.sim_duration = 600_000.0;
    let t_panda = panda.calibrated().groupput;

    assert!(
        t_025 > 3.0 * t_panda,
        "EconCast {t_025} vs Panda {t_panda}: expected a multi-x gap"
    );
    assert!(
        t_025 > 3.0 * t_birthday,
        "EconCast {t_025} vs Birthday {t_birthday}"
    );
    assert!(
        t_025 > 3.0 * t_searchlight,
        "EconCast {t_025} vs Searchlight bound {t_searchlight}"
    );
}

#[test]
fn panda_speedup_in_paper_ballpark() {
    // Fig. 3 quotes 6x (σ=0.5) and 17x (σ=0.25) over Panda at X = L.
    // Our Panda substitute is a Monte-Carlo model, so accept a wide
    // band around those factors: 2–40x, with σ=0.25 strictly better.
    let n = 5;
    let mut panda = PandaConfig::new(n, params());
    panda.sim_duration = 1_000_000.0;
    let t_panda = panda.calibrated().groupput;
    let speed = |sigma: f64| {
        HomogeneousP4::new(n, params(), sigma, ThroughputMode::Groupput)
            .solve()
            .throughput
            / t_panda
    };
    let s_half = speed(0.5);
    let s_quarter = speed(0.25);
    assert!(
        (2.0..40.0).contains(&s_half),
        "σ=0.5 speedup {s_half} out of band"
    );
    assert!(
        (4.0..60.0).contains(&s_quarter),
        "σ=0.25 speedup {s_quarter} out of band"
    );
    assert!(s_quarter > s_half, "smaller σ must widen the gap");
}

#[test]
fn baselines_are_internally_consistent() {
    // Baselines never beat the oracle, and scale sensibly in N.
    let p = params();
    let oracle = |n: usize| {
        let nf = n as f64;
        nf * (nf - 1.0) * p.budget_w / (p.transmit_w + (nf - 1.0) * p.listen_w)
    };
    for n in [3usize, 5, 10] {
        let (tb, _, _) = BirthdayProtocol::new(n, p).optimal_groupput();
        assert!(tb < oracle(n), "birthday n={n} beats oracle");
        let ts = Searchlight::paper_setup(n, p).groupput_upper_bound();
        assert!(ts < oracle(n), "searchlight n={n} beats oracle");
    }
    let (t5, _, _) = BirthdayProtocol::new(5, p).optimal_groupput();
    let (t10, _, _) = BirthdayProtocol::new(10, p).optimal_groupput();
    assert!(t10 > t5, "birthday should improve with N (more receivers)");
}

#[test]
fn asymmetric_powers_shrink_econcast_advantage_over_birthday() {
    // Fig. 3's side message: EconCast's edge is largest at X ≈ L.
    // Verify the ratio to Birthday is larger at X/L = 1 than at 9.
    let n = 5;
    let make = |ratio: f64| {
        let l = 1000.0 / (1.0 + ratio);
        NodeParams::from_microwatts(10.0, l, 1000.0 - l)
    };
    let edge = |ratio: f64| {
        let p = make(ratio);
        let t = HomogeneousP4::new(n, p, 0.25, ThroughputMode::Groupput)
            .solve()
            .throughput;
        let (tb, _, _) = BirthdayProtocol::new(n, p).optimal_groupput();
        t / tb
    };
    assert!(
        edge(1.0) > edge(9.0),
        "advantage at X/L=1 ({}) should exceed X/L=9 ({})",
        edge(1.0),
        edge(9.0)
    );
}
