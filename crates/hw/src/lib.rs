//! # econcast-hw — emulation of the eZ430-RF2500-SEH testbed
//!
//! Section VIII evaluates EconCast-C on Texas Instruments
//! eZ430-RF2500-SEH nodes: an MSP430 MCU with a CC2500 2.4 GHz
//! transceiver, a solar energy harvester, and a 1 mF storage capacitor.
//! That hardware is obviously not available to a software
//! reproduction, so this crate implements the closest synthetic
//! equivalent of each component (the substitution catalogue lives in
//! `DESIGN.md`):
//!
//! * [`radio`] — the CC2500 power/timing model: L = 67.08 mW listening,
//!   X = 56.29 mW transmitting at −16 dBm, 250 kbps, 40 ms data
//!   packets, 0.4 ms pings, 8 ms ping intervals (Sections VIII-A/C);
//! * [`capacitor`] — capacitor-discharge energy accounting, eqs.
//!   (25)–(26), including the 5 F measurement rig and the stable
//!   3.0–3.6 V working range with its 135/27-minute lifetimes;
//! * [`harvester`] — the SEH-01 solar panel as a pluggable power
//!   profile (constant, on/off lighting, or scaled);
//! * [`clock`] — the drifting low-power sleep oscillator (VLO-class
//!   accuracy) that stretches or shrinks sleep intervals;
//! * [`testbed`] — the experiment runner: wires the hardware models
//!   into `econcast-sim` (ping-collision estimation, awake-power
//!   overhead, per-node clock drift) and reports the Fig. 7 ratios
//!   ("Ideal" vs. "Relaxed"), the battery-variance band, and the
//!   Table IV ping distribution.

pub mod capacitor;
pub mod clock;
pub mod harvester;
pub mod radio;
pub mod testbed;

pub use capacitor::{Capacitor, DischargeMeasurement};
pub use clock::SleepClock;
pub use harvester::SolarHarvester;
pub use radio::Cc2500;
pub use testbed::{TestbedConfig, TestbedRun};
