//! Fig. 6: groupput in non-clique (grid) topologies.
//!
//! Square grids with `N ∈ {4, 9, 16, 25, 36, 49, 64, 81, 100}` nodes
//! (4-neighborhoods), `σ ∈ {0.25, 0.5, 0.75}`, `ρ = 10 µW`,
//! `L = X = 500 µW`. The oracle `T*_nc` comes from the Section IV-C
//! bounds (tight on every grid); EconCast runs with per-neighborhood
//! carrier sensing and overlapping transmissions voided. Paper
//! findings: EconCast reaches 14–22% of `T*_nc` at σ = 0.25,
//! approaching ~10% at σ = 0.5 as `N` grows.

use crate::Scale;
use econcast_core::{NodeParams, ProtocolConfig, Topology};
use econcast_oracle::non_clique_groupput_bounds;
use econcast_sim::{SimConfig, Simulator};

fn params() -> NodeParams {
    NodeParams::from_microwatts(10.0, 500.0, 500.0)
}

/// Grid side lengths of the figure (N = k²).
const SIDES: [usize; 9] = [2, 3, 4, 5, 6, 7, 8, 9, 10];

/// Runs the experiment.
pub fn run(scale: Scale) -> String {
    let full_sides: &[usize] = match scale {
        Scale::Full => &SIDES,
        Scale::Quick => &SIDES[..4],
    };
    let mut out = String::new();
    out.push_str("Fig. 6 — grid groupput: oracle T*_nc and simulated EconCast\n");
    out.push_str(
        "paper: EconCast reaches 14–22% of T*_nc at σ=0.25; ~10% at σ=0.5 for large N\n\n",
    );
    out.push_str("   N   T*_nc      σ=0.25        σ=0.5         σ=0.75\n");
    // Each grid side is an independent row (its own oracle LP and
    // three long simulations) — fan rows out over the worker pool and
    // stitch the output back in side order, so the report is identical
    // at every thread count.
    let rows = econcast_parallel::run(full_sides.len(), |row| {
        let k = full_sides[row];
        let n = k * k;
        let nodes = vec![params(); n];
        let topo = Topology::square_grid(k);
        let bounds = non_clique_groupput_bounds(&nodes, &topo);
        let t_nc = bounds
            .exact(1e-9)
            .expect("grid bounds are tight (Section VII-E)");
        let mut line = format!("{n:>4}  {t_nc:>6.4}");
        for sigma in [0.25, 0.5, 0.75] {
            let t_end = scale.duration(if sigma < 0.4 {
                4_000_000.0
            } else {
                1_500_000.0
            });
            let mut cfg = SimConfig::ideal_clique(
                n,
                params(),
                ProtocolConfig::capture_groupput(sigma),
                t_end,
                0xF16 + k as u64,
            );
            cfg.topology = topo.clone();
            cfg.warmup = t_end * 0.25; // cold start: grids have no cheap warm-start
            let report = Simulator::new(cfg).expect("valid config").run();
            line.push_str(&format!(
                "  {:>6.4} ({:>4.1}%)",
                report.groupput,
                100.0 * report.groupput / t_nc
            ));
        }
        line.push('\n');
        line
    });
    for row in rows {
        out.push_str(&row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_sim_yields_positive_fraction_of_oracle() {
        let k = 3;
        let n = k * k;
        let nodes = vec![params(); n];
        let topo = Topology::square_grid(k);
        let t_nc = non_clique_groupput_bounds(&nodes, &topo)
            .exact(1e-9)
            .expect("tight");
        let mut cfg = SimConfig::ideal_clique(
            n,
            params(),
            ProtocolConfig::capture_groupput(0.5),
            800_000.0,
            5,
        );
        cfg.topology = topo;
        cfg.warmup = 300_000.0;
        let r = Simulator::new(cfg).expect("valid").run();
        let frac = r.groupput / t_nc;
        assert!(
            (0.01..1.0).contains(&frac),
            "grid sim fraction {frac} implausible (T={}, T*={t_nc})",
            r.groupput
        );
    }
}
