//! # econcast-trace — span tracing and latency histograms
//!
//! A lightweight, dependency-free structured tracing layer for the
//! whole workspace: instrumented code emits **span events** (begin/end
//! pairs, one-shot complete events, instants) and **counter samples**
//! into thread-local ring buffers, which drain into the Chrome/Perfetto
//! JSON Trace Format — the resulting `.trace.json` opens directly in
//! `chrome://tracing` or the Perfetto UI. On the same span stream the
//! layer keeps per-span fixed-bucket **latency histograms** with
//! p50/p99/p999 extraction, which is what the bench suite's
//! tail-latency entries are recorded from.
//!
//! ## Zero overhead when off
//!
//! Both facilities are gated on process-wide atomics; every macro
//! compiles to one relaxed load and a branch when tracing is disabled
//! (the default). Nothing allocates, no thread-local is touched, no
//! clock is read. Services arm the statics from their
//! [`TraceConfig`] knob ([`TraceConfig::apply`] only ever turns
//! facilities *on* — a service constructed with tracing off never
//! disarms a trace another component started).
//!
//! ## Event model
//!
//! | kind | Chrome `ph` | meaning |
//! |------|-------------|---------|
//! | [`EventKind::Begin`]/[`EventKind::End`] | `B`/`E` | a scoped span ([`trace_span!`] guard), nested per thread |
//! | [`EventKind::Complete`] | `X` | a span emitted after the fact with an explicit duration ([`complete_from`]) — used where the work runs on pool threads and begin/end pairing would depend on the worker count |
//! | [`EventKind::Instant`] | `i` | a point event ([`trace_instant!`]), e.g. a cache-tier hit |
//! | [`EventKind::Counter`] | `C` | a sampled series value ([`trace_counter!`]), e.g. sim queue depth |
//!
//! Each event carries a static category, a static name, and up to
//! [`MAX_ARGS`] `u64` arguments. Threads register lazily on their
//! first event; per-thread buffers are bounded rings
//! ([`RING_CAPACITY`]) so a forgotten trace can never grow without
//! bound — overflow drops the *oldest* events and is counted in
//! [`TraceSnapshot::dropped`].
//!
//! ## Draining
//!
//! [`drain`] merges every thread's ring (including rings of threads
//! that have already exited — the worker pool spawns scoped threads
//! per call) into one time-sorted [`TraceSnapshot`];
//! [`to_chrome_json`] renders it. The writer hand-rolls its JSON
//! (offline environment) and escapes to pure ASCII, so any JSON
//! parser — including the small one in `econcast-bench` — can read it
//! back.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Maximum per-event argument count (excess is dropped by the macros'
/// arity, not at runtime).
pub const MAX_ARGS: usize = 2;

/// Per-thread event-ring capacity; overflow drops oldest events.
pub const RING_CAPACITY: usize = 1 << 16;

// ---------------------------------------------------------------------------
// Arming
// ---------------------------------------------------------------------------

static SPANS_ON: AtomicBool = AtomicBool::new(false);
static HISTOGRAMS_ON: AtomicBool = AtomicBool::new(false);

/// Whether span/counter *events* are being collected.
#[inline(always)]
pub fn spans_on() -> bool {
    SPANS_ON.load(Ordering::Relaxed)
}

/// Whether per-span latency histograms are being collected.
#[inline(always)]
pub fn histograms_on() -> bool {
    HISTOGRAMS_ON.load(Ordering::Relaxed)
}

/// Whether any facility is armed (the macros' fast-path check).
#[inline(always)]
pub fn armed() -> bool {
    spans_on() || histograms_on()
}

/// Turns span-event collection on or off (process-wide).
pub fn set_spans(on: bool) {
    SPANS_ON.store(on, Ordering::Relaxed);
}

/// Turns histogram collection on or off (process-wide).
pub fn set_histograms(on: bool) {
    HISTOGRAMS_ON.store(on, Ordering::Relaxed);
}

/// The tracing knob carried by service/cluster configs.
///
/// Default-off; [`apply`](Self::apply) arms the process-wide statics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceConfig {
    /// Collect span/instant/counter events (the Perfetto stream).
    pub spans: bool,
    /// Collect per-span latency histograms.
    pub histograms: bool,
}

impl TraceConfig {
    /// Everything on — the `trace_demo` configuration.
    pub fn full() -> Self {
        TraceConfig {
            spans: true,
            histograms: true,
        }
    }

    /// Whether this config asks for anything at all.
    pub fn enabled(self) -> bool {
        self.spans || self.histograms
    }

    /// Arms the process-wide statics. Only ever turns facilities *on*:
    /// a component constructed with tracing off must not disarm a
    /// trace some other component (or the bench harness) started.
    pub fn apply(self) {
        if self.spans {
            set_spans(true);
        }
        if self.histograms {
            set_histograms(true);
        }
    }
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide trace epoch (first use).
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// `Some(now_ns())` when tracing is armed — the begin-stamp for
/// [`complete_from`]; `None` (no clock read) otherwise.
#[inline]
pub fn armed_now() -> Option<u64> {
    if armed() {
        Some(now_ns())
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Events and thread-local rings
// ---------------------------------------------------------------------------

/// Event discriminant (maps onto the Chrome `ph` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// Span begin (`ph: "B"`).
    Begin,
    /// Span end (`ph: "E"`).
    End,
    /// Complete span with explicit duration (`ph: "X"`).
    Complete,
    /// Point event (`ph: "i"`, thread scope).
    Instant,
    /// Counter sample (`ph: "C"`).
    Counter,
}

#[derive(Debug, Clone, Copy)]
struct RawEvent {
    kind: EventKind,
    cat: &'static str,
    name: &'static str,
    ts_ns: u64,
    dur_ns: u64,
    nargs: u8,
    args: [(&'static str, u64); MAX_ARGS],
}

/// One drained event, annotated with its emitting thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Registry-assigned thread id (stable for the thread's lifetime).
    pub tid: u64,
    /// Event discriminant.
    pub kind: EventKind,
    /// Static category (subsystem: `"service"`, `"cluster"`, …).
    pub cat: &'static str,
    /// Static event name.
    pub name: &'static str,
    /// Begin timestamp, ns since the trace epoch.
    pub ts_ns: u64,
    /// Duration in ns ([`EventKind::Complete`] only, else 0).
    pub dur_ns: u64,
    /// Argument key/value pairs.
    pub args: Vec<(&'static str, u64)>,
}

struct Ring {
    events: VecDeque<RawEvent>,
    dropped: u64,
    dead: bool,
}

impl Ring {
    fn push(&mut self, ev: RawEvent) {
        if self.events.len() >= RING_CAPACITY {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

struct RegEntry {
    tid: u64,
    name: String,
    ring: Arc<Mutex<Ring>>,
}

static REGISTRY: Mutex<Vec<RegEntry>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Thread-local handle; its `Drop` marks the ring dead so the
/// registry can prune it once drained (worker pools spawn short-lived
/// scoped threads — without pruning the registry would only grow).
struct LocalRing(Arc<Mutex<Ring>>);

impl Drop for LocalRing {
    fn drop(&mut self) {
        lock(&self.0).dead = true;
    }
}

thread_local! {
    static LOCAL: RefCell<Option<LocalRing>> = const { RefCell::new(None) };
}

fn register_current_thread() -> LocalRing {
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let name = std::thread::current()
        .name()
        .map(str::to_owned)
        .unwrap_or_else(|| format!("thread-{tid}"));
    let ring = Arc::new(Mutex::new(Ring {
        events: VecDeque::new(),
        dropped: 0,
        dead: false,
    }));
    lock(&REGISTRY).push(RegEntry {
        tid,
        name,
        ring: Arc::clone(&ring),
    });
    LocalRing(ring)
}

fn push_event(ev: RawEvent) {
    // try_with: events fired during thread teardown (a guard held in
    // another TLS destructor) are dropped rather than panicking.
    let _ = LOCAL.try_with(|slot| {
        let mut slot = slot.borrow_mut();
        let local = slot.get_or_insert_with(register_current_thread);
        lock(&local.0).push(ev);
    });
}

fn pack_args(args: &[(&'static str, u64)]) -> (u8, [(&'static str, u64); MAX_ARGS]) {
    let mut packed = [("", 0u64); MAX_ARGS];
    let n = args.len().min(MAX_ARGS);
    packed[..n].copy_from_slice(&args[..n]);
    (n as u8, packed)
}

// ---------------------------------------------------------------------------
// Emission API (called through the macros)
// ---------------------------------------------------------------------------

/// A scoped span: `B` at construction, `E` (and a histogram sample)
/// on drop. Build through [`trace_span!`].
#[derive(Debug)]
pub struct SpanGuard {
    cat: &'static str,
    name: &'static str,
    t0: u64,
    emit: bool,
}

impl SpanGuard {
    /// Begins a span now. The events are only emitted when the
    /// respective facility was armed at begin time.
    pub fn begin(cat: &'static str, name: &'static str, args: &[(&'static str, u64)]) -> Self {
        let t0 = now_ns();
        let emit = spans_on();
        if emit {
            let (nargs, args) = pack_args(args);
            push_event(RawEvent {
                kind: EventKind::Begin,
                cat,
                name,
                ts_ns: t0,
                dur_ns: 0,
                nargs,
                args,
            });
        }
        SpanGuard {
            cat,
            name,
            t0,
            emit,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let now = now_ns();
        if self.emit {
            push_event(RawEvent {
                kind: EventKind::End,
                cat: self.cat,
                name: self.name,
                ts_ns: now,
                dur_ns: 0,
                nargs: 0,
                args: [("", 0); MAX_ARGS],
            });
        }
        if histograms_on() {
            record_duration(self.cat, self.name, now.saturating_sub(self.t0));
        }
    }
}

/// Emits a complete (`X`) span from a begin-stamp taken with
/// [`armed_now`]; no-op when the stamp is `None`. Used where the
/// begin and end may run on different worker threads, or where a
/// span's name is only known after the work (e.g. which solve kernel
/// ran) — `X` events don't participate in per-thread B/E nesting, so
/// the span *structure* stays identical at any worker count.
pub fn complete_from(
    cat: &'static str,
    name: &'static str,
    t0: Option<u64>,
    args: &[(&'static str, u64)],
) {
    let Some(t0) = t0 else { return };
    let now = now_ns();
    let dur = now.saturating_sub(t0);
    if histograms_on() {
        record_duration(cat, name, dur);
    }
    if spans_on() {
        let (nargs, args) = pack_args(args);
        push_event(RawEvent {
            kind: EventKind::Complete,
            cat,
            name,
            ts_ns: t0,
            dur_ns: dur,
            nargs,
            args,
        });
    }
}

/// Emits an instant event (macro backend; check [`spans_on`] first).
pub fn instant(cat: &'static str, name: &'static str, args: &[(&'static str, u64)]) {
    let (nargs, args) = pack_args(args);
    push_event(RawEvent {
        kind: EventKind::Instant,
        cat,
        name,
        ts_ns: now_ns(),
        dur_ns: 0,
        nargs,
        args,
    });
}

/// Emits a counter sample (macro backend; check [`spans_on`] first).
pub fn counter(cat: &'static str, name: &'static str, value: u64) {
    push_event(RawEvent {
        kind: EventKind::Counter,
        cat,
        name,
        ts_ns: now_ns(),
        dur_ns: 0,
        nargs: 1,
        args: [("value", value), ("", 0)],
    });
}

/// Opens a scoped span, yielding `Option<SpanGuard>` (`None` when
/// tracing is fully disarmed — one relaxed load and a branch).
///
/// ```
/// # use econcast_trace::trace_span;
/// let n = 256usize;
/// let _span = trace_span!("service", "serve_batch", "requests" => n);
/// ```
#[macro_export]
macro_rules! trace_span {
    ($cat:expr, $name:expr $(, $k:expr => $v:expr)* $(,)?) => {
        if $crate::armed() {
            Some($crate::SpanGuard::begin($cat, $name, &[$(($k, $v as u64)),*]))
        } else {
            None
        }
    };
}

/// Emits a point event when span collection is armed.
#[macro_export]
macro_rules! trace_instant {
    ($cat:expr, $name:expr $(, $k:expr => $v:expr)* $(,)?) => {
        if $crate::spans_on() {
            $crate::instant($cat, $name, &[$(($k, $v as u64)),*]);
        }
    };
}

/// Emits a counter sample when span collection is armed.
#[macro_export]
macro_rules! trace_counter {
    ($cat:expr, $name:expr, $v:expr) => {
        if $crate::spans_on() {
            $crate::counter($cat, $name, $v as u64);
        }
    };
}

// ---------------------------------------------------------------------------
// Latency histograms
// ---------------------------------------------------------------------------

/// Sub-bucket resolution of the shared log-bucket scheme: 2^3 = 8
/// sub-buckets per octave. Public so the always-on metrics plane
/// (`econcast-metrics`) records into bit-identical buckets — merged
/// histograms from both layers line up index-for-index.
pub const SUB_BITS: u32 = 3;
/// Bucket count of the shared log-bucket scheme (covers all of u64).
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + (1 << SUB_BITS);

/// Log-spaced fixed buckets over u64 nanoseconds: 2^[`SUB_BITS`]
/// sub-buckets per octave (≤ 12.5% relative width), exact below
/// 2^[`SUB_BITS`]. The HdrHistogram bucketing scheme, sized down.
pub fn bucket_of(v: u64) -> usize {
    if v < (1 << SUB_BITS) {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
    (((msb - SUB_BITS + 1) as usize) << SUB_BITS) + sub
}

/// Upper edge (inclusive) of a bucket — what percentile extraction
/// reports, so tails are never under-stated.
pub fn bucket_high(idx: usize) -> u64 {
    if idx < (1 << SUB_BITS) {
        return idx as u64;
    }
    let group = (idx >> SUB_BITS) as u32;
    let sub = (idx & ((1 << SUB_BITS) - 1)) as u64;
    let msb = group + SUB_BITS - 1;
    let width = 1u64 << (msb - SUB_BITS);
    (1u64 << msb) + (sub + 1) * width - 1
}

struct Hist {
    counts: Box<[u64; NUM_BUCKETS]>,
    total: u64,
}

static HISTOGRAMS: Mutex<Vec<((&'static str, &'static str), Hist)>> = Mutex::new(Vec::new());

/// Records one duration sample into the `(cat, name)` histogram.
pub fn record_duration(cat: &'static str, name: &'static str, dur_ns: u64) {
    let mut hists = lock(&HISTOGRAMS);
    let pos = match hists.iter().position(|(k, _)| *k == (cat, name)) {
        Some(pos) => pos,
        None => {
            hists.push((
                (cat, name),
                Hist {
                    counts: Box::new([0; NUM_BUCKETS]),
                    total: 0,
                },
            ));
            hists.len() - 1
        }
    };
    let hist = &mut hists[pos].1;
    hist.counts[bucket_of(dur_ns)] += 1;
    hist.total += 1;
}

/// Extracted latency percentiles of one span histogram (ns; each
/// value is the upper edge of its bucket, ≤ 12.5% above the true
/// sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Percentiles {
    /// Sample count.
    pub count: u64,
    /// 50th percentile, ns.
    pub p50_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// 99.9th percentile, ns.
    pub p999_ns: u64,
}

/// Percentiles of the `(cat, name)` histogram, if it has samples.
pub fn percentiles(cat: &str, name: &str) -> Option<Percentiles> {
    let hists = lock(&HISTOGRAMS);
    let (_, hist) = hists.iter().find(|((c, n), _)| *c == cat && *n == name)?;
    if hist.total == 0 {
        return None;
    }
    let quantile = |q: f64| -> u64 {
        let rank = ((q * hist.total as f64).ceil() as u64).clamp(1, hist.total);
        let mut seen = 0u64;
        for (idx, &c) in hist.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(idx);
            }
        }
        bucket_high(NUM_BUCKETS - 1)
    };
    Some(Percentiles {
        count: hist.total,
        p50_ns: quantile(0.50),
        p99_ns: quantile(0.99),
        p999_ns: quantile(0.999),
    })
}

/// The `(cat, name)` keys of every histogram with samples.
pub fn histogram_keys() -> Vec<(&'static str, &'static str)> {
    lock(&HISTOGRAMS)
        .iter()
        .filter(|(_, h)| h.total > 0)
        .map(|(k, _)| *k)
        .collect()
}

/// Clears all histograms.
pub fn clear_histograms() {
    lock(&HISTOGRAMS).clear();
}

// ---------------------------------------------------------------------------
// Draining
// ---------------------------------------------------------------------------

/// Everything collected since the last drain.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSnapshot {
    /// `(tid, thread name)` for every thread that emitted events.
    pub threads: Vec<(u64, String)>,
    /// All events, sorted by timestamp (stable across equal stamps:
    /// registration order, then per-thread emission order).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow.
    pub dropped: u64,
}

/// Drains every thread's ring into one time-sorted snapshot and
/// prunes rings of exited threads.
pub fn drain() -> TraceSnapshot {
    let mut snap = TraceSnapshot::default();
    let mut registry = lock(&REGISTRY);
    registry.retain(|entry| {
        let mut ring = lock(&entry.ring);
        if !ring.events.is_empty() {
            snap.threads.push((entry.tid, entry.name.clone()));
        }
        snap.dropped += ring.dropped;
        ring.dropped = 0;
        for ev in ring.events.drain(..) {
            snap.events.push(TraceEvent {
                tid: entry.tid,
                kind: ev.kind,
                cat: ev.cat,
                name: ev.name,
                ts_ns: ev.ts_ns,
                dur_ns: ev.dur_ns,
                args: ev.args[..usize::from(ev.nargs)].to_vec(),
            });
        }
        !ring.dead
    });
    drop(registry);
    snap.events.sort_by_key(|e| e.ts_ns);
    snap
}

/// Drops all buffered events and histograms (a clean slate for a
/// demo or test run). Leaves the armed/disarmed state alone.
pub fn reset() {
    drain();
    clear_histograms();
}

// ---------------------------------------------------------------------------
// Chrome/Perfetto JSON writer
// ---------------------------------------------------------------------------

/// Escapes `s` into a JSON string literal body (no surrounding
/// quotes), emitting pure ASCII: `"`, `\`, and ASCII control
/// characters use their short escapes (or `\u00XX`), and every
/// non-ASCII scalar is written as `\uXXXX` (surrogate pairs beyond
/// the BMP) — so the output survives even byte-oriented parsers.
pub fn escape_json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c if c.is_ascii() => out.push(c),
            c => {
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units) {
                    out.push_str(&format!("\\u{:04x}", *unit));
                }
            }
        }
    }
    out
}

/// Microseconds with ns precision, as a decimal literal (Chrome's
/// `ts`/`dur` unit) — formatted without going through floats so the
/// output is deterministic.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders a snapshot in the Chrome/Perfetto JSON Trace Format
/// (`{"traceEvents": [...]}`): thread-name metadata records first,
/// then every event. Loadable by `chrome://tracing` and the Perfetto
/// UI.
pub fn to_chrome_json(snap: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(128 + snap.events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push_record = |out: &mut String, body: &str| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n{");
        out.push_str(body);
        out.push('}');
    };
    for (tid, name) in &snap.threads {
        push_record(
            &mut out,
            &format!(
                "\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}",
                escape_json_string(name)
            ),
        );
    }
    for ev in &snap.events {
        let mut body = format!(
            "\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}",
            match ev.kind {
                EventKind::Begin => "B",
                EventKind::End => "E",
                EventKind::Complete => "X",
                EventKind::Instant => "i",
                EventKind::Counter => "C",
            },
            ev.tid,
            us(ev.ts_ns),
        );
        if ev.kind == EventKind::Complete {
            body.push_str(&format!(",\"dur\":{}", us(ev.dur_ns)));
        }
        body.push_str(&format!(
            ",\"cat\":\"{}\",\"name\":\"{}\"",
            escape_json_string(ev.cat),
            escape_json_string(ev.name)
        ));
        if ev.kind == EventKind::Instant {
            body.push_str(",\"s\":\"t\"");
        }
        if !ev.args.is_empty() {
            body.push_str(",\"args\":{");
            for (i, (k, v)) in ev.args.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&format!("\"{}\":{v}", escape_json_string(k)));
            }
            body.push('}');
        }
        push_record(&mut out, &body);
    }
    out.push_str("\n]}\n");
    out
}

// ---------------------------------------------------------------------------
// Structure analysis (test support, but useful for tooling too)
// ---------------------------------------------------------------------------

/// Checks that every thread's B/E events are well-nested: each `E`
/// closes the `B` on top of that thread's stack, and no stack is left
/// open. `X`/`i`/`C` events don't participate.
pub fn check_nesting(snap: &TraceSnapshot) -> Result<(), String> {
    let mut stacks: std::collections::BTreeMap<u64, Vec<(&str, &str)>> = Default::default();
    for ev in &snap.events {
        match ev.kind {
            EventKind::Begin => stacks.entry(ev.tid).or_default().push((ev.cat, ev.name)),
            EventKind::End => {
                let stack = stacks.entry(ev.tid).or_default();
                match stack.pop() {
                    Some(open) if open == (ev.cat, ev.name) => {}
                    Some((c, n)) => {
                        return Err(format!(
                            "tid {}: E {}/{} closes open span {c}/{n}",
                            ev.tid, ev.cat, ev.name
                        ))
                    }
                    None => {
                        return Err(format!(
                            "tid {}: E {}/{} with empty stack",
                            ev.tid, ev.cat, ev.name
                        ))
                    }
                }
            }
            _ => {}
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!("tid {tid}: {} span(s) left open", stack.len()));
        }
    }
    Ok(())
}

/// A worker-count-invariant signature of a snapshot's span
/// *structure*: for B/E spans, `(parent-or-root, span)` pair counts
/// (nesting); for complete/instant events, name counts. Timestamps,
/// thread ids, and counter samples are excluded — two runs of the
/// same work at different worker counts produce equal signatures.
pub fn structure_signature(snap: &TraceSnapshot) -> std::collections::BTreeMap<String, u64> {
    let mut sig: std::collections::BTreeMap<String, u64> = Default::default();
    let mut stacks: std::collections::BTreeMap<u64, Vec<&str>> = Default::default();
    for ev in &snap.events {
        match ev.kind {
            EventKind::Begin => {
                let stack = stacks.entry(ev.tid).or_default();
                let parent = stack.last().copied().unwrap_or("<root>");
                *sig.entry(format!("span {parent} > {}/{}", ev.cat, ev.name))
                    .or_insert(0) += 1;
                stack.push(ev.name);
            }
            EventKind::End => {
                stacks.entry(ev.tid).or_default().pop();
            }
            EventKind::Complete => {
                *sig.entry(format!("complete {}/{}", ev.cat, ev.name))
                    .or_insert(0) += 1;
            }
            EventKind::Instant => {
                *sig.entry(format!("instant {}/{}", ev.cat, ev.name))
                    .or_insert(0) += 1;
            }
            // Counter cadence may legitimately vary with timing.
            EventKind::Counter => {}
        }
    }
    sig
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests toggle the process-wide statics; serialize them.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        let guard = GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_spans(false);
        set_histograms(false);
        reset();
        guard
    }

    #[test]
    fn disarmed_macros_emit_nothing() {
        let _g = serial();
        let _span = trace_span!("t", "nothing", "k" => 1u64);
        trace_instant!("t", "nothing");
        trace_counter!("t", "nothing", 7u64);
        drop(_span);
        let snap = drain();
        assert!(snap.events.is_empty());
        assert!(histogram_keys().is_empty());
    }

    #[test]
    fn span_guard_emits_balanced_b_e_and_histograms() {
        let _g = serial();
        set_spans(true);
        set_histograms(true);
        {
            let _outer = trace_span!("t", "outer", "n" => 3u64);
            let _inner = trace_span!("t", "inner");
        }
        complete_from("t", "solve", armed_now(), &[("nodes", 8)]);
        set_spans(false);
        set_histograms(false);
        let snap = drain();
        let kinds: Vec<_> = snap.events.iter().map(|e| (e.kind, e.name)).collect();
        assert_eq!(
            kinds,
            vec![
                (EventKind::Begin, "outer"),
                (EventKind::Begin, "inner"),
                (EventKind::End, "inner"),
                (EventKind::End, "outer"),
                (EventKind::Complete, "solve"),
            ]
        );
        check_nesting(&snap).unwrap();
        assert_eq!(snap.events[0].args, vec![("n", 3u64)]);
        for name in ["outer", "inner", "solve"] {
            let p = percentiles("t", name).unwrap();
            assert_eq!(p.count, 1);
            assert!(p.p50_ns <= p.p99_ns && p.p99_ns <= p.p999_ns);
        }
    }

    #[test]
    fn histograms_without_spans_record_but_emit_no_events() {
        let _g = serial();
        set_histograms(true);
        {
            let _span = trace_span!("t", "warm");
        }
        set_histograms(false);
        assert!(drain().events.is_empty());
        assert_eq!(percentiles("t", "warm").unwrap().count, 1);
    }

    #[test]
    fn cross_thread_events_merge_sorted_and_dead_rings_prune() {
        let _g = serial();
        let base = lock(&REGISTRY).len();
        set_spans(true);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let _span = trace_span!("t", "worker");
                });
            }
        });
        let _main = trace_span!("t", "main");
        drop(_main);
        set_spans(false);
        let snap = drain();
        assert_eq!(snap.threads.len(), 4);
        assert_eq!(snap.events.len(), 8);
        assert!(snap.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        check_nesting(&snap).unwrap();
        // The three scoped threads died: their rings must be pruned.
        // scope() returns when the closures finish, which can be a
        // hair before thread teardown runs the TLS destructor that
        // marks a ring dead — and threads of *other* tests may still
        // be winding down — so poll (drain prunes) and only bound
        // the count, don't demand an exact one.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while lock(&REGISTRY).len() > base + 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "worker rings never pruned"
            );
            std::thread::yield_now();
            drain();
        }
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let _g = serial();
        set_spans(true);
        for i in 0..(RING_CAPACITY + 10) {
            trace_counter!("t", "tick", i as u64);
        }
        set_spans(false);
        let snap = drain();
        assert_eq!(snap.events.len(), RING_CAPACITY);
        assert_eq!(snap.dropped, 10);
        assert_eq!(snap.events[0].args[0].1, 10);
    }

    #[test]
    fn bucket_scheme_is_monotone_and_bounded() {
        let mut last = 0usize;
        for shift in 0..63 {
            for off in [0u64, 1, 3] {
                let v = (1u64 << shift).saturating_add(off);
                let b = bucket_of(v);
                assert!(b >= last || v < (1 << SUB_BITS));
                assert!(b < NUM_BUCKETS);
                assert!(bucket_high(b) >= v);
                // Upper edge is within 12.5% above the value (or exact
                // for small values).
                assert!(bucket_high(b) as f64 <= v as f64 * 1.125 + 1.0);
                last = b;
            }
        }
        assert!(bucket_of(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn percentiles_on_known_distribution() {
        let _g = serial();
        // 1000 samples: 988 at 1µs, 10 at 100µs, 2 at 10ms.
        for _ in 0..988 {
            record_duration("t", "dist", 1_000);
        }
        for _ in 0..10 {
            record_duration("t", "dist", 100_000);
        }
        record_duration("t", "dist", 10_000_000);
        record_duration("t", "dist", 10_000_000);
        let p = percentiles("t", "dist").unwrap();
        assert_eq!(p.count, 1000);
        assert!(p.p50_ns >= 1_000 && p.p50_ns < 1_200);
        assert!(p.p99_ns >= 100_000 && p.p99_ns < 120_000);
        assert!(p.p999_ns >= 10_000_000 && p.p999_ns < 12_000_000);
    }

    #[test]
    fn escaping_covers_controls_and_non_ascii() {
        assert_eq!(escape_json_string("plain"), "plain");
        assert_eq!(escape_json_string("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json_string("\n\t\r"), "\\n\\t\\r");
        assert_eq!(escape_json_string("\u{7}"), "\\u0007");
        assert_eq!(escape_json_string("é"), "\\u00e9");
        assert_eq!(escape_json_string("🦀"), "\\ud83e\\udd80");
        assert!(escape_json_string("🦀 naïve \"x\"").is_ascii());
    }

    #[test]
    fn writer_renders_every_event_kind() {
        let _g = serial();
        set_spans(true);
        {
            let _span = trace_span!("cat", "b_e", "k" => 5u64);
            trace_instant!("cat", "point");
            trace_counter!("cat", "depth", 42u64);
        }
        complete_from("cat", "x_span", armed_now(), &[]);
        set_spans(false);
        let json = to_chrome_json(&drain());
        for needle in [
            "\"ph\":\"B\"",
            "\"ph\":\"E\"",
            "\"ph\":\"i\"",
            "\"ph\":\"C\"",
            "\"ph\":\"X\"",
            "\"ph\":\"M\"",
            "\"name\":\"b_e\"",
            "\"args\":{\"k\":5}",
            "\"args\":{\"value\":42}",
            "\"dur\":",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(json.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn structure_signature_ignores_threads_and_time() {
        let _g = serial();
        set_spans(true);
        let run = |workers: usize| {
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| {
                        let _outer = trace_span!("t", "outer");
                        let _inner = trace_span!("t", "inner");
                    });
                }
            });
            structure_signature(&drain())
        };
        let a = run(1);
        // One worker emits the same *per-span* structure as four, so
        // scale the expectation.
        let b = run(4);
        assert_eq!(a.len(), b.len());
        for (k, v) in &a {
            assert_eq!(b[k], v * 4, "{k}");
        }
        set_spans(false);
    }

    #[test]
    fn trace_config_apply_only_arms() {
        let _g = serial();
        TraceConfig::default().apply();
        assert!(!armed());
        TraceConfig {
            spans: true,
            histograms: false,
        }
        .apply();
        assert!(spans_on() && !histograms_on());
        // A later default config must not disarm.
        TraceConfig::default().apply();
        assert!(spans_on());
        set_spans(false);
        assert!(TraceConfig::full().enabled());
    }
}
