//! Policy service end-to-end: a fleet manager asks the wire API for
//! listen/transmit policies.
//!
//! Encodes a mixed batch of policy requests (a homogeneous 100-tag
//! fleet at several harvest rates, plus a heterogeneous 5-node
//! deployment and a permutation of it), feeds the bytes to a
//! [`WireServer`], and decodes the responses — then does it again to
//! show the warm cache answering without touching a solver.
//!
//! ```text
//! cargo run --release --example policy_service
//! ```

use bytes::BytesMut;
use econcast::core::{NodeParams, ThroughputMode};
use econcast::proto::service::{ServiceCodec, ServiceMessage};
use econcast::service::{PolicyRequest, PolicyService, WireServer};

fn main() {
    let mut server = WireServer::new(PolicyService::default());

    // The batch: one fleet, three harvest conditions, plus a
    // heterogeneous site (solar / battery / mains-assisted nodes) and
    // the same site listed in a different node order.
    let mut requests: Vec<PolicyRequest> = [5.0, 10.0, 40.0]
        .iter()
        .map(|&rho_uw| {
            PolicyRequest::homogeneous(
                100,
                NodeParams::from_microwatts(rho_uw, 500.0, 450.0),
                0.5,
                ThroughputMode::Groupput,
                1e-2,
            )
        })
        .collect();
    let site = PolicyRequest {
        budgets_w: vec![5e-6, 80e-6, 12e-6, 21e-6, 9e-6],
        listen_w: 500e-6,
        transmit_w: 450e-6,
        sigma: 0.5,
        objective: ThroughputMode::Groupput,
        tolerance: 1e-3,
    };
    let mut permuted = site.clone();
    permuted.budgets_w.rotate_left(2);
    requests.push(site);
    requests.push(permuted);

    for pass in ["cold", "warm"] {
        // Client side: encode the batch onto the wire.
        let mut wire = BytesMut::new();
        for (id, req) in requests.iter().enumerate() {
            ServiceCodec::encode(&ServiceMessage::Request(req.to_wire(id as u32)), &mut wire);
        }

        // Server side: feed bytes, serve everything buffered as one
        // batch.
        server.feed(&wire);
        let reply_bytes = server.poll_batch().expect("clean stream");

        // Client side again: decode the replies.
        let mut codec = ServiceCodec::new();
        codec.feed(&reply_bytes);
        println!("== {pass} pass ==");
        for msg in codec.drain().expect("valid replies") {
            let ServiceMessage::Response(r) = msg else {
                panic!("no errors expected in this demo");
            };
            let p0 = &r.policies[0];
            println!(
                "req {:>2} [{:?}]: {:>3} nodes, T = {:.4}, node0 (α, β) = ({:.5}, {:.5}), \
                 certificate T^σ {:.4} ≤ T* {:.4} ≤ D(η) {:.4}",
                r.id,
                r.tier,
                r.policies.len(),
                r.throughput,
                p0.listen,
                p0.transmit,
                r.cert_t_sigma,
                r.cert_oracle,
                r.cert_dual_upper,
            );
        }
        let s = server.service().stats();
        println!(
            "stats: {} requests | exact {} · grid {} · closed-form {} · solver {} | \
             lru {}/{} entries\n",
            s.requests,
            s.exact_hits,
            s.grid_hits,
            s.closed_form_hits,
            s.solver_solves,
            s.lru_len,
            1024,
        );
    }
    println!("warm pass served entirely from the exact tier — no solver ran.");
}
