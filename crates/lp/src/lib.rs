//! # econcast-lp — a dense two-phase simplex solver
//!
//! The EconCast paper reduces its oracle-throughput computations to small
//! linear programs: (P2) for the oracle groupput (`2N` variables,
//! `3N + 1` constraints), (P3) for the oracle anyput (which adds the
//! `χ_{i,j}` reception-share variables), and the relaxations that bound
//! the maximum groupput in non-clique topologies (Section IV-C).
//!
//! None of the crates available to this reproduction provide an LP
//! solver, so this crate implements one from scratch: a classic dense
//! tableau simplex with
//!
//! * **two phases** — phase 1 minimizes the sum of artificial variables
//!   to find a basic feasible solution (or prove infeasibility), phase 2
//!   optimizes the user objective;
//! * **Bland's anti-cycling rule** — guarantees termination on the
//!   degenerate problems that the oracle LPs produce when several power
//!   constraints are simultaneously tight;
//! * support for `≤`, `=`, and `≥` constraints and non-negative
//!   variables, which is exactly the form of (P2)/(P3).
//!
//! The problems solved here are tiny (tens to a few hundred variables),
//! so a dense `Vec<f64>` tableau is the simplest robust representation;
//! no sparse machinery is warranted.
//!
//! ## Example
//!
//! Maximize `3x + 2y` subject to `x + y ≤ 4`, `x + 3y ≤ 6`, `x, y ≥ 0`:
//!
//! ```
//! use econcast_lp::{Problem, Relation};
//!
//! let mut p = Problem::maximize(&[3.0, 2.0]);
//! p.constrain(&[1.0, 1.0], Relation::Le, 4.0);
//! p.constrain(&[1.0, 3.0], Relation::Le, 6.0);
//! let sol = p.solve().unwrap();
//! assert!((sol.objective - 12.0).abs() < 1e-9);
//! assert!((sol.x[0] - 4.0).abs() < 1e-9);
//! ```

mod error;
mod problem;
mod simplex;
mod tableau;

pub use error::LpError;
pub use problem::{Constraint, Problem, Relation, Solution};

#[cfg(test)]
mod tests;
