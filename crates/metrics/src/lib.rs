//! # econcast-metrics — the always-on metrics plane
//!
//! `econcast-trace` is a *diagnostic* facility: armed on demand, and
//! its span histograms cost ~20% armed, so they stay off in
//! production. This crate is the *operational* twin: a fixed, named
//! set of *counters*, *gauges*, and *latency histograms* recorded
//! **unconditionally on the serve path** (budget: within noise —
//! enforced by the bench gate's paired `warm_metrics` row), plus a
//! **flight recorder** — a bounded ring of timestamped significant
//! ops events (sheds, failovers, respawns, quarantines, …) dumpable
//! as Perfetto-compatible JSON so a chaos run leaves a black-box
//! record.
//!
//! ## Cost model
//!
//! * [`Counter`] — sharded relaxed `fetch_add`; threads hash onto
//!   cache-line-padded shards, so concurrent serve threads never
//!   bounce one hot line.
//! * [`Histogram`] — one relaxed `fetch_add` into a fixed log-bucket
//!   array (the bucket scheme is `econcast-trace`'s, re-exported, so
//!   both layers' histograms merge index-for-index).
//! * [`Gauge`] — a value + high-water pair of atomics, owned by the
//!   component whose level it is (admission queue, LRU, router);
//!   gauges are **not** process-global — they are injected into a
//!   snapshot at scrape time by whoever owns them.
//! * Flight recorder — a mutex-guarded ring, touched only on *rare*
//!   events (a shed, a respawn), never on the per-request path.
//!
//! Counters, histograms, and the recorder live in one process-global
//! [`hub`] (mirroring `econcast-trace`'s process-wide design): a
//! serve path records into it without plumbing, and a scrape drains
//! it without locks. [`set_recording`] (default **on**) is the single
//! kill switch the bench harness uses to measure the plane's own
//! overhead.
//!
//! ## Snapshots, merge, windows
//!
//! [`snapshot`] freezes the hub into a [`MetricsSnapshot`]: dense
//! counters, kind-tagged gauges, sparse histograms. Snapshots
//! [`merge`](MetricsSnapshot::merge) order-insensitively (Σ for
//! counters, Σ-or-max per gauge kind, bucket-wise Σ for histograms) —
//! the cluster front fans per-backend snapshots into one exactly this
//! way, and the property tests pin associativity. A [`SnapshotRing`]
//! keeps the last K snapshots so every counter also reads as a
//! *rate* — the `repro --top` ops view is built on it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

pub use econcast_trace::{bucket_high, bucket_of, NUM_BUCKETS, SUB_BITS};

// ---------------------------------------------------------------------------
// The fixed metric registry
// ---------------------------------------------------------------------------

/// Requests received on the serve path (including failed ones).
pub const CTR_REQUESTS: usize = 0;
/// Batches served.
pub const CTR_BATCHES: usize = 1;
/// Per-request errors returned.
pub const CTR_ERRORS: usize = 2;
/// Requests shed by the admission ladder.
pub const CTR_SHED: usize = 3;
/// Requests served degraded (tolerance relaxed one decade).
pub const CTR_DEGRADED: usize = 4;
/// Requests whose deadline budget expired before service.
pub const CTR_DEADLINE_MISS: usize = 5;
/// `Overloaded` frames sent to peers.
pub const CTR_OVERLOADED_SENT: usize = 6;
/// `Overloaded` frames received from backends.
pub const CTR_OVERLOADED_RECEIVED: usize = 7;
/// Batches re-served locally after a backend failure.
pub const CTR_FAILOVER_RESERVES: usize = 8;
/// Dead backends automatically respawned.
pub const CTR_RESPAWNS: usize = 9;
/// Backend slots quarantined onto the fallback solver.
pub const CTR_QUARANTINES: usize = 10;
/// Warm mix handoffs shipped during live reshards.
pub const CTR_RESHARD_HANDOFFS: usize = 11;
/// Backend-saturation windows opened.
pub const CTR_SATURATION_OPENS: usize = 12;
/// Number of named counters in the registry.
pub const NUM_COUNTERS: usize = 13;

/// Display names, indexed by the `CTR_*` constants.
pub const COUNTER_NAMES: [&str; NUM_COUNTERS] = [
    "requests",
    "batches",
    "errors",
    "shed",
    "degraded",
    "deadline_miss",
    "overloaded_sent",
    "overloaded_received",
    "failover_reserves",
    "respawns",
    "quarantines",
    "reshard_handoffs",
    "saturation_opens",
];

/// Gauge merge kind: values sum across sources (disjoint levels, e.g.
/// per-shard LRU residency).
pub const GAUGE_KIND_SUM: u8 = 0;
/// Gauge merge kind: values max across sources (a shared high-water
/// mark, e.g. queue-depth peak).
pub const GAUGE_KIND_MAX: u8 = 1;

/// Current admission-queue depth (Σ across sources).
pub const GAUGE_QUEUE_DEPTH: usize = 0;
/// Admission-queue high-water mark (max across sources).
pub const GAUGE_QUEUE_DEPTH_PEAK: usize = 1;
/// Entries resident in the exact-match LRU tier (Σ — disjoint shards).
pub const GAUGE_LRU_ENTRIES: usize = 2;
/// Bytes charged to the cache budget, LRU + grids (Σ).
pub const GAUGE_LRU_BYTES: usize = 3;
/// Live (non-quarantined, non-dead) backends behind a front (Σ).
pub const GAUGE_LIVE_BACKENDS: usize = 4;
/// Backend-saturation windows currently open (Σ).
pub const GAUGE_SATURATION_OPEN: usize = 5;
/// Number of named gauges in the registry.
pub const NUM_GAUGES: usize = 6;

/// Display names, indexed by the `GAUGE_*` constants.
pub const GAUGE_NAMES: [&str; NUM_GAUGES] = [
    "queue_depth",
    "queue_depth_peak",
    "lru_entries",
    "lru_bytes",
    "live_backends",
    "saturation_open",
];

/// Merge kinds, indexed by the `GAUGE_*` constants.
pub const GAUGE_KINDS: [u8; NUM_GAUGES] = [
    GAUGE_KIND_SUM,
    GAUGE_KIND_MAX,
    GAUGE_KIND_SUM,
    GAUGE_KIND_SUM,
    GAUGE_KIND_SUM,
    GAUGE_KIND_SUM,
];

/// Wall time of one served batch, ns.
pub const HIST_BATCH_NS: usize = 0;
/// Per-request service time, ns (batch wall time ÷ batch size, one
/// sample per request so percentiles weight by request, not batch).
pub const HIST_REQUEST_NS: usize = 1;
/// Number of named histograms in the registry.
pub const NUM_HISTS: usize = 2;

/// Display names, indexed by the `HIST_*` constants.
pub const HIST_NAMES: [&str; NUM_HISTS] = ["batch_ns", "request_ns"];

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

const COUNTER_SHARDS: usize = 8;

#[repr(align(64))]
#[derive(Debug)]
struct PaddedU64(AtomicU64);

impl PaddedU64 {
    const fn new() -> Self {
        PaddedU64(AtomicU64::new(0))
    }
}

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

#[inline]
fn thread_shard() -> usize {
    thread_local! {
        static SLOT: usize =
            NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
    }
    SLOT.try_with(|s| *s).unwrap_or(0)
}

/// A monotone event counter, sharded across cache-line-padded atomics
/// so concurrent serve threads never contend on one line. All
/// operations are relaxed — a read is a snapshot, not a fence.
#[derive(Debug)]
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter {
            shards: [
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
            ],
        }
    }

    /// Adds `n` on the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[thread_shard()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// The sum across shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }

    /// Zeroes every shard (tests and the bench harness only — the
    /// serve path never resets).
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A level with a high-water mark: current value plus the peak it has
/// ever reached. Owned by the component whose level it measures (the
/// admission queue, a router); injected into snapshots at scrape
/// time.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Raises the level by `n`, returning the new value. Does **not**
    /// advance the peak — callers that admit conditionally (the shed
    /// ladder) record the peak only for levels that are actually
    /// held, via [`note_peak`](Self::note_peak).
    #[inline]
    pub fn add(&self, n: u64) -> u64 {
        self.value.fetch_add(n, Ordering::AcqRel) + n
    }

    /// Lowers the level by `n` (saturating semantics are the caller's
    /// responsibility — levels are balanced add/sub pairs).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.value.fetch_sub(n, Ordering::AcqRel);
    }

    /// Folds `v` into the high-water mark.
    #[inline]
    pub fn note_peak(&self, v: u64) {
        self.peak.fetch_max(v, Ordering::AcqRel);
    }

    /// Overwrites the level (for sampled gauges, e.g. LRU residency),
    /// advancing the peak.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Release);
        self.note_peak(v);
    }

    /// The current level.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    /// The high-water mark.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Acquire)
    }
}

/// A permanently-armed latency histogram: fixed log-spaced buckets
/// (the `econcast-trace` scheme — ≤ 12.5% relative edge error), one
/// relaxed `fetch_add` per sample.
#[derive(Debug)]
pub struct Histogram {
    counts: Box<[AtomicU64]>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records `n` occurrences of value `v` (typically nanoseconds).
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        self.counts[bucket_of(v)].fetch_add(n, Ordering::Relaxed);
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// The sparse frozen form (non-zero buckets, ascending index).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = Vec::new();
        for (idx, c) in self.counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n != 0 {
                buckets.push((idx as u16, n));
            }
        }
        HistSnapshot { buckets }
    }

    /// Zeroes every bucket (tests and the bench harness only).
    pub fn reset(&self) {
        for c in self.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A frozen histogram: `(bucket index, count)` pairs, ascending
/// index, zero buckets omitted — the form that rides the wire and
/// merges across shards/backends.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Non-zero `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(u16, u64)>,
}

impl HistSnapshot {
    /// Total sample count.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|&(_, n)| n).sum()
    }

    /// Bucket-wise sum — associative and order-insensitive (pinned by
    /// property test), so a cluster fan-in may merge backends in any
    /// order and still equal the single-process histogram.
    pub fn merge(&mut self, other: &HistSnapshot) {
        let mut out = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() || j < other.buckets.len() {
            let a = self.buckets.get(i).copied();
            let b = other.buckets.get(j).copied();
            match (a, b) {
                (Some((ia, na)), Some((ib, _))) if ia < ib => {
                    out.push((ia, na));
                    i += 1;
                }
                (Some((ia, _)), Some((ib, nb))) if ib < ia => {
                    out.push((ib, nb));
                    j += 1;
                }
                (Some((ia, na)), Some((_, nb))) => {
                    out.push((ia, na + nb));
                    i += 1;
                    j += 1;
                }
                (Some((ia, na)), None) => {
                    out.push((ia, na));
                    i += 1;
                }
                (None, Some((ib, nb))) => {
                    out.push((ib, nb));
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.buckets = out;
    }

    /// The value at quantile `q` (upper bucket edge — tails are never
    /// under-stated), or 0 with no samples.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_high(usize::from(idx));
            }
        }
        bucket_high(NUM_BUCKETS - 1)
    }
}

// ---------------------------------------------------------------------------
// Snapshots and merge
// ---------------------------------------------------------------------------

/// One scrape of a metrics plane: dense counters (indexed by the
/// `CTR_*` registry), kind-tagged gauges (`GAUGE_*`), and sparse
/// histograms (`HIST_*`). The gauge merge kind travels **with the
/// data**, so a fan-in needs no out-of-band schema: Σ counters,
/// Σ-or-max per gauge kind, bucket-wise Σ histograms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values, indexed by the `CTR_*` constants.
    pub counters: Vec<u64>,
    /// `(merge kind, value)` per gauge, indexed by the `GAUGE_*`
    /// constants. Kind is [`GAUGE_KIND_SUM`] or [`GAUGE_KIND_MAX`].
    pub gauges: Vec<(u8, u64)>,
    /// Sparse histograms, indexed by the `HIST_*` constants.
    pub hists: Vec<HistSnapshot>,
}

impl MetricsSnapshot {
    /// An all-zero snapshot with the full current registry shape
    /// (the merge identity).
    pub fn zeroed() -> Self {
        MetricsSnapshot {
            counters: vec![0; NUM_COUNTERS],
            gauges: GAUGE_KINDS.iter().map(|&k| (k, 0)).collect(),
            hists: vec![HistSnapshot::default(); NUM_HISTS],
        }
    }

    /// Folds `other` in: counters sum, gauges sum or max per their
    /// kind tag, histograms merge bucket-wise. Tolerates length
    /// mismatches (an older peer reporting a shorter registry) by
    /// treating missing entries as absent, so mixed-version fan-ins
    /// stay lossless for the fields both sides know.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        if self.counters.len() < other.counters.len() {
            self.counters.resize(other.counters.len(), 0);
        }
        for (i, &v) in other.counters.iter().enumerate() {
            self.counters[i] = self.counters[i].wrapping_add(v);
        }
        for (i, &(kind, v)) in other.gauges.iter().enumerate() {
            if i < self.gauges.len() {
                let (k, cur) = self.gauges[i];
                self.gauges[i] = match k {
                    GAUGE_KIND_MAX => (k, cur.max(v)),
                    _ => (k, cur.wrapping_add(v)),
                };
            } else {
                self.gauges.push((kind, v));
            }
        }
        for (i, h) in other.hists.iter().enumerate() {
            if i < self.hists.len() {
                self.hists[i].merge(h);
            } else {
                self.hists.push(h.clone());
            }
        }
    }

    /// A named counter, 0 when the snapshot predates it.
    pub fn counter(&self, idx: usize) -> u64 {
        self.counters.get(idx).copied().unwrap_or(0)
    }

    /// A named gauge value, 0 when the snapshot predates it.
    pub fn gauge(&self, idx: usize) -> u64 {
        self.gauges.get(idx).map(|&(_, v)| v).unwrap_or(0)
    }

    /// A named histogram, empty when the snapshot predates it.
    pub fn hist(&self, idx: usize) -> HistSnapshot {
        self.hists.get(idx).cloned().unwrap_or_default()
    }
}

/// A ring of the last K counter snapshots, so every counter also
/// reads as a **rate**: `rate_per_sec` diffs the newest entry against
/// the oldest over the window's wall time. Negative deltas (a
/// restarted source whose fan-in was not re-based) clamp to zero
/// rather than going backwards.
#[derive(Debug, Clone)]
pub struct SnapshotRing {
    cap: usize,
    entries: VecDeque<(u64, Vec<u64>)>,
}

impl SnapshotRing {
    /// A ring keeping the last `cap` (≥ 2) snapshots.
    pub fn new(cap: usize) -> Self {
        SnapshotRing {
            cap: cap.max(2),
            entries: VecDeque::new(),
        }
    }

    /// Appends one scrape (`ts_ns` from a monotone clock), dropping
    /// the oldest past capacity.
    pub fn push(&mut self, ts_ns: u64, counters: &[u64]) {
        if self.entries.len() == self.cap {
            self.entries.pop_front();
        }
        self.entries.push_back((ts_ns, counters.to_vec()));
    }

    /// Wall time spanned by the ring, ns.
    pub fn window_ns(&self) -> u64 {
        match (self.entries.front(), self.entries.back()) {
            (Some(&(t0, _)), Some(&(t1, _))) => t1.saturating_sub(t0),
            _ => 0,
        }
    }

    /// Counter delta over the window (clamped at zero).
    pub fn delta(&self, idx: usize) -> u64 {
        match (self.entries.front(), self.entries.back()) {
            (Some((_, old)), Some((_, new))) => {
                let a = old.get(idx).copied().unwrap_or(0);
                let b = new.get(idx).copied().unwrap_or(0);
                b.saturating_sub(a)
            }
            _ => 0,
        }
    }

    /// Counter rate over the window, per second (0 with < 2 entries).
    pub fn rate_per_sec(&self, idx: usize) -> f64 {
        let window = self.window_ns();
        if window == 0 {
            return 0.0;
        }
        self.delta(idx) as f64 * 1e9 / window as f64
    }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// Flight-recorder ring capacity (events; overflow drops oldest).
pub const RECORDER_CAPACITY: usize = 4096;

/// A significant ops event — the flight recorder's vocabulary. Each
/// maps onto the counter it also bumps (see [`ops_event`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpsKind {
    /// A request was shed by the admission ladder.
    Shed,
    /// An `Overloaded` frame was sent to a peer.
    OverloadedSent,
    /// An `Overloaded` frame arrived from a backend.
    OverloadedReceived,
    /// A request's deadline budget expired before service.
    DeadlineMiss,
    /// A batch was re-served locally after a backend failure.
    FailoverReserve,
    /// A dead backend was respawned.
    Respawn,
    /// A backend slot was quarantined onto the fallback solver.
    Quarantine,
    /// A warm mix handoff shipped during a live reshard.
    ReshardHandoff,
    /// A backend-saturation window opened.
    SaturationOpen,
    /// A backend-saturation window lapsed.
    SaturationClose,
}

impl OpsKind {
    /// The event's display (and Perfetto) name.
    pub fn name(self) -> &'static str {
        match self {
            OpsKind::Shed => "shed",
            OpsKind::OverloadedSent => "overloaded_sent",
            OpsKind::OverloadedReceived => "overloaded_received",
            OpsKind::DeadlineMiss => "deadline_miss",
            OpsKind::FailoverReserve => "failover_reserve",
            OpsKind::Respawn => "respawn",
            OpsKind::Quarantine => "quarantine",
            OpsKind::ReshardHandoff => "reshard_handoff",
            OpsKind::SaturationOpen => "saturation_open",
            OpsKind::SaturationClose => "saturation_close",
        }
    }

    /// The registry counter this event bumps, if any.
    fn counter(self) -> Option<usize> {
        match self {
            OpsKind::Shed => Some(CTR_SHED),
            OpsKind::OverloadedSent => Some(CTR_OVERLOADED_SENT),
            OpsKind::OverloadedReceived => Some(CTR_OVERLOADED_RECEIVED),
            OpsKind::DeadlineMiss => Some(CTR_DEADLINE_MISS),
            OpsKind::FailoverReserve => Some(CTR_FAILOVER_RESERVES),
            OpsKind::Respawn => Some(CTR_RESPAWNS),
            OpsKind::Quarantine => Some(CTR_QUARANTINES),
            OpsKind::ReshardHandoff => Some(CTR_RESHARD_HANDOFFS),
            OpsKind::SaturationOpen => Some(CTR_SATURATION_OPENS),
            OpsKind::SaturationClose => None,
        }
    }
}

/// One recorded ops event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpsEvent {
    /// Monotone sequence number (process-wide, never reused) — ring
    /// overflow is visible as a gap.
    pub seq: u64,
    /// Nanoseconds since the trace epoch ([`econcast_trace::now_ns`]).
    pub ts_ns: u64,
    /// What happened.
    pub kind: OpsKind,
    /// Primary argument (slot / shard index where meaningful).
    pub slot: u64,
    /// Secondary argument (event-specific detail, e.g. retry hint µs).
    pub detail: u64,
}

#[derive(Debug, Default)]
struct Recorder {
    events: VecDeque<OpsEvent>,
    dropped: u64,
    next_seq: u64,
}

// ---------------------------------------------------------------------------
// The process-global hub
// ---------------------------------------------------------------------------

/// The process-global metrics plane: the registry's counters and
/// histograms plus the flight recorder. Gauges are *not* here — they
/// are owned by their components and injected at scrape time.
#[derive(Debug)]
pub struct Hub {
    counters: [Counter; NUM_COUNTERS],
    hists: Vec<Histogram>,
    recorder: Mutex<Recorder>,
}

static HUB: OnceLock<Hub> = OnceLock::new();
static RECORDING: AtomicBool = AtomicBool::new(true);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The process-global hub.
pub fn hub() -> &'static Hub {
    HUB.get_or_init(|| Hub {
        counters: std::array::from_fn(|_| Counter::new()),
        hists: (0..NUM_HISTS).map(|_| Histogram::new()).collect(),
        recorder: Mutex::new(Recorder::default()),
    })
}

/// Whether the plane is recording (default **on** — this is the
/// always-on plane; the bench harness turns it off to measure its own
/// overhead).
#[inline(always)]
pub fn recording_on() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Turns recording on or off, process-wide.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

impl Hub {
    /// Adds `n` to a registry counter.
    #[inline]
    pub fn counter_add(&self, idx: usize, n: u64) {
        self.counters[idx].add(n);
    }

    /// A registry counter's current value.
    pub fn counter_get(&self, idx: usize) -> u64 {
        self.counters[idx].get()
    }

    /// Records `n` samples of `v` into a registry histogram.
    #[inline]
    pub fn record_n(&self, hist: usize, v: u64, n: u64) {
        self.hists[hist].record_n(v, n);
    }

    /// Freezes counters and histograms into a snapshot. Gauge slots
    /// come back zeroed (with their registry kinds) for the owner
    /// layer to fill in.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::zeroed();
        for (i, c) in self.counters.iter().enumerate() {
            snap.counters[i] = c.get();
        }
        for (i, h) in self.hists.iter().enumerate() {
            snap.hists[i] = h.snapshot();
        }
        snap
    }
}

/// Adds `n` to a registry counter on the global hub, when recording.
#[inline]
pub fn counter_add(idx: usize, n: u64) {
    if recording_on() {
        hub().counter_add(idx, n);
    }
}

/// Records `n` samples of `v` into a global-hub histogram, when
/// recording.
#[inline]
pub fn record_n(hist: usize, v: u64, n: u64) {
    if recording_on() {
        hub().record_n(hist, v, n);
    }
}

/// Freezes the global hub (counters + histograms; gauge slots zeroed
/// for the caller to fill).
pub fn snapshot() -> MetricsSnapshot {
    hub().snapshot()
}

/// Records one flight-recorder event (and bumps its registry
/// counter). Touches a mutex — call on *rare* events only, never on
/// the per-request fast path.
pub fn ops_event(kind: OpsKind, slot: u64, detail: u64) {
    if !recording_on() {
        return;
    }
    let h = hub();
    if let Some(idx) = kind.counter() {
        h.counter_add(idx, 1);
    }
    let mut rec = lock(&h.recorder);
    if rec.events.len() == RECORDER_CAPACITY {
        rec.events.pop_front();
        rec.dropped += 1;
    }
    let seq = rec.next_seq;
    rec.next_seq += 1;
    rec.events.push_back(OpsEvent {
        seq,
        ts_ns: econcast_trace::now_ns(),
        kind,
        slot,
        detail,
    });
}

/// The recorder's current contents, oldest first.
pub fn recorder_events() -> Vec<OpsEvent> {
    lock(&hub().recorder).events.iter().copied().collect()
}

/// Events lost to ring overflow so far.
pub fn recorder_dropped() -> u64 {
    lock(&hub().recorder).dropped
}

/// Empties the recorder ring (keeps the sequence counter running, so
/// post-clear events are still globally ordered).
pub fn recorder_clear() {
    let mut rec = lock(&hub().recorder);
    rec.events.clear();
    rec.dropped = 0;
}

/// Renders the recorder as Chrome/Perfetto JSON instant events
/// (`{"traceEvents":[...]}`), loadable by `chrome://tracing` and the
/// Perfetto UI — the black-box dump a chaos run leaves behind.
pub fn recorder_dump_json() -> String {
    let events = recorder_events();
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"s\":\"p\",\"ts\":{}.{:03},\
             \"cat\":\"ops\",\"name\":\"{}\",\"args\":{{\"seq\":{},\"slot\":{},\"detail\":{}}}}}",
            ev.ts_ns / 1_000,
            ev.ts_ns % 1_000,
            ev.kind.name(),
            ev.seq,
            ev.slot,
            ev.detail,
        ));
    }
    out.push_str("\n]}\n");
    out
}

/// Zeroes the global hub's counters and histograms and empties the
/// recorder — a clean slate for tests and bench runs. Leaves the
/// recording switch alone.
pub fn reset() {
    let h = hub();
    for c in &h.counters {
        c.reset();
    }
    for hist in &h.hists {
        hist.reset();
    }
    recorder_clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests of the global hub toggle process-wide state; serialize
    /// them (the trace crate's pattern).
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        let guard = GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_recording(true);
        reset();
        guard
    }

    #[test]
    fn counter_sums_across_threads_and_shards() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_tracks_level_and_peak_independently() {
        let g = Gauge::new();
        assert_eq!(g.add(3), 3);
        g.note_peak(3);
        assert_eq!(g.add(2), 5);
        // Conditional admission: the caller may decline to note the
        // peak (a shed never holds a slot).
        g.sub(2);
        assert_eq!(g.value(), 3);
        assert_eq!(g.peak(), 3);
        g.set(10);
        assert_eq!((g.value(), g.peak()), (10, 10));
        g.set(1);
        assert_eq!((g.value(), g.peak()), (1, 10));
    }

    #[test]
    fn histogram_snapshot_quantiles_match_trace_buckets() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.total(), 100);
        assert_eq!(snap.quantile(0.50), bucket_high(bucket_of(1_000)));
        assert_eq!(snap.quantile(1.0), bucket_high(bucket_of(1_000_000)));
        // Upper-edge reporting: never under-states.
        assert!(snap.quantile(0.50) >= 1_000);
    }

    #[test]
    fn hist_merge_is_commutative_on_disjoint_and_overlapping_buckets() {
        let mk = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[1, 100, 100, 5_000]);
        let b = mk(&[100, 7, 1 << 40]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total(), a.total() + b.total());
    }

    #[test]
    fn snapshot_merge_respects_gauge_kinds() {
        let mut a = MetricsSnapshot::zeroed();
        a.counters[CTR_REQUESTS] = 10;
        a.gauges[GAUGE_QUEUE_DEPTH] = (GAUGE_KIND_SUM, 4);
        a.gauges[GAUGE_QUEUE_DEPTH_PEAK] = (GAUGE_KIND_MAX, 9);
        let mut b = MetricsSnapshot::zeroed();
        b.counters[CTR_REQUESTS] = 5;
        b.gauges[GAUGE_QUEUE_DEPTH] = (GAUGE_KIND_SUM, 3);
        b.gauges[GAUGE_QUEUE_DEPTH_PEAK] = (GAUGE_KIND_MAX, 7);
        a.merge(&b);
        assert_eq!(a.counter(CTR_REQUESTS), 15);
        assert_eq!(a.gauge(GAUGE_QUEUE_DEPTH), 7); // Σ
        assert_eq!(a.gauge(GAUGE_QUEUE_DEPTH_PEAK), 9); // max
    }

    #[test]
    fn snapshot_ring_rates_and_reset_clamp() {
        let mut ring = SnapshotRing::new(4);
        ring.push(0, &[0]);
        ring.push(1_000_000_000, &[100]);
        assert_eq!(ring.delta(0), 100);
        assert!((ring.rate_per_sec(0) - 100.0).abs() < 1e-9);
        // A source restart (counter went backwards) clamps, never
        // reads as a negative rate.
        ring.push(2_000_000_000, &[10]);
        assert_eq!(ring.delta(0), 10);
        // Capacity: oldest entries fall off.
        for i in 0..10 {
            ring.push(3_000_000_000 + i, &[1000]);
        }
        assert_eq!(ring.window_ns(), 3);
    }

    #[test]
    fn recorder_ring_wraps_keeps_newest_and_counts_drops() {
        let _g = serial();
        for i in 0..(RECORDER_CAPACITY as u64 + 7) {
            ops_event(OpsKind::Shed, i, 0);
        }
        let events = recorder_events();
        assert_eq!(events.len(), RECORDER_CAPACITY);
        assert_eq!(recorder_dropped(), 7);
        // Oldest dropped: the ring starts at event 7, stays ordered,
        // and sequence numbers expose the gap.
        assert_eq!(events[0].slot, 7);
        assert!(events
            .windows(2)
            .all(|w| { w[0].seq + 1 == w[1].seq && w[0].ts_ns <= w[1].ts_ns }));
        reset();
    }

    #[test]
    fn ops_events_bump_their_registry_counters() {
        let _g = serial();
        ops_event(OpsKind::Respawn, 2, 0);
        ops_event(OpsKind::Quarantine, 2, 0);
        ops_event(OpsKind::SaturationClose, 1, 0); // no counter
        let snap = snapshot();
        assert_eq!(snap.counter(CTR_RESPAWNS), 1);
        assert_eq!(snap.counter(CTR_QUARANTINES), 1);
        let names: Vec<_> = recorder_events().iter().map(|e| e.kind.name()).collect();
        assert_eq!(names, vec!["respawn", "quarantine", "saturation_close"]);
        reset();
    }

    #[test]
    fn recorder_json_is_perfetto_shaped() {
        let _g = serial();
        ops_event(OpsKind::FailoverReserve, 1, 42);
        let json = recorder_dump_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"failover_reserve\""));
        assert!(json.contains("\"slot\":1"));
        assert!(json.contains("\"detail\":42"));
        assert!(json.is_ascii());
        reset();
    }

    #[test]
    fn recording_switch_gates_everything() {
        let _g = serial();
        set_recording(false);
        counter_add(CTR_REQUESTS, 5);
        record_n(HIST_BATCH_NS, 1_000, 1);
        ops_event(OpsKind::Shed, 0, 0);
        let snap = snapshot();
        assert_eq!(snap.counter(CTR_REQUESTS), 0);
        assert_eq!(snap.counter(CTR_SHED), 0);
        assert_eq!(snap.hist(HIST_BATCH_NS).total(), 0);
        assert!(recorder_events().is_empty());
        set_recording(true);
        counter_add(CTR_REQUESTS, 5);
        assert_eq!(snapshot().counter(CTR_REQUESTS), 5);
        reset();
    }

    #[test]
    fn registry_tables_are_consistent() {
        assert_eq!(COUNTER_NAMES.len(), NUM_COUNTERS);
        assert_eq!(GAUGE_NAMES.len(), NUM_GAUGES);
        assert_eq!(GAUGE_KINDS.len(), NUM_GAUGES);
        assert_eq!(HIST_NAMES.len(), NUM_HISTS);
        assert_eq!(GAUGE_KINDS[GAUGE_QUEUE_DEPTH_PEAK], GAUGE_KIND_MAX);
        let z = MetricsSnapshot::zeroed();
        assert_eq!(z.counters.len(), NUM_COUNTERS);
        assert_eq!(z.gauges.len(), NUM_GAUGES);
        assert_eq!(z.hists.len(), NUM_HISTS);
    }
}
