//! # econcast-proto — wire formats for EconCast frames
//!
//! The testbed implementation (Section VIII) exchanges three kinds of
//! frames over the CC2500 radio:
//!
//! * **data packets** — "each data packet contains the node ID and
//!   information about the number of packets it has received from each
//!   other node" (Section VIII-D); 40 ms on air in the experiments;
//! * **pings** — 0.4 ms minimal frames sent by recipients during the
//!   8 ms ping interval after each packet so the transmitter can
//!   estimate `ĉ(t)` (Section VIII-C). A ping carries no payload —
//!   the paper calls them *informationless* — but on real radios even
//!   an energy pulse has a minimal preamble/sync word, which is what
//!   [`Frame::Ping`] models;
//! * **preambles** — the carrier-sense target.
//!
//! This crate defines a compact binary encoding over [`bytes`] with a
//! CRC-16/CCITT integrity check (implemented from scratch — the
//! approved dependency list has no CRC crate) and a length-prefixed
//! stream codec used by the emulated observer node's serial link.
//!
//! A second, *versioned* message family ([`service`], type octets
//! `0x10..`) carries the policy-serving subsystem's request/response
//! traffic (`econcast-service`) over the same CRC and length-prefix
//! machinery.

pub mod codec;
pub mod crc;
pub mod error;
pub mod frame;
pub mod service;

pub use codec::StreamCodec;
pub use error::DecodeError;
pub use frame::{DataFrame, Frame, PingFrame, ReceptionReport};
pub use service::{
    ScatterEncoder, ServedTier, ServiceCodec, ServiceErrorCode, ServiceMessage, WireObjective,
    WirePolicy, WirePolicyError, WirePolicyRequest, WirePolicyResponse, MIN_WIRE_VERSION,
    WIRE_VERSION,
};
