//! The exact-match LRU tier.
//!
//! Keys are [`InstanceKey`]s (canonicalized instances, see
//! `econcast_statespace::instance`); values are solved policies in
//! *canonical* (sorted-budget) order, so one entry serves every
//! permutation of the same instance. Implemented as a `HashMap` into a
//! slot arena threaded with an intrusive doubly-linked recency list —
//! `get` and `insert` are O(1), eviction pops the list tail. No
//! external crates, deterministic behaviour (recency order depends
//! only on the call sequence, never on hash iteration order).

use econcast_oracle::AchievabilityGap;
use econcast_proto::service::PolicyKernel;
use econcast_statespace::InstanceKey;
use std::collections::HashMap;

/// A solved policy in canonical (sorted-budget) node order — the unit
/// the exact tier stores and the solve pipeline produces.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPolicy {
    /// Listen fractions, canonical order.
    pub alpha: Vec<f64>,
    /// Transmit fractions, canonical order.
    pub beta: Vec<f64>,
    /// Expected throughput.
    pub throughput: f64,
    /// Whether the producing solve met its tolerance.
    pub converged: bool,
    /// Which solve kernel produced the entry — carried through the
    /// cache so later exact-tier hits stay attributable (closed form
    /// vs a prior factorized large-N solve vs Gray-code vs grid).
    pub kernel: PolicyKernel,
    /// The certificate computed when the entry was produced.
    pub certificate: AchievabilityGap,
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot {
    key: InstanceKey,
    value: CachedPolicy,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU over canonical instance keys.
#[derive(Debug)]
pub struct LruCache {
    map: HashMap<InstanceKey, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
    capacity: usize,
    evictions: u64,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruCache {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            evictions: 0,
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Unlinks slot `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Links slot `i` at the head (most recent).
    fn link_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, promoting a hit to most-recently-used.
    pub fn get(&mut self, key: &InstanceKey) -> Option<&CachedPolicy> {
        let &i = self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.link_front(i);
        }
        Some(&self.slots[i].value)
    }

    /// Inserts (or refreshes) an entry, evicting the least recently
    /// used one when full.
    pub fn insert(&mut self, key: InstanceKey, value: CachedPolicy) {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.link_front(i);
            }
            return;
        }
        let slot = if self.map.len() >= self.capacity {
            // Recycle the tail.
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slots[victim].key);
            self.evictions += 1;
            self.slots[victim].key = key.clone();
            self.slots[victim].value = value;
            victim
        } else if let Some(i) = self.free.pop() {
            self.slots[i].key = key.clone();
            self.slots[i].value = value;
            i
        } else {
            self.slots.push(Slot {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        };
        self.map.insert(key, slot);
        self.link_front(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use econcast_core::ThroughputMode::Groupput;
    use econcast_statespace::CanonicalInstance;

    fn key(budget_scale: f64) -> InstanceKey {
        CanonicalInstance::new(&[budget_scale * 1e-6], 5e-4, 5e-4, 0.5, Groupput, 1e-3).key
    }

    fn value(tag: f64) -> CachedPolicy {
        CachedPolicy {
            alpha: vec![tag],
            beta: vec![tag],
            throughput: tag,
            converged: true,
            kernel: PolicyKernel::ClosedForm,
            certificate: AchievabilityGap {
                sigma: 0.5,
                t_sigma: tag,
                oracle: tag,
                dual_upper: tag,
                converged: true,
            },
        }
    }

    #[test]
    fn hit_miss_and_eviction_order() {
        let mut lru = LruCache::new(2);
        lru.insert(key(1.0), value(1.0));
        lru.insert(key(2.0), value(2.0));
        assert_eq!(lru.len(), 2);
        // Touch key 1 so key 2 becomes LRU.
        assert!(lru.get(&key(1.0)).is_some());
        lru.insert(key(3.0), value(3.0));
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.evictions(), 1);
        assert!(lru.get(&key(2.0)).is_none(), "LRU entry evicted");
        assert!(lru.get(&key(1.0)).is_some(), "recently used entry kept");
        assert!(lru.get(&key(3.0)).is_some());
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut lru = LruCache::new(2);
        lru.insert(key(1.0), value(1.0));
        lru.insert(key(2.0), value(2.0));
        lru.insert(key(1.0), value(10.0)); // refresh, key 2 now LRU
        assert_eq!(lru.get(&key(1.0)).unwrap().throughput, 10.0);
        lru.insert(key(3.0), value(3.0));
        assert!(lru.get(&key(2.0)).is_none());
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn single_slot_cache_works() {
        let mut lru = LruCache::new(1);
        for i in 1..=5 {
            lru.insert(key(i as f64), value(i as f64));
            assert_eq!(lru.len(), 1);
            assert!(lru.get(&key(i as f64)).is_some());
        }
        assert_eq!(lru.evictions(), 4);
    }

    #[test]
    fn churn_preserves_linkage() {
        // Exercise unlink/link paths across a longer mixed workload.
        let mut lru = LruCache::new(4);
        for round in 0..50usize {
            let k = (round % 7) as f64 + 1.0;
            if round % 3 == 0 {
                let _ = lru.get(&key(k));
            } else {
                lru.insert(key(k), value(k));
            }
            assert!(lru.len() <= 4);
        }
        // The four most recently inserted/touched keys resolve.
        let mut hits = 0;
        for k in 1..=7 {
            if lru.get(&key(k as f64)).is_some() {
                hits += 1;
            }
        }
        assert_eq!(hits, 4);
    }
}
