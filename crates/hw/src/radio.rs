//! The CC2500 transceiver model (Section VIII-A/C).

use econcast_core::NodeParams;
use econcast_proto::Frame;

/// Power/timing constants of the CC2500 as measured by the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cc2500 {
    /// Listen/receive power (W): 67.08 mW measured.
    pub listen_w: f64,
    /// Transmit power (W): 56.29 mW at −16 dBm.
    pub transmit_w: f64,
    /// Radio bitrate (bits/s): 250 kbps.
    pub bitrate_bps: f64,
    /// Data packet airtime (s): 40 ms in the experiments.
    pub packet_s: f64,
    /// Ping airtime (s): 0.4 ms, "the shortest packet that can be sent
    /// by a node".
    pub ping_s: f64,
    /// Post-packet ping interval (s): 8 ms.
    pub ping_interval_s: f64,
}

impl Default for Cc2500 {
    fn default() -> Self {
        Cc2500 {
            listen_w: 67.08e-3,
            transmit_w: 56.29e-3,
            bitrate_bps: 250_000.0,
            packet_s: 40e-3,
            ping_s: 0.4e-3,
            ping_interval_s: 8e-3,
        }
    }
}

impl Cc2500 {
    /// Node power parameters for a target budget (W) on this radio.
    pub fn node_params(&self, budget_w: f64) -> NodeParams {
        NodeParams::new(budget_w, self.listen_w, self.transmit_w)
    }

    /// Ping interval expressed in packet-time units (8 ms / 40 ms =
    /// 0.2), as `econcast-sim` expects.
    pub fn ping_interval_packets(&self) -> f64 {
        self.ping_interval_s / self.packet_s
    }

    /// Ping length in packet-time units (0.4 ms / 40 ms = 0.01).
    pub fn ping_len_packets(&self) -> f64 {
        self.ping_s / self.packet_s
    }

    /// Converts packet-time units to seconds for this radio.
    pub fn packets_to_seconds(&self, packets: f64) -> f64 {
        packets * self.packet_s
    }

    /// Converts seconds to packet-time units.
    pub fn seconds_to_packets(&self, seconds: f64) -> f64 {
        seconds / self.packet_s
    }

    /// Payload capacity of one 40 ms data packet at the radio bitrate,
    /// in bytes.
    pub fn packet_capacity_bytes(&self) -> usize {
        (self.packet_s * self.bitrate_bps / 8.0) as usize
    }

    /// Whether a frame fits in one data packet slot.
    pub fn frame_fits(&self, frame: &Frame) -> bool {
        frame.encoded_len() <= self.packet_capacity_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use econcast_proto::{DataFrame, PingFrame, ReceptionReport};

    #[test]
    fn paper_constants() {
        let r = Cc2500::default();
        assert!((r.listen_w - 67.08e-3).abs() < 1e-9);
        assert!((r.transmit_w - 56.29e-3).abs() < 1e-9);
        // Listening costs more than transmitting at −16 dBm — the
        // inversion the paper highlights (X/L < 1).
        assert!(r.transmit_w < r.listen_w);
        let p = r.node_params(1e-3);
        assert!((p.consumption_ratio() - 56.29 / 67.08).abs() < 1e-9);
    }

    #[test]
    fn packet_time_conversions() {
        let r = Cc2500::default();
        assert!((r.ping_interval_packets() - 0.2).abs() < 1e-12);
        assert!((r.ping_len_packets() - 0.01).abs() < 1e-12);
        assert!((r.packets_to_seconds(100.0) - 4.0).abs() < 1e-12);
        assert!((r.seconds_to_packets(4.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_fits_realistic_frames() {
        let r = Cc2500::default();
        // 40 ms at 250 kbps = 1250 bytes.
        assert_eq!(r.packet_capacity_bytes(), 1250);
        let data = Frame::Data(DataFrame {
            source: 1,
            seq: 9,
            report: vec![ReceptionReport { peer: 0, count: 5 }; 9],
        });
        assert!(r.frame_fits(&data));
        assert!(r.frame_fits(&Frame::Ping(PingFrame { node_id: 3 })));
        // An absurd report does not fit.
        let big = Frame::Data(DataFrame {
            source: 1,
            seq: 9,
            report: vec![ReceptionReport { peer: 0, count: 5 }; 250],
        });
        assert!(!r.frame_fits(&big));
    }
}
