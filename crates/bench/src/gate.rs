//! The CI bench-regression gate.
//!
//! `bench_gate` compares a freshly produced `BENCH_*.json` against the
//! newest committed baseline at the **same thread count** and fails
//! when any kernel or service throughput regressed by more than the
//! allowed fraction. This is what makes the committed baselines
//! enforceable: without it a PR can silently undo the kernel work the
//! baselines document.
//!
//! Comparison rules:
//!
//! * Entries pair by `name`. A baseline entry missing from the fresh
//!   run fails the gate as a total regression (a vanished measurement
//!   is not a pass); fresh-only entries are ignored until a baseline
//!   containing them is committed — so *adding* suite entries never
//!   breaks the gate, and *retiring* one is done by committing the
//!   new baseline in the same PR.
//! * When the two files disagree on `quick`, entries whose *workload
//!   size* depends on the quick flag (fixed-iteration (P4) solves, the
//!   simulator horizon) are skipped — their per-iteration times are
//!   not comparable. The service, summarize, and homogeneous kernels
//!   do identical work in both modes and stay gated.
//! * The JSON `service` section pairs by `batch` and compares every
//!   baseline `*_rps` rate, with the same missing-is-a-regression
//!   rule.
//!
//! The JSON parser is hand-rolled (offline environment, no serde) and
//! covers exactly the subset the bench writer emits — plus enough
//! generality (escapes, nesting) to stay robust to format evolution.

use std::collections::BTreeMap;

/// Fallback list of suite entries whose measured work shrinks under
/// `--quick` (comparing their quick vs full per-iteration numbers is
/// meaningless). New bench records stamp this per entry in a
/// `quick_sensitive` JSON array — the writer knows at suite-build
/// time — and [`compare`] prefers the stamps; this list only covers
/// baselines written before the stamp existed.
pub const QUICK_SENSITIVE: [&str; 5] = [
    "p4_solve_n8",
    "p4_solve_n12",
    "p4_solve_n16",
    "p4_solve_n12_naive",
    "sim_grid7x7",
];

/// A parsed JSON value (just enough for bench records).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion order irrelevant for our use).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one JSON document. Errors carry a byte offset.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at offset {pos}", ch as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                map.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number `{text}` at offset {start}"))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    // `\uXXXX`, including surrogate pairs — the trace
                    // writer escapes every non-ASCII char this way.
                    b'u' => out.push(parse_unicode_escape(b, pos)?),
                    other => return Err(format!("unsupported escape `\\{}`", other as char)),
                }
            }
            _ => out.push(c as char),
        }
    }
    Err("unterminated string".into())
}

/// Four hex digits after a `\u` (the `\u` itself already consumed).
fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32, String> {
    let end = pos.checked_add(4).filter(|&e| e <= b.len());
    let hex = end
        .and_then(|e| std::str::from_utf8(&b[*pos..e]).ok())
        .ok_or_else(|| format!("truncated \\u escape at offset {pos}"))?;
    let v = u32::from_str_radix(hex, 16)
        .map_err(|_| format!("bad \\u escape `{hex}` at offset {pos}"))?;
    *pos += 4;
    Ok(v)
}

/// One `\uXXXX` escape (cursor just past the `u`), consuming the low
/// half of a surrogate pair when the first unit is a high surrogate.
fn parse_unicode_escape(b: &[u8], pos: &mut usize) -> Result<char, String> {
    let hi = parse_hex4(b, pos)?;
    let code = match hi {
        0xD800..=0xDBFF => {
            if b.get(*pos) != Some(&b'\\') || b.get(*pos + 1) != Some(&b'u') {
                return Err(format!("unpaired high surrogate at offset {pos}"));
            }
            *pos += 2;
            let lo = parse_hex4(b, pos)?;
            if !(0xDC00..=0xDFFF).contains(&lo) {
                return Err(format!("bad low surrogate at offset {pos}"));
            }
            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
        }
        0xDC00..=0xDFFF => return Err(format!("unpaired low surrogate at offset {pos}")),
        other => other,
    };
    char::from_u32(code).ok_or_else(|| format!("invalid \\u code point at offset {pos}"))
}

/// The gate's view of one bench record.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// `git_sha` field.
    pub git_sha: String,
    /// `created_unix` field (0 when absent).
    pub created_unix: u64,
    /// Worker-pool size the suite ran under.
    pub threads: u64,
    /// Whether the reduced smoke suite ran.
    pub quick: bool,
    /// `name → per_second` over the entries section.
    pub entries: BTreeMap<String, f64>,
    /// `(batch, rate-field) → requests/sec` over the service section.
    pub service: BTreeMap<(u64, String), f64>,
    /// `(batch, latency-field) → µs` over the service section's
    /// `*_p99_us` tail-latency fields. **Gated** by [`compare`] with
    /// the inverted direction: a fresh p99 *above* the baseline's by
    /// more than the allowed fraction fails. p99 earns teeth because
    /// the tail passes sample enough calls (120 quick / 400 full) for
    /// it to be stable; p50 adds nothing over the rps gate and p99.9
    /// is a 1-sample order statistic at these counts.
    pub service_p99: BTreeMap<(u64, String), f64>,
    /// `(batch, latency-field) → µs` over the service section's other
    /// `_us` tail-latency fields (p50, p99.9). **Informational only**:
    /// shown in the ratio table, never gated by [`compare`] — too few
    /// effective samples at the extreme tail for a regression policy.
    pub service_info: BTreeMap<(u64, String), f64>,
    /// `(multiplier-label, rate-field) → requests/sec` over the
    /// openloop section (`goodput_rps`, `offered_rps`, plus the
    /// calibration `capacity_rps`). Same teeth as [`BenchDoc::service`]:
    /// gated against any baseline that carries the row — which makes
    /// the rows informational `[new]` on the first run after the
    /// harness lands and load-bearing from the next committed baseline
    /// on.
    pub openloop: BTreeMap<(String, String), f64>,
    /// `(multiplier-label, latency-field) → µs` over the openloop
    /// section's `*_p99_us` fields. Gated inverted, like
    /// [`BenchDoc::service_p99`].
    pub openloop_p99: BTreeMap<(String, String), f64>,
    /// Other openloop fields (`shed_rate`, `degraded_rate`, non-p99
    /// `_us` tails). **Informational only** — a shed rate is a policy
    /// outcome, not a performance promise.
    pub openloop_info: BTreeMap<(String, String), f64>,
    /// The record's own `quick_sensitive` entry list, when the writer
    /// was new enough to emit one (`None` on pre-gate baselines).
    pub quick_sensitive: Option<Vec<String>>,
}

/// Extracts a [`BenchDoc`] from parsed bench JSON.
pub fn bench_doc(json: &Json) -> Result<BenchDoc, String> {
    let entries = json
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing entries[]")?
        .iter()
        .filter_map(|e| {
            Some((
                e.get("name")?.as_str()?.to_string(),
                e.get("per_second")?.as_num()?,
            ))
        })
        .collect();
    let mut service = BTreeMap::new();
    let mut service_p99 = BTreeMap::new();
    let mut service_info = BTreeMap::new();
    for row in json
        .get("service")
        .and_then(Json::as_arr)
        .unwrap_or_default()
    {
        let Some(batch) = row.get("batch").and_then(Json::as_num) else {
            continue;
        };
        if let Json::Obj(fields) = row {
            for (key, value) in fields {
                if key.ends_with("_rps") {
                    if let Some(rate) = value.as_num() {
                        service.insert((batch as u64, key.clone()), rate);
                    }
                } else if key.ends_with("_p99_us") {
                    if let Some(us) = value.as_num() {
                        service_p99.insert((batch as u64, key.clone()), us);
                    }
                } else if key.ends_with("_us") {
                    if let Some(us) = value.as_num() {
                        service_info.insert((batch as u64, key.clone()), us);
                    }
                }
            }
        }
    }
    let mut openloop = BTreeMap::new();
    let mut openloop_p99 = BTreeMap::new();
    let mut openloop_info = BTreeMap::new();
    if let Some(ol) = json.get("openloop") {
        if let Some(cap) = ol.get("capacity_rps").and_then(Json::as_num) {
            openloop.insert(("calibration".to_string(), "capacity_rps".to_string()), cap);
        }
        for row in ol.get("rows").and_then(Json::as_arr).unwrap_or_default() {
            let Some(mult) = row.get("multiplier").and_then(Json::as_num) else {
                continue;
            };
            let label = format!("x{mult}");
            if let Json::Obj(fields) = row {
                for (key, value) in fields {
                    let Some(v) = value.as_num() else { continue };
                    // `offered_rps` is input-side accounting — how much
                    // load the *generator* managed to put on the wire
                    // (behind-schedule arrivals skip the sweep), which
                    // tracks machine load, not the system under test.
                    // Goodput and calibration stay gated; offered is
                    // informational.
                    if key == "offered_rps" {
                        openloop_info.insert((label.clone(), key.clone()), v);
                    } else if key.ends_with("_rps") {
                        openloop.insert((label.clone(), key.clone()), v);
                    } else if key.ends_with("_p99_us") {
                        openloop_p99.insert((label.clone(), key.clone()), v);
                    } else if key.ends_with("_us") || key.ends_with("_rate") {
                        openloop_info.insert((label.clone(), key.clone()), v);
                    }
                }
            }
        }
    }
    Ok(BenchDoc {
        git_sha: json
            .get("git_sha")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        created_unix: json
            .get("created_unix")
            .and_then(Json::as_num)
            .unwrap_or(0.0) as u64,
        threads: json
            .get("threads")
            .and_then(Json::as_num)
            .ok_or("missing threads")? as u64,
        quick: matches!(json.get("quick"), Some(Json::Bool(true))),
        entries,
        service,
        service_p99,
        service_info,
        openloop,
        openloop_p99,
        openloop_info,
        quick_sensitive: json.get("quick_sensitive").and_then(Json::as_arr).map(|a| {
            a.iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect()
        }),
    })
}

/// Whether `name` is quick-sensitive for this fresh/baseline pair.
/// Quick-sensitivity comes from the records themselves (the suite
/// builder stamps it per entry), unioned across both sides so a new
/// fresh record also protects an old baseline; [`QUICK_SENSITIVE`]
/// is the fallback for records predating the stamp.
fn is_quick_sensitive(name: &str, fresh: &BenchDoc, baseline: &BenchDoc) -> bool {
    let stamped = |doc: &BenchDoc| {
        doc.quick_sensitive
            .as_ref()
            .is_some_and(|list| list.iter().any(|n| n == name))
    };
    if fresh.quick_sensitive.is_none() && baseline.quick_sensitive.is_none() {
        QUICK_SENSITIVE.contains(&name)
    } else {
        stamped(fresh) || stamped(baseline)
    }
}

/// One row of the per-entry comparison table the gate prints on every
/// run — pass or fail — so a green gate still shows where each
/// throughput moved.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioRow {
    /// Entry name or `service batch=N field`.
    pub what: String,
    /// Baseline throughput; `None` for entries the baseline lacks
    /// (informational "new" — never an error).
    pub baseline: Option<f64>,
    /// Fresh throughput; `None` when the measurement vanished.
    pub fresh: Option<f64>,
    /// Skipped by the gate (quick-sensitive across a quick/full
    /// comparison) — shown, but its ratio is not gated.
    pub skipped: bool,
}

impl RatioRow {
    /// `fresh / baseline` when both sides measured.
    pub fn ratio(&self) -> Option<f64> {
        match (self.fresh, self.baseline) {
            (Some(f), Some(b)) if b > 0.0 => Some(f / b),
            _ => None,
        }
    }
}

/// Builds the full comparison table: every baseline entry in order,
/// then fresh-only entries tagged as new (`baseline: None`). Service
/// rates follow the kernel entries.
pub fn ratio_rows(fresh: &BenchDoc, baseline: &BenchDoc) -> Vec<RatioRow> {
    let modes_differ = fresh.quick != baseline.quick;
    let mut out = Vec::new();
    for (name, &base_rate) in &baseline.entries {
        out.push(RatioRow {
            what: name.clone(),
            baseline: Some(base_rate),
            fresh: fresh.entries.get(name).copied(),
            skipped: modes_differ && is_quick_sensitive(name, fresh, baseline),
        });
    }
    for (name, &rate) in &fresh.entries {
        if !baseline.entries.contains_key(name) {
            out.push(RatioRow {
                what: name.clone(),
                baseline: None,
                fresh: Some(rate),
                skipped: false,
            });
        }
    }
    for ((batch, field), &base_rate) in &baseline.service {
        out.push(RatioRow {
            what: format!("service batch={batch} {field}"),
            baseline: Some(base_rate),
            fresh: fresh.service.get(&(*batch, field.clone())).copied(),
            skipped: false,
        });
    }
    for ((batch, field), &rate) in &fresh.service {
        if !baseline.service.contains_key(&(*batch, field.clone())) {
            out.push(RatioRow {
                what: format!("service batch={batch} {field}"),
                baseline: None,
                fresh: Some(rate),
                skipped: false,
            });
        }
    }
    // Gated p99 latency fields. A ratio above 1 is the regression
    // direction here (compare() inverts), but the table prints the
    // plain fresh/baseline ratio for both kinds.
    for ((batch, field), &base_us) in &baseline.service_p99 {
        out.push(RatioRow {
            what: format!("service batch={batch} {field}"),
            baseline: Some(base_us),
            fresh: fresh.service_p99.get(&(*batch, field.clone())).copied(),
            skipped: false,
        });
    }
    for ((batch, field), &us) in &fresh.service_p99 {
        if !baseline.service_p99.contains_key(&(*batch, field.clone())) {
            out.push(RatioRow {
                what: format!("service batch={batch} {field}"),
                baseline: None,
                fresh: Some(us),
                skipped: false,
            });
        }
    }
    // Tail-latency (`_us`) fields: informational rows only. They pair
    // like the rates when both sides have them, but compare() never
    // gates them — a baseline-only latency field is a display hole,
    // not a regression.
    for ((batch, field), &base_us) in &baseline.service_info {
        out.push(RatioRow {
            what: format!("service batch={batch} {field}"),
            baseline: Some(base_us),
            fresh: fresh.service_info.get(&(*batch, field.clone())).copied(),
            skipped: false,
        });
    }
    for ((batch, field), &us) in &fresh.service_info {
        if !baseline.service_info.contains_key(&(*batch, field.clone())) {
            out.push(RatioRow {
                what: format!("service batch={batch} {field}"),
                baseline: None,
                fresh: Some(us),
                skipped: false,
            });
        }
    }
    // Open-loop rows: rates pair-and-gate like service rates, p99s
    // like service p99s, the rest informational. A baseline without
    // the section (pre-overload-control records) simply pairs nothing,
    // so every fresh row shows as `[new]`.
    let openloop_maps = [
        (&baseline.openloop, &fresh.openloop),
        (&baseline.openloop_p99, &fresh.openloop_p99),
        (&baseline.openloop_info, &fresh.openloop_info),
    ];
    for (base_map, fresh_map) in openloop_maps {
        for ((label, field), &base_v) in base_map.iter() {
            out.push(RatioRow {
                what: format!("openloop {label} {field}"),
                baseline: Some(base_v),
                fresh: fresh_map.get(&(label.clone(), field.clone())).copied(),
                skipped: false,
            });
        }
        for ((label, field), &v) in fresh_map.iter() {
            if !base_map.contains_key(&(label.clone(), field.clone())) {
                out.push(RatioRow {
                    what: format!("openloop {label} {field}"),
                    baseline: None,
                    fresh: Some(v),
                    skipped: false,
                });
            }
        }
    }
    out
}

/// One detected regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Entry name or `service batch=N field`.
    pub what: String,
    /// Baseline value (per second, or µs for latency rows).
    pub baseline: f64,
    /// Fresh value (per second, or µs for latency rows; infinite when
    /// a baseline latency vanished from the fresh run).
    pub fresh: f64,
    /// Whether this is a latency row — the direction inverts: for
    /// throughput, lower fresh is the regression; for latency, higher.
    pub latency: bool,
}

impl Regression {
    /// The fractional regression, e.g. 0.42 for a 42% throughput loss
    /// or a 42% p99 increase.
    pub fn loss(&self) -> f64 {
        if self.latency {
            self.fresh / self.baseline - 1.0
        } else {
            1.0 - self.fresh / self.baseline
        }
    }
}

/// The batch size the always-on-overhead contract binds at: large
/// enough that per-batch fixed costs vanish and the per-request
/// metrics cost is what's measured.
pub const METRICS_OVERHEAD_BATCH: u64 = 256;

/// The `warm_rps_metrics_on` check: the warm batch-256 row with the
/// always-on metrics plane recording (`warm_metrics_rps`) must hold
/// within `max_loss` of the recording-off `warm_rps` from the **same**
/// record. Paired within one run — no baseline involved — so the
/// contract binds from the first run on any machine, and machine
/// speed divides out.
///
/// Returns `Ok(Some((warm, warm_metrics)))` when the pair was present
/// and held, `Ok(None)` when the record has no warm batch-256 row at
/// all (a filtered run), and `Err` when the metrics row is missing or
/// out of budget — a vanished overhead row must not pass the gate
/// that exists to watch it.
pub fn metrics_overhead_check(
    fresh: &BenchDoc,
    max_loss: f64,
) -> Result<Option<(f64, f64)>, String> {
    let batch = METRICS_OVERHEAD_BATCH;
    let warm = fresh.service.get(&(batch, "warm_rps".to_string())).copied();
    let on = fresh
        .service
        .get(&(batch, "warm_metrics_rps".to_string()))
        .copied();
    match (warm, on) {
        (None, _) => Ok(None),
        (Some(_), None) => Err(format!(
            "warm_rps_metrics_on: batch {batch} has warm_rps but no warm_metrics_rps row"
        )),
        (Some(w), Some(m)) if m < (1.0 - max_loss) * w => Err(format!(
            "warm_rps_metrics_on: {m:.0} req/s with the metrics plane vs {w:.0} req/s \
             without ({:.1}% loss > {:.0}% budget)",
            (1.0 - m / w) * 100.0,
            max_loss * 100.0
        )),
        (Some(w), Some(m)) => Ok(Some((w, m))),
    }
}

/// Compares `fresh` against `baseline`, returning every baseline
/// throughput that lost more than `max_loss` (e.g. 0.30 = fail on a
/// regression above 30%) and every baseline p99 latency that *grew*
/// by more than `max_lat_gain` (e.g. 0.50 = fail when the fresh p99
/// is over 1.5× the baseline's). Quick-sensitive entries are skipped
/// when the two records disagree on `quick`.
///
/// A baseline throughput *absent* from the fresh run counts as a total
/// regression (rate 0): a silently vanished measurement — e.g. the
/// socket bench failing to bind and emitting `socket_rps: null` —
/// must not pass the gate it exists to feed. A vanished p99 fails the
/// same way (fresh = ∞). Retiring a suite entry on purpose is done by
/// committing the new baseline in the same PR; the gate always
/// compares against the newest one. Entries that only exist in the
/// fresh run are ignored (new measurements have no baseline yet).
pub fn compare(
    fresh: &BenchDoc,
    baseline: &BenchDoc,
    max_loss: f64,
    max_lat_gain: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    let modes_differ = fresh.quick != baseline.quick;
    let quick_sensitive = |name: &str| is_quick_sensitive(name, fresh, baseline);
    for (name, &base_rate) in &baseline.entries {
        if base_rate <= 0.0 || (modes_differ && quick_sensitive(name)) {
            continue;
        }
        let fresh_rate = fresh.entries.get(name).copied().unwrap_or(0.0);
        if fresh_rate < (1.0 - max_loss) * base_rate {
            out.push(Regression {
                what: if fresh.entries.contains_key(name) {
                    name.clone()
                } else {
                    format!("{name} (missing from fresh run)")
                },
                baseline: base_rate,
                fresh: fresh_rate,
                latency: false,
            });
        }
    }
    for ((batch, field), &base_rate) in &baseline.service {
        if base_rate <= 0.0 {
            continue;
        }
        let key = (*batch, field.clone());
        let fresh_rate = fresh.service.get(&key).copied().unwrap_or(0.0);
        if fresh_rate < (1.0 - max_loss) * base_rate {
            out.push(Regression {
                what: if fresh.service.contains_key(&key) {
                    format!("service batch={batch} {field}")
                } else {
                    format!("service batch={batch} {field} (missing from fresh run)")
                },
                baseline: base_rate,
                fresh: fresh_rate,
                latency: false,
            });
        }
    }
    for ((batch, field), &base_us) in &baseline.service_p99 {
        if base_us <= 0.0 {
            continue;
        }
        let key = (*batch, field.clone());
        let fresh_us = fresh
            .service_p99
            .get(&key)
            .copied()
            .unwrap_or(f64::INFINITY);
        if fresh_us > (1.0 + max_lat_gain) * base_us {
            out.push(Regression {
                what: if fresh.service_p99.contains_key(&key) {
                    format!("service batch={batch} {field}")
                } else {
                    format!("service batch={batch} {field} (missing from fresh run)")
                },
                baseline: base_us,
                fresh: fresh_us,
                latency: true,
            });
        }
    }
    // Open-loop rows earn the same teeth the moment a committed
    // baseline carries them: goodput/capacity are throughput promises,
    // accepted p99 is a latency promise. (`openloop_info` — shed and
    // degraded rates plus the generator-side offered rate — stays
    // informational: those are policy outcomes and input accounting
    // of the offered load, not performance contracts.)
    for ((label, field), &base_rate) in &baseline.openloop {
        if base_rate <= 0.0 {
            continue;
        }
        let key = (label.clone(), field.clone());
        let fresh_rate = fresh.openloop.get(&key).copied().unwrap_or(0.0);
        if fresh_rate < (1.0 - max_loss) * base_rate {
            out.push(Regression {
                what: if fresh.openloop.contains_key(&key) {
                    format!("openloop {label} {field}")
                } else {
                    format!("openloop {label} {field} (missing from fresh run)")
                },
                baseline: base_rate,
                fresh: fresh_rate,
                latency: false,
            });
        }
    }
    for ((label, field), &base_us) in &baseline.openloop_p99 {
        if base_us <= 0.0 {
            continue;
        }
        let key = (label.clone(), field.clone());
        let fresh_us = fresh
            .openloop_p99
            .get(&key)
            .copied()
            .unwrap_or(f64::INFINITY);
        if fresh_us > (1.0 + max_lat_gain) * base_us {
            out.push(Regression {
                what: if fresh.openloop_p99.contains_key(&key) {
                    format!("openloop {label} {field}")
                } else {
                    format!("openloop {label} {field} (missing from fresh run)")
                },
                baseline: base_us,
                fresh: fresh_us,
                latency: true,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(quick: bool, entries: &[(&str, f64)], service: &[(u64, &str, f64)]) -> BenchDoc {
        BenchDoc {
            git_sha: "test".into(),
            created_unix: 1,
            threads: 1,
            quick,
            entries: entries.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            service: service
                .iter()
                .map(|(b, f, v)| ((*b, f.to_string()), *v))
                .collect(),
            service_p99: BTreeMap::new(),
            service_info: BTreeMap::new(),
            openloop: BTreeMap::new(),
            openloop_p99: BTreeMap::new(),
            openloop_info: BTreeMap::new(),
            // Legacy-shaped records: compare() falls back to the
            // hardcoded QUICK_SENSITIVE list.
            quick_sensitive: None,
        }
    }

    #[test]
    fn parser_handles_the_bench_shape() {
        let json = parse_json(
            r#"{
  "git_sha": "abc",
  "created_unix": 123,
  "threads": 2,
  "quick": false,
  "entries": [
    {"name": "k1", "mean_s": 1e-3, "best_s": 9.5e-4, "iterations": 100, "per_second": 1000.0}
  ],
  "service": [
    {"batch": 32, "cold_rps": 10.5, "warm_rps": 100.0, "socket_rps": null}
  ],
  "derived": {"p4_n12_speedup_vs_naive": 34.61}
}"#,
        )
        .unwrap();
        let doc = bench_doc(&json).unwrap();
        assert_eq!(doc.git_sha, "abc");
        assert_eq!(doc.created_unix, 123);
        assert_eq!(doc.threads, 2);
        assert!(!doc.quick);
        assert_eq!(doc.entries["k1"], 1000.0);
        assert_eq!(doc.service[&(32, "cold_rps".into())], 10.5);
        assert_eq!(doc.service[&(32, "warm_rps".into())], 100.0);
        // A null socket rate (bind failure) is simply absent.
        assert!(!doc.service.contains_key(&(32, "socket_rps".into())));
        // Pre-gate records carry no quick-sensitivity stamp.
        assert_eq!(doc.quick_sensitive, None);
    }

    #[test]
    fn parser_roundtrips_real_writer_output() {
        // The actual writer's output must stay parsable — this is the
        // contract the CI gate depends on.
        let report = crate::perf::SuiteReport {
            measurements: vec![crate::timing::Measurement {
                name: "k".into(),
                iterations: 5,
                mean_s: 0.1,
                best_s: 0.09,
            }],
            p4_n12_speedup: None,
            service: vec![crate::perf::ServiceThroughput {
                batch: 1,
                cold_rps: 5.0,
                warm_rps: 50.0,
                warm_metrics_rps: Some(48.5),
                socket_rps: Some(25.0),
                cluster_rps: Some(12.5),
                warm_p50_us: Some(2.5),
                warm_p99_us: Some(7.5),
                warm_p999_us: Some(30.0),
                socket_p50_us: Some(100.0),
                socket_p99_us: Some(250.0),
                socket_p999_us: Some(400.0),
                cluster_p50_us: None,
                cluster_p99_us: Some(800.0),
                cluster_p999_us: None,
            }],
            threads: 3,
            quick: true,
            quick_sensitive: vec!["k".into()],
            cluster_spans: vec![crate::perf::SpanStats {
                name: "dial",
                count: 2,
                p50_us: Some(55.0),
                p99_us: Some(60.0),
                p999_us: Some(60.0),
            }],
            openloop: Some(crate::openloop::OpenLoopReport {
                capacity_rps: 4000.0,
                rows: vec![crate::openloop::OpenLoopRow {
                    multiplier: 2.0,
                    offered: 100,
                    accepted: 80,
                    shed: 20,
                    offered_rps: 8000.0,
                    goodput_rps: 6400.0,
                    shed_rate: 0.2,
                    degraded_rate: 0.1,
                    deadline_expired: 0,
                    error_count: 0,
                    accepted_p50_us: Some(900.0),
                    accepted_p99_us: Some(9500.0),
                    accepted_p999_us: None,
                }],
            }),
        };
        let text = crate::perf::to_json(&report, "deadbee");
        let doc = bench_doc(&parse_json(&text).unwrap()).unwrap();
        assert_eq!(doc.threads, 3);
        assert!(doc.quick);
        assert_eq!(doc.entries["k"], 10.0);
        assert_eq!(doc.service[&(1, "socket_rps".into())], 25.0);
        assert_eq!(doc.service[&(1, "cluster_rps".into())], 12.5);
        assert_eq!(doc.service[&(1, "warm_metrics_rps".into())], 48.5);
        // p50/p99.9 percentiles land in the informational map; the
        // p99s land in the gated latency map; neither pollutes the
        // throughput map.
        assert_eq!(doc.service_info[&(1, "warm_p50_us".into())], 2.5);
        assert_eq!(doc.service_info[&(1, "warm_p999_us".into())], 30.0);
        assert_eq!(doc.service_p99[&(1, "warm_p99_us".into())], 7.5);
        assert_eq!(doc.service_p99[&(1, "socket_p99_us".into())], 250.0);
        assert_eq!(doc.service_p99[&(1, "cluster_p99_us".into())], 800.0);
        assert!(!doc.service.contains_key(&(1, "warm_p50_us".into())));
        assert!(!doc.service_info.contains_key(&(1, "socket_p99_us".into())));
        assert_eq!(doc.quick_sensitive.as_deref(), Some(&["k".to_string()][..]));
        // Open-loop rows land in their suffix-matched maps: goodput and
        // calibration gated, p99 gated inverted, policy rates and the
        // generator-side offered rate informational.
        let key = |f: &str| ("x2".to_string(), f.to_string());
        assert_eq!(
            doc.openloop[&("calibration".to_string(), "capacity_rps".to_string())],
            4000.0
        );
        assert_eq!(doc.openloop[&key("goodput_rps")], 6400.0);
        assert_eq!(doc.openloop_info[&key("offered_rps")], 8000.0);
        assert!(!doc.openloop.contains_key(&key("offered_rps")));
        assert_eq!(doc.openloop_p99[&key("accepted_p99_us")], 9500.0);
        assert_eq!(doc.openloop_info[&key("shed_rate")], 0.2);
        assert_eq!(doc.openloop_info[&key("degraded_rate")], 0.1);
        assert_eq!(doc.openloop_info[&key("accepted_p50_us")], 900.0);
        // `null` p999 and the raw counts don't become rows.
        assert!(!doc.openloop_info.contains_key(&key("accepted_p999_us")));
        assert!(!doc.openloop.contains_key(&key("accepted")));
    }

    #[test]
    fn parse_unicode_escapes() {
        let v = parse_json("\"\\u0041\\u00e9\\ud83d\\ude00\\b\\f\"").unwrap();
        match v {
            Json::Str(s) => assert_eq!(s, "A\u{e9}\u{1f600}\u{8}\u{c}"),
            _ => panic!("expected string"),
        }
        // Unpaired or malformed surrogates must be rejected, not
        // silently mangled.
        assert!(parse_json(r#""\ud83d""#).is_err());
        assert!(parse_json(r#""\ud83dxxxx""#).is_err());
        assert!(parse_json(r#""\udc00""#).is_err());
        assert!(parse_json(r#""\uzzzz""#).is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json(r#"{"a": }"#).is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn regressions_detected_above_threshold_only() {
        let base = doc(
            false,
            &[("kernel", 100.0), ("other", 10.0)],
            &[(32, "warm_rps", 1000.0)],
        );
        let fresh = doc(
            false,
            &[("kernel", 65.0), ("other", 9.0), ("brand_new", 1.0)],
            &[(32, "warm_rps", 720.0), (256, "warm_rps", 5.0)],
        );
        let regs = compare(&fresh, &base, 0.30, 0.50);
        // kernel lost 35% (> 30%) → flagged; other lost 10% → fine;
        // warm_rps lost 28% → fine; unmatched names/batches ignored.
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].what, "kernel");
        assert!((regs[0].loss() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn p99_latency_gates_in_the_inverted_direction() {
        let with_p99 = |lat: &[(u64, &str, f64)]| {
            let mut d = doc(false, &[], &[]);
            d.service_p99 = lat
                .iter()
                .map(|(b, f, v)| ((*b, f.to_string()), *v))
                .collect();
            d
        };
        let base = with_p99(&[
            (256, "socket_p99_us", 100.0),
            (256, "cluster_p99_us", 500.0),
        ]);
        // 40% slower p99 passes a 50% gate; 60% slower fails; faster
        // p99 is never a regression.
        let fresh = with_p99(&[
            (256, "socket_p99_us", 140.0),
            (256, "cluster_p99_us", 400.0),
        ]);
        assert!(compare(&fresh, &base, 0.30, 0.50).is_empty());
        let slow = with_p99(&[
            (256, "socket_p99_us", 160.0),
            (256, "cluster_p99_us", 400.0),
        ]);
        let regs = compare(&slow, &base, 0.30, 0.50);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].what, "service batch=256 socket_p99_us");
        assert!(regs[0].latency);
        assert!((regs[0].loss() - 0.60).abs() < 1e-12);
        // A vanished p99 is a total regression, like a vanished rate.
        let gone = with_p99(&[(256, "socket_p99_us", 90.0)]);
        let regs = compare(&gone, &base, 0.30, 0.50);
        assert_eq!(regs.len(), 1);
        assert_eq!(
            regs[0].what,
            "service batch=256 cluster_p99_us (missing from fresh run)"
        );
        assert_eq!(regs[0].fresh, f64::INFINITY);
        // And the ratio table shows p99 rows from both sides.
        let rows = ratio_rows(&gone, &base);
        assert!(rows
            .iter()
            .any(|r| r.what == "service batch=256 socket_p99_us"
                && r.ratio().is_some_and(|x| (x - 0.9).abs() < 1e-12)));
        assert!(rows
            .iter()
            .any(|r| r.what == "service batch=256 cluster_p99_us" && r.fresh.is_none()));
    }

    #[test]
    fn quick_mismatch_skips_quick_sensitive_entries() {
        let base = doc(
            false,
            &[("p4_solve_n12", 30.0), ("gibbs_summarize_n12", 4000.0)],
            &[],
        );
        let fresh = doc(
            true,
            &[("p4_solve_n12", 300.0), ("gibbs_summarize_n12", 1000.0)],
            &[],
        );
        let regs = compare(&fresh, &base, 0.30, 0.50);
        // Only the quick-invariant summarize kernel is gated.
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].what, "gibbs_summarize_n12");
        // Same quick flag ⇒ everything is gated again: the p4 entry
        // regressed and the summarize entry is missing entirely.
        let fresh_full = doc(false, &[("p4_solve_n12", 3.0)], &[]);
        assert_eq!(compare(&fresh_full, &base, 0.30, 0.50).len(), 2);
    }

    #[test]
    fn stamped_quick_sensitivity_overrides_the_fallback_list() {
        // A record that stamps its own quick-sensitive entries governs
        // the skip, even for names the fallback list never heard of.
        let base = doc(false, &[("new_fixed_iter_kernel", 100.0)], &[]);
        let mut fresh = doc(true, &[("new_fixed_iter_kernel", 500.0)], &[]);
        // Unstamped on both sides + unknown to the fallback ⇒ gated
        // (and passing, since the quick run is faster).
        assert!(compare(&fresh, &base, 0.30, 0.50).is_empty());
        let mut slow = fresh.clone();
        slow.entries.insert("new_fixed_iter_kernel".into(), 10.0);
        assert_eq!(compare(&slow, &base, 0.30, 0.50).len(), 1);
        // Stamped by the fresh record ⇒ skipped across quick/full.
        slow.quick_sensitive = Some(vec!["new_fixed_iter_kernel".into()]);
        assert!(compare(&slow, &base, 0.30, 0.50).is_empty());
        // Stamps only matter when the quick flags differ.
        slow.quick = false;
        assert_eq!(compare(&slow, &base, 0.30, 0.50).len(), 1);
        // The baseline's stamp protects too.
        fresh.entries.insert("new_fixed_iter_kernel".into(), 10.0);
        let mut stamped_base = base.clone();
        stamped_base.quick_sensitive = Some(vec!["new_fixed_iter_kernel".into()]);
        assert!(compare(&fresh, &stamped_base, 0.30, 0.50).is_empty());
    }

    #[test]
    fn ratio_rows_cover_the_union_and_tag_new_entries() {
        let base = doc(
            false,
            &[("kernel", 100.0), ("vanished", 10.0)],
            &[(32, "warm_rps", 1000.0)],
        );
        let fresh = doc(
            false,
            &[("kernel", 120.0), ("p4_solve_n32", 55.0)],
            &[(32, "warm_rps", 900.0), (32, "socket_rps", 500.0)],
        );
        let rows = ratio_rows(&fresh, &base);
        let find = |what: &str| rows.iter().find(|r| r.what == what).unwrap();
        // Shared entry: both sides, ratio defined.
        let kernel = find("kernel");
        assert_eq!(kernel.baseline, Some(100.0));
        assert!((kernel.ratio().unwrap() - 1.2).abs() < 1e-12);
        assert!(!kernel.skipped);
        // Vanished: baseline only, no ratio (compare() flags it; the
        // table just shows the hole).
        let gone = find("vanished");
        assert_eq!(gone.fresh, None);
        assert_eq!(gone.ratio(), None);
        // Fresh-only entries are informational "new" rows — present,
        // never paired, never a regression.
        let new = find("p4_solve_n32");
        assert_eq!(new.baseline, None);
        assert_eq!(new.ratio(), None);
        let new_service = find("service batch=32 socket_rps");
        assert_eq!(new_service.baseline, None);
        // And the shared service rate pairs like a kernel entry.
        assert!((find("service batch=32 warm_rps").ratio().unwrap() - 0.9).abs() < 1e-12);
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn ratio_rows_mark_quick_sensitive_skips() {
        let base = doc(
            false,
            &[("p4_solve_n12", 30.0), ("gibbs_summarize_n12", 4000.0)],
            &[],
        );
        let fresh = doc(
            true,
            &[("p4_solve_n12", 300.0), ("gibbs_summarize_n12", 3900.0)],
            &[],
        );
        let rows = ratio_rows(&fresh, &base);
        let find = |what: &str| rows.iter().find(|r| r.what == what).unwrap();
        assert!(find("p4_solve_n12").skipped);
        assert!(!find("gibbs_summarize_n12").skipped);
        // Same quick flag ⇒ nothing is skipped.
        let fresh_full = doc(false, &[("p4_solve_n12", 28.0)], &[]);
        assert!(ratio_rows(&fresh_full, &base).iter().all(|r| !r.skipped));
    }

    #[test]
    fn metrics_overhead_check_is_paired_within_one_record() {
        let mut fresh = doc(
            false,
            &[],
            &[
                (256, "warm_rps", 1000.0),
                (256, "warm_metrics_rps", 960.0),
                (32, "warm_rps", 500.0),
            ],
        );
        // 4% loss passes a 5% budget.
        assert_eq!(
            metrics_overhead_check(&fresh, 0.05),
            Ok(Some((1000.0, 960.0)))
        );
        // 6% loss fails it.
        fresh
            .service
            .insert((256, "warm_metrics_rps".into()), 940.0);
        assert!(metrics_overhead_check(&fresh, 0.05).is_err());
        // A vanished overhead row fails — the row the gate exists to
        // watch must not pass by disappearing.
        fresh.service.remove(&(256, "warm_metrics_rps".into()));
        assert!(metrics_overhead_check(&fresh, 0.05).is_err());
        // A filtered run without the warm batch-256 row has nothing
        // to hold.
        assert_eq!(
            metrics_overhead_check(&doc(false, &[], &[]), 0.05),
            Ok(None)
        );
    }

    #[test]
    fn vanished_measurements_fail_the_gate() {
        // A baseline socket rate with no fresh counterpart (e.g. the
        // loopback bind failed and socket_rps came out null) is a
        // total regression, not a silent pass.
        let base = doc(
            false,
            &[("homogeneous_p4_n1000", 300.0)],
            &[(32, "socket_rps", 50_000.0)],
        );
        let fresh = doc(false, &[("homogeneous_p4_n1000", 290.0)], &[]);
        let regs = compare(&fresh, &base, 0.30, 0.50);
        assert_eq!(regs.len(), 1);
        assert_eq!(
            regs[0].what,
            "service batch=32 socket_rps (missing from fresh run)"
        );
        assert_eq!(regs[0].fresh, 0.0);
        assert!((regs[0].loss() - 1.0).abs() < 1e-12);
        // Fresh-only measurements are not flagged.
        let fresh_extra = doc(
            false,
            &[("homogeneous_p4_n1000", 290.0), ("brand_new", 1.0)],
            &[(32, "socket_rps", 49_000.0), (256, "socket_rps", 1.0)],
        );
        assert!(compare(&fresh_extra, &base, 0.30, 0.50).is_empty());
    }
}
