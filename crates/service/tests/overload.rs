//! Overload-control integration: the shed ladder, deadline budgets,
//! and degraded serving observed through a real socket server.
//!
//! The admission queue is pinned deterministically via the server
//! handle's shared [`AdmissionController`] (occupying slots exactly
//! as in-flight requests would), so every ladder rung is exercised
//! without racing the connection handler's read loop.

use econcast_core::NodeParams;
use econcast_proto::service::ServiceErrorCode;
use econcast_service::workload::mixed_batch;
use econcast_service::{
    degraded_tolerance, PolicyClient, PolicyRequest, PolicyServer, PolicyService, RouterConfig,
    ServerConfig, ServiceConfig,
};
use econcast_statespace::{quantize_tolerance, solve_p4, P4Options};
use std::time::Duration;

fn server(queue_capacity: usize, max_queue_delay: Duration) -> ServerConfig {
    ServerConfig {
        router: RouterConfig {
            shards: 1,
            service: ServiceConfig {
                workers: Some(1),
                queue_capacity,
                max_queue_delay,
                ..ServiceConfig::default()
            },
            ..RouterConfig::default()
        },
        background_prewarm: false,
        ..ServerConfig::default()
    }
}

fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-300)
}

#[test]
fn full_queue_sheds_with_retry_hint_never_resets() {
    // Queue pinned at capacity: every further v6 request walks off
    // the top of the ladder — an explicit `Overloaded` with a usable
    // retry hint, never a dropped request or a closed connection.
    let handle = PolicyServer::bind("127.0.0.1:0", server(2, Duration::from_millis(25)))
        .expect("bind")
        .spawn();
    let adm = handle.admission().clone();
    let _ = adm.admit(true);
    let _ = adm.admit(true); // depth == capacity

    let batch = mixed_batch(8);
    let mut client = PolicyClient::connect(handle.addr(), batch.len() as u16).expect("connect");
    let got = client.serve_batch(&batch).expect("stream stays healthy");
    assert_eq!(got.len(), batch.len());
    for (i, r) in got.iter().enumerate() {
        let e = r.as_ref().expect_err("request should be shed");
        assert_eq!(e.code, ServiceErrorCode::Overloaded, "request {i}");
        assert!(
            e.retry_after_us >= 25_000,
            "hint floors at max_queue_delay, got {}",
            e.retry_after_us
        );
    }

    // Shed requests hold no queue slot, so the bounded queue never
    // grew past its pin.
    assert_eq!(adm.depth(), 2);
    let stats = client.stats(None).expect("stats");
    assert_eq!(stats.shed_rejects, batch.len() as u64);
    assert!(stats.queue_depth_peak <= 2);

    // The connection survives shedding: control plane still answers,
    // and once the queue drains the same stream serves normally.
    client.ping().expect("ping while saturated");
    adm.release(2, Duration::from_millis(1));
    let again = client.serve_batch(&batch[..2]).expect("serve after drain");
    assert!(again.iter().all(Result::is_ok), "drained queue serves");

    drop(client);
    handle.shutdown();
}

#[test]
fn deadline_expired_request_gets_overloaded_not_a_late_result() {
    // A 1µs budget expires before any solve can finish: the caller
    // must get `Overloaded`, never the stale result it already gave
    // up on. A generous budget on the same stream serves everything
    // bit-identical to the in-process service.
    let handle = PolicyServer::bind("127.0.0.1:0", server(256, Duration::from_millis(50)))
        .expect("bind")
        .spawn();
    let batch = mixed_batch(12);
    let mut client = PolicyClient::connect(handle.addr(), batch.len() as u16).expect("connect");

    let ticket = client
        .submit_batch_deadline(&batch, Some(Duration::from_micros(1)))
        .expect("submit");
    let got = client.collect(ticket).expect("collect");
    for (i, r) in got.iter().enumerate() {
        let e = r.as_ref().expect_err("budget expired");
        assert_eq!(e.code, ServiceErrorCode::Overloaded, "request {i}");
    }
    let stats = client.stats(None).expect("stats");
    assert_eq!(stats.deadline_expired, batch.len() as u64);

    let ticket = client
        .submit_batch_deadline(&batch, Some(Duration::from_secs(30)))
        .expect("submit");
    let got = client.collect(ticket).expect("collect");
    let expected = PolicyService::new(ServiceConfig {
        workers: Some(1),
        ..ServiceConfig::default()
    })
    .serve_batch(&batch);
    for (g, e) in got.iter().zip(&expected) {
        let (g, e) = (g.as_ref().expect("served in budget"), e.as_ref().unwrap());
        assert_eq!(g.throughput.to_bits(), e.throughput.to_bits());
    }
    assert_eq!(
        client.stats(None).expect("stats").deadline_expired,
        batch.len() as u64,
        "generous budgets expire nothing"
    );

    drop(client);
    handle.shutdown();
}

#[test]
fn degraded_serves_stay_within_relaxed_tolerance() {
    // Queue pinned into the degraded band (above the degrade
    // threshold, below capacity): every request is served — zero
    // sheds — at the relaxed tolerance, and the answer still matches
    // a fresh exact solve within that relaxed (never looser) tier.
    let stated = 1e-3;
    let relaxed = quantize_tolerance(degraded_tolerance(stated));
    assert_eq!(relaxed, 1e-2);

    let handle = PolicyServer::bind("127.0.0.1:0", server(8, Duration::from_millis(50)))
        .expect("bind")
        .spawn();
    let adm = handle.admission().clone();
    for _ in 0..4 {
        let _ = adm.admit(true); // degrade_at == 4: band is 5..=8
    }

    let batch: Vec<PolicyRequest> = (2..6)
        .map(|n| {
            PolicyRequest::homogeneous(
                n,
                NodeParams::from_microwatts(10.0, 500.0, 450.0),
                0.5,
                econcast_core::ThroughputMode::Groupput,
                stated,
            )
        })
        .collect();
    let mut client = PolicyClient::connect(handle.addr(), batch.len() as u16).expect("connect");
    let got = client.serve_batch(&batch).expect("serve");

    for (i, (r, req)) in got.iter().zip(&batch).enumerate() {
        let r = r.as_ref().expect("degraded, not shed");
        let nodes: Vec<NodeParams> = req
            .budgets_w
            .iter()
            .map(|&b| NodeParams::new(b, req.listen_w, req.transmit_w))
            .collect();
        let fresh = solve_p4(&nodes, req.sigma, req.objective, P4Options::default());
        for p in &r.policies {
            assert!(
                rel(p.listen, fresh.alpha[0]) <= relaxed,
                "request {i}: alpha {} vs fresh {}",
                p.listen,
                fresh.alpha[0]
            );
            assert!(
                rel(p.transmit, fresh.beta[0]) <= relaxed,
                "request {i}: beta {} vs fresh {}",
                p.transmit,
                fresh.beta[0]
            );
        }
        assert!(
            rel(r.throughput, fresh.throughput) <= relaxed,
            "request {i}"
        );
        // The certificate still sandwiches what was actually served —
        // a degraded response reports its achieved accuracy honestly.
        assert!(
            r.cert_t_sigma <= r.cert_oracle * (1.0 + 1e-9),
            "request {i}"
        );
        assert!(
            r.cert_oracle <= r.cert_dual_upper * (1.0 + 1e-9),
            "request {i}"
        );
    }

    let stats = client.stats(None).expect("stats");
    assert_eq!(stats.degraded_serves, batch.len() as u64);
    assert_eq!(stats.shed_rejects, 0);

    adm.release(4, Duration::from_millis(1));
    drop(client);
    handle.shutdown();
}

#[test]
fn pre_v6_peer_is_never_shed_only_degraded() {
    // A v5 peer cannot decode `Overloaded`, so the ladder tops out at
    // the degraded rung for it: even with the queue pinned *past*
    // capacity it is served — the pre-overload-control contract — and
    // the documented price is a queue peak above the bound.
    let handle = PolicyServer::bind("127.0.0.1:0", server(1, Duration::from_millis(10)))
        .expect("bind")
        .spawn();
    let adm = handle.admission().clone();
    let _ = adm.admit(true); // depth == capacity

    let batch = mixed_batch(4);
    let mut client =
        PolicyClient::connect_versioned(handle.addr(), batch.len() as u16, 5).expect("connect v5");
    assert_eq!(client.wire_version(), 5);
    let got = client.serve_batch(&batch).expect("serve at v5");
    assert!(got.iter().all(Result::is_ok), "v5 peers are always served");

    // The overload counters live in v6 stats slots the v5 wire does
    // not carry — read them server-side.
    let mut stats = econcast_service::ServiceStats::default();
    adm.overlay(&mut stats);
    assert_eq!(stats.shed_rejects, 0);
    assert_eq!(stats.degraded_serves, batch.len() as u64);
    assert!(stats.queue_depth_peak > 1, "unsheddable load pushes past");
    // Over the v5 wire the stats block is the legacy 20-counter
    // layout: the overload slots simply don't exist there.
    let wire_stats = client.stats(None).expect("stats at v5");
    assert_eq!(wire_stats.degraded_serves, 0);
    assert_eq!(wire_stats.queue_depth_peak, 0);

    adm.release(1, Duration::from_millis(1));
    drop(client);
    handle.shutdown();
}
