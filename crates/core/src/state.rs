//! Node states (Fig. 1) and the two throughput objectives
//! (Definitions 1–3).

/// The three node states of Section III-A. A node must pass through
/// [`NodeState::Listen`] to move between sleep and transmit (Fig. 1);
/// [`NodeState::can_transition_to`] encodes that topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeState {
    /// Sleeping: zero power draw, radio off.
    Sleep,
    /// Listening/receiving: draws `L_i`; the two are treated
    /// synonymously because their power consumption is similar
    /// (paper footnote 1).
    Listen,
    /// Transmitting: draws `X_i`; at most one node per neighborhood may
    /// be in this state in a collision-free schedule.
    Transmit,
}

impl NodeState {
    /// Whether the protocol state machine of Fig. 1 has a direct edge
    /// from `self` to `to`. Self-loops are not transitions.
    pub fn can_transition_to(self, to: NodeState) -> bool {
        use NodeState::*;
        matches!(
            (self, to),
            (Sleep, Listen) | (Listen, Sleep) | (Listen, Transmit) | (Transmit, Listen)
        )
    }

    /// True when the node's radio is powered (listen or transmit).
    pub fn is_awake(self) -> bool {
        !matches!(self, NodeState::Sleep)
    }

    /// Power drawn in this state given the node's parameters (W).
    pub fn power_draw(self, params: &crate::NodeParams) -> f64 {
        match self {
            NodeState::Sleep => 0.0,
            NodeState::Listen => params.listen_w,
            NodeState::Transmit => params.transmit_w,
        }
    }

    /// Short single-letter label used in logs and debug dumps, matching
    /// the paper's `s`/`l`/`x` notation.
    pub fn letter(self) -> char {
        match self {
            NodeState::Sleep => 's',
            NodeState::Listen => 'l',
            NodeState::Transmit => 'x',
        }
    }
}

impl std::fmt::Display for NodeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            NodeState::Sleep => "sleep",
            NodeState::Listen => "listen",
            NodeState::Transmit => "transmit",
        };
        write!(f, "{name}")
    }
}

/// Which broadcast-throughput objective the protocol maximizes
/// (Section I and Definitions 1–2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThroughputMode {
    /// Groupput `T_g`: every delivered bit counted once per receiver —
    /// the neighbor-discovery / data-flooding objective.
    Groupput,
    /// Anyput `T_a`: a transmitted bit counts once if at least one
    /// receiver got it — the gossip / delay-tolerant objective.
    Anyput,
}

impl ThroughputMode {
    /// The per-state throughput `T_w` of Definition 3: with exactly one
    /// transmitter (`nu = true`) and `c` listeners, a state earns `c`
    /// under groupput and `1{c ≥ 1}` under anyput.
    pub fn state_throughput(self, nu: bool, listeners: usize) -> f64 {
        if !nu {
            return 0.0;
        }
        match self {
            ThroughputMode::Groupput => listeners as f64,
            ThroughputMode::Anyput => {
                if listeners >= 1 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// The "listener pressure" each mode feeds into the transition
    /// rates (18c)–(18e): the estimated listener count `ĉ` for
    /// groupput, the indicator `γ̂ = 1{ĉ ≥ 1}` for anyput.
    pub fn listener_signal(self, estimated_listeners: f64) -> f64 {
        match self {
            ThroughputMode::Groupput => estimated_listeners.max(0.0),
            ThroughputMode::Anyput => {
                if estimated_listeners >= 1.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Oracle throughput with *no* energy constraint (Section III-C):
    /// `N − 1` for groupput (one node always transmits, the rest
    /// listen), `1` for anyput.
    pub fn unconstrained_oracle(self, n: usize) -> f64 {
        match self {
            ThroughputMode::Groupput => (n as f64 - 1.0).max(0.0),
            ThroughputMode::Anyput => {
                if n >= 2 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

impl std::fmt::Display for ThroughputMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThroughputMode::Groupput => write!(f, "groupput"),
            ThroughputMode::Anyput => write!(f, "anyput"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeParams;

    #[test]
    fn state_machine_edges_match_fig1() {
        use NodeState::*;
        assert!(Sleep.can_transition_to(Listen));
        assert!(Listen.can_transition_to(Sleep));
        assert!(Listen.can_transition_to(Transmit));
        assert!(Transmit.can_transition_to(Listen));
        // Direct sleep↔transmit edges do not exist.
        assert!(!Sleep.can_transition_to(Transmit));
        assert!(!Transmit.can_transition_to(Sleep));
        // No self loops.
        assert!(!Sleep.can_transition_to(Sleep));
        assert!(!Listen.can_transition_to(Listen));
        assert!(!Transmit.can_transition_to(Transmit));
    }

    #[test]
    fn awake_and_power_draw() {
        let p = NodeParams::from_microwatts(10.0, 500.0, 600.0);
        assert!(!NodeState::Sleep.is_awake());
        assert!(NodeState::Listen.is_awake());
        assert!(NodeState::Transmit.is_awake());
        assert_eq!(NodeState::Sleep.power_draw(&p), 0.0);
        assert!((NodeState::Listen.power_draw(&p) - 500e-6).abs() < 1e-15);
        assert!((NodeState::Transmit.power_draw(&p) - 600e-6).abs() < 1e-15);
    }

    #[test]
    fn state_throughput_definition3() {
        // No transmitter → zero regardless of listeners.
        assert_eq!(ThroughputMode::Groupput.state_throughput(false, 4), 0.0);
        assert_eq!(ThroughputMode::Anyput.state_throughput(false, 4), 0.0);
        // One transmitter, c listeners.
        assert_eq!(ThroughputMode::Groupput.state_throughput(true, 3), 3.0);
        assert_eq!(ThroughputMode::Anyput.state_throughput(true, 3), 1.0);
        assert_eq!(ThroughputMode::Anyput.state_throughput(true, 0), 0.0);
        assert_eq!(ThroughputMode::Groupput.state_throughput(true, 0), 0.0);
    }

    #[test]
    fn listener_signal_per_mode() {
        assert_eq!(ThroughputMode::Groupput.listener_signal(2.7), 2.7);
        assert_eq!(ThroughputMode::Groupput.listener_signal(-1.0), 0.0);
        assert_eq!(ThroughputMode::Anyput.listener_signal(2.7), 1.0);
        assert_eq!(ThroughputMode::Anyput.listener_signal(0.5), 0.0);
    }

    #[test]
    fn unconstrained_oracle_caps() {
        assert_eq!(ThroughputMode::Groupput.unconstrained_oracle(5), 4.0);
        assert_eq!(ThroughputMode::Anyput.unconstrained_oracle(5), 1.0);
        assert_eq!(ThroughputMode::Groupput.unconstrained_oracle(1), 0.0);
        assert_eq!(ThroughputMode::Anyput.unconstrained_oracle(1), 0.0);
    }

    #[test]
    fn letters_and_display() {
        assert_eq!(NodeState::Sleep.letter(), 's');
        assert_eq!(NodeState::Listen.letter(), 'l');
        assert_eq!(NodeState::Transmit.letter(), 'x');
        assert_eq!(NodeState::Transmit.to_string(), "transmit");
        assert_eq!(ThroughputMode::Anyput.to_string(), "anyput");
    }
}
