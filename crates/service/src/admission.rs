//! Admission control: the bounded queue and shed ladder in front of
//! the socket server's `serve_batch`.
//!
//! ## The shed ladder
//!
//! Every request arriving on a TCP connection walks the ladder
//! *before* it may join a batch:
//!
//! 1. **Admit** — queue depth at or below the degrade threshold
//!    (half of [`ServiceConfig::queue_capacity`]): served normally,
//!    at the caller's stated tolerance.
//! 2. **Admit degraded** — depth above the degrade threshold but
//!    within capacity: served with the tolerance relaxed by one
//!    decade (capped at [`DEGRADED_TOLERANCE_CAP`]), which steers the
//!    request onto the interpolation-grid tier — one Gibbs evaluation
//!    instead of a solve. The response's weak-duality certificate
//!    reports the *achieved* gap, so a caller can always see exactly
//!    what accuracy it got.
//! 3. **Shed** — depth past capacity: rejected with an explicit
//!    `Overloaded { retry_after_us }` frame (wire v6). Never a silent
//!    drop, never a reset.
//!
//! Peers that negotiated a pre-v6 wire version cannot decode the
//! `Overloaded` frame, so rung 3 does not apply to them: they are
//! served (degraded past the threshold) no matter the depth — exactly
//! what the pre-overload-control server did, which is what keeps v5
//! interop bit-identical.
//!
//! ## Deadlines
//!
//! A v6 request may carry a `deadline_us` budget, measured from
//! server receipt. The ladder enforces it on the way *out*: a result
//! whose request ran past its budget is replaced by `Overloaded` —
//! the caller never receives a result it has already given up on
//! (pinned by the `deadline_expired_request_gets_overloaded_not_a_
//! late_result` test). Deadline-carrying requests are also served
//! earliest-deadline-first within a batch.
//!
//! [`ServiceConfig::queue_capacity`]: crate::ServiceConfig::queue_capacity

use crate::stats::ServiceStats;
use econcast_metrics::Gauge;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

/// Coarsest tolerance the degrade rung may relax a request to; also
/// the bound on how far a degraded serve can drift from the stated
/// tolerance (one decade, then this cap).
pub const DEGRADED_TOLERANCE_CAP: f64 = 1e-2;

/// One rung of the shed ladder, decided per request at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Serve normally at the stated tolerance.
    Admit,
    /// Serve at the relaxed tolerance ([`degraded_tolerance`]).
    AdmitDegraded,
    /// Reject with `Overloaded`; the caller should retry no sooner
    /// than `retry_after_us`.
    Shed {
        /// Estimated queue-drain time in microseconds.
        retry_after_us: u32,
    },
}

/// The tolerance a degraded serve runs at: one decade looser than
/// stated, capped at [`DEGRADED_TOLERANCE_CAP`], never tighter than
/// stated.
pub fn degraded_tolerance(stated: f64) -> f64 {
    (stated * 10.0).min(DEGRADED_TOLERANCE_CAP).max(stated)
}

/// Shared admission state for one server front: a depth-bounded
/// virtual queue (the requests admitted but not yet served, across
/// every connection handler) plus the overload counters it overlays
/// onto stats responses. All atomics — admission never takes a lock
/// on the request path.
#[derive(Debug)]
pub struct AdmissionController {
    capacity: usize,
    degrade_at: usize,
    max_queue_delay: Duration,
    /// The queue-depth gauge (level + high-water mark) — the shared
    /// `econcast-metrics` primitive, so the same object feeds the
    /// ladder, the stats overlay, and a v7 metrics scrape.
    queue: Gauge,
    shed_rejects: AtomicU64,
    degraded_serves: AtomicU64,
    deadline_expired: AtomicU64,
    /// EWMA of per-request service time, nanoseconds (α = 1/8);
    /// zero until the first observation.
    service_ns: AtomicU64,
    /// External backpressure hint, microseconds (e.g. the largest
    /// `retry_after_us` a cluster front's backends are currently
    /// advertising). Folded into [`retry_after_us`](Self::retry_after_us)
    /// via max so shed callers back off at least as far as the
    /// slowest layer below asked for. Zero when nothing downstream is
    /// saturated.
    external_hint_us: AtomicU32,
}

impl AdmissionController {
    /// Builds a controller for a queue of `queue_capacity` requests
    /// whose drain estimates floor at `max_queue_delay`.
    pub fn new(queue_capacity: usize, max_queue_delay: Duration) -> Self {
        let capacity = queue_capacity.max(1);
        AdmissionController {
            capacity,
            degrade_at: (capacity / 2).max(1),
            max_queue_delay,
            queue: Gauge::new(),
            shed_rejects: AtomicU64::new(0),
            degraded_serves: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            service_ns: AtomicU64::new(0),
            external_hint_us: AtomicU32::new(0),
        }
    }

    /// Walks one request up the ladder. `can_shed` is whether the
    /// peer negotiated wire v6 (and can therefore decode an
    /// `Overloaded` frame); without it the ladder tops out at the
    /// degraded rung. An admitted request holds one queue slot until
    /// [`release`](Self::release).
    pub fn admit(&self, can_shed: bool) -> Admission {
        let depth = self.queue.add(1) as usize;
        if depth > self.capacity && can_shed {
            self.queue.sub(1);
            self.shed_rejects.fetch_add(1, Ordering::Relaxed);
            return Admission::Shed {
                retry_after_us: self.retry_after_us(),
            };
        }
        // Only a *held* slot advances the peak — the shed rung above
        // released its slot, so all-v6 traffic keeps the peak within
        // capacity (the CI bounded-memory assertion).
        self.queue.note_peak(depth as u64);
        if depth > self.degrade_at {
            self.degraded_serves.fetch_add(1, Ordering::Relaxed);
            Admission::AdmitDegraded
        } else {
            Admission::Admit
        }
    }

    /// Returns `n` queue slots after their batch was served, folding
    /// the batch's wall time into the per-request service-time EWMA
    /// that prices [`retry_after_us`](Self::retry_after_us).
    pub fn release(&self, n: usize, elapsed: Duration) {
        if n == 0 {
            return;
        }
        self.queue.sub(n as u64);
        let per_req = (elapsed.as_nanos() / n as u128).min(u64::MAX as u128) as u64;
        let old = self.service_ns.load(Ordering::Relaxed);
        let new = if old == 0 {
            per_req
        } else {
            old - old / 8 + per_req / 8
        };
        self.service_ns.store(new, Ordering::Relaxed);
    }

    /// Marks one admitted request as having outlived its
    /// `deadline_us` budget: its result was replaced by `Overloaded`,
    /// so it counts as both expired and shed.
    pub fn note_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
        self.shed_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Current queue depth (admitted, not yet served).
    pub fn depth(&self) -> usize {
        self.queue.value() as usize
    }

    /// The queue-depth gauge itself, for injection into a v7 metrics
    /// scrape (level under [`GAUGE_QUEUE_DEPTH`], peak under
    /// [`GAUGE_QUEUE_DEPTH_PEAK`]).
    ///
    /// [`GAUGE_QUEUE_DEPTH`]: econcast_metrics::GAUGE_QUEUE_DEPTH
    /// [`GAUGE_QUEUE_DEPTH_PEAK`]: econcast_metrics::GAUGE_QUEUE_DEPTH_PEAK
    pub fn queue_gauge(&self) -> &Gauge {
        &self.queue
    }

    /// High-water mark of the queue depth. The shed rung never holds
    /// a slot, so with all-v6 traffic this never exceeds the
    /// configured capacity (the CI overload-smoke bounded-memory
    /// assertion); pre-v6 peers — who cannot be shed — may push it
    /// past, exactly as far as their unsheddable requests go.
    pub fn depth_peak(&self) -> usize {
        self.queue.peak() as usize
    }

    /// Publishes the current downstream backpressure hint
    /// (microseconds): the largest `retry_after_us` any layer below
    /// this controller is advertising, or zero when nothing is.
    /// Overwrites the previous hint — the caller is expected to
    /// republish its current view, not accumulate.
    pub fn set_external_hint_us(&self, hint_us: u32) {
        self.external_hint_us.store(hint_us, Ordering::Relaxed);
    }

    /// Estimated time until the current queue drains, floored at the
    /// configured `max_queue_delay` (so shed callers never retry into
    /// the same saturated window they were just rejected from) and at
    /// the published external hint (so a front never invites a retry
    /// sooner than its saturated backends asked for).
    pub fn retry_after_us(&self) -> u32 {
        let depth = self.queue.value();
        let per_req_us = self.service_ns.load(Ordering::Relaxed) / 1_000;
        let drain = depth.saturating_mul(per_req_us);
        let floor = self
            .max_queue_delay
            .as_micros()
            .min(u64::from(u32::MAX) as u128) as u64;
        let hint = u64::from(self.external_hint_us.load(Ordering::Relaxed));
        drain.max(floor).max(hint).min(u64::from(u32::MAX)) as u32
    }

    /// Overlays the overload counters onto a stats snapshot — the
    /// admission twin of the cluster front's robustness-counter
    /// overlay, so `shed_rejects`/`degraded_serves`/
    /// `deadline_expired`/`queue_depth_peak` ride the same wire v6
    /// stats block as the per-tier counters. Counters *fold in*
    /// (sums, peak via max) rather than overwrite: a cluster front's
    /// aggregate already carries its backends' own admission
    /// counters, and the front's must join them, not erase them.
    pub fn overlay(&self, stats: &mut ServiceStats) {
        stats.shed_rejects += self.shed_rejects.load(Ordering::Relaxed);
        stats.degraded_serves += self.degraded_serves.load(Ordering::Relaxed);
        stats.deadline_expired += self.deadline_expired.load(Ordering::Relaxed);
        stats.queue_depth_peak = stats.queue_depth_peak.max(self.depth_peak() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_rungs_follow_depth() {
        let a = AdmissionController::new(4, Duration::from_millis(50));
        // degrade_at = 2: slots 1–2 admit, 3–4 degrade, 5 sheds.
        assert_eq!(a.admit(true), Admission::Admit);
        assert_eq!(a.admit(true), Admission::Admit);
        assert_eq!(a.admit(true), Admission::AdmitDegraded);
        assert_eq!(a.admit(true), Admission::AdmitDegraded);
        assert!(matches!(a.admit(true), Admission::Shed { .. }));
        // The shed attempt held no slot: depth and peak stay bounded.
        assert_eq!(a.depth(), 4);
        assert_eq!(a.depth_peak(), 4);
        // A pre-v6 peer cannot be shed — the ladder tops out degraded.
        assert_eq!(a.admit(false), Admission::AdmitDegraded);
        a.release(5, Duration::from_millis(1));
        assert_eq!(a.depth(), 0);
        assert_eq!(a.admit(true), Admission::Admit);
    }

    #[test]
    fn retry_hint_floors_at_max_queue_delay_and_scales_with_depth() {
        let a = AdmissionController::new(2, Duration::from_millis(50));
        assert_eq!(a.admit(true), Admission::Admit);
        assert_eq!(a.admit(true), Admission::AdmitDegraded);
        // No service-time observation yet: the floor answers.
        match a.admit(true) {
            Admission::Shed { retry_after_us } => assert_eq!(retry_after_us, 50_000),
            other => panic!("expected shed, got {other:?}"),
        }
        // Teach it 100ms/request; two queued => ~200ms drain.
        a.release(2, Duration::from_millis(200));
        assert_eq!(a.admit(true), Admission::Admit);
        assert_eq!(a.admit(true), Admission::AdmitDegraded);
        match a.admit(true) {
            Admission::Shed { retry_after_us } => {
                assert!(retry_after_us >= 150_000, "got {retry_after_us}");
            }
            other => panic!("expected shed, got {other:?}"),
        }
    }

    #[test]
    fn external_hint_raises_the_retry_floor() {
        let a = AdmissionController::new(1, Duration::from_millis(10));
        let _ = a.admit(true);
        match a.admit(true) {
            Admission::Shed { retry_after_us } => assert_eq!(retry_after_us, 10_000),
            other => panic!("expected shed, got {other:?}"),
        }
        // A saturated backend advertising 250ms dominates the local
        // floor; clearing it restores the local estimate.
        a.set_external_hint_us(250_000);
        match a.admit(true) {
            Admission::Shed { retry_after_us } => assert_eq!(retry_after_us, 250_000),
            other => panic!("expected shed, got {other:?}"),
        }
        a.set_external_hint_us(0);
        match a.admit(true) {
            Admission::Shed { retry_after_us } => assert_eq!(retry_after_us, 10_000),
            other => panic!("expected shed, got {other:?}"),
        }
    }

    #[test]
    fn degraded_tolerance_relaxes_one_decade_capped() {
        assert_eq!(degraded_tolerance(1e-4), 1e-3);
        assert_eq!(degraded_tolerance(1e-3), 1e-2);
        assert_eq!(degraded_tolerance(5e-3), 1e-2);
        // Already past the cap: never tightened.
        assert_eq!(degraded_tolerance(5e-2), 5e-2);
    }

    #[test]
    fn overlay_reports_counters_and_peak() {
        let a = AdmissionController::new(1, Duration::from_millis(10));
        let _ = a.admit(true);
        assert!(matches!(a.admit(true), Admission::Shed { .. }));
        a.note_deadline_expired();
        let mut s = ServiceStats::default();
        a.overlay(&mut s);
        assert_eq!(s.shed_rejects, 2); // one shed + one expiry
        assert_eq!(s.deadline_expired, 1);
        assert_eq!(s.queue_depth_peak, 1);
    }
}
