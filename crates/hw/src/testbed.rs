//! The emulated Section VIII experiment runner.
//!
//! Builds an `econcast-sim` configuration from the hardware models in
//! this crate — CC2500 power/timing, ping-collision estimation, sleep
//! clock drift, regulator overhead — runs EconCast-C, and reports the
//! quantities of Fig. 7 and Tables III–IV:
//!
//! * the experimental throughput normalized to the achievable `T^σ`
//!   computed with the **target budget ρ** ("Ideal") and with the
//!   **measured consumption P** ("Relaxed");
//! * the virtual-battery power band (mean/min/max of protocol-visible
//!   consumption over the budget);
//! * the distribution of decoded pings per packet (Table IV).
//!
//! One departure from the physical experiments, documented here and in
//! `DESIGN.md`: the paper runs each configuration for up to 24 hours,
//! much of which is spent letting the multipliers converge. The
//! emulation warm-starts the multipliers at the (P4) optimum (which the
//! nodes could equally have persisted in flash) and still simulates
//! hours of channel time for the measurement window.

use econcast_core::{NodeParams, ProtocolConfig, ThroughputMode};
use econcast_sim::config::{EstimatorKind, ScheduleSpec, SimConfig};
use econcast_sim::{SimReport, Simulator};
use econcast_statespace::HomogeneousP4;
use rand::SeedableRng;

use crate::clock::SleepClock;
use crate::radio::Cc2500;

/// Configuration of one emulated testbed experiment.
#[derive(Debug, Clone, Copy)]
pub struct TestbedConfig {
    /// Number of protocol nodes (5 or 10 in the paper; the observer
    /// node is passive and needs no emulation beyond the metrics the
    /// report already carries).
    pub n: usize,
    /// Target power budget ρ (W): 1 mW or 5 mW in the paper.
    pub budget_w: f64,
    /// Temperature σ: 0.25 or 0.5 in the paper.
    pub sigma: f64,
    /// Radio model.
    pub radio: Cc2500,
    /// Wall-clock duration to emulate (s).
    pub duration_s: f64,
    /// Sleep-clock tolerance (± fraction); 0.04 models a VLO-class
    /// oscillator.
    pub clock_spread: f64,
    /// Always-on regulator/MCU overhead (W), invisible to the virtual
    /// battery. `None` picks the Section VIII-B calibration:
    /// `max(0.11 mW, 4% of ρ)`, which reproduces the measured 11%
    /// (ρ = 1 mW) and 4% (ρ = 5 mW) excesses.
    pub overhead_w: Option<f64>,
    /// RNG seed.
    pub seed: u64,
    /// Multiplier controller: full-gain per-update movement of the
    /// dimensionless multiplier (variance-normalized controller).
    pub schedule_gain: f64,
    /// Multiplier controller: update interval (packet-times).
    pub schedule_tau: f64,
}

impl TestbedConfig {
    /// The paper's experiment grid point `(N, ρ, σ)` with 4 emulated
    /// hours (a compromise between the paper's "up to 24 hours" and CI
    /// runtime; throughput estimates stabilize well before this).
    pub fn paper_setup(n: usize, budget_mw: f64, sigma: f64) -> Self {
        TestbedConfig {
            n,
            budget_w: budget_mw * 1e-3,
            sigma,
            radio: Cc2500::default(),
            duration_s: 4.0 * 3600.0,
            clock_spread: 0.04,
            overhead_w: None,
            seed: 0x5EED,
            // Variance-normalized gain-scheduled controller (the
            // principled successor to the step=1.0 constant
            // recalibration this file used to carry — see the ROADMAP
            // triage note). At mW budgets with 67 mW listen power the
            // raw slack (rho - cons) is O(1e-3)·Cbar and capture
            // bursts make it heavy-tailed; normalizing by the running
            // slack RMS caps the per-update movement of the
            // dimensionless multiplier at `gain` under persistent
            // drift, and the quadratic confidence deadband parks the
            // controller at noisy balance, so one (gain, tau) tracks
            // both paper budgets, both sigmas, and both node counts
            // with no per-scale recalibration (battery means 0.91-1.00
            // across the grid in half-hour emulations). Unlike the old
            // constant-step controller, tau no longer needs to dwarf a
            // capture burst (~e^{1/sigma} ≈ 55 packets at σ = 0.25):
            // burst-correlated noise lands in the variance estimate,
            // not the step, so updates can run 4x more often.
            schedule_gain: 0.2,
            schedule_tau: 100.0,
        }
    }

    /// The calibrated overhead (see `overhead_w`).
    pub fn effective_overhead_w(&self) -> f64 {
        self.overhead_w
            .unwrap_or_else(|| (0.11e-3f64).max(0.04 * self.budget_w))
    }

    /// Node parameters on this radio at the target budget.
    pub fn node_params(&self) -> NodeParams {
        self.radio.node_params(self.budget_w)
    }

    /// Runs the emulated experiment.
    pub fn run(&self) -> TestbedRun {
        assert!(self.n >= 2, "need at least two protocol nodes");
        let params = self.node_params();
        let p4 = HomogeneousP4::new(self.n, params, self.sigma, ThroughputMode::Groupput).solve();

        let t_end = self.radio.seconds_to_packets(self.duration_s);
        let mut drift_rng = rand::rngs::StdRng::seed_from_u64(self.seed ^ 0xD21F7);
        let drift: Vec<f64> = (0..self.n)
            .map(|_| SleepClock::sample_uniform(&mut drift_rng, self.clock_spread).factor)
            .collect();

        let cfg = SimConfig {
            topology: econcast_core::Topology::clique(self.n),
            nodes: vec![params; self.n],
            protocol: ProtocolConfig::capture_groupput(self.sigma),
            schedule: ScheduleSpec::GainScheduled {
                gain: self.schedule_gain,
                tau: self.schedule_tau,
            },
            eta0: p4.eta,
            ping_interval: self.radio.ping_interval_packets(),
            estimator: EstimatorKind::PingCollision {
                ping_len: self.radio.ping_len_packets(),
            },
            clock_drift: Some(drift),
            overhead_w: self.effective_overhead_w(),
            t_end,
            warmup: t_end * 0.1,
            seed: self.seed,
            record_deliveries: false,
            harvest: None,
        };
        let report = Simulator::new(cfg).expect("testbed config is valid").run();

        // Measured physical consumption (capacitor-rig equivalent).
        let measured_p: Vec<f64> = report
            .nodes
            .iter()
            .map(|n| n.average_power(report.elapsed))
            .collect();
        let mean_p = measured_p.iter().sum::<f64>() / measured_p.len() as f64;

        // Achievable throughput at the relaxed (measured) budget.
        let relaxed_params = NodeParams::new(mean_p, params.listen_w, params.transmit_w);
        let p4_relaxed =
            HomogeneousP4::new(self.n, relaxed_params, self.sigma, ThroughputMode::Groupput)
                .solve();

        // Virtual-battery band: protocol-visible power over the budget.
        let ratios: Vec<f64> = report
            .nodes
            .iter()
            .map(|n| n.average_protocol_power(report.elapsed) / self.budget_w)
            .collect();
        let battery_mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let battery_min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let battery_max = ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

        let ping_distribution = report.ping_distribution();
        TestbedRun {
            throughput: report.groupput,
            achievable_ideal: p4.throughput,
            achievable_relaxed: p4_relaxed.throughput,
            measured_power_w: mean_p,
            battery_ratio_mean: battery_mean,
            battery_ratio_min: battery_min,
            battery_ratio_max: battery_max,
            ping_distribution,
            report,
        }
    }
}

/// Outcome of one emulated testbed experiment.
#[derive(Debug, Clone)]
pub struct TestbedRun {
    /// Measured groupput (packet-time units, comparable to `T^σ`).
    pub throughput: f64,
    /// `T^σ` at the target budget ρ — the "Ideal" denominator.
    pub achievable_ideal: f64,
    /// `T^σ` at the measured consumption P — the "Relaxed"
    /// denominator.
    pub achievable_relaxed: f64,
    /// Mean measured physical power (W).
    pub measured_power_w: f64,
    /// Mean of per-node virtual-battery power over budget.
    pub battery_ratio_mean: f64,
    /// Minimum of the same ratio.
    pub battery_ratio_min: f64,
    /// Maximum of the same ratio.
    pub battery_ratio_max: f64,
    /// Fraction of packets followed by `k` decoded pings (Table IV).
    pub ping_distribution: Vec<f64>,
    /// The raw simulation report.
    pub report: SimReport,
}

impl TestbedRun {
    /// `T̃^σ / T^σ(ρ)` — the Fig. 7 "Ideal" ratio.
    pub fn ratio_ideal(&self) -> f64 {
        self.throughput / self.achievable_ideal
    }

    /// `T̃^σ / T^σ(P)` — the Fig. 7 "Relaxed" ratio.
    pub fn ratio_relaxed(&self) -> f64 {
        self.throughput / self.achievable_relaxed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(n: usize, budget_mw: f64, sigma: f64) -> TestbedConfig {
        let mut c = TestbedConfig::paper_setup(n, budget_mw, sigma);
        c.duration_s = 1800.0; // half an hour is plenty for smoke tests
        c
    }

    #[test]
    fn overhead_calibration_matches_section_viii_b() {
        let one = TestbedConfig::paper_setup(5, 1.0, 0.5);
        assert!((one.effective_overhead_w() - 0.11e-3).abs() < 1e-12);
        let five = TestbedConfig::paper_setup(5, 5.0, 0.5);
        assert!((five.effective_overhead_w() - 0.2e-3).abs() < 1e-12);
    }

    #[test]
    fn measured_power_exceeds_budget_by_overhead() {
        let cfg = quick(5, 1.0, 0.5);
        let run = cfg.run();
        let excess = run.measured_power_w / cfg.budget_w;
        assert!(
            (1.05..1.25).contains(&excess),
            "measured/target = {excess}, expected ≈ 1.11"
        );
    }

    #[test]
    fn throughput_ratio_in_plausible_band() {
        // The paper reports 57–77% of T^σ(ρ); the emulation should land
        // in the same neighbourhood (we accept a wider 45–95% band for
        // the half-hour smoke run).
        let run = quick(5, 1.0, 0.5).run();
        let r = run.ratio_ideal();
        assert!(
            (0.45..0.95).contains(&r),
            "ideal ratio {r} outside the plausible band"
        );
        // Relaxed ratio uses a larger denominator, so it is smaller.
        assert!(run.ratio_relaxed() < run.ratio_ideal());
    }

    #[test]
    fn battery_band_near_one() {
        let run = quick(5, 1.0, 0.5).run();
        assert!(
            (run.battery_ratio_mean - 1.0).abs() < 0.1,
            "virtual battery mean ratio {}",
            run.battery_ratio_mean
        );
        assert!(run.battery_ratio_min <= run.battery_ratio_mean);
        assert!(run.battery_ratio_max >= run.battery_ratio_mean);
    }

    #[test]
    fn ping_distribution_is_a_distribution() {
        let run = quick(5, 5.0, 0.25).run();
        let d = &run.ping_distribution;
        assert!(!d.is_empty(), "no ping statistics collected");
        let total: f64 = d.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // At most N−1 = 4 listeners can ping.
        assert!(d.len() <= 5);
    }

    #[test]
    fn higher_budget_more_pings() {
        // Table IV: at ρ = 5 mW the transmitter hears ≥1 ping after
        // ~41% of packets; at 1 mW only ~11%. Verify the ordering.
        let lo = quick(5, 1.0, 0.25).run();
        let hi = quick(5, 5.0, 0.25).run();
        let p_zero = |d: &[f64]| d.first().copied().unwrap_or(1.0);
        assert!(
            p_zero(&hi.ping_distribution) < p_zero(&lo.ping_distribution),
            "5 mW should see fewer zero-ping packets: {} vs {}",
            p_zero(&hi.ping_distribution),
            p_zero(&lo.ping_distribution)
        );
    }
}
