//! Random-number helpers: seeded RNG construction and exponential
//! sampling (implemented from the inverse CDF; `rand` ships no
//! distributions without `rand_distr`, which is not in the approved
//! dependency list).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds the deterministic RNG used throughout a simulation run.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws `Exp(rate)` via inversion: `−ln(U)/rate` with `U ∈ (0, 1]`.
///
/// Returns `f64::INFINITY` for `rate ≤ 0` — a zero rate means the
/// transition never fires, which callers use for frozen/disabled
/// transitions.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    if rate <= 0.0 {
        return f64::INFINITY;
    }
    // gen_range over (0,1]: avoid ln(0).
    let u: f64 = 1.0 - rng.gen::<f64>(); // gen() ∈ [0,1) ⇒ u ∈ (0,1]
    -u.ln() / rate
}

/// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
pub fn coin<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    rng.gen::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = seeded(7);
        let rate = 2.5;
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, rate)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.01,
            "empirical mean {mean} vs {}",
            1.0 / rate
        );
    }

    #[test]
    fn exponential_is_always_positive() {
        let mut rng = seeded(3);
        for _ in 0..10_000 {
            let x = exponential(&mut rng, 10.0);
            assert!(x > 0.0 && x.is_finite());
        }
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut rng = seeded(1);
        assert_eq!(exponential(&mut rng, 0.0), f64::INFINITY);
        assert_eq!(exponential(&mut rng, -1.0), f64::INFINITY);
    }

    #[test]
    fn coin_extremes() {
        let mut rng = seeded(9);
        assert!(!coin(&mut rng, 0.0));
        assert!(coin(&mut rng, 1.0));
        assert!(!coin(&mut rng, -0.5));
        assert!(coin(&mut rng, 1.5));
    }

    #[test]
    fn coin_frequency_tracks_probability() {
        let mut rng = seeded(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| coin(&mut rng, 0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "frequency {freq}");
    }
}
