//! Structural invariants of the protocol and simulator that must hold
//! for any configuration: collision-freedom in cliques, conservation
//! of accounting identities, carrier-sense semantics, and the
//! anyput ≤ groupput ≤ receptions chain.

use econcast::core::{NodeParams, ProtocolConfig, ThroughputMode, Topology, Variant};
use econcast::sim::{SimConfig, Simulator};

fn params() -> NodeParams {
    NodeParams::from_microwatts(10.0, 500.0, 500.0)
}

fn run(mut cfg: SimConfig) -> econcast::sim::SimReport {
    cfg.warmup = cfg.t_end * 0.1;
    Simulator::new(cfg).expect("valid config").run()
}

#[test]
fn accounting_identities_hold_across_configurations() {
    for (n, sigma, variant, mode, seed) in [
        (
            3usize,
            0.5,
            Variant::Capture,
            ThroughputMode::Groupput,
            1u64,
        ),
        (5, 0.25, Variant::Capture, ThroughputMode::Anyput, 2),
        (5, 0.5, Variant::NonCapture, ThroughputMode::Groupput, 3),
        (8, 0.75, Variant::Capture, ThroughputMode::Groupput, 4),
    ] {
        let protocol = ProtocolConfig::new(sigma, variant, mode);
        let cfg = SimConfig::ideal_clique(n, params(), protocol, 400_000.0, seed);
        let r = run(cfg);

        // Packets sent per node sum to the global counter.
        let sent: u64 = r.nodes.iter().map(|x| x.packets_sent).sum();
        assert_eq!(sent, r.packets_transmitted);
        // Receptions match groupput integral.
        let received: u64 = r.nodes.iter().map(|x| x.packets_received).sum();
        assert_eq!(received, (r.groupput * r.elapsed).round() as u64);
        // Delivered ≤ transmitted; anyput ≤ groupput; collisions zero in cliques.
        assert!(r.packets_delivered <= r.packets_transmitted);
        assert!(r.anyput <= r.groupput + 1e-12);
        assert_eq!(r.packets_collided, 0);
        // Time accounting closes.
        for x in &r.nodes {
            let total = x.time_sleep + x.time_listen + x.time_transmit;
            assert!((total - r.elapsed).abs() < 1e-6);
        }
        // Energy ledger: consumed = ∫ state power (identity of the
        // protocol meter with zero overhead).
        for x in &r.nodes {
            let expected =
                x.time_listen * params().listen_w + x.time_transmit * params().transmit_w;
            assert!(
                (x.protocol_energy_consumed - expected).abs() < 1e-9,
                "ledger mismatch: {} vs {}",
                x.protocol_energy_consumed,
                expected
            );
            assert!((x.energy_consumed - x.protocol_energy_consumed).abs() < 1e-12);
        }
    }
}

#[test]
fn overhead_splits_physical_from_protocol_meter() {
    let mut cfg = SimConfig::ideal_clique(
        4,
        params(),
        ProtocolConfig::capture_groupput(0.5),
        300_000.0,
        9,
    );
    cfg.overhead_w = 2e-6; // 2 µW always-on
    let r = run(cfg);
    for x in &r.nodes {
        let gap = x.energy_consumed - x.protocol_energy_consumed;
        let expected = 2e-6 * r.elapsed;
        assert!(
            (gap - expected).abs() / expected < 1e-6,
            "overhead accounting off: {gap} vs {expected}"
        );
    }
}

#[test]
fn line_topology_respects_reachability() {
    // On a 4-node line, node 0 and node 3 can never hear each other.
    let mut cfg = SimConfig::ideal_clique(
        4,
        params(),
        ProtocolConfig::capture_groupput(0.5),
        600_000.0,
        11,
    );
    cfg.topology = Topology::line(4);
    cfg.record_deliveries = true;
    let r = run(cfg);
    for d in &r.deliveries {
        for rx in d.receiver_ids() {
            assert!(
                (d.source as i64 - rx as i64).abs() == 1,
                "delivery from {} to non-neighbor {rx}",
                d.source
            );
        }
    }
    assert!(r.packets_transmitted > 0);
}

#[test]
fn grid_collisions_only_without_shared_carrier() {
    // In a 3×3 grid transmissions can overlap, but only between nodes
    // that are not neighbors of each other (carrier sense blocks
    // neighbors). Verified indirectly: collided + delivered +
    // no-listener packets = transmitted.
    let mut cfg = SimConfig::ideal_clique(
        9,
        params(),
        ProtocolConfig::capture_groupput(0.5),
        600_000.0,
        13,
    );
    cfg.topology = Topology::square_grid(3);
    let r = run(cfg);
    assert!(r.packets_delivered + r.packets_collided <= r.packets_transmitted);
}

#[test]
fn noisy_estimator_reduces_groupput_mildly() {
    // "poor estimates are expected to reduce throughput" (Section V-C):
    // an estimator that reports half the listeners shortens captures
    // and costs throughput, but the protocol keeps functioning.
    let base = {
        let cfg = SimConfig::ideal_clique(
            5,
            params(),
            ProtocolConfig::capture_groupput(0.5),
            1_500_000.0,
            17,
        );
        run(cfg)
    };
    let degraded = {
        let mut cfg = SimConfig::ideal_clique(
            5,
            params(),
            ProtocolConfig::capture_groupput(0.5),
            1_500_000.0,
            17,
        );
        cfg.estimator = econcast::sim::EstimatorKind::Noisy {
            gain: 0.5,
            bias: 0.0,
            cap: f64::INFINITY,
        };
        run(cfg)
    };
    assert!(degraded.groupput > 0.0, "protocol collapsed under noise");
    assert!(
        degraded.groupput < base.groupput,
        "half-blind estimator should cost throughput: {} vs {}",
        degraded.groupput,
        base.groupput
    );
}

#[test]
fn time_varying_budget_with_same_mean_still_meets_mean() {
    // Section III-A extension: a budget that oscillates around the same
    // mean should still produce consumption near that mean. We emulate
    // by alternating the harvest rate between runs … the engine models
    // constant ρ, so instead verify robustness to a *mis-seeded* η and
    // two very different seeds converging to the same throughput.
    let mut a = SimConfig::ideal_clique(
        5,
        params(),
        ProtocolConfig::capture_groupput(0.5),
        3_000_000.0,
        100,
    );
    a.eta0 = 0.0;
    a.warmup = 1_800_000.0;
    let mut b = a.clone();
    b.seed = 200;
    // Oversized by 30% (the dual descent recovers from this well within
    // the warm-up; recovery from arbitrarily large η takes Θ(η/(δρ))
    // updates since the downward gradient is capped at δ·ρ).
    b.eta0 = 1.3
        * econcast::statespace::HomogeneousP4::new(5, params(), 0.5, ThroughputMode::Groupput)
            .solve()
            .eta;
    let ra = Simulator::new(a).expect("valid").run();
    let rb = Simulator::new(b).expect("valid").run();
    let rel = (ra.groupput - rb.groupput).abs() / ra.groupput.max(1e-12);
    assert!(
        rel < 0.25,
        "different η₀ failed to converge together: {} vs {}",
        ra.groupput,
        rb.groupput
    );
}

#[test]
fn on_off_harvest_with_same_mean_behaves_like_constant() {
    // The Section III-A extension, now exercised for real: office
    // lighting that is on 30% of the time at 10/0.3 µW (same mean as
    // the constant 10 µW budget). Long-run throughput and consumption
    // should match the constant-budget run.
    use econcast::sim::config::HarvestSpec;
    use econcast::statespace::HomogeneousP4;
    let base = {
        let mut cfg = SimConfig::ideal_clique(
            5,
            params(),
            ProtocolConfig::capture_groupput(0.5),
            3_000_000.0,
            77,
        );
        cfg.eta0 = HomogeneousP4::new(5, params(), 0.5, ThroughputMode::Groupput)
            .solve()
            .eta;
        cfg.warmup = 500_000.0;
        Simulator::new(cfg).expect("valid").run()
    };
    let modulated = {
        let mut cfg = SimConfig::ideal_clique(
            5,
            params(),
            ProtocolConfig::capture_groupput(0.5),
            3_000_000.0,
            77,
        );
        cfg.eta0 = HomogeneousP4::new(5, params(), 0.5, ThroughputMode::Groupput)
            .solve()
            .eta;
        cfg.warmup = 500_000.0;
        cfg.harvest = Some(HarvestSpec {
            period: 10_000.0, // 10 s cycles at 1 ms packets
            duty: 0.3,
        });
        Simulator::new(cfg).expect("valid").run()
    };
    let rel = (modulated.groupput - base.groupput).abs() / base.groupput;
    assert!(
        rel < 0.15,
        "modulated harvest diverged: {} vs {} (rel {rel})",
        modulated.groupput,
        base.groupput
    );
    // Consumption still near the mean budget.
    for (i, n) in modulated.nodes.iter().enumerate() {
        let drift =
            (n.average_power(modulated.elapsed) - params().budget_w).abs() / params().budget_w;
        assert!(
            drift < 0.10,
            "node {i} power drift {drift} under modulation"
        );
    }
}
