//! # econcast-statespace — the collision-free state space and (P4)
//!
//! Everything in the paper's Markov-chain analysis (Section VI) lives
//! here:
//!
//! * [`NetworkState`] — one collision-free network state `w ∈ W`: at
//!   most one transmitter plus a set of listeners (Section III-C), with
//!   the indicators `ν_w`, `c_w`, `γ_w` and the per-state throughput
//!   `T_w` of Definition 3;
//! * [`StateSpace`] — enumeration of `W`, whose size is
//!   `(N + 2)·2^{N−1}` (the reduction from `3^N` noted in
//!   Section III-C);
//! * [`gibbs`] — the product-form stationary distribution of Lemma 2,
//!   eq. (19), computed in the log domain so that small temperatures
//!   `σ` (where weights span hundreds of orders of magnitude) remain
//!   exact, with a Gray-code streaming kernel ([`SummaryWorkspace`])
//!   that evaluates all marginals in one allocation-free pass and fans
//!   per-transmitter blocks out over a deterministic thread pool;
//! * [`p4`] — the achievable-throughput solver: Algorithm 1's dual
//!   gradient descent on the Lagrange multipliers `η`, yielding the
//!   `T^σ` that every figure in Section VII normalizes against;
//! * [`instance`] — canonical instance keys (sorted budgets +
//!   permutation, decade-quantized tolerance tiers) for the policy
//!   cache in `econcast-service`;
//! * [`homogeneous`] — a combinatorial fast path for homogeneous
//!   networks that aggregates states by `(listener count, transmitter
//!   present)`, supporting thousands of nodes where enumeration would
//!   be hopeless, and cross-checked against enumeration in tests.

pub mod gibbs;
pub mod homogeneous;
pub mod instance;
pub mod p4;
pub mod space;
pub mod state;

pub use gibbs::{summarize, GibbsParams, GibbsSummary, StateTable, SummaryWorkspace};
pub use homogeneous::{HomogeneousGibbs, HomogeneousP4};
pub use instance::{fnv1a_64, quantize_tolerance, CanonicalInstance, InstanceKey};
pub use p4::{solve_p4, P4Options, P4Solution, P4Solver, SolverPool};
pub use space::StateSpace;
pub use state::NetworkState;
