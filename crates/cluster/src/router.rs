//! Routing canonical instance keys across cluster slots.
//!
//! A [`ClusterRouter`] is the multi-process sibling of
//! `econcast_service::ShardRouter`: requests are canonicalized and
//! consistent-hashed over the **same 64-vnode FNV-1a ring**
//! (`fnv1a_64([slot, vnode])` points, `InstanceKey::route_hash` keys),
//! but a slot is a [`RemoteShard`] dialing a backend `PolicyServer`
//! process — or an in-process `PolicyService` for mixed local/remote
//! topologies. With equal slot counts the two routers assign every
//! canonical key identically, so promoting an in-process shard to a
//! remote backend moves no keys.
//!
//! ## Fan-out and reassembly
//!
//! A batch scatters into per-slot sub-batches (request order
//! preserved within each), remote sub-batches fan out **concurrently**
//! (one thread per live backend), and responses gather back in
//! request order, each already in its caller's node order.
//!
//! ## Failover
//!
//! Backend trouble is never the caller's problem:
//!
//! * a backend marked down by its health machine is skipped outright;
//! * a stream failure mid-batch voids that backend's whole sub-batch;
//! * both sets of requests are re-served by the router's **local
//!   fallback solver** in request order, counted in
//!   [`ClusterStats::local_fallbacks`].
//!
//! Every solve is a deterministic, self-contained computation and the
//! fallback runs the same `ServiceConfig` as the backends, so a
//! failed-over response is **bit-identical** to the one the backend
//! would have produced — only the tier label may differ (a replay can
//! read `Exact`), matching the PR 3 socket-test convention.

use crate::remote::{RemoteConfig, RemoteShard, RemoteShardStats};
use econcast_metrics::OpsKind;
use econcast_proto::service::ServiceErrorCode;
use econcast_service::{FamilyKey, MixRecorder, ServiceStats};
use econcast_service::{PolicyRequest, PolicyResponse, PolicyService, ServiceConfig, ServiceError};
use econcast_statespace::{fnv1a_64, CanonicalInstance, InstanceKey};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What one ring slot is backed by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotSpec {
    /// A backend `PolicyServer` process at this address, reached
    /// through a [`RemoteShard`] dialer.
    Remote(SocketAddr),
    /// An in-process `PolicyService` (mixed local/remote topologies,
    /// e.g. one warm local slot beside remote capacity).
    Local,
}

/// Tuning knobs for a [`ClusterRouter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Virtual nodes per slot on the consistent-hash ring (64 matches
    /// `ShardRouter`).
    pub vnodes: usize,
    /// Service configuration for local slots **and** the fallback
    /// solver. For the bit-identical failover guarantee this must
    /// match the backends' per-shard configuration.
    pub service: ServiceConfig,
    /// Dialer configuration applied to every remote slot.
    pub remote: RemoteConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            vnodes: 64,
            service: ServiceConfig::default(),
            remote: RemoteConfig::default(),
        }
    }
}

#[derive(Debug)]
enum Slot {
    /// Boxed (like `Local`): the dialer's pooled-connection and
    /// health-machine state is hundreds of bytes, and slot vectors
    /// should stay dense — `Retired` tombstones cost one word.
    Remote(Box<RemoteShard>),
    /// Boxed: a `PolicyService` (caches + scratch pools) dwarfs the
    /// dialer, and slot vectors should stay dense.
    Local(Box<PolicyService>),
    /// A backend removed by a live rebalance. The tombstone keeps
    /// slot indices stable (stats, retargeting, healer bookkeeping
    /// all key on them); it owns no vnodes, reports unhealthy, and
    /// never serves.
    Retired,
}

/// Where one slot's serving counters come from — snapshot under the
/// router lock ([`ClusterRouter::stats_sources`]), fetched outside
/// it.
#[derive(Debug, Clone, Copy)]
pub enum StatsSource {
    /// An in-process slot's counters, read directly.
    Local(ServiceStats),
    /// A backend to ask over the wire; `attempt = false` means the
    /// health machine says the backend is down and no reprobe is due
    /// yet — don't burn a dial on it.
    Remote {
        /// The backend's address.
        addr: SocketAddr,
        /// Whether a dial is currently worth attempting.
        attempt: bool,
    },
}

/// Cluster-level counters (the serving counters live in the backends;
/// these describe the *distribution* layer).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Requests routed per slot (including ones later failed over).
    pub routed: Vec<u64>,
    /// Requests answered by a remote backend.
    pub remote_served: u64,
    /// Requests answered by an in-process local slot.
    pub local_served: u64,
    /// Requests re-served by the local fallback solver because their
    /// backend was down, failed mid-batch, or rejected them.
    pub local_fallbacks: u64,
    /// Backend stream failures observed (each voids one sub-batch).
    pub backend_failures: u64,
    /// Requests that failed validation (answered locally with typed
    /// errors, never routed).
    pub invalid_requests: u64,
    /// Dead backends replaced by the supervisor policy loop without
    /// an operator in the loop.
    pub auto_respawns: u64,
    /// Crash-looping backends the policy loop gave up on and pinned
    /// onto a local in-process slot.
    pub quarantines: u64,
    /// Warm mix handoffs shipped during live ring rebalances.
    pub reshard_handoffs: u64,
    /// Faults fired by an attached fault-injection harness (zero in
    /// production deployments).
    pub injected_faults: u64,
    /// Per-request `Overloaded` rejections received from backends —
    /// each marked its slot saturated and was re-served by the local
    /// fallback (the caller never saw the rejection).
    pub overload_rejects: u64,
    /// Requests routed *around* a saturated backend: its slot was
    /// inside a `retry_after_us` window from an earlier `Overloaded`,
    /// so the router went straight to the fallback without burning a
    /// dial — backpressure acted before the healer would notice
    /// anything (the backend still answers pings).
    pub saturated_routes: u64,
    /// Current per-slot health (local slots are always healthy,
    /// retired slots never are).
    pub healthy: Vec<bool>,
    /// Current per-slot saturation (inside a backend-advertised
    /// `retry_after_us` backoff window). Orthogonal to `healthy`: a
    /// saturated backend is alive, just shedding.
    pub saturated: Vec<bool>,
}

/// Routes canonicalized requests across remote and local slots.
#[derive(Debug)]
pub struct ClusterRouter {
    /// Sorted consistent-hash ring: `(point, slot)`; retired slots
    /// own no points.
    ring: Vec<(u64, u16)>,
    slots: Vec<Slot>,
    /// Shadow per-slot request-mix recorders, fed at routing time:
    /// the router's own copy of each backend's observed heat, so a
    /// warm handoff never depends on being able to reach the (dead,
    /// departing) backend it describes.
    mixes: Vec<MixRecorder>,
    cfg: ClusterConfig,
    /// Grid-coverable budget range gating shadow mix recording
    /// (`None` when the grid tier is disabled), mirroring
    /// `ShardRouter`.
    grid_range: Option<(f64, f64)>,
    /// The failover solver (and the answerer of invalid requests).
    fallback: PolicyService,
    routed: Vec<u64>,
    remote_served: u64,
    local_served: u64,
    local_fallbacks: u64,
    backend_failures: u64,
    invalid_requests: u64,
    auto_respawns: u64,
    quarantines: u64,
    reshard_handoffs: u64,
    overload_rejects: u64,
    saturated_routes: u64,
    /// Per-slot saturation window from the last backend `Overloaded`:
    /// `(backoff end, the backend's retry_after_us hint)`.
    saturation: Vec<Option<(Instant, u32)>>,
    /// Shared with fault injectors (which fire from proxy threads);
    /// everything else on the router mutates under its owner's lock.
    injected_faults: Arc<AtomicU64>,
}

impl ClusterRouter {
    /// Builds the ring, the dialers, and the local slots.
    ///
    /// # Panics
    ///
    /// Panics when `slots` is empty, exceeds `u16::MAX`, or
    /// `cfg.vnodes == 0`.
    pub fn new(slots: &[SlotSpec], cfg: ClusterConfig) -> Self {
        assert!(!slots.is_empty(), "need at least one slot");
        assert!(slots.len() <= u16::MAX as usize, "slot ids are u16");
        assert!(cfg.vnodes >= 1, "need at least one vnode per slot");
        let slots: Vec<Slot> = slots
            .iter()
            .enumerate()
            .map(|(i, spec)| match spec {
                SlotSpec::Remote(addr) => Slot::Remote(Box::new(RemoteShard::with_index(
                    *addr, cfg.remote, i as u64,
                ))),
                SlotSpec::Local => Slot::Local(Box::new(PolicyService::new(cfg.service))),
            })
            .collect();
        let mut router = ClusterRouter {
            ring: Vec::new(),
            routed: vec![0; slots.len()],
            mixes: slots.iter().map(|_| MixRecorder::new()).collect(),
            saturation: vec![None; slots.len()],
            slots,
            grid_range: cfg.service.grid.map(|g| (g.rho_min_w, g.rho_max_w)),
            fallback: PolicyService::new(cfg.service),
            cfg,
            remote_served: 0,
            local_served: 0,
            local_fallbacks: 0,
            backend_failures: 0,
            invalid_requests: 0,
            auto_respawns: 0,
            quarantines: 0,
            reshard_handoffs: 0,
            overload_rejects: 0,
            saturated_routes: 0,
            injected_faults: Arc::new(AtomicU64::new(0)),
        };
        router.rebuild_ring();
        router
    }

    /// Recomputes the consistent-hash ring over every non-retired
    /// slot. With no retired slots this reproduces the construction
    /// `ShardRouter` uses bit for bit, so equal slot counts keep
    /// assigning every canonical key identically.
    fn rebuild_ring(&mut self) {
        let vnodes = self.cfg.vnodes as u64;
        let mut ring: Vec<(u64, u16)> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| !matches!(slot, Slot::Retired))
            .flat_map(|(s, _)| (0..vnodes).map(move |v| (fnv1a_64([s as u64, v]), s as u16)))
            .collect();
        ring.sort_unstable();
        assert!(!ring.is_empty(), "every slot retired");
        self.ring = ring;
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// The home slot of a canonical instance key — the same
    /// partition-point walk as `ShardRouter::shard_of_key`, over the
    /// same ring construction.
    pub fn slot_of_key(&self, key: &InstanceKey) -> u16 {
        let h = key.route_hash();
        let i = self.ring.partition_point(|&(p, _)| p < h);
        self.ring[if i == self.ring.len() { 0 } else { i }].1
    }

    /// Whether a slot is currently healthy (local slots always are,
    /// retired slots never are).
    pub fn slot_healthy(&self, slot: usize) -> bool {
        match &self.slots[slot] {
            Slot::Remote(rs) => rs.healthy(),
            Slot::Local(_) => true,
            Slot::Retired => false,
        }
    }

    /// Whether a slot is a remote backend (the only kind a supervisor
    /// policy loop manages).
    pub fn slot_is_remote(&self, slot: usize) -> bool {
        matches!(self.slots.get(slot), Some(Slot::Remote(_)))
    }

    /// A remote slot's backend address (`None` for local or retired
    /// slots).
    pub fn slot_addr(&self, slot: usize) -> Option<SocketAddr> {
        match self.slots.get(slot)? {
            Slot::Remote(rs) => Some(rs.addr()),
            _ => None,
        }
    }

    /// Every live remote slot: `(slot, backend address, whether the
    /// health machine would attempt an operation right now)`. The
    /// warm-handoff helpers snapshot this under the lock and dial
    /// outside it.
    pub fn remote_slot_addrs(&self) -> Vec<(usize, SocketAddr, bool)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(s, slot)| match slot {
                Slot::Remote(rs) => Some((s, rs.addr(), rs.should_attempt())),
                _ => None,
            })
            .collect()
    }

    /// A remote slot's dialer counters (`None` for local or retired
    /// slots).
    pub fn remote_stats(&self, slot: usize) -> Option<RemoteShardStats> {
        match &self.slots[slot] {
            Slot::Remote(rs) => Some(rs.shard_stats()),
            _ => None,
        }
    }

    /// Distribution-layer counter snapshot.
    pub fn cluster_stats(&self) -> ClusterStats {
        ClusterStats {
            routed: self.routed.clone(),
            remote_served: self.remote_served,
            local_served: self.local_served,
            local_fallbacks: self.local_fallbacks,
            backend_failures: self.backend_failures,
            invalid_requests: self.invalid_requests,
            auto_respawns: self.auto_respawns,
            quarantines: self.quarantines,
            reshard_handoffs: self.reshard_handoffs,
            injected_faults: self.injected_faults.load(Ordering::Relaxed),
            overload_rejects: self.overload_rejects,
            saturated_routes: self.saturated_routes,
            healthy: (0..self.slots.len())
                .map(|s| self.slot_healthy(s))
                .collect(),
            saturated: (0..self.slots.len())
                .map(|s| self.slot_saturated(s))
                .collect(),
        }
    }

    /// Whether a slot is inside a backend-advertised saturation
    /// window: its backend shed a request less than `retry_after_us`
    /// ago, so routing to it now would only earn another rejection.
    pub fn slot_saturated(&self, slot: usize) -> bool {
        matches!(
            self.saturation.get(slot),
            Some(Some((until, _))) if Instant::now() < *until
        )
    }

    /// The largest `retry_after_us` hint among currently saturated
    /// slots — what a cluster front folds into its own admission
    /// retry estimates, so upstream callers back off as far as the
    /// most-loaded backend asked for. Zero when nothing is saturated.
    pub fn saturation_hint_us(&self) -> u32 {
        let now = Instant::now();
        self.saturation
            .iter()
            .flatten()
            .filter(|(until, _)| now < *until)
            .map(|&(_, hint)| hint)
            .max()
            .unwrap_or(0)
    }

    /// Records a backend `Overloaded` rejection: the slot enters a
    /// saturation window for the backend's advertised
    /// `retry_after_us`, during which the router goes straight to the
    /// local fallback instead of dialing.
    fn note_backend_overload(&mut self, slot: usize, retry_after_us: u32) {
        self.overload_rejects += 1;
        econcast_metrics::ops_event(
            OpsKind::OverloadedReceived,
            slot as u64,
            u64::from(retry_after_us),
        );
        // A window *opening* is the rare, recorder-worthy transition;
        // an `Overloaded` landing inside an already-open window only
        // extends it.
        if !self.slot_saturated(slot) {
            econcast_metrics::ops_event(
                OpsKind::SaturationOpen,
                slot as u64,
                u64::from(retry_after_us),
            );
        }
        self.saturation[slot] = Some((
            Instant::now() + Duration::from_micros(u64::from(retry_after_us)),
            retry_after_us,
        ));
        econcast_trace::trace_instant!("cluster", "backend_overloaded", "slot" => slot as u64);
    }

    /// Clears lapsed saturation windows, recording each close in the
    /// flight recorder. Called at the top of every batch; windows that
    /// lapse between batches close on the next one (the recorder is an
    /// ops log, not a real-time signal, and `slot_saturated` already
    /// treats a lapsed window as closed).
    fn sweep_saturation(&mut self) {
        let now = Instant::now();
        for (slot, window) in self.saturation.iter_mut().enumerate() {
            if matches!(window, Some((until, _)) if now >= *until) {
                *window = None;
                econcast_metrics::ops_event(OpsKind::SaturationClose, slot as u64, 0);
            }
        }
    }

    /// Slots currently able to serve — healthy remotes plus local
    /// slots — injected by the cluster front as its `live_backends`
    /// gauge.
    pub fn live_slots(&self) -> u64 {
        (0..self.slots.len())
            .filter(|&s| self.slot_healthy(s))
            .count() as u64
    }

    /// Currently open backend-saturation windows — the front's
    /// `saturation_windows_open` gauge.
    pub fn saturation_windows_open(&self) -> u64 {
        (0..self.slots.len())
            .filter(|&s| self.slot_saturated(s))
            .count() as u64
    }

    /// LRU residency `(entries, bytes)` of everything in-process —
    /// local slots plus the fallback solver — for the front's gauge
    /// injection (remote backends report their own residency in their
    /// scrapes).
    pub fn local_cache_residency(&self) -> (u64, u64) {
        let mut entries = self.fallback.stats().lru_len;
        let mut bytes = self.fallback.cache_bytes() as u64;
        for slot in &self.slots {
            if let Slot::Local(svc) = slot {
                entries += svc.stats().lru_len;
                bytes += svc.cache_bytes() as u64;
            }
        }
        (entries, bytes)
    }

    /// Pings every remote slot (dialing as needed), returning the
    /// post-probe health per slot — the healer's health sweep. Local
    /// slots are trivially healthy, retired slots trivially not.
    pub fn ping_all(&mut self) -> Vec<bool> {
        self.slots
            .iter_mut()
            .map(|slot| match slot {
                Slot::Remote(rs) => rs.ping(),
                Slot::Local(_) => true,
                Slot::Retired => false,
            })
            .collect()
    }

    /// Re-targets a remote slot at a replacement backend (respawned
    /// process, fresh port). Returns `false` for local or retired
    /// slots.
    pub fn retarget_slot(&mut self, slot: usize, addr: SocketAddr) -> bool {
        match &mut self.slots[slot] {
            Slot::Remote(rs) => {
                rs.retarget(addr);
                true
            }
            _ => false,
        }
    }

    /// Records that the policy loop replaced a dead backend.
    pub fn note_auto_respawn(&mut self) {
        self.auto_respawns += 1;
        econcast_metrics::ops_event(OpsKind::Respawn, 0, 0);
    }

    /// Records one shipped warm-handoff mix.
    pub fn note_reshard_handoff(&mut self) {
        self.reshard_handoffs += 1;
        econcast_metrics::ops_event(OpsKind::ReshardHandoff, 0, 0);
    }

    /// The shared injected-fault counter. A fault-injection harness
    /// clones this handle and increments it every time a scripted
    /// fault actually fires, so chaos runs are auditable through the
    /// ordinary stats plane.
    pub fn injected_fault_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.injected_faults)
    }

    /// Replaces a crash-looping remote slot with a fresh in-process
    /// local slot — the policy loop's quarantine action. The ring is
    /// untouched (the slot keeps its vnodes; its keys are simply
    /// served locally from now on). Returns `false` for slots that
    /// are not remote.
    pub fn quarantine_slot(&mut self, slot: usize) -> bool {
        match &self.slots[slot] {
            Slot::Remote(_) => {
                self.slots[slot] = Slot::Local(Box::new(PolicyService::new(self.cfg.service)));
                self.quarantines += 1;
                econcast_metrics::ops_event(OpsKind::Quarantine, slot as u64, 0);
                econcast_trace::trace_instant!("cluster", "quarantine", "slot" => slot as u64);
                true
            }
            _ => false,
        }
    }

    /// Appends a remote slot for a new backend and rebalances the
    /// ring live: the new slot takes its vnodes immediately, moving
    /// ~1/(n+1) of the key space onto the new backend. Returns the
    /// new slot id. Warm the new backend with
    /// [`export_mix`](Self::export_mix) (see
    /// `policy::add_backend_with_warmup`) so inherited families
    /// grid-serve from the first request.
    ///
    /// # Panics
    ///
    /// Panics when the slot count would exceed `u16::MAX`.
    pub fn add_backend(&mut self, addr: SocketAddr) -> u16 {
        assert!(self.slots.len() < u16::MAX as usize, "slot ids are u16");
        let slot = self.slots.len() as u16;
        self.slots
            .push(Slot::Remote(Box::new(RemoteShard::with_index(
                addr,
                self.cfg.remote,
                u64::from(slot),
            ))));
        self.routed.push(0);
        self.mixes.push(MixRecorder::new());
        self.saturation.push(None);
        self.rebuild_ring();
        slot
    }

    /// Retires a remote slot and rebalances the ring live: the slot's
    /// vnodes vanish and its key ranges fall to the ring successors.
    /// Returns the departing slot's shadow mix — the payload a warm
    /// handoff ships to the inheriting backends (see
    /// `policy::remove_backend_with_handoff`) — or `None` when the
    /// slot is not remote or is the last slot on the ring.
    pub fn remove_backend(&mut self, slot: usize) -> Option<Vec<(FamilyKey, u64)>> {
        if !self.slot_is_remote(slot) {
            return None;
        }
        let live = self
            .slots
            .iter()
            .filter(|s| !matches!(s, Slot::Retired))
            .count();
        if live <= 1 {
            return None;
        }
        self.slots[slot] = Slot::Retired;
        self.rebuild_ring();
        Some(std::mem::take(&mut self.mixes[slot]).export())
    }

    /// One slot's shadow request mix, hottest families first.
    pub fn export_slot_mix(&self, slot: usize) -> Vec<(FamilyKey, u64)> {
        self.mixes[slot].export()
    }

    /// The shadow request mix merged across every slot — what a
    /// freshly added backend is seeded with (its inherited key ranges
    /// come from every existing slot).
    pub fn export_mix(&self) -> Vec<(FamilyKey, u64)> {
        let mut merged = MixRecorder::new();
        for mix in &self.mixes {
            merged.absorb(&mix.export());
        }
        merged.export()
    }

    /// Where each slot's serving counters come from, plus the
    /// fallback solver's own counters — a cheap, network-free
    /// snapshot. The cluster front takes this under its router lock
    /// and performs the actual backend round-trips *outside* it, so a
    /// slow or unreachable backend stalls one stats request, never
    /// the data plane.
    pub fn stats_sources(&self) -> (Vec<StatsSource>, ServiceStats) {
        let sources = self
            .slots
            .iter()
            .map(|slot| match slot {
                Slot::Local(svc) => StatsSource::Local(svc.stats()),
                Slot::Remote(rs) => StatsSource::Remote {
                    addr: rs.addr(),
                    attempt: rs.should_attempt(),
                },
                // A retired slot's counters died with its backend;
                // it contributes zeros to any fan-in.
                Slot::Retired => StatsSource::Local(ServiceStats::default()),
            })
            .collect();
        (sources, self.fallback.stats())
    }

    /// The fallback solver's own counters (how much failover work the
    /// router absorbed).
    ///
    /// There is deliberately **no** "fan everything in over the
    /// network" method on the router itself: dialing backends while
    /// someone holds the router (the front keeps it behind a mutex)
    /// would stall the data plane behind a control-plane round-trip.
    /// Aggregation lives in the cluster front, built on the
    /// network-free [`stats_sources`](Self::stats_sources) snapshot
    /// plus out-of-lock dials.
    pub fn fallback_stats(&self) -> ServiceStats {
        self.fallback.stats()
    }

    /// Serves a batch: scatter to home slots, concurrent remote
    /// fan-out, deterministic local fallback for anything a backend
    /// could not answer, gather in request order. Backend failures are
    /// **never** surfaced as caller errors — the fallback solver
    /// produces the identical bits a healthy backend would have.
    pub fn serve_batch(
        &mut self,
        reqs: &[PolicyRequest],
    ) -> Vec<Result<PolicyResponse, ServiceError>> {
        let _serve = econcast_trace::trace_span!(
            "cluster",
            "cluster_serve",
            "requests" => reqs.len() as u64
        );
        self.sweep_saturation();
        let nslots = self.slots.len();
        let mut sub_idx: Vec<Vec<usize>> = vec![Vec::new(); nslots];
        for (i, req) in reqs.iter().enumerate() {
            match req.validate() {
                // Invalid requests are answered locally with their
                // typed errors; they never touch a backend.
                Err(_) => self.invalid_requests += 1,
                Ok(()) => {
                    let canon = CanonicalInstance::new(
                        &req.budgets_w,
                        req.listen_w,
                        req.transmit_w,
                        req.sigma,
                        req.objective,
                        req.tolerance,
                    );
                    let s = self.slot_of_key(&canon.key) as usize;
                    self.routed[s] += 1;
                    // Shadow the backend's view of its request mix
                    // (same gate as `ShardRouter`): this is the heat a
                    // warm handoff ships when the slot's key range
                    // moves — available even after the backend dies.
                    if canon.homogeneous
                        && self
                            .grid_range
                            .is_some_and(|(lo, hi)| (lo..=hi).contains(&canon.sorted_budgets[0]))
                    {
                        self.mixes[s].record(FamilyKey::new(
                            canon.sorted_budgets.len(),
                            req.listen_w,
                            req.transmit_w,
                            req.sigma,
                            req.objective,
                        ));
                    }
                    sub_idx[s].push(i);
                }
            }
        }

        // Remote fan-out, pipelined: submit every live backend's
        // sub-batch back to back, then drive all the in-flight
        // tickets on this thread — the readiness driver absorbs
        // whichever backend answers first, so gathering one
        // sub-batch starts while the others are still solving. Down
        // backends (health machine says skip) and saturated backends
        // (inside a `retry_after_us` backoff window from an earlier
        // `Overloaded`) go straight to fallback — the latter without
        // burning a dial, so backpressure routes around a loaded
        // backend before its health machine would notice anything.
        let saturated: Vec<bool> = (0..nslots).map(|s| self.slot_saturated(s)).collect();
        let skipped_saturated: u64 = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(s, slot)| match slot {
                Slot::Remote(rs)
                    if saturated[s] && !sub_idx[s].is_empty() && rs.should_attempt() =>
                {
                    Some(sub_idx[s].len() as u64)
                }
                _ => None,
            })
            .sum();
        self.saturated_routes += skipped_saturated;
        let sub_batches: Vec<Option<Vec<PolicyRequest>>> = self
            .slots
            .iter()
            .enumerate()
            .map(|(s, slot)| match slot {
                Slot::Remote(rs)
                    if !sub_idx[s].is_empty() && rs.should_attempt() && !saturated[s] =>
                {
                    Some(sub_idx[s].iter().map(|&i| reqs[i].clone()).collect())
                }
                _ => None,
            })
            .collect();
        let mut remote_results: Vec<Option<std::io::Result<Vec<econcast_service::WireResult>>>> =
            (0..self.slots.len()).map(|_| None).collect();
        let mut jobs = Vec::new();
        for (s, (slot, batch)) in self.slots.iter_mut().zip(&sub_batches).enumerate() {
            if let (Slot::Remote(rs), Some(batch)) = (slot, batch) {
                match rs.begin_batch(batch) {
                    Ok(ticket) => jobs.push(crate::driver::Job {
                        slot: s,
                        shard: rs,
                        ticket,
                    }),
                    // A submit-side failure (dial, write) voids the
                    // sub-batch exactly like a mid-stream one.
                    Err(e) => remote_results[s] = Some(Err(e)),
                }
            }
        }
        for (s, result) in crate::driver::drive(jobs) {
            remote_results[s] = Some(result);
        }

        let mut out: Vec<Option<Result<PolicyResponse, ServiceError>>> = vec![None; reqs.len()];
        for (s, result) in remote_results.into_iter().enumerate() {
            let Some(result) = result else { continue };
            match result {
                Ok(wire_results) => {
                    for (&i, wire) in sub_idx[s].iter().zip(wire_results) {
                        // A per-request backend rejection (the `Err`
                        // arm) is left unresolved here and re-judged
                        // locally: the fallback runs the same config,
                        // so the caller gets the identical typed
                        // error (or response) a local deployment
                        // would produce.
                        match wire {
                            Ok(resp) => {
                                self.remote_served += 1;
                                out[i] = Some(Ok(PolicyResponse::from_wire(&resp, reqs[i].sigma)));
                            }
                            // The backend shed this request: open a
                            // saturation window for its advertised
                            // backoff and leave the request to the
                            // fallback — the caller never sees the
                            // rejection.
                            Err(e) if e.code == ServiceErrorCode::Overloaded => {
                                self.note_backend_overload(s, e.retry_after_us);
                            }
                            Err(_) => {}
                        }
                    }
                }
                Err(_) => {
                    // Stream failure: the whole sub-batch falls back.
                    // (Any responses decoded before the failure are
                    // discarded — recomputing locally yields identical
                    // bits, and a partial trust boundary is not worth
                    // the bookkeeping.)
                    self.backend_failures += 1;
                    econcast_trace::trace_instant!("cluster", "backend_failure");
                }
            }
        }

        // Local slots serve serially, in slot order — deterministic.
        for (s, slot) in self.slots.iter_mut().enumerate() {
            if let Slot::Local(svc) = slot {
                if sub_idx[s].is_empty() {
                    continue;
                }
                let batch: Vec<PolicyRequest> =
                    sub_idx[s].iter().map(|&i| reqs[i].clone()).collect();
                self.local_served += batch.len() as u64;
                for (&i, r) in sub_idx[s].iter().zip(svc.serve_batch(&batch)) {
                    out[i] = Some(r);
                }
            }
        }

        // Fallback: everything still unresolved (invalid requests,
        // down/failed backends' sub-batches, per-request rejections),
        // as one local batch in request order.
        let pending: Vec<usize> = (0..reqs.len()).filter(|&i| out[i].is_none()).collect();
        if !pending.is_empty() {
            let _failover = econcast_trace::trace_span!(
                "cluster",
                "failover_reserve",
                "requests" => pending.len() as u64
            );
            let batch: Vec<PolicyRequest> = pending.iter().map(|&i| reqs[i].clone()).collect();
            let results = self.fallback.serve_batch(&batch);
            let mut reserves = 0u64;
            for (&i, r) in pending.iter().zip(results) {
                // Only *routed* requests count as failovers; invalid
                // ones were always the router's to answer.
                if reqs[i].validate().is_ok() {
                    self.local_fallbacks += 1;
                    reserves += 1;
                }
                out[i] = Some(r);
            }
            if reserves > 0 {
                econcast_metrics::ops_event(OpsKind::FailoverReserve, 0, reserves);
            }
        }

        out.into_iter()
            .map(|r| r.expect("every request resolved"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use econcast_core::{NodeParams, ThroughputMode};
    use econcast_service::{RouterConfig, ShardRouter};

    fn request(n: usize, rho_uw: f64) -> PolicyRequest {
        PolicyRequest::homogeneous(
            n,
            NodeParams::from_microwatts(rho_uw, 500.0, 450.0),
            0.5,
            ThroughputMode::Groupput,
            1e-2,
        )
    }

    #[test]
    fn ring_matches_shard_router_assignment() {
        // Equal slot counts ⇒ identical key→slot assignment: promoting
        // an in-process shard to a remote backend moves no keys.
        let cluster = ClusterRouter::new(
            &[SlotSpec::Local, SlotSpec::Local, SlotSpec::Local],
            ClusterConfig::default(),
        );
        let sharded = ShardRouter::new(RouterConfig {
            shards: 3,
            ..RouterConfig::default()
        });
        for n in 2..40 {
            for rho in [3.0, 10.0, 31.0] {
                let req = request(n, rho);
                let canon = CanonicalInstance::new(
                    &req.budgets_w,
                    req.listen_w,
                    req.transmit_w,
                    req.sigma,
                    req.objective,
                    req.tolerance,
                );
                assert_eq!(
                    cluster.slot_of_key(&canon.key),
                    sharded.shard_of_key(&canon.key),
                    "n={n} rho={rho}"
                );
            }
        }
    }

    #[test]
    fn all_local_cluster_matches_single_service() {
        let mut cluster = ClusterRouter::new(
            &[SlotSpec::Local, SlotSpec::Local],
            ClusterConfig {
                service: ServiceConfig {
                    workers: Some(1),
                    ..ServiceConfig::default()
                },
                ..ClusterConfig::default()
            },
        );
        let reqs: Vec<PolicyRequest> = (2..18).map(|n| request(n, 10.0)).collect();
        let mut single = PolicyService::new(ServiceConfig {
            workers: Some(1),
            ..ServiceConfig::default()
        });
        let expected = single.serve_batch(&reqs);
        let got = cluster.serve_batch(&reqs);
        for (g, e) in got.iter().zip(&expected) {
            let (g, e) = (g.as_ref().unwrap(), e.as_ref().unwrap());
            assert_eq!(g.throughput.to_bits(), e.throughput.to_bits());
        }
        let cs = cluster.cluster_stats();
        assert_eq!(cs.local_served, reqs.len() as u64);
        assert_eq!(cs.remote_served, 0);
        assert_eq!(cs.local_fallbacks, 0);
        assert_eq!(cs.routed.iter().sum::<u64>(), reqs.len() as u64);
    }

    #[test]
    fn dead_backend_fails_over_locally_without_errors() {
        // One remote slot pointing at nothing: every request fails
        // over to the local solver, bit-identical, zero errors.
        let dead = std::net::TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let mut cluster = ClusterRouter::new(
            &[SlotSpec::Remote(dead)],
            ClusterConfig {
                service: ServiceConfig {
                    workers: Some(1),
                    ..ServiceConfig::default()
                },
                remote: RemoteConfig {
                    dial_retries: 1,
                    reprobe_after: std::time::Duration::from_secs(3600),
                    ..RemoteConfig::default()
                },
                ..ClusterConfig::default()
            },
        );
        let reqs: Vec<PolicyRequest> = (2..10).map(|n| request(n, 10.0)).collect();
        let mut single = PolicyService::new(ServiceConfig {
            workers: Some(1),
            ..ServiceConfig::default()
        });
        let expected = single.serve_batch(&reqs);
        let got = cluster.serve_batch(&reqs);
        for (g, e) in got.iter().zip(&expected) {
            let (g, e) = (
                g.as_ref().expect("failover, not error"),
                e.as_ref().unwrap(),
            );
            assert_eq!(g.throughput.to_bits(), e.throughput.to_bits());
            for (gp, ep) in g.policies.iter().zip(&e.policies) {
                assert_eq!(gp.listen.to_bits(), ep.listen.to_bits());
                assert_eq!(gp.transmit.to_bits(), ep.transmit.to_bits());
            }
        }
        let cs = cluster.cluster_stats();
        assert_eq!(cs.local_fallbacks, reqs.len() as u64);
        assert_eq!(cs.backend_failures, 1, "one voided sub-batch");
        assert_eq!(cs.healthy, vec![false]);
        // The second batch skips the down backend outright (no dial):
        // still zero errors, still counted.
        let again = cluster.serve_batch(&reqs);
        assert!(again.iter().all(Result::is_ok));
        let cs = cluster.cluster_stats();
        assert_eq!(cs.local_fallbacks, 2 * reqs.len() as u64);
        assert_eq!(cs.backend_failures, 1, "down backend not re-dialed");

        // The operator surfaces agree: the dialer counters recorded
        // the failure, an explicit probe sweep still says down, and
        // the stats snapshot marks the slot skip-worthy.
        let dialer = cluster.remote_stats(0).expect("remote slot");
        assert!(dialer.failures >= 1);
        assert_eq!(dialer.served, 0);
        assert_eq!(cluster.ping_all(), vec![false], "probe fails while dead");
        let (sources, _) = cluster.stats_sources();
        assert!(matches!(
            sources[0],
            StatsSource::Remote { attempt: false, .. }
        ));
    }

    #[test]
    fn saturated_slot_routes_around_without_dialing() {
        // A slot inside a saturation window is skipped outright — no
        // dial, no backend_failure, no healer involvement — and every
        // request is served by the fallback, bit-identical. The
        // "backend" here is a listener that never accepts: if the
        // router dialed it the dial would fail and count, so a zero
        // failure count proves the dial never happened.
        let dead = std::net::TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let mut cluster = ClusterRouter::new(
            &[SlotSpec::Remote(dead)],
            ClusterConfig {
                service: ServiceConfig {
                    workers: Some(1),
                    ..ServiceConfig::default()
                },
                remote: RemoteConfig {
                    dial_retries: 1,
                    ..RemoteConfig::default()
                },
                ..ClusterConfig::default()
            },
        );
        // As if the backend had just answered `Overloaded`.
        cluster.note_backend_overload(0, 60_000_000); // 60s window
        assert!(cluster.slot_saturated(0));
        assert_eq!(cluster.saturation_hint_us(), 60_000_000);

        let reqs: Vec<PolicyRequest> = (2..10).map(|n| request(n, 10.0)).collect();
        let mut single = PolicyService::new(ServiceConfig {
            workers: Some(1),
            ..ServiceConfig::default()
        });
        let expected = single.serve_batch(&reqs);
        let got = cluster.serve_batch(&reqs);
        for (g, e) in got.iter().zip(&expected) {
            let (g, e) = (
                g.as_ref().expect("served, not rejected"),
                e.as_ref().unwrap(),
            );
            assert_eq!(g.throughput.to_bits(), e.throughput.to_bits());
        }

        let cs = cluster.cluster_stats();
        assert_eq!(cs.overload_rejects, 1);
        assert_eq!(cs.saturated_routes, reqs.len() as u64);
        assert_eq!(cs.local_fallbacks, reqs.len() as u64);
        assert_eq!(cs.backend_failures, 0, "no dial burned on a saturated slot");
        assert_eq!(cs.saturated, vec![true]);
        // Saturation is orthogonal to health: the healer never saw a
        // thing, so the slot still reads healthy.
        assert_eq!(cs.healthy, vec![true]);

        // An expired window clears without any explicit reset.
        cluster.note_backend_overload(0, 1); // 1µs — expires immediately
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(!cluster.slot_saturated(0));
        assert_eq!(cluster.saturation_hint_us(), 0);
    }

    #[test]
    fn invalid_requests_get_typed_errors_without_routing() {
        let mut cluster = ClusterRouter::new(&[SlotSpec::Local], ClusterConfig::default());
        let bad = PolicyRequest {
            budgets_w: vec![],
            listen_w: 500e-6,
            transmit_w: 450e-6,
            sigma: 0.5,
            objective: ThroughputMode::Groupput,
            tolerance: 1e-2,
        };
        let out = cluster.serve_batch(std::slice::from_ref(&bad));
        assert!(matches!(out[0], Err(ServiceError::BadRequest(_))));
        let cs = cluster.cluster_stats();
        assert_eq!(cs.invalid_requests, 1);
        assert_eq!(cs.local_fallbacks, 0);
        assert_eq!(cs.routed, vec![0]);
        assert_eq!(cluster.fallback_stats().errors, 1);
    }
}
