//! v7 metrics-plane glue: converting between the in-process
//! [`MetricsSnapshot`] and its wire form, shared by every front-end
//! that answers a `MetricsRequest`.
//!
//! The registry lives in `econcast-metrics` and the frames in
//! `econcast-proto`; neither crate depends on the other, so the
//! (trivial, lossless) mapping lives here with the serving layer.
//! Counters and gauges copy through verbatim — gauge merge-kind tags
//! travel on the wire so a fan-in can aggregate without knowing the
//! registry. Histograms ship as sparse ascending `(bucket, count)`
//! pairs, exactly the [`HistSnapshot`] representation.

use econcast_metrics::{HistSnapshot, MetricsSnapshot};
use econcast_proto::service::WireMetricsSnapshot;

/// The wire form of a snapshot (for `MetricsResponse` messages).
pub fn snapshot_to_wire(s: &MetricsSnapshot) -> WireMetricsSnapshot {
    WireMetricsSnapshot {
        counters: s.counters.clone(),
        gauges: s.gauges.clone(),
        hists: s.hists.iter().map(|h| h.buckets.clone()).collect(),
    }
}

/// Rebuilds a snapshot from its wire form.
pub fn snapshot_from_wire(w: &WireMetricsSnapshot) -> MetricsSnapshot {
    MetricsSnapshot {
        counters: w.counters.clone(),
        gauges: w.gauges.clone(),
        hists: w
            .hists
            .iter()
            .map(|h| HistSnapshot { buckets: h.clone() })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use econcast_metrics::{GAUGE_KIND_MAX, GAUGE_KIND_SUM};

    #[test]
    fn wire_roundtrip_is_lossless() {
        let snap = MetricsSnapshot {
            counters: vec![3, 0, u64::MAX],
            gauges: vec![(GAUGE_KIND_SUM, 7), (GAUGE_KIND_MAX, 9)],
            hists: vec![
                HistSnapshot {
                    buckets: vec![(1, 2), (40, 5)],
                },
                HistSnapshot::default(),
            ],
        };
        assert_eq!(snapshot_from_wire(&snapshot_to_wire(&snap)), snap);
        // And the zeroed registry shape survives too.
        let z = MetricsSnapshot::zeroed();
        assert_eq!(snapshot_from_wire(&snapshot_to_wire(&z)), z);
    }
}
