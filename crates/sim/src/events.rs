//! The event queue: a time-ordered heap of scheduled events with
//! lazy invalidation.
//!
//! Transition rates change whenever the channel state or a multiplier
//! changes, so previously sampled exponential timers must be discarded.
//! Rather than removing heap entries (O(n)), every spontaneous event is
//! stamped with the owning node's *generation* at scheduling time; the
//! engine bumps a node's generation to invalidate all of its pending
//! timers and simply drops stale entries as they surface.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use econcast_core::NodeState;

/// What a scheduled event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A spontaneous state transition of `node` into `to` (one of
    /// s→l, l→s, l→x). Valid only if the node's generation still
    /// matches `gen`.
    Transition {
        /// Owning node.
        node: usize,
        /// Generation stamp for lazy invalidation.
        gen: u64,
        /// Target state.
        to: NodeState,
    },
    /// End of one unit packet transmitted by `node`.
    PacketEnd {
        /// Transmitting node.
        node: usize,
        /// Generation stamp.
        gen: u64,
    },
    /// End of the post-packet ping interval of `node` (EconCast-C with
    /// the realism knob enabled).
    PingIntervalEnd {
        /// Transmitting node.
        node: usize,
        /// Generation stamp.
        gen: u64,
    },
    /// Periodic multiplier update (17) for `node`; never invalidated.
    EtaUpdate {
        /// Owning node.
        node: usize,
    },
    /// Global harvest-phase edge for time-varying budgets; `on` is the
    /// phase being *entered*. Never invalidated.
    HarvestSwitch {
        /// Whether power is available from this instant.
        on: bool,
    },
}

/// Heap entry ordered by time (earliest first), ties broken by
/// insertion sequence for determinism.
#[derive(Debug, Clone, Copy)]
struct Scheduled {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are never NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `time`. Infinite times (from
    /// zero-rate exponentials) are silently dropped — the transition
    /// never fires.
    pub fn schedule(&mut self, time: f64, event: Event) {
        debug_assert!(!time.is_nan());
        if time.is_finite() {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Scheduled { time, seq, event });
        }
    }

    /// Pops the earliest event, returning `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Number of pending entries (including stale ones awaiting lazy
    /// invalidation).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(node: usize) -> Event {
        Event::EtaUpdate { node }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, ev(3));
        q.schedule(1.0, ev(1));
        q.schedule(2.0, ev(2));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ev(10));
        q.schedule(1.0, ev(20));
        q.schedule(1.0, ev(30));
        let nodes: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::EtaUpdate { node } => node,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(nodes, vec![10, 20, 30]);
    }

    #[test]
    fn infinite_times_are_dropped() {
        let mut q = EventQueue::new();
        q.schedule(f64::INFINITY, ev(1));
        assert!(q.is_empty());
        q.schedule(0.5, ev(2));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ev(5));
        q.schedule(1.0, ev(1));
        assert_eq!(q.pop().unwrap().0, 1.0);
        q.schedule(2.0, ev(2));
        assert_eq!(q.pop().unwrap().0, 2.0);
        assert_eq!(q.pop().unwrap().0, 5.0);
        assert!(q.pop().is_none());
    }
}
