//! Micro-benchmarks for the computational kernels (manual harness —
//! `criterion` is unavailable offline).
//!
//! These cover the pieces whose cost governs experiment wall-clock:
//! the simplex oracle LPs, state-space enumeration, Gibbs summaries
//! (the inner loop of the (P4) solver), the homogeneous fast path, and
//! the simulator event loop.
//!
//! ```text
//! cargo bench -p econcast-bench            # all benchmarks
//! cargo bench -p econcast-bench -- gibbs   # name filter
//! ```

use econcast_bench::timing::{run_benchmarks, Bench};
use econcast_core::{NodeParams, ProtocolConfig, ThroughputMode, Topology};
use econcast_oracle::{non_clique_groupput_bounds, oracle_anyput, oracle_groupput};
use econcast_sim::{SimConfig, Simulator};
use econcast_statespace::{
    gibbs::{summarize, summarize_naive, GibbsParams},
    HomogeneousP4, StateSpace,
};
use std::hint::black_box;

fn params() -> NodeParams {
    NodeParams::from_microwatts(10.0, 500.0, 500.0)
}

fn main() {
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    let nodes10 = vec![params(); 10];
    let nodes10_b = nodes10.clone();
    let grid = Topology::square_grid(7);
    let nodes49 = vec![params(); 49];
    let eta10 = vec![3000.0; 10];
    let (gibbs_nodes, gibbs_eta) = (nodes10.clone(), eta10.clone());
    let (naive_nodes, naive_eta) = (nodes10.clone(), eta10.clone());

    let benches: Vec<Bench> = vec![
        Bench::new("oracle_groupput_p2_n10", move || {
            black_box(oracle_groupput(black_box(&nodes10)).throughput);
        }),
        Bench::new("oracle_anyput_p3_n10", move || {
            black_box(oracle_anyput(black_box(&nodes10_b)).throughput);
        }),
        Bench::new("non_clique_bounds_grid7x7", move || {
            black_box(non_clique_groupput_bounds(
                black_box(&nodes49),
                black_box(&grid),
            ));
        }),
        Bench::new("statespace_enumerate_n10", || {
            black_box(StateSpace::new(10).iter().count());
        }),
        Bench::new("gibbs_summary_n10", move || {
            black_box(summarize(&GibbsParams {
                nodes: black_box(&gibbs_nodes),
                eta: black_box(&gibbs_eta),
                sigma: 0.5,
                mode: ThroughputMode::Groupput,
            }));
        }),
        Bench::new("gibbs_summary_naive_n10", move || {
            black_box(summarize_naive(&GibbsParams {
                nodes: black_box(&naive_nodes),
                eta: black_box(&naive_eta),
                sigma: 0.5,
                mode: ThroughputMode::Groupput,
            }));
        }),
        Bench::new("homogeneous_p4_bisection_n50", || {
            black_box(
                HomogeneousP4::new(50, params(), 0.5, ThroughputMode::Groupput)
                    .solve()
                    .throughput,
            );
        }),
        Bench::new("simulator_clique5_50k_packets", || {
            let cfg = SimConfig::ideal_clique(
                5,
                params(),
                ProtocolConfig::capture_groupput(0.5),
                50_000.0,
                42,
            );
            black_box(Simulator::new(cfg).expect("valid").run().groupput);
        }),
        Bench::new("simulator_grid5x5_20k_packets", || {
            let mut cfg = SimConfig::ideal_clique(
                25,
                params(),
                ProtocolConfig::capture_groupput(0.5),
                20_000.0,
                42,
            );
            cfg.topology = Topology::square_grid(5);
            black_box(Simulator::new(cfg).expect("valid").run().groupput);
        }),
    ];
    run_benchmarks(benches, filter.as_deref());
}
