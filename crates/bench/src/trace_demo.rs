//! `repro --trace-demo`: record a Perfetto-loadable trace of a small
//! cluster under load.
//!
//! The demo arms the process-wide tracer, then drives a 2-backend
//! in-process cluster through the full request lifecycle — client
//! dial, frame decode, canonicalize/route, tier probes, kernel
//! solves, frame encode — kills one backend mid-run so the router's
//! failover re-serve and dial retries leave spans, and lets the
//! healer record a few sweeps over the now-degraded ring. Everything
//! the tracer saw is written as Chrome JSON Trace Format, loadable
//! at <https://ui.perfetto.dev> or `chrome://tracing`.
//!
//! Shared by the `repro --trace-demo` CLI path and the CI trace-smoke
//! test, so what CI asserts on is exactly what a user gets.

use econcast_cluster::{
    ClusterConfig, ClusterFront, ClusterHealer, ClusterRouter, FrontConfig, HealerConfig, SlotSpec,
};
use econcast_service::{PolicyClient, PolicyServer, RouterConfig, ServerConfig, ServiceConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// What a demo run produced — enough for the CLI to narrate and the
/// smoke test to assert on without re-reading the file.
pub struct TraceDemoReport {
    /// Where the trace was written.
    pub path: PathBuf,
    /// The Chrome-format JSON, exactly as written to `path`.
    pub json: String,
    /// Span/instant/counter events in the snapshot.
    pub events: usize,
    /// Events lost to ring overflow (0 unless the demo outgrows the
    /// per-thread rings).
    pub dropped: u64,
    /// Mean wall time of one warm batch-256 round trip on the plain
    /// socket path, µs.
    pub socket_batch_us: f64,
    /// Where that wall time goes: per-span histogram percentiles for
    /// the socket-path lifecycle, harvested before the cluster phase.
    pub socket_profile: Vec<SocketSpan>,
}

/// One socket-path lifecycle span's share of a round trip.
pub struct SocketSpan {
    /// Span name (`frame_encode`, `frame_decode`, `route`,
    /// `serve_batch`).
    pub name: &'static str,
    /// Samples recorded during the profile phase.
    pub count: u64,
    /// Median span duration, µs.
    pub p50_us: f64,
}

/// Runs the demo cluster under full tracing and writes
/// `econcast_demo.trace.json` into `out_dir`.
///
/// Arms and disarms the process-wide tracer, so don't run this
/// concurrently with anything whose timing matters.
pub fn run(out_dir: &Path) -> std::io::Result<TraceDemoReport> {
    econcast_trace::reset();
    econcast_trace::set_spans(true);
    econcast_trace::set_histograms(true);
    // Phase 1 — plain socket path, profiled: where does a warm
    // batch-256 round trip spend its time once the solver is out of
    // the picture? The histograms are harvested (and cleared) before
    // the cluster phase so its spans can't muddy the answer.
    let socket = drive_socket();
    let mut socket_profile = Vec::new();
    for name in ["frame_encode", "frame_decode", "route", "serve_batch"] {
        let cat = if name.starts_with("frame") {
            "proto"
        } else {
            "service"
        };
        if let Some(p) = econcast_trace::percentiles(cat, name) {
            socket_profile.push(SocketSpan {
                name,
                count: p.count,
                p50_us: p.p50_ns as f64 / 1e3,
            });
        }
    }
    econcast_trace::clear_histograms();
    econcast_trace::set_histograms(true);
    // Phase 2 — the cluster fault lifecycle.
    let driven = drive();
    econcast_trace::set_spans(false);
    econcast_trace::set_histograms(false);
    // Drain even on error so a failed run doesn't leak its events
    // into the next tracer user in this process.
    let snap = econcast_trace::drain();
    econcast_trace::clear_histograms();
    let socket_batch_us = socket?;
    driven?;
    let json = econcast_trace::to_chrome_json(&snap);
    let path = out_dir.join("econcast_demo.trace.json");
    std::fs::write(&path, &json)?;
    Ok(TraceDemoReport {
        path,
        json,
        events: snap.events.len(),
        dropped: snap.dropped,
        socket_batch_us,
        socket_profile,
    })
}

/// The socket-path profile workload: one warm-up plus a few timed
/// warm batch-256 round trips against a 2-shard TCP server, returning
/// the mean round-trip wall time in µs. Runs with the tracer armed so
/// the lifecycle spans land in both the trace and the histograms.
fn drive_socket() -> std::io::Result<f64> {
    let srv = PolicyServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            router: RouterConfig {
                shards: 2,
                service: ServiceConfig {
                    lru_capacity: 4096,
                    ..ServiceConfig::default()
                },
                ..RouterConfig::default()
            },
            background_prewarm: false,
            ..ServerConfig::default()
        },
    )?
    .spawn();
    let batch = crate::perf::service_batch(256);
    let mut client = PolicyClient::connect(srv.addr(), 256)?;
    client.serve_batch(&batch)?; // warm the LRUs
    const ITERS: u32 = 3;
    let t0 = std::time::Instant::now();
    for _ in 0..ITERS {
        client.serve_batch(&batch)?;
    }
    let us = t0.elapsed().as_secs_f64() * 1e6 / f64::from(ITERS);
    drop(client);
    srv.shutdown();
    Ok(us)
}

/// The traced workload: healthy batch, backend kill, failover batch,
/// healer sweeps. Same in-process topology as the benchmark's cluster
/// entries, but handles are kept so the teardown is deliberate.
fn drive() -> std::io::Result<()> {
    let mut backends = Vec::new();
    let mut slots = Vec::new();
    for _ in 0..2 {
        let srv = PolicyServer::bind(
            "127.0.0.1:0",
            ServerConfig {
                router: RouterConfig {
                    shards: 1,
                    service: ServiceConfig {
                        lru_capacity: 4096,
                        ..ServiceConfig::default()
                    },
                    ..RouterConfig::default()
                },
                background_prewarm: false,
                ..ServerConfig::default()
            },
        )?;
        let handle = srv.spawn();
        slots.push(SlotSpec::Remote(handle.addr()));
        backends.push(handle);
    }
    let front = ClusterFront::bind(
        "127.0.0.1:0",
        ClusterRouter::new(
            &slots,
            ClusterConfig {
                service: ServiceConfig {
                    lru_capacity: 4096,
                    ..ServiceConfig::default()
                },
                ..ClusterConfig::default()
            },
        ),
        FrontConfig::default(),
    )?
    .spawn();
    let batch = crate::perf::service_batch(256);
    let mut client = PolicyClient::connect(front.addr(), 256)?;
    client.serve_batch(&batch)?;

    // Kill one backend and re-serve before any supervisor can notice:
    // the router's live stream to the dead slot fails mid-batch, so
    // the failover re-serve and the dialer's retry loop against the
    // dead address both run for real.
    backends.remove(0).shutdown();
    client.serve_batch(&batch)?;

    // Only now start the healer — fast sweeps so a ~100 ms window
    // still records several `healer_sweep` spans over the degraded
    // ring; sweep-only mode (nobody respawns these in-process
    // backends).
    let healer = ClusterHealer::spawn(
        Arc::clone(front.router()),
        HealerConfig {
            sweep_interval: Duration::from_millis(10),
            probe_retries: 1,
            probe_backoff: Duration::from_millis(5),
            probe_timeout: Duration::from_millis(200),
            ..HealerConfig::default()
        },
    );
    std::thread::sleep(Duration::from_millis(100));

    healer.shutdown();
    front.shutdown();
    for backend in backends {
        backend.shutdown();
    }
    Ok(())
}
