//! Socket-path acceptance tests: the TCP sharded server must agree
//! bit-for-bit with the in-process service, survive adversarial
//! streams by dropping the connection, and spread concurrent clients
//! across shards.

use econcast_core::{NodeParams, ThroughputMode};
use econcast_proto::service::{ServiceCodec, ServiceMessage};
use econcast_service::workload::mixed_batch;
use econcast_service::{
    PolicyClient, PolicyRequest, PolicyServer, PolicyService, RouterConfig, ServerConfig,
    ServiceConfig,
};
use std::io::{Read, Write};
use std::net::TcpStream;

fn server(shards: usize) -> ServerConfig {
    ServerConfig {
        router: RouterConfig {
            shards,
            service: ServiceConfig {
                workers: Some(1),
                ..ServiceConfig::default()
            },
            ..RouterConfig::default()
        },
        // Keep tests deterministic: no background thread racing the
        // assertions; prewarming has its own unit tests.
        background_prewarm: false,
        ..ServerConfig::default()
    }
}

#[test]
fn tcp_sharded_responses_bit_identical_to_in_process() {
    let batch = mixed_batch(64);

    // In-process reference: one PolicyService, same per-shard config.
    let mut single = PolicyService::new(ServiceConfig {
        workers: Some(1),
        ..ServiceConfig::default()
    });
    let expected = single.serve_batch(&batch);

    let handle = PolicyServer::bind("127.0.0.1:0", server(3))
        .expect("bind")
        .spawn();
    let mut client = PolicyClient::connect(handle.addr(), batch.len() as u16).expect("connect");
    assert_eq!(client.shards(), 3, "welcome reports the shard count");
    let got = client.serve_batch(&batch).expect("clean round trip");

    assert_eq!(got.len(), batch.len());
    for (i, (wire, exp)) in got.iter().zip(&expected).enumerate() {
        let (wire, exp) = (wire.as_ref().unwrap(), exp.as_ref().unwrap());
        assert_eq!(wire.policies.len(), exp.policies.len());
        for (wp, np) in wire.policies.iter().zip(&exp.policies) {
            assert_eq!(wp.listen.to_bits(), np.listen.to_bits(), "request {i}");
            assert_eq!(wp.transmit.to_bits(), np.transmit.to_bits(), "request {i}");
        }
        assert_eq!(wire.throughput.to_bits(), exp.throughput.to_bits());
        assert_eq!(
            wire.cert_t_sigma.to_bits(),
            exp.certificate.t_sigma.to_bits()
        );
        assert_eq!(wire.cert_oracle.to_bits(), exp.certificate.oracle.to_bits());
        assert_eq!(
            wire.cert_dual_upper.to_bits(),
            exp.certificate.dual_upper.to_bits()
        );
        assert_eq!(wire.converged, exp.converged);
        // The tier label may shift to Exact when TCP segmentation
        // splits the pipeline into several server-side batches (an
        // alias of an earlier sub-batch's solve replays from the LRU);
        // the payload above must not change either way.
        assert!(
            wire.tier == exp.tier || wire.tier == econcast_service::ServedTier::Exact,
            "request {i}: tier {:?} vs expected {:?}",
            wire.tier,
            exp.tier
        );
    }

    // Stats over the wire: every request is accounted for, across all
    // shards, and per-shard snapshots sum to the aggregate — modulo
    // the admission overlay, which is front-wide (like the cluster's
    // robustness counters) and rides the aggregate only.
    let aggregate = client.stats(None).expect("aggregate stats");
    assert_eq!(aggregate.requests, batch.len() as u64);
    let mut summed = econcast_service::ServiceStats::default();
    let mut live_shards = 0;
    for s in 0..client.shards() {
        let shard = client.stats(Some(s)).expect("shard stats");
        live_shards += u32::from(shard.requests > 0);
        summed.merge(&shard);
    }
    // Closed-loop run well under capacity: nothing shed or degraded,
    // but the queue saw the batch pass through.
    assert_eq!(aggregate.shed_rejects, 0);
    assert_eq!(aggregate.degraded_serves, 0);
    assert_eq!(aggregate.deadline_expired, 0);
    assert!(
        aggregate.queue_depth_peak >= 1 && aggregate.queue_depth_peak <= batch.len() as u64,
        "queue peak {} out of range",
        aggregate.queue_depth_peak
    );
    let mut tiers_only = aggregate;
    tiers_only.queue_depth_peak = 0;
    assert_eq!(summed, tiers_only);
    assert!(live_shards >= 2, "the mix should span shards");

    drop(client);
    handle.shutdown();
}

#[test]
fn concurrent_clients_on_disjoint_shards() {
    let handle = PolicyServer::bind("127.0.0.1:0", server(4))
        .expect("bind")
        .spawn();
    let addr = handle.addr();

    // Each client hammers its own set of homogeneous families; shard
    // disjointness means no client can perturb another's responses.
    let mut workers = Vec::new();
    for c in 0..4u32 {
        workers.push(std::thread::spawn(move || {
            let mut client = PolicyClient::connect(addr, 8).expect("connect");
            let reqs: Vec<PolicyRequest> = (0..8)
                .map(|k| {
                    PolicyRequest::homogeneous(
                        2 + (c as usize) * 8 + k,
                        NodeParams::from_microwatts(10.0, 500.0, 450.0),
                        0.5,
                        ThroughputMode::Groupput,
                        1e-2,
                    )
                })
                .collect();
            let first = client.serve_batch(&reqs).expect("serve");
            for round in 0..3 {
                let again = client.serve_batch(&reqs).expect("serve again");
                for (i, (a, b)) in first.iter().zip(&again).enumerate() {
                    let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                    assert_eq!(
                        a.throughput.to_bits(),
                        b.throughput.to_bits(),
                        "client {c} round {round} request {i} replay diverged"
                    );
                }
            }
        }));
    }
    for w in workers {
        w.join().expect("client thread");
    }

    let router = handle.router();
    let total: u64 = (0..4).map(|s| router.shard_routed(s)).sum();
    assert_eq!(total, 4 * 8 * 4, "every request routed exactly once");
    let live = (0..4).filter(|&s| router.shard_routed(s) > 0).count();
    assert!(live >= 2, "32 distinct families should span shards");
    handle.shutdown();
}

#[test]
fn corrupt_frame_drops_the_connection_without_a_reply() {
    let handle = PolicyServer::bind("127.0.0.1:0", server(2))
        .expect("bind")
        .spawn();

    let mut wire = bytes::BytesMut::new();
    ServiceCodec::encode(
        &ServiceMessage::Request(mixed_batch(1)[0].to_wire(7)),
        &mut wire,
    );
    let mut corrupt = wire.to_vec();
    *corrupt.last_mut().unwrap() ^= 0xFF; // break the CRC

    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.write_all(&corrupt).expect("send");
    let mut reply = Vec::new();
    let n = stream
        .read_to_end(&mut reply)
        .expect("server closes cleanly");
    assert_eq!(n, 0, "no reply for a corrupt stream, just EOF");
    handle.shutdown();
}

#[test]
fn truncated_frame_gets_no_reply() {
    let handle = PolicyServer::bind("127.0.0.1:0", server(2))
        .expect("bind")
        .spawn();

    let mut wire = bytes::BytesMut::new();
    ServiceCodec::encode(
        &ServiceMessage::Request(mixed_batch(1)[0].to_wire(9)),
        &mut wire,
    );
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    // Send all but the last byte, then half-close: the server must not
    // answer a frame it never fully received.
    stream.write_all(&wire[..wire.len() - 1]).expect("send");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut reply = Vec::new();
    let n = stream.read_to_end(&mut reply).expect("clean close");
    assert_eq!(n, 0, "truncated frame produced no response");

    // The server is still healthy for well-formed clients.
    let mut client = PolicyClient::connect(handle.addr(), 1).expect("connect");
    let out = client.serve_batch(&mixed_batch(1)).expect("serve");
    assert!(out[0].is_ok());
    handle.shutdown();
}

#[test]
fn shutdown_does_not_hang_when_the_accept_pool_is_saturated() {
    // One-slot accept pool, one live client holding it: the acceptor
    // is parked waiting for a free slot, where the shutdown
    // throwaway-connection trick alone cannot reach it. shutdown()
    // must still return promptly (the gate is interrupted), and the
    // live connection must be drained cleanly — everything the client
    // already sent is answered, then the handler closes at its next
    // idle tick, so the client sees a crisp end-of-stream rather than
    // a hang or a mid-frame cut.
    let handle = PolicyServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 1,
            ..server(2)
        },
    )
    .expect("bind")
    .spawn();
    let mut client = PolicyClient::connect(handle.addr(), 1).expect("connect");
    // Make sure the handler thread really owns the one slot before
    // shutting down (the serve proves the connection is established
    // server-side, so a second accept would block on the gate).
    let out = client.serve_batch(&mixed_batch(1)).expect("serve");
    assert!(out[0].is_ok());

    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        handle.shutdown();
        done_tx.send(()).expect("report shutdown");
    });
    done_rx
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("shutdown wedged behind the saturated accept pool");

    // Shutdown waited for the handler to drain, so by the time it
    // returned the connection is closed — the next call fails fast
    // with a clean stream-closed error, never a hang.
    let err = client
        .serve_batch(&mixed_batch(1))
        .expect_err("drained connection is closed after shutdown");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::ConnectionReset
        ),
        "expected a clean close, got {err:?}"
    );
}

#[test]
fn garbage_length_prefix_is_fatal_not_a_hang() {
    let handle = PolicyServer::bind("127.0.0.1:0", server(2))
        .expect("bind")
        .spawn();
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    // A plausible length prefix followed by garbage bytes.
    let mut junk = vec![0x00, 0x10];
    junk.extend(std::iter::repeat_n(0xAB, 0x10));
    stream.write_all(&junk).expect("send");
    let mut reply = Vec::new();
    let n = stream.read_to_end(&mut reply).expect("server closes");
    assert_eq!(n, 0);
    handle.shutdown();
}

#[test]
fn ping_round_trips_without_touching_shard_state() {
    let handle = PolicyServer::bind("127.0.0.1:0", server(2))
        .expect("bind")
        .spawn();
    let mut client = PolicyClient::connect(handle.addr(), 1).expect("connect");
    for _ in 0..3 {
        client.ping().expect("pong");
    }
    // Pings are pure liveness: no request/batch counters move.
    let stats = client.stats(None).expect("stats");
    assert_eq!(stats.requests, 0);
    assert_eq!(stats.batches, 0);
    handle.shutdown();
}

#[test]
fn corrupt_mid_stream_reply_fails_the_call_not_prior_results() {
    // Satellite regression for the PolicyClient failure contract: a
    // server whose reply stream goes corrupt *mid-batch* must surface
    // as an `Err` from that `serve_batch` call — no partial result
    // vector, no panic — while results from earlier completed calls
    // stay intact and usable. A hand-rolled misbehaving server plays
    // the corruption.
    use econcast_proto::service::{WirePolicy, WirePolicyResponse, WireWelcome, WIRE_VERSION};

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut codec = ServiceCodec::new();
        let mut buf = [0u8; 4096];
        let mut answered = 0u32;
        loop {
            let n = match stream.read(&mut buf) {
                Ok(0) | Err(_) => return,
                Ok(n) => n,
            };
            codec.feed(&buf[..n]);
            let Ok(messages) = codec.drain() else { return };
            let mut out = bytes::BytesMut::new();
            for msg in messages {
                match msg {
                    ServiceMessage::Hello(h) => ServiceCodec::encode(
                        &ServiceMessage::Welcome(WireWelcome {
                            id: h.id,
                            shards: 1,
                            max_batch: 64,
                        }),
                        &mut out,
                    ),
                    ServiceMessage::Request(r) => {
                        answered += 1;
                        let reply = ServiceMessage::Response(WirePolicyResponse {
                            corr: r.corr,
                            id: r.id,
                            tier: econcast_service::ServedTier::Exact,
                            kernel: econcast_service::PolicyKernel::ClosedForm,
                            converged: true,
                            throughput: f64::from(answered),
                            cert_t_sigma: 1.0,
                            cert_oracle: 2.0,
                            cert_dual_upper: 3.0,
                            policies: r
                                .budgets_w
                                .iter()
                                .map(|_| WirePolicy {
                                    listen: 0.1,
                                    transmit: 0.01,
                                })
                                .collect(),
                        });
                        if answered == 4 {
                            // The 4th reply overall (2nd of batch 2):
                            // a correctly length-prefixed frame whose
                            // body fails its CRC.
                            let mut corrupt = bytes::BytesMut::new();
                            ServiceCodec::encode(&reply, &mut corrupt);
                            let last = corrupt.len() - 1;
                            corrupt[last] ^= 0xFF;
                            out.extend_from_slice(&corrupt);
                        } else {
                            ServiceCodec::encode(&reply, &mut out);
                        }
                    }
                    _ => {}
                }
            }
            if !out.is_empty() && stream.write_all(&out).is_err() {
                return;
            }
        }
    });

    let batch = mixed_batch(2);
    let mut client = PolicyClient::connect(addr, 2).expect("connect");
    assert_eq!(WIRE_VERSION, 7, "test written against wire v7");

    // Batch 1: clean round trip; keep the results.
    let first = client.serve_batch(&batch).expect("clean batch");
    assert_eq!(first.len(), 2);
    let t0 = first[0].as_ref().expect("served").throughput;
    assert_eq!(t0, 1.0, "fake server tags replies in answer order");

    // Batch 2: the stream goes corrupt after one good reply. The call
    // fails as a unit — InvalidData, not a partial vector, not a hang.
    let err = client.serve_batch(&batch).expect_err("corrupt stream");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    // Prior results are untouched by the later corruption: every
    // response was CRC-checked when decoded.
    assert_eq!(first[0].as_ref().unwrap().throughput, 1.0);
    assert_eq!(first[1].as_ref().unwrap().throughput, 2.0);

    drop(client);
    fake.join().expect("fake server");
}

#[test]
fn large_n_requests_round_trip_the_sharded_tcp_path() {
    // The lifted ceiling reaches the wire: heterogeneous N ∈ {32, 64}
    // requests — beyond any enumeration table — round-trip the sharded
    // TCP front-end bit-identical to the in-process service, and the
    // wire response carries the factorized-kernel tag.
    use econcast_proto::service::PolicyKernel;

    let batch: Vec<PolicyRequest> = [32usize, 64]
        .iter()
        .flat_map(|&n| {
            [ThroughputMode::Groupput, ThroughputMode::Anyput]
                .into_iter()
                .map(move |mode| PolicyRequest {
                    budgets_w: (0..n).map(|i| (2.0 + 1.5 * i as f64) * 1e-6).collect(),
                    listen_w: 500e-6,
                    transmit_w: 450e-6,
                    sigma: 0.5,
                    objective: mode,
                    tolerance: 1e-2,
                })
        })
        .collect();

    let mut single = PolicyService::new(ServiceConfig {
        workers: Some(1),
        ..ServiceConfig::default()
    });
    let expected = single.serve_batch(&batch);

    let handle = PolicyServer::bind("127.0.0.1:0", server(2))
        .expect("bind")
        .spawn();
    let mut client = PolicyClient::connect(handle.addr(), batch.len() as u16).expect("connect");
    let got = client.serve_batch(&batch).expect("clean round trip");

    for (i, (wire, exp)) in got.iter().zip(&expected).enumerate() {
        let (wire, exp) = (wire.as_ref().unwrap(), exp.as_ref().unwrap());
        assert_eq!(wire.kernel, PolicyKernel::Factorized, "request {i}");
        assert_eq!(wire.policies.len(), exp.policies.len(), "request {i}");
        for (wp, np) in wire.policies.iter().zip(&exp.policies) {
            assert_eq!(wp.listen.to_bits(), np.listen.to_bits(), "request {i}");
            assert_eq!(wp.transmit.to_bits(), np.transmit.to_bits(), "request {i}");
        }
        assert_eq!(wire.throughput.to_bits(), exp.throughput.to_bits());
    }
    handle.shutdown();
}
