//! Oracle groupput in a clique — the LP (P2) of Section IV-A.
//!
//! ```text
//! T*_g = max_{α,β} Σ_i α_i
//! s.t.  α_i L_i + β_i X_i ≤ ρ_i        (9)  power budget
//!       α_i + β_i ≤ 1                  (10) one state at a time
//!       Σ_i β_i ≤ 1                    (11) one transmitter at a time
//!       α_i ≤ Σ_{j≠i} β_j              (12) listen only during a transmission
//! ```
//!
//! In a clique every listen during the (single) active transmission is
//! a reception, so the groupput equals `Σ_i α_i` — the LP objective.

use crate::solution::OracleSolution;
use econcast_core::NodeParams;
use econcast_lp::{Problem, Relation};

/// Solves (P2) exactly. Variables are laid out `[α_0..α_{N−1},
/// β_0..β_{N−1}]`; the LP has `2N` variables and `3N + 1` constraints,
/// exactly as stated in Section IV-A.
///
/// # Panics
///
/// Panics when `nodes` is empty. The LP is always feasible (all-sleep
/// is a solution), so solving cannot fail for valid parameters.
pub fn oracle_groupput(nodes: &[NodeParams]) -> OracleSolution {
    let n = nodes.len();
    assert!(n >= 1, "need at least one node");
    let mut obj = vec![0.0; 2 * n];
    for o in obj.iter_mut().take(n) {
        *o = 1.0;
    }
    let mut p = Problem::maximize(&obj);
    for (i, node) in nodes.iter().enumerate() {
        // (9)
        p.constrain_sparse(
            &[(i, node.listen_w), (n + i, node.transmit_w)],
            Relation::Le,
            node.budget_w,
        );
        // (10)
        p.constrain_sparse(&[(i, 1.0), (n + i, 1.0)], Relation::Le, 1.0);
        // (12): α_i − Σ_{j≠i} β_j ≤ 0
        let mut row: Vec<(usize, f64)> = vec![(i, 1.0)];
        for j in 0..n {
            if j != i {
                row.push((n + j, -1.0));
            }
        }
        p.constrain_sparse(&row, Relation::Le, 0.0);
    }
    // (11)
    let all_beta: Vec<(usize, f64)> = (0..n).map(|j| (n + j, 1.0)).collect();
    p.constrain_sparse(&all_beta, Relation::Le, 1.0);

    let sol = p
        .solve()
        .expect("(P2) is always feasible: the all-sleep schedule satisfies every constraint");
    OracleSolution {
        throughput: sol.objective,
        alpha: sol.x[..n].to_vec(),
        beta: sol.x[n..].to_vec(),
    }
}

/// The closed-form homogeneous solution (Section IV-A / Appendix B),
/// valid when nodes are sufficiently energy-constrained (constraint (9)
/// dominates (10) and (11)):
///
/// ```text
/// β* = ρ / (X + (N−1)·L),   α* = (N−1)·β*,   T*_g = N·α*
/// ```
///
/// Returns `None` when the closed form's regime does not apply (the
/// resulting schedule would violate (10) or (11)); callers should fall
/// back to [`oracle_groupput`] then.
pub fn oracle_groupput_homogeneous(n: usize, params: &NodeParams) -> Option<OracleSolution> {
    assert!(n >= 2, "groupput needs at least two nodes");
    let nf = n as f64;
    let beta = params.budget_w / (params.transmit_w + (nf - 1.0) * params.listen_w);
    let alpha = (nf - 1.0) * beta;
    // Regime check: (10) per node and (11) across nodes.
    if alpha + beta > 1.0 || nf * beta > 1.0 {
        return None;
    }
    Some(OracleSolution {
        throughput: nf * alpha,
        alpha: vec![alpha; n],
        beta: vec![beta; n],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn uw(budget: f64, l: f64, x: f64) -> NodeParams {
        NodeParams::from_microwatts(budget, l, x)
    }

    #[test]
    fn homogeneous_lp_matches_closed_form() {
        for n in [2usize, 3, 5, 10] {
            let p = uw(10.0, 500.0, 500.0);
            let nodes = vec![p; n];
            let lp = oracle_groupput(&nodes);
            let cf = oracle_groupput_homogeneous(n, &p).expect("severely constrained regime");
            assert!(
                (lp.throughput - cf.throughput).abs() < 1e-9,
                "n={n}: LP {} vs closed form {}",
                lp.throughput,
                cf.throughput
            );
        }
    }

    #[test]
    fn closed_form_detects_out_of_regime() {
        // A barely-constrained network: β* would exceed what (11)
        // allows.
        let p = NodeParams::new(10.0, 1.0, 1.0); // budget 10 W ≫ powers
        assert!(oracle_groupput_homogeneous(5, &p).is_none());
    }

    #[test]
    fn unconstrained_limit_is_n_minus_1() {
        // With huge budgets the LP caps at the structural optimum N−1
        // (one node always transmits, the rest always listen).
        let nodes = vec![NodeParams::new(100.0, 1.0, 1.0); 4];
        let sol = oracle_groupput(&nodes);
        assert!((sol.throughput - 3.0).abs() < 1e-9);
    }

    #[test]
    fn lp_solution_is_feasible() {
        let nodes = vec![
            uw(5.0, 400.0, 600.0),
            uw(10.0, 500.0, 500.0),
            uw(50.0, 600.0, 400.0),
            uw(100.0, 550.0, 450.0),
        ];
        let sol = oracle_groupput(&nodes);
        assert!(sol.is_feasible(&nodes, 1e-9));
        // (12): each α_i covered by other nodes' β.
        let total_beta: f64 = sol.beta.iter().sum();
        for i in 0..4 {
            assert!(sol.alpha[i] <= total_beta - sol.beta[i] + 1e-9);
        }
    }

    #[test]
    fn table2_shape_transmit_share_grows_with_budget() {
        // The Table II example: L = X = 1 mW, budgets 5/10/50/100 µW.
        // Qualitative shape: richer nodes spend a larger share of their
        // awake time transmitting, and awake time is ρ/L.
        let nodes = vec![
            NodeParams::from_milliwatts(0.005, 1.0, 1.0),
            NodeParams::from_milliwatts(0.01, 1.0, 1.0),
            NodeParams::from_milliwatts(0.05, 1.0, 1.0),
            NodeParams::from_milliwatts(0.1, 1.0, 1.0),
        ];
        let sol = oracle_groupput(&nodes);
        // The optimal value is unique even though the optimal schedule
        // is not: T*_g = Σ_i min(r_i, B*) − B* with r_i = ρ_i/L and any
        // B* ∈ [0.05, 0.1] — which evaluates to Σ r_i − max_i r_i.
        let budgets_over_l: Vec<f64> = nodes.iter().map(|p| p.budget_w / p.listen_w).collect();
        let expected: f64 =
            budgets_over_l.iter().sum::<f64>() - budgets_over_l.iter().cloned().fold(0.0, f64::max);
        assert!((sol.throughput - expected).abs() < 1e-9);
        // No node exceeds its power-limited awake fraction ρ/L, and the
        // three poorer nodes are fully awake in any optimal vertex.
        for (i, node) in nodes.iter().enumerate() {
            assert!(sol.awake_fraction(i) <= node.budget_w / node.listen_w + 1e-9);
        }
        for i in 0..3 {
            assert!(
                (sol.awake_fraction(i) - budgets_over_l[i]).abs() < 1e-9,
                "poor node {i} should exhaust its budget, awake {}",
                sol.awake_fraction(i)
            );
        }
    }

    #[test]
    fn single_node_has_zero_groupput() {
        let sol = oracle_groupput(&[uw(10.0, 500.0, 500.0)]);
        assert_eq!(sol.throughput, 0.0);
    }

    proptest! {
        /// LP feasibility and the analytical cap T*_g ≤ N−1 hold for
        /// random heterogeneous networks.
        #[test]
        fn prop_feasible_and_capped(
            n in 2usize..7,
            budgets in proptest::collection::vec(1.0f64..200.0, 2..7),
            powers in proptest::collection::vec(300.0f64..800.0, 4..14),
        ) {
            let nodes: Vec<NodeParams> = (0..n).map(|i| {
                let b = budgets[i % budgets.len()];
                let l = powers[(2 * i) % powers.len()];
                let x = powers[(2 * i + 1) % powers.len()];
                uw(b, l, x)
            }).collect();
            let sol = oracle_groupput(&nodes);
            prop_assert!(sol.is_feasible(&nodes, 1e-7));
            prop_assert!(sol.throughput <= (n as f64) - 1.0 + 1e-9);
            prop_assert!(sol.throughput >= -1e-12);
        }

        /// Oracle groupput is monotone in the budget: richer networks
        /// can only do better.
        #[test]
        fn prop_monotone_in_budget(
            n in 2usize..6,
            budget in 1.0f64..50.0,
            extra in 1.0f64..50.0,
        ) {
            let poor = vec![uw(budget, 500.0, 500.0); n];
            let rich = vec![uw(budget + extra, 500.0, 500.0); n];
            let tp = oracle_groupput(&poor).throughput;
            let tr = oracle_groupput(&rich).throughput;
            prop_assert!(tr >= tp - 1e-9);
        }
    }
}
