//! The `repro --bench-json` kernel suite.
//!
//! Runs a fixed set of workloads covering the workspace's hot paths —
//! exact (P4) solves at N ∈ {8, 12, 16}, the homogeneous fast path at
//! N = 1000, and the simulator on a 7×7 grid — and emits a
//! `BENCH_<git-sha>.json` record with wall-clock and throughput
//! numbers. Committed baselines let future performance PRs show their
//! before/after on the same suite.
//!
//! The (P4) workloads run a *fixed* iteration budget (`tol = 0`), so
//! every run measures an identical amount of work regardless of
//! convergence luck. `p4_solve_n12_naive` re-solves the same instance
//! through [`summarize_naive`], reproducing the pre-workspace
//! implementation (two enumeration passes per iteration, fresh
//! allocations), which is the denominator of the headline
//! `p4_n12_speedup_vs_naive` figure.

use crate::timing::{format_seconds, measure, Measurement};
use econcast_cluster::{
    ClusterConfig, ClusterFront, ClusterHealer, ClusterRouter, FrontConfig, HealerConfig,
    RemoteConfig, SlotSpec,
};
use econcast_core::{NodeParams, ProtocolConfig, ThroughputMode};
use econcast_service::{
    GridConfig, PolicyClient, PolicyRequest, PolicyServer, PolicyService, RouterConfig,
    ServerConfig, ServiceConfig,
};
use econcast_sim::{SimConfig, Simulator};
use econcast_statespace::gibbs::{summarize_naive, GibbsParams, GibbsSummary};
use econcast_statespace::{
    FactorizedWorkspace, HomogeneousP4, KernelSelect, P4Options, P4Solver, SummaryWorkspace,
};
use std::hint::black_box;

fn params() -> NodeParams {
    NodeParams::from_microwatts(10.0, 500.0, 500.0)
}

/// Fixed-work descent options: `tol = 0` never converges early, so the
/// measured work is identical run to run. The kernel is pinned
/// explicitly — `Auto` would route these homogeneous instances to the
/// closed form (and small heterogeneous groupput to the factorized
/// kernel), silently changing what a baseline-named entry measures.
fn fixed_iters(iters: usize, kernel: KernelSelect) -> P4Options {
    P4Options {
        max_iters: iters,
        tol: 0.0,
        step0: 2.0,
        kernel,
    }
}

/// Deterministic heterogeneous budgets for the large-N entries (the
/// factorized path is the heterogeneous server path; homogeneous
/// requests never reach it in production).
fn het_nodes(n: usize) -> Vec<NodeParams> {
    (0..n)
        .map(|i| NodeParams::from_microwatts(2.0 + 1.5 * i as f64, 500.0, 450.0))
        .collect()
}

/// The seed implementation of `solve_p4`, reconstructed on top of the
/// retained naive summarizer: two full enumeration passes and fresh
/// `alpha`/`beta`/gradient allocations per dual iteration. Exists only
/// as the benchmark baseline.
fn solve_p4_naive_reference(
    nodes: &[NodeParams],
    sigma: f64,
    mode: ThroughputMode,
    opts: P4Options,
) -> f64 {
    let n = nodes.len();
    let scale: Vec<f64> = nodes
        .iter()
        .map(|p| sigma / p.listen_w.max(p.transmit_w))
        .collect();
    let mut eta = vec![0.0f64; n];
    let mut grad_sq = vec![0.0f64; n];
    let mut last: Option<GibbsSummary> = None;
    for _ in 0..opts.max_iters {
        let s = summarize_naive(&GibbsParams {
            nodes,
            eta: &eta,
            sigma,
            mode,
        });
        let mut residual = 0.0f64;
        let mut grads = vec![0.0f64; n];
        for i in 0..n {
            let cons = nodes[i].average_power(s.alpha[i], s.beta[i]);
            let g = (nodes[i].budget_w - cons) / (nodes[i].budget_w + cons);
            grads[i] = g;
            residual = residual.max(if eta[i] > 0.0 { g.abs() } else { (-g).max(0.0) });
        }
        last = Some(s);
        if residual < opts.tol {
            break;
        }
        for i in 0..n {
            grad_sq[i] += grads[i] * grads[i];
            let step = opts.step0 / grad_sq[i].sqrt().max(1e-12);
            eta[i] = (eta[i] - step * scale[i] * grads[i]).max(0.0);
        }
    }
    last.expect("at least one iteration").expected_throughput
}

/// One suite entry: name + workload.
struct Entry {
    name: String,
    workload: Box<dyn FnMut()>,
    /// Whether the workload *size* depends on the `--quick` flag
    /// (fixed-iteration budgets, simulated horizon). Recorded in the
    /// JSON so the CI gate knows — from the file itself, not a
    /// hardcoded list that could drift — which per-iteration numbers
    /// are meaningless across a quick/full comparison.
    quick_sensitive: bool,
}

/// The canonical suite-entry name for one service measurement
/// (`phase` is "cold" or "warm") — the single source both the suite
/// builder and the JSON deriver use.
fn service_entry_name(phase: &str, batch: usize) -> String {
    format!("service_{phase}_batch{batch}")
}

/// The policy-service benchmark batch sizes (requests per
/// `serve_batch` call).
pub const SERVICE_BATCH_SIZES: [usize; 3] = [1, 32, 256];

/// A deterministic mixed batch for the service benchmarks: the four
/// instance templates cycle (heterogeneous and homogeneous fast-path
/// instances), every template alternates groupput/anyput across its
/// budget variations, and every fourth request perturbs its budgets
/// so large batches contain mostly *distinct* instances — cold
/// numbers measure solving, warm numbers measure lookups, both
/// through the full canonicalize/probe/batch pipeline.
pub(crate) fn service_batch(size: usize) -> Vec<PolicyRequest> {
    // Keyed on the variation index, not the request index: i % 4
    // fixes the parity of i, so a request-index parity would pin each
    // template to a single objective.
    let mode = |i: usize| {
        if (i / 4).is_multiple_of(2) {
            ThroughputMode::Groupput
        } else {
            ThroughputMode::Anyput
        }
    };
    (0..size)
        .map(|i| {
            let variation = 1.0 + (i / 4) as f64 * 1e-3;
            match i % 4 {
                0 => PolicyRequest {
                    budgets_w: [2.0, 4.0, 8.0, 16.0, 24.0, 40.0]
                        .iter()
                        .map(|b| b * 1e-6 * variation)
                        .collect(),
                    listen_w: 500e-6,
                    transmit_w: 450e-6,
                    sigma: 0.5,
                    objective: mode(i),
                    tolerance: 1e-2,
                },
                1 => PolicyRequest::homogeneous(
                    50,
                    NodeParams::new(10e-6 * variation, 500e-6, 450e-6),
                    0.5,
                    mode(i),
                    1e-2,
                ),
                2 => PolicyRequest {
                    budgets_w: [3.0, 5.0, 9.0, 17.0, 33.0]
                        .iter()
                        .map(|b| b * 1e-6 * variation)
                        .collect(),
                    listen_w: 500e-6,
                    transmit_w: 450e-6,
                    sigma: 0.25,
                    objective: mode(i),
                    tolerance: 1e-2,
                },
                _ => PolicyRequest::homogeneous(
                    200,
                    NodeParams::new(37e-6 * variation, 500e-6, 450e-6),
                    0.25,
                    mode(i),
                    1e-2,
                ),
            }
        })
        .collect()
}

/// Service config for the cold benchmark: every iteration starts from
/// empty caches, and the grid tier is disabled so per-iteration work
/// is uniform (no lumpy lazy grid builds inside the timing loop).
fn cold_service() -> PolicyService {
    PolicyService::new(ServiceConfig {
        lru_capacity: 4096,
        grid: None,
        ..ServiceConfig::default()
    })
}

/// Service config for the warm benchmark (grid enabled; warmed before
/// measurement so the steady state is pure cache serving).
fn warm_service() -> PolicyService {
    PolicyService::new(ServiceConfig {
        lru_capacity: 4096,
        grid: Some(GridConfig::default()),
        ..ServiceConfig::default()
    })
}

/// Builds the fixed suite. `quick` shrinks iteration budgets and the
/// simulated horizon for CI smoke runs (same entry names, smaller
/// work — quick numbers are not comparable to full ones). Entries not
/// matching `filter` are never *constructed* — construction itself
/// does real work (cache warming, the loopback socket server bind),
/// and a filtered iteration loop must not pay for it.
fn suite(quick: bool, filter: Option<&str>) -> Vec<Entry> {
    let keep = |name: &str| filter.is_none_or(|f| name.contains(f));
    let (it8, it12, it16) = if quick { (60, 25, 4) } else { (400, 150, 30) };
    // The factorized entries run a real convergence-scale budget: one
    // dual iteration is O(N) (groupput), so even 10 000 iterations at
    // N = 32 undercut a handful of Gray-code sweeps at N = 16.
    let it_fact = if quick { 500 } else { 10_000 };
    let sim_t_end = if quick { 5_000.0 } else { 20_000.0 };
    let mode = ThroughputMode::Groupput;

    let mut entries: Vec<Entry> = Vec::new();
    for (name, n, iters) in [
        ("p4_solve_n8", 8usize, it8),
        ("p4_solve_n12", 12, it12),
        ("p4_solve_n16", 16, it16),
    ] {
        if !keep(name) {
            continue;
        }
        let nodes = vec![params(); n];
        let mut solver = P4Solver::new(n);
        entries.push(Entry {
            name: name.to_string(),
            workload: Box::new(move || {
                black_box(
                    solver
                        .solve(
                            &nodes,
                            0.5,
                            mode,
                            fixed_iters(iters, KernelSelect::GrayCode),
                        )
                        .throughput,
                );
            }),
            quick_sensitive: true,
        });
    }
    // Past the 2^N wall: the factorized kernel solves N ∈ {24, 32}
    // heterogeneous instances the enumeration kernels cannot touch
    // (the acceptance bar: cheaper than one Gray-code p4_solve_n16).
    for (name, n) in [("p4_solve_n24", 24usize), ("p4_solve_n32", 32)] {
        if !keep(name) {
            continue;
        }
        let nodes = het_nodes(n);
        let mut solver = P4Solver::new(n);
        entries.push(Entry {
            name: name.to_string(),
            workload: Box::new(move || {
                black_box(
                    solver
                        .solve(
                            &nodes,
                            0.5,
                            mode,
                            fixed_iters(it_fact, KernelSelect::Factorized),
                        )
                        .throughput,
                );
            }),
            quick_sensitive: true,
        });
    }
    if keep("p4_solve_n12_naive") {
        let nodes = vec![params(); 12];
        entries.push(Entry {
            name: "p4_solve_n12_naive".to_string(),
            workload: Box::new(move || {
                black_box(solve_p4_naive_reference(
                    &nodes,
                    0.5,
                    mode,
                    fixed_iters(it12, KernelSelect::GrayCode),
                ));
            }),
            quick_sensitive: true,
        });
    }
    if keep("gibbs_summarize_n12") {
        let nodes = vec![params(); 12];
        let eta = vec![3000.0; 12];
        let mut ws = SummaryWorkspace::new(12);
        entries.push(Entry {
            name: "gibbs_summarize_n12".to_string(),
            workload: Box::new(move || {
                ws.compute(&GibbsParams {
                    nodes: &nodes,
                    eta: &eta,
                    sigma: 0.5,
                    mode,
                });
                black_box(ws.expected_throughput());
            }),
            quick_sensitive: false,
        });
    }
    if keep("gibbs_summarize_naive_n12") {
        let nodes = vec![params(); 12];
        let eta = vec![3000.0; 12];
        entries.push(Entry {
            name: "gibbs_summarize_naive_n12".to_string(),
            workload: Box::new(move || {
                black_box(summarize_naive(&GibbsParams {
                    nodes: &nodes,
                    eta: &eta,
                    sigma: 0.5,
                    mode,
                }));
            }),
            quick_sensitive: false,
        });
    }
    // The same evaluation through the factorized kernel — the
    // direct per-eval comparison against gibbs_summarize_n12.
    if keep("summarize_factorized_n12") {
        let nodes = vec![params(); 12];
        let eta = vec![3000.0; 12];
        let mut ws = FactorizedWorkspace::new(12);
        entries.push(Entry {
            name: "summarize_factorized_n12".to_string(),
            workload: Box::new(move || {
                ws.compute(&GibbsParams {
                    nodes: &nodes,
                    eta: &eta,
                    sigma: 0.5,
                    mode,
                });
                black_box(ws.expected_throughput());
            }),
            quick_sensitive: false,
        });
    }
    if keep("homogeneous_p4_n1000") {
        entries.push(Entry {
            name: "homogeneous_p4_n1000".to_string(),
            workload: Box::new(|| {
                black_box(
                    HomogeneousP4::new(1000, params(), 0.5, ThroughputMode::Groupput)
                        .solve()
                        .throughput,
                );
            }),
            quick_sensitive: false,
        });
    }
    // Policy-service throughput: requests/sec per batch size, cold
    // (fresh caches every call) vs warm (steady-state cache serving)
    // vs socket (warm caches through the sharded TCP front-end).
    // Names derive from SERVICE_BATCH_SIZES so the JSON's "service"
    // section can never silently miss a size.
    //
    // The TCP server (2 shards, loopback) lives for the rest of the
    // process: the suite runs once per process and the connection
    // handlers die with it, so there is nothing to tear down. It only
    // binds when a socket entry survives the filter.
    let socket_needed = SERVICE_BATCH_SIZES
        .iter()
        .any(|&s| keep(&service_entry_name("socket", s)));
    let socket_addr = if !socket_needed {
        Err(std::io::Error::other("no socket entries requested"))
    } else {
        bind_socket_server()
    };
    // Same story for the in-process cluster: two single-shard backend
    // `PolicyServer`s on loopback behind a `ClusterFront`, so the
    // cluster entries measure the full distribution path — client
    // framing + front TCP + router fan-out + dialer TCP + backend
    // serving — without child-process management inside a benchmark.
    let cluster_needed = SERVICE_BATCH_SIZES
        .iter()
        .any(|&s| keep(&service_entry_name("cluster", s)));
    let cluster_addr = if !cluster_needed {
        Err(std::io::Error::other("no cluster entries requested"))
    } else {
        bind_cluster_front()
    };
    for size in SERVICE_BATCH_SIZES {
        if !keep(&service_entry_name("cold", size))
            && !keep(&service_entry_name("warm", size))
            && !keep(&service_entry_name("warm_metrics", size))
            && !keep(&service_entry_name("socket", size))
            && !keep(&service_entry_name("cluster", size))
        {
            continue;
        }
        let batch = service_batch(size);
        if keep(&service_entry_name("cold", size)) {
            entries.push(Entry {
                name: service_entry_name("cold", size),
                workload: Box::new({
                    let batch = batch.clone();
                    move || {
                        let mut svc = cold_service();
                        black_box(svc.serve_batch(&batch));
                    }
                }),
                quick_sensitive: false,
            });
        }
        if keep(&service_entry_name("warm", size)) {
            entries.push(Entry {
                name: service_entry_name("warm", size),
                workload: Box::new({
                    let batch = batch.clone();
                    let mut svc = warm_service();
                    svc.serve_batch(&batch); // warm the tiers once
                    move || {
                        black_box(svc.serve_batch(&batch));
                    }
                }),
                quick_sensitive: false,
            });
        }
        if keep(&service_entry_name("warm_metrics", size)) {
            entries.push(Entry {
                name: service_entry_name("warm_metrics", size),
                workload: Box::new({
                    let batch = batch.clone();
                    let mut svc = warm_service();
                    svc.serve_batch(&batch); // warm the tiers once
                    move || {
                        // Identical work to the warm entry, but with
                        // the always-on metrics plane recording — the
                        // paired `warm_rps_metrics_on` gate row holds
                        // the difference within noise. The suite loop
                        // runs recording-off, so the toggle pair
                        // brackets each call (two relaxed stores,
                        // nothing next to a serve_batch).
                        econcast_metrics::set_recording(true);
                        black_box(svc.serve_batch(&batch));
                        econcast_metrics::set_recording(false);
                    }
                }),
                quick_sensitive: false,
            });
        }
        if keep(&service_entry_name("cluster", size)) {
            if let Ok(addr) = &cluster_addr {
                // Warm cluster round-trip: client framing + front TCP
                // + ring routing + dialer fan-out + backend caches.
                let addr = *addr;
                let batch = batch.clone();
                let mut client: Option<PolicyClient> = None;
                entries.push(Entry {
                    name: service_entry_name("cluster", size),
                    workload: Box::new(move || {
                        let client = client.get_or_insert_with(|| {
                            let mut c =
                                PolicyClient::connect(addr, size.min(u16::MAX as usize) as u16)
                                    .expect("loopback cluster connect");
                            c.serve_batch(&batch).expect("warming batch");
                            c
                        });
                        black_box(client.serve_batch(&batch).expect("cluster round trip"));
                    }),
                    quick_sensitive: false,
                });
            }
        }
        if !keep(&service_entry_name("socket", size)) {
            continue;
        }
        if let Ok(addr) = &socket_addr {
            // Warm socket round-trip: encode + TCP + routing + shard
            // cache lookups + decode. The lazy connect keeps server
            // warm-up out of the measured iterations (measure()'s
            // calibration pass absorbs it).
            let addr = *addr;
            let mut client: Option<PolicyClient> = None;
            entries.push(Entry {
                name: service_entry_name("socket", size),
                workload: Box::new(move || {
                    let client = client.get_or_insert_with(|| {
                        let mut c = PolicyClient::connect(addr, size.min(u16::MAX as usize) as u16)
                            .expect("loopback connect");
                        c.serve_batch(&batch).expect("warming batch"); // warm the shards
                        c
                    });
                    black_box(client.serve_batch(&batch).expect("socket round trip"));
                }),
                quick_sensitive: false,
            });
        }
    }
    if keep("sim_grid7x7") {
        entries.push(Entry {
            name: "sim_grid7x7".to_string(),
            workload: Box::new(move || {
                let mut cfg = SimConfig::ideal_clique(
                    49,
                    params(),
                    ProtocolConfig::capture_groupput(0.5),
                    sim_t_end,
                    0xBE9C,
                );
                cfg.topology = econcast_core::Topology::square_grid(7);
                black_box(Simulator::new(cfg).expect("valid").run().groupput);
            }),
            quick_sensitive: true,
        });
    }
    entries
}

/// Binds the loopback 2-shard `PolicyServer` the socket entries and
/// the socket tail-latency pass measure against. The server lives for
/// the rest of the process: the suite runs once per process and the
/// connection handlers die with it, so there is nothing to tear down.
fn bind_socket_server() -> std::io::Result<std::net::SocketAddr> {
    PolicyServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            router: RouterConfig {
                shards: 2,
                service: ServiceConfig {
                    lru_capacity: 4096,
                    ..ServiceConfig::default()
                },
                ..RouterConfig::default()
            },
            background_prewarm: false,
            ..ServerConfig::default()
        },
    )
    .map(|srv| {
        let handle = srv.spawn();
        let addr = handle.addr();
        std::mem::forget(handle); // keep accepting until process exit
        addr
    })
}

/// Binds the in-process cluster the cluster entries and the cluster
/// tail-latency pass measure against: two single-shard backend
/// `PolicyServer`s on loopback behind a `ClusterFront`, plus a
/// `ClusterHealer` sweep — so the numbers describe a *supervised*
/// deployment, periodic ping probes and all. Same process-lifetime
/// story as [`bind_socket_server`].
fn bind_cluster_front() -> std::io::Result<std::net::SocketAddr> {
    let mut slots = Vec::new();
    for _ in 0..2 {
        let srv = PolicyServer::bind(
            "127.0.0.1:0",
            ServerConfig {
                router: RouterConfig {
                    shards: 1,
                    service: ServiceConfig {
                        lru_capacity: 4096,
                        ..ServiceConfig::default()
                    },
                    ..RouterConfig::default()
                },
                background_prewarm: false,
                ..ServerConfig::default()
            },
        )?;
        let handle = srv.spawn();
        slots.push(SlotSpec::Remote(handle.addr()));
        std::mem::forget(handle); // keep serving until process exit
    }
    let front = ClusterFront::bind(
        "127.0.0.1:0",
        ClusterRouter::new(
            &slots,
            ClusterConfig {
                service: ServiceConfig {
                    lru_capacity: 4096,
                    ..ServiceConfig::default()
                },
                ..ClusterConfig::default()
            },
        ),
        FrontConfig::default(),
    )?;
    let handle = front.spawn();
    let addr = handle.addr();
    let healer = ClusterHealer::spawn(
        std::sync::Arc::clone(handle.router()),
        HealerConfig::default(),
    );
    std::mem::forget(healer);
    std::mem::forget(handle);
    Ok(addr)
}

/// Requests/sec of the policy service at one batch size.
#[derive(Debug, Clone, Copy)]
pub struct ServiceThroughput {
    /// Requests per `serve_batch` call.
    pub batch: usize,
    /// Requests/sec against empty caches (solve-dominated).
    pub cold_rps: f64,
    /// Requests/sec at cache steady state (lookup-dominated).
    pub warm_rps: f64,
    /// Requests/sec at cache steady state with the always-on metrics
    /// plane recording (counters + latency histograms on the serve
    /// path). The `warm_rps` entries measure the recording-off path,
    /// so this row is the plane's measured overhead — `bench_gate`
    /// holds it within 5% of `warm_rps` at batch 256 in the *same*
    /// run. `None` on filtered runs.
    pub warm_metrics_rps: Option<f64>,
    /// Requests/sec through the sharded TCP front-end at cache steady
    /// state (framing + loopback + routing on top of warm serving);
    /// `None` when the loopback server could not bind.
    pub socket_rps: Option<f64>,
    /// Requests/sec through the 2-backend cluster front-end at cache
    /// steady state (client framing + front TCP + ring routing +
    /// dialer TCP + backend serving — two network hops per request);
    /// `None` when the loopback cluster could not bind.
    pub cluster_rps: Option<f64>,
    /// Warm `serve_batch` latency percentiles (µs per call, not per
    /// request), from the trace layer's fixed-bucket histograms in a
    /// separate post-rps pass — the rps numbers above measure the
    /// tracing-off path. Each value is its bucket's upper edge
    /// (≤ 12.5% above the true sample). `None` on filtered runs.
    pub warm_p50_us: Option<f64>,
    /// Warm `serve_batch` p99 latency (µs per call).
    pub warm_p99_us: Option<f64>,
    /// Warm `serve_batch` p99.9 latency (µs per call).
    pub warm_p999_us: Option<f64>,
    /// Socket round-trip latency percentiles (µs per `serve_batch`
    /// call over the pipelined TCP client), from a separate post-rps
    /// pass timing each call directly. `None` when the loopback
    /// server could not bind or the pass was filtered out.
    pub socket_p50_us: Option<f64>,
    /// Socket round-trip p99 latency (µs per call) — **gated** by
    /// `bench_gate`: a fresh p99 more than 50% above the baseline's
    /// fails CI.
    pub socket_p99_us: Option<f64>,
    /// Socket round-trip p99.9 latency (µs per call).
    pub socket_p999_us: Option<f64>,
    /// Cluster round-trip latency percentiles (µs per call through
    /// the 2-backend front — two network hops per request).
    pub cluster_p50_us: Option<f64>,
    /// Cluster round-trip p99 latency (µs per call) — gated like
    /// `socket_p99_us`.
    pub cluster_p99_us: Option<f64>,
    /// Cluster round-trip p99.9 latency (µs per call).
    pub cluster_p999_us: Option<f64>,
}

/// One traced span's latency distribution, harvested from the trace
/// layer's fixed-bucket histograms during the cluster tail-latency
/// pass (each value is its bucket's upper edge, ≤ 12.5% above the
/// true sample).
#[derive(Debug, Clone, Copy)]
pub struct SpanStats {
    /// Span name within the `cluster` trace category.
    pub name: &'static str,
    /// Completed spans observed during the pass.
    pub count: u64,
    /// p50 latency (µs), `None` when no spans fired.
    pub p50_us: Option<f64>,
    /// p99 latency (µs).
    pub p99_us: Option<f64>,
    /// p99.9 latency (µs).
    pub p999_us: Option<f64>,
}

/// The cluster spans the bench JSON reports percentiles for.
/// `failover_reserve` legitimately never fires in a healthy run, so
/// its row is filled by a dedicated forced-fault pass
/// ([`failover_reserve_percentiles`]: a dead backend whose sub-batch
/// re-serves on the local fallback) rather than left as a `count: 0`
/// placeholder.
const CLUSTER_SPAN_NAMES: [&str; 3] = ["dial", "remote_serve", "failover_reserve"];

/// Result of one full suite run.
pub struct SuiteReport {
    /// Per-entry measurements, in suite order.
    pub measurements: Vec<Measurement>,
    /// `p4_solve_n12_naive / p4_solve_n12` mean-time ratio.
    pub p4_n12_speedup: Option<f64>,
    /// Policy-service throughput per batch size.
    pub service: Vec<ServiceThroughput>,
    /// Worker-pool size the suite ran under.
    pub threads: usize,
    /// Whether the reduced smoke suite ran.
    pub quick: bool,
    /// Names of entries whose workload size depends on `quick` —
    /// recorded in the JSON so the regression gate learns
    /// quick-sensitivity from the record itself.
    pub quick_sensitive: Vec<String>,
    /// Per-span latency percentiles for the cluster data plane
    /// (`dial` / `remote_serve` / `failover_reserve`), harvested from
    /// the trace histograms during the largest batch's cluster
    /// tail-latency pass. Empty when no cluster pass ran.
    pub cluster_spans: Vec<SpanStats>,
    /// Open-loop overload rows (goodput / shed / degraded / accepted
    /// tails at 0.5×–4× measured capacity) against the same cluster
    /// front the closed-loop entries used. `None` on filtered runs or
    /// when the loopback stack could not bind.
    pub openloop: Option<crate::openloop::OpenLoopReport>,
}

/// Runs the kernel suite, printing one line per entry. A non-empty
/// `filter` keeps only entries whose name contains the substring —
/// the perf-iteration loop (`repro --bench-json --filter p4_solve_n32`)
/// without paying for the full suite, including its construction-time
/// work (cache warming, the socket server bind). Derived figures
/// whose inputs were filtered out (the naive speedup, service rates)
/// are simply absent from the report.
pub fn run_suite(quick: bool, filter: Option<&str>) -> SuiteReport {
    let entries = suite(quick, filter);
    if let Some(f) = filter {
        eprintln!("[--filter `{f}`: {} entries match]", entries.len());
    }
    let mut measurements = Vec::new();
    let mut quick_sensitive = Vec::new();
    // The throughput loop measures the recording-off path — the same
    // overhead contract the tracing rows keep — so the baseline-named
    // entries stay comparable across the plane's introduction. The
    // warm_metrics entries re-arm recording from inside their own
    // workloads; everything after the loop runs at the production
    // default (on).
    econcast_metrics::set_recording(false);
    for mut e in entries {
        let m = measure(&e.name, &mut *e.workload);
        println!(
            "{:<28} {:>12}/iter ({} iters)",
            m.name,
            format_seconds(m.mean_s),
            m.iterations
        );
        if e.quick_sensitive {
            quick_sensitive.push(e.name);
        }
        measurements.push(m);
    }
    econcast_metrics::set_recording(true);
    let mean_of = |name: &str| {
        measurements
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.mean_s)
    };
    let p4_n12_speedup = match (mean_of("p4_solve_n12_naive"), mean_of("p4_solve_n12")) {
        (Some(naive), Some(fast)) if fast > 0.0 => Some(naive / fast),
        _ => None,
    };
    if let Some(s) = p4_n12_speedup {
        println!("p4_solve at N=12: {s:.1}x faster than the naive seed kernel");
    }
    // Lazily bound stacks for the network tail-latency passes: fresh
    // servers (the suite's own live for the process but their
    // addresses are private to `suite()`), bound once and reused
    // across batch sizes.
    let mut socket_tail_addr: Option<Option<std::net::SocketAddr>> = None;
    let mut cluster_tail_addr: Option<Option<std::net::SocketAddr>> = None;
    let mut cluster_spans: Vec<SpanStats> = Vec::new();
    let service: Vec<ServiceThroughput> = SERVICE_BATCH_SIZES
        .iter()
        .filter_map(|&batch| {
            let cold = mean_of(&service_entry_name("cold", batch))?;
            let warm = mean_of(&service_entry_name("warm", batch))?;
            let warm_metrics = mean_of(&service_entry_name("warm_metrics", batch));
            let socket = mean_of(&service_entry_name("socket", batch));
            let cluster = mean_of(&service_entry_name("cluster", batch));
            // Tail-latency passes, separate from the throughput loops
            // above so the rps entries keep measuring the tracing-off
            // path (the overhead contract bench_gate holds them to).
            let tail = warm_latency_percentiles(batch, quick);
            let socket_tail = socket.and_then(|_| {
                net_latency_percentiles(
                    || *socket_tail_addr.get_or_insert_with(|| bind_socket_server().ok()),
                    batch,
                    quick,
                )
                .map(|(t, _)| t)
            });
            let cluster_tail = cluster.and_then(|_| {
                let (t, spans) = net_latency_percentiles(
                    || *cluster_tail_addr.get_or_insert_with(|| bind_cluster_front().ok()),
                    batch,
                    quick,
                )?;
                // Merge harvests across batch passes, keeping the
                // best-sampled row per span: `dial` fires only while
                // the stack first binds (the smallest batch's pass),
                // `remote_serve` is richest — and ties resolve to —
                // the largest batch's pass, and `failover_reserve`
                // stays zero-sample here (healthy stack) until the
                // forced-fault pass below fills it.
                for s in spans {
                    match cluster_spans.iter_mut().find(|c| c.name == s.name) {
                        Some(c) if s.count >= c.count => *c = s,
                        Some(_) => {}
                        None => cluster_spans.push(s),
                    }
                }
                Some(t)
            });
            Some(ServiceThroughput {
                batch,
                cold_rps: batch as f64 / cold,
                warm_rps: batch as f64 / warm,
                warm_metrics_rps: warm_metrics.map(|s| batch as f64 / s),
                socket_rps: socket.map(|s| batch as f64 / s),
                cluster_rps: cluster.map(|s| batch as f64 / s),
                warm_p50_us: tail.map(|t| t.0),
                warm_p99_us: tail.map(|t| t.1),
                warm_p999_us: tail.map(|t| t.2),
                socket_p50_us: socket_tail.map(|t| t.0),
                socket_p99_us: socket_tail.map(|t| t.1),
                socket_p999_us: socket_tail.map(|t| t.2),
                cluster_p50_us: cluster_tail.map(|t| t.0),
                cluster_p99_us: cluster_tail.map(|t| t.1),
                cluster_p999_us: cluster_tail.map(|t| t.2),
            })
        })
        .collect();
    // The healthy passes above never exercise failover, so the
    // `failover_reserve` row would report `count: 0` with null
    // percentiles forever. Fill it from a forced-fault pass (a dead
    // backend whose whole batch re-serves on the local fallback); the
    // count-wins merge keeps the healthy harvests for the other spans.
    if cluster_spans
        .iter()
        .any(|c| c.name == "failover_reserve" && c.count == 0)
    {
        if let Some(s) = failover_reserve_percentiles(quick) {
            for c in cluster_spans.iter_mut() {
                if c.name == s.name && s.count >= c.count {
                    *c = s;
                }
            }
        }
    }
    for s in &service {
        println!(
            "policy service @ batch {:>3}: {:>10.0} req/s cold, {:>12.0} req/s warm, \
             {:>12.0} req/s warm+metrics, {:>10.0} req/s socket, {:>10.0} req/s cluster",
            s.batch,
            s.cold_rps,
            s.warm_rps,
            s.warm_metrics_rps.unwrap_or(f64::NAN),
            s.socket_rps.unwrap_or(f64::NAN),
            s.cluster_rps.unwrap_or(f64::NAN)
        );
        let tail_line = |phase: &str, p: (Option<f64>, Option<f64>, Option<f64>)| {
            if let (Some(p50), Some(p99), Some(p999)) = p {
                println!(
                    "             batch {:>3} {phase}:  p50 {:>9.1} us, p99 {:>12.1} us, \
                     p99.9 {:>8.1} us per call",
                    s.batch, p50, p99, p999
                );
            }
        };
        tail_line("warm", (s.warm_p50_us, s.warm_p99_us, s.warm_p999_us));
        tail_line("sock", (s.socket_p50_us, s.socket_p99_us, s.socket_p999_us));
        tail_line(
            "clus",
            (s.cluster_p50_us, s.cluster_p99_us, s.cluster_p999_us),
        );
    }
    for sp in &cluster_spans {
        println!(
            "cluster span {:>16}: {:>6} samples, p50 {:>9.1} us, p99 {:>9.1} us",
            sp.name,
            sp.count,
            sp.p50_us.unwrap_or(f64::NAN),
            sp.p99_us.unwrap_or(f64::NAN)
        );
    }
    // Open-loop overload rows, against a dedicated small-queue cluster
    // stack (not the shared front above — its production-sized queue
    // would never shed, and the rows exist to show the ladder working).
    // Filtered runs skip it: a partial suite is a perf-iteration loop,
    // not an overload characterization.
    let openloop = if filter.is_none() {
        let cfg = if quick {
            crate::openloop::OpenLoopConfig::quick()
        } else {
            crate::openloop::OpenLoopConfig::default()
        };
        match crate::openloop::run_on_dedicated_stack(&cfg) {
            Ok(run) => Some(run.report),
            Err(e) => {
                eprintln!("[open-loop overload pass skipped: {e}]");
                None
            }
        }
    } else {
        None
    };
    if let Some(ol) = &openloop {
        println!(
            "open-loop capacity: {:>10.0} req/s (closed-loop calibration)",
            ol.capacity_rps
        );
        for r in &ol.rows {
            println!(
                "open loop @ {:>4.1}x: {:>8.0} req/s offered, {:>8.0} req/s goodput, \
                 shed {:>5.1}%, degraded {:>5.1}%, accepted p99 {:>9.1} us",
                r.multiplier,
                r.offered_rps,
                r.goodput_rps,
                r.shed_rate * 100.0,
                r.degraded_rate * 100.0,
                r.accepted_p99_us.unwrap_or(f64::NAN)
            );
        }
    }
    SuiteReport {
        measurements,
        p4_n12_speedup,
        service,
        threads: econcast_parallel::effective_threads(usize::MAX),
        quick,
        quick_sensitive,
        cluster_spans,
        openloop,
    }
}

/// Warm `serve_batch` tail latency at one batch size: arm the trace
/// layer's latency histograms (spans stay off — no event collection),
/// drive a warmed service for a fixed call count, and read the
/// `service/serve_batch` percentiles. Returns `(p50, p99, p99.9)` in
/// µs per call, or `None` when no samples landed.
fn warm_latency_percentiles(size: usize, quick: bool) -> Option<(f64, f64, f64)> {
    let calls = if quick { 120 } else { 400 };
    let batch = service_batch(size);
    let mut svc = warm_service();
    svc.serve_batch(&batch); // warm the tiers before arming
    econcast_trace::set_histograms(true);
    econcast_trace::clear_histograms();
    for _ in 0..calls {
        black_box(svc.serve_batch(&batch));
    }
    econcast_trace::set_histograms(false);
    let p = econcast_trace::percentiles("service", "serve_batch");
    econcast_trace::clear_histograms();
    let p = p?;
    let us = |ns: u64| ns as f64 / 1000.0;
    Some((us(p.p50_ns), us(p.p99_ns), us(p.p999_ns)))
}

/// Forced-fault pass for the `failover_reserve` span. A healthy run
/// never fires it, so the tail-latency harvests leave its
/// `cluster_spans` row at `count: 0` with null percentiles — a reader
/// could not tell what the reserve path *costs* when it does fire.
/// This pass builds an in-process [`ClusterRouter`] whose only remote
/// slot points at a dead loopback address (a listener bound and
/// immediately dropped, so the port refuses connections), which makes
/// every batch re-serve on the local fallback and fire exactly one
/// `failover_reserve` span per call. The first, unarmed call eats the
/// dial failure and marks the backend down (`unhealthy_after: 1`,
/// reprobe pushed past the pass), so the armed calls measure the
/// steady-state reserve path — fallback solve time, not dial
/// timeouts.
fn failover_reserve_percentiles(quick: bool) -> Option<SpanStats> {
    let calls = if quick { 120 } else { 400 };
    let dead = std::net::TcpListener::bind("127.0.0.1:0")
        .ok()?
        .local_addr()
        .ok()?; // listener dropped here — the port now refuses connections
    let mut router = ClusterRouter::new(
        &[SlotSpec::Remote(dead)],
        ClusterConfig {
            service: ServiceConfig {
                lru_capacity: 4096,
                ..ServiceConfig::default()
            },
            remote: RemoteConfig {
                dial_retries: 1,
                backoff: std::time::Duration::ZERO,
                unhealthy_after: 1,
                reprobe_after: std::time::Duration::from_secs(3600),
                ..RemoteConfig::default()
            },
            ..ClusterConfig::default()
        },
    );
    let batch = service_batch(32);
    black_box(router.serve_batch(&batch)); // dial fails, backend marked down, fallback warms
    econcast_trace::set_histograms(true);
    econcast_trace::clear_histograms();
    for _ in 0..calls {
        black_box(router.serve_batch(&batch));
    }
    econcast_trace::set_histograms(false);
    let p = econcast_trace::percentiles("cluster", "failover_reserve");
    econcast_trace::clear_histograms();
    let p = p?;
    let us = |ns: u64| ns as f64 / 1000.0;
    Some(SpanStats {
        name: "failover_reserve",
        count: p.count,
        p50_us: Some(us(p.p50_ns)),
        p99_us: Some(us(p.p99_ns)),
        p999_us: Some(us(p.p999_ns)),
    })
}

/// Round-trip tail latency through a live TCP endpoint at one batch
/// size: resolve (possibly lazily bind) the endpoint, dial, warm
/// once, then time `calls` pipelined `serve_batch` round trips with
/// the monotonic clock (client percentiles are exact order statistics
/// over the samples, not histogram buckets). The trace layer's
/// histograms are armed *before* `bind` runs so backend `dial` spans
/// from a first-time cluster bind land in the harvest; the second
/// return value carries whatever `cluster`-category spans fired
/// ([`CLUSTER_SPAN_NAMES`]) — all `count: 0` rows when the endpoint
/// is the plain socket server.
fn net_latency_percentiles(
    bind: impl FnOnce() -> Option<std::net::SocketAddr>,
    size: usize,
    quick: bool,
) -> Option<((f64, f64, f64), Vec<SpanStats>)> {
    let calls = if quick { 120 } else { 400 };
    let batch = service_batch(size);
    econcast_trace::set_histograms(true);
    econcast_trace::clear_histograms();
    let sampled = (|| {
        let addr = bind()?;
        let mut client = PolicyClient::connect(addr, size.min(u16::MAX as usize) as u16).ok()?;
        client.serve_batch(&batch).ok()?; // warm (the dial span lands inside the armed window)
        let mut samples_us = Vec::with_capacity(calls);
        for _ in 0..calls {
            let t = std::time::Instant::now();
            black_box(client.serve_batch(&batch).ok()?);
            samples_us.push(t.elapsed().as_secs_f64() * 1e6);
        }
        Some(samples_us)
    })();
    econcast_trace::set_histograms(false);
    let us = |ns: u64| ns as f64 / 1000.0;
    let spans = CLUSTER_SPAN_NAMES
        .iter()
        .map(|&name| {
            let p = econcast_trace::percentiles("cluster", name);
            SpanStats {
                name,
                count: p.as_ref().map_or(0, |p| p.count),
                p50_us: p.as_ref().map(|p| us(p.p50_ns)),
                p99_us: p.as_ref().map(|p| us(p.p99_ns)),
                p999_us: p.as_ref().map(|p| us(p.p999_ns)),
            }
        })
        .collect();
    econcast_trace::clear_histograms();
    let mut samples_us = sampled?;
    samples_us.sort_by(f64::total_cmp);
    let q = |f: f64| samples_us[((samples_us.len() - 1) as f64 * f).round() as usize];
    Some(((q(0.50), q(0.99), q(0.999)), spans))
}

/// `git rev-parse --short HEAD`, or `ECONCAST_GIT_SHA`, or "unknown".
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("ECONCAST_GIT_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Serializes a suite report as pretty-printed JSON (hand-rolled —
/// no serde offline; every value is a number, bool, or `[0-9a-z_-]`
/// string, so no escaping is needed).
pub fn to_json(report: &SuiteReport, sha: &str) -> String {
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"git_sha\": \"{sha}\",\n"));
    s.push_str(&format!("  \"created_unix\": {unix},\n"));
    s.push_str(&format!("  \"threads\": {},\n", report.threads));
    s.push_str(&format!("  \"quick\": {},\n", report.quick));
    s.push_str(&format!(
        "  \"quick_sensitive\": [{}],\n",
        report
            .quick_sensitive
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str("  \"entries\": [\n");
    for (i, m) in report.measurements.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_s\": {:e}, \"best_s\": {:e}, \
             \"iterations\": {}, \"per_second\": {:.3}}}{}\n",
            m.name,
            m.mean_s,
            m.best_s,
            m.iterations,
            m.throughput(),
            if i + 1 < report.measurements.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"service\": [\n");
    for (i, t) in report.service.iter().enumerate() {
        let opt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.3}"),
            None => "null".to_string(),
        };
        s.push_str(&format!(
            "    {{\"batch\": {}, \"cold_rps\": {:.3}, \"warm_rps\": {:.3}, \
             \"warm_metrics_rps\": {}, \
             \"socket_rps\": {}, \"cluster_rps\": {}, \
             \"warm_p50_us\": {}, \"warm_p99_us\": {}, \"warm_p999_us\": {}, \
             \"socket_p50_us\": {}, \"socket_p99_us\": {}, \"socket_p999_us\": {}, \
             \"cluster_p50_us\": {}, \"cluster_p99_us\": {}, \"cluster_p999_us\": {}}}{}\n",
            t.batch,
            t.cold_rps,
            t.warm_rps,
            opt(t.warm_metrics_rps),
            opt(t.socket_rps),
            opt(t.cluster_rps),
            opt(t.warm_p50_us),
            opt(t.warm_p99_us),
            opt(t.warm_p999_us),
            opt(t.socket_p50_us),
            opt(t.socket_p99_us),
            opt(t.socket_p999_us),
            opt(t.cluster_p50_us),
            opt(t.cluster_p99_us),
            opt(t.cluster_p999_us),
            if i + 1 < report.service.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"cluster_spans\": [\n");
    for (i, sp) in report.cluster_spans.iter().enumerate() {
        let opt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.3}"),
            None => "null".to_string(),
        };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"count\": {}, \"p50_us\": {}, \
             \"p99_us\": {}, \"p999_us\": {}}}{}\n",
            sp.name,
            sp.count,
            opt(sp.p50_us),
            opt(sp.p99_us),
            opt(sp.p999_us),
            if i + 1 < report.cluster_spans.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ],\n");
    match &report.openloop {
        Some(ol) => {
            let opt = |v: Option<f64>| match v {
                Some(v) => format!("{v:.3}"),
                None => "null".to_string(),
            };
            s.push_str("  \"openloop\": {\n");
            s.push_str(&format!(
                "    \"capacity_rps\": {:.3},\n    \"rows\": [\n",
                ol.capacity_rps
            ));
            for (i, r) in ol.rows.iter().enumerate() {
                s.push_str(&format!(
                    "      {{\"multiplier\": {:.3}, \"offered\": {}, \"accepted\": {}, \
                     \"shed\": {}, \"offered_rps\": {:.3}, \"goodput_rps\": {:.3}, \
                     \"shed_rate\": {:.4}, \"degraded_rate\": {:.4}, \
                     \"deadline_expired\": {}, \"error_count\": {}, \
                     \"accepted_p50_us\": {}, \"accepted_p99_us\": {}, \
                     \"accepted_p999_us\": {}}}{}\n",
                    r.multiplier,
                    r.offered,
                    r.accepted,
                    r.shed,
                    r.offered_rps,
                    r.goodput_rps,
                    r.shed_rate,
                    r.degraded_rate,
                    r.deadline_expired,
                    r.error_count,
                    opt(r.accepted_p50_us),
                    opt(r.accepted_p99_us),
                    opt(r.accepted_p999_us),
                    if i + 1 < ol.rows.len() { "," } else { "" }
                ));
            }
            s.push_str("    ]\n  },\n");
        }
        None => s.push_str("  \"openloop\": null,\n"),
    }
    s.push_str("  \"derived\": {\n");
    match report.p4_n12_speedup {
        Some(x) => s.push_str(&format!("    \"p4_n12_speedup_vs_naive\": {x:.2}\n")),
        None => s.push_str("    \"p4_n12_speedup_vs_naive\": null\n"),
    }
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

/// Runs the suite and writes `BENCH_<sha>.json` into `dir`, returning
/// the file path. Filtered runs (a partial suite) would make a
/// misleading baseline, so they skip the write and return `None` for
/// the path half — the measurements still print.
pub fn run_and_write(
    dir: &std::path::Path,
    quick: bool,
    filter: Option<&str>,
) -> std::io::Result<Option<std::path::PathBuf>> {
    let report = run_suite(quick, filter);
    if let Some(f) = filter {
        // A filter matching nothing is an error, not a silent pass —
        // otherwise a renamed entry would turn a CI smoke step into a
        // green no-op forever.
        if report.measurements.is_empty() {
            return Err(std::io::Error::other(format!(
                "--filter `{f}` matched no suite entries"
            )));
        }
        return Ok(None);
    }
    let sha = git_sha();
    let path = dir.join(format!("BENCH_{sha}.json"));
    std::fs::write(&path, to_json(&report, &sha))?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_reference_agrees_with_solver() {
        // The baseline must solve the same problem: identical
        // trajectories for a fixed iteration budget.
        let nodes = vec![params(); 5];
        // Pin the Gray-code kernel: the naive reference enumerates, so
        // the fast side must walk the same trajectory (Auto would
        // route this homogeneous instance to the closed form).
        let opts = fixed_iters(40, KernelSelect::GrayCode);
        let naive = solve_p4_naive_reference(&nodes, 0.5, ThroughputMode::Groupput, opts);
        let fast =
            econcast_statespace::solve_p4(&nodes, 0.5, ThroughputMode::Groupput, opts).throughput;
        assert!(
            (naive - fast).abs() <= 1e-9 * (1.0 + fast.abs()),
            "naive {naive} vs workspace {fast}"
        );
    }

    #[test]
    fn json_shape_is_parsable_enough() {
        let report = SuiteReport {
            measurements: vec![Measurement {
                name: "x".into(),
                iterations: 3,
                mean_s: 0.5,
                best_s: 0.4,
            }],
            p4_n12_speedup: Some(12.5),
            service: vec![ServiceThroughput {
                batch: 32,
                cold_rps: 1234.5,
                warm_rps: 99999.0,
                warm_metrics_rps: Some(97500.25),
                socket_rps: Some(4321.0),
                cluster_rps: Some(2100.5),
                warm_p50_us: Some(12.25),
                warm_p99_us: Some(99.5),
                warm_p999_us: None,
                socket_p50_us: Some(150.0),
                socket_p99_us: Some(420.5),
                socket_p999_us: None,
                cluster_p50_us: None,
                cluster_p99_us: Some(910.25),
                cluster_p999_us: None,
            }],
            threads: 4,
            quick: true,
            quick_sensitive: vec!["x".into(), "y".into()],
            cluster_spans: vec![SpanStats {
                name: "remote_serve",
                count: 240,
                p50_us: Some(801.5),
                p99_us: Some(1900.0),
                p999_us: None,
            }],
            openloop: Some(crate::openloop::OpenLoopReport {
                capacity_rps: 5000.0,
                rows: vec![crate::openloop::OpenLoopRow {
                    multiplier: 2.0,
                    offered: 400,
                    accepted: 300,
                    shed: 100,
                    offered_rps: 10000.0,
                    goodput_rps: 7500.25,
                    shed_rate: 0.25,
                    degraded_rate: 0.125,
                    deadline_expired: 0,
                    error_count: 0,
                    accepted_p50_us: Some(850.0),
                    accepted_p99_us: Some(12000.5),
                    accepted_p999_us: None,
                }],
            }),
        };
        let j = to_json(&report, "abc123");
        assert!(j.contains("\"git_sha\": \"abc123\""));
        assert!(j.contains("\"quick_sensitive\": [\"x\", \"y\"],"));
        assert!(j.contains("\"name\": \"x\""));
        assert!(j.contains("\"p4_n12_speedup_vs_naive\": 12.50"));
        assert!(j.contains("\"batch\": 32"));
        assert!(j.contains("\"cold_rps\": 1234.500"));
        assert!(j.contains("\"warm_metrics_rps\": 97500.250"));
        assert!(j.contains("\"socket_rps\": 4321.000"));
        assert!(j.contains("\"cluster_rps\": 2100.500"));
        assert!(j.contains("\"warm_p50_us\": 12.250"));
        assert!(j.contains("\"warm_p99_us\": 99.500"));
        assert!(j.contains("\"warm_p999_us\": null"));
        assert!(j.contains("\"socket_p99_us\": 420.500"));
        assert!(j.contains("\"cluster_p50_us\": null"));
        assert!(j.contains("\"cluster_p99_us\": 910.250"));
        assert!(j.contains("\"name\": \"remote_serve\", \"count\": 240"));
        assert!(j.contains("\"p99_us\": 1900.000"));
        assert!(j.contains("\"capacity_rps\": 5000.000"));
        assert!(j.contains("\"multiplier\": 2.000"));
        assert!(j.contains("\"goodput_rps\": 7500.250"));
        assert!(j.contains("\"shed_rate\": 0.2500"));
        assert!(j.contains("\"accepted_p99_us\": 12000.500"));
        assert!(j.contains("\"accepted_p999_us\": null"));
        assert!(j.starts_with("{\n") && j.ends_with("}\n"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
