//! The event queue: a time-ordered heap of scheduled events with
//! lazy invalidation.
//!
//! Transition rates change whenever the channel state or a multiplier
//! changes, so previously sampled exponential timers must be discarded.
//! Rather than removing heap entries (O(n)), every spontaneous event is
//! stamped with the owning node's *generation* at scheduling time; the
//! engine bumps a node's generation to invalidate all of its pending
//! timers and simply drops stale entries as they surface.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use econcast_core::NodeState;

/// What a scheduled event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A spontaneous state transition of `node` into `to` (one of
    /// s→l, l→s, l→x). Valid only if the node's generation still
    /// matches `gen`.
    Transition {
        /// Owning node.
        node: usize,
        /// Generation stamp for lazy invalidation.
        gen: u64,
        /// Target state.
        to: NodeState,
    },
    /// End of one unit packet transmitted by `node`.
    PacketEnd {
        /// Transmitting node.
        node: usize,
        /// Generation stamp.
        gen: u64,
    },
    /// End of the post-packet ping interval of `node` (EconCast-C with
    /// the realism knob enabled).
    PingIntervalEnd {
        /// Transmitting node.
        node: usize,
        /// Generation stamp.
        gen: u64,
    },
    /// Periodic multiplier update (17) for `node`; never invalidated.
    EtaUpdate {
        /// Owning node.
        node: usize,
    },
    /// Global harvest-phase edge for time-varying budgets; `on` is the
    /// phase being *entered*. Never invalidated.
    HarvestSwitch {
        /// Whether power is available from this instant.
        on: bool,
    },
}

/// Heap entry ordered by time (earliest first), ties broken by
/// insertion sequence for determinism.
#[derive(Debug, Clone, Copy)]
struct Scheduled {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are never NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event queue with lazy invalidation
/// accounting.
///
/// Stale entries (whose generation no longer matches) are normally
/// dropped as they surface at [`EventQueue::pop`]; the engine reports
/// each one via [`EventQueue::note_stale_drop`]. Long runs with
/// frequent rate changes can nevertheless accumulate stale entries
/// faster than they surface (every multiplier update invalidates up to
/// two pending timers per node), so the queue also supports explicit
/// [`EventQueue::compact`]ion, which removes every dead entry while
/// preserving the `(time, seq)` pop order exactly.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    stale_drops: u64,
    compactions: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `time`. Infinite times (from
    /// zero-rate exponentials) are silently dropped — the transition
    /// never fires.
    pub fn schedule(&mut self, time: f64, event: Event) {
        debug_assert!(!time.is_nan());
        if time.is_finite() {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Scheduled { time, seq, event });
        }
    }

    /// Pops the earliest event, returning `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Records one stale entry dropped lazily by the consumer at pop
    /// time.
    pub fn note_stale_drop(&mut self) {
        self.stale_drops += 1;
    }

    /// Total stale entries discarded so far — lazily at pop time plus
    /// eagerly by [`EventQueue::compact`].
    pub fn stale_drops(&self) -> u64 {
        self.stale_drops
    }

    /// Number of compaction passes performed.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Removes every entry for which `is_live` returns `false`,
    /// counting them as stale drops. Relative order of the survivors is
    /// unchanged (entries keep their original `(time, seq)` keys), so
    /// compaction is invisible to the simulation.
    ///
    /// Returns the number of entries removed.
    pub fn compact(&mut self, is_live: impl Fn(&Event) -> bool) -> usize {
        let before = self.heap.len();
        let old = std::mem::take(&mut self.heap);
        let mut kept: Vec<Scheduled> = Vec::with_capacity(before);
        kept.extend(old.into_iter().filter(|s| is_live(&s.event)));
        let removed = before - kept.len();
        self.stale_drops += removed as u64;
        self.compactions += 1;
        self.heap = BinaryHeap::from(kept);
        removed
    }

    /// Whether the heap has outgrown `live_bound` (an upper bound on
    /// the number of genuinely live entries) enough that a compaction
    /// pass pays for itself: stale entries exceeding 4× the live
    /// bound.
    pub fn wants_compaction(&self, live_bound: usize) -> bool {
        self.heap.len() > live_bound.saturating_mul(4).max(64)
    }

    /// Number of pending entries (including stale ones awaiting lazy
    /// invalidation).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(node: usize) -> Event {
        Event::EtaUpdate { node }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, ev(3));
        q.schedule(1.0, ev(1));
        q.schedule(2.0, ev(2));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ev(10));
        q.schedule(1.0, ev(20));
        q.schedule(1.0, ev(30));
        let nodes: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::EtaUpdate { node } => node,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(nodes, vec![10, 20, 30]);
    }

    #[test]
    fn infinite_times_are_dropped() {
        let mut q = EventQueue::new();
        q.schedule(f64::INFINITY, ev(1));
        assert!(q.is_empty());
        q.schedule(0.5, ev(2));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn compaction_preserves_order_and_counts_stale() {
        let mut q = EventQueue::new();
        // Interleave live (even node) and stale (odd node) entries,
        // with ties to exercise seq-order preservation.
        for i in 0..100usize {
            q.schedule((i / 2) as f64, ev(i));
        }
        assert_eq!(q.len(), 100);
        let removed = q.compact(|e| match e {
            Event::EtaUpdate { node } => node % 2 == 0,
            _ => true,
        });
        assert_eq!(removed, 50);
        assert_eq!(q.stale_drops(), 50);
        assert_eq!(q.compactions(), 1);
        assert_eq!(q.len(), 50);
        // Survivors pop in the exact original order.
        let mut prev = (f64::NEG_INFINITY, 0usize);
        let mut popped = 0;
        while let Some((t, e)) = q.pop() {
            let node = match e {
                Event::EtaUpdate { node } => node,
                _ => unreachable!(),
            };
            assert_eq!(node % 2, 0);
            assert!(
                t > prev.0 || (t == prev.0 && node > prev.1),
                "order violated: {prev:?} then ({t}, {node})"
            );
            prev = (t, node);
            popped += 1;
        }
        assert_eq!(popped, 50);
    }

    #[test]
    fn compaction_trigger_threshold() {
        let mut q = EventQueue::new();
        for i in 0..64 {
            q.schedule(i as f64, ev(i));
        }
        // 64 entries never trigger (floor).
        assert!(!q.wants_compaction(1));
        q.schedule(64.0, ev(64));
        assert!(q.wants_compaction(1)); // 65 > max(4·1, 64)
        assert!(!q.wants_compaction(17)); // 65 ≤ max(4·17, 64)
    }

    #[test]
    fn lazy_drop_accounting() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ev(1));
        assert_eq!(q.stale_drops(), 0);
        let _ = q.pop();
        q.note_stale_drop();
        assert_eq!(q.stale_drops(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ev(5));
        q.schedule(1.0, ev(1));
        assert_eq!(q.pop().unwrap().0, 1.0);
        q.schedule(2.0, ev(2));
        assert_eq!(q.pop().unwrap().0, 2.0);
        assert_eq!(q.pop().unwrap().0, 5.0);
        assert!(q.pop().is_none());
    }
}
