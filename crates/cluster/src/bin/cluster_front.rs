//! The cluster front executable: topology discovery → `ClusterFront`
//! over the discovered backends, with the `ClusterHealer` sweep
//! supervising them.
//!
//! ```text
//! cluster_front [--config PATH] [--backends A:P,B:P] [--listen H:P]
//!               [--queue-capacity N] [--max-queue-delay-ms T]
//!               [--max-connections N] [--max-batch B]
//! ```
//!
//! Configuration is layered — built-in defaults, then `--config` file,
//! then `ECONCAST_CLUSTER_*` environment variables, then the flags
//! above — and the resolved topology is printed *with provenance*
//! (which layer set each field) before anything binds, so a
//! misdeployed front tells on itself in its first lines of output.
//!
//! Prints `LISTENING <addr>` once bound (same readiness contract as
//! `policy_backend`), then serves until stdin EOF or kill.

use econcast_cluster::{
    ClusterConfig, ClusterFront, ClusterHealer, ClusterRouter, HealerConfig, Topology,
};
use std::io::{Read, Write};

fn main() {
    let mut config_path: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--config" {
            match args.next() {
                Some(path) => config_path = Some(path),
                None => fail("cli `--config`: flag needs a value"),
            }
        } else {
            rest.push(flag);
        }
    }

    let file_text = config_path.as_ref().map(|path| {
        std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read config `{path}`: {e}")))
    });
    let file = match (&config_path, &file_text) {
        (Some(path), Some(text)) => Some((path.as_str(), text.as_str())),
        _ => None,
    };

    let topo = Topology::discover(file, |var| std::env::var(var).ok(), &rest)
        .unwrap_or_else(|e| fail(&format!("topology discovery failed: {e}")));
    eprint!("{}", topo.provenance_report());

    let slots = topo
        .slot_specs()
        .unwrap_or_else(|e| fail(&format!("backend resolution failed: {e}")));
    let router = ClusterRouter::new(&slots, ClusterConfig::default());
    let front = ClusterFront::bind(topo.listen.value.as_str(), router, topo.front_config())
        .unwrap_or_else(|e| fail(&format!("cannot bind {}: {e}", topo.listen.value)));
    let handle = front.spawn();
    let healer = ClusterHealer::spawn(
        std::sync::Arc::clone(handle.router()),
        HealerConfig::default(),
    );

    // Readiness signal, same contract as policy_backend.
    println!("LISTENING {}", handle.addr());
    std::io::stdout().flush().expect("flush readiness line");

    // Serve until the parent goes away (stdin EOF) or we are killed.
    let mut sink = [0u8; 256];
    let mut stdin = std::io::stdin();
    loop {
        match stdin.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    healer.shutdown();
    handle.shutdown();
}

fn fail(msg: &str) -> ! {
    eprintln!("cluster_front: {msg}");
    eprintln!(
        "usage: cluster_front [--config PATH] [--backends A:P,B:P] [--listen H:P] \
         [--queue-capacity N] [--max-queue-delay-ms T] [--max-connections N] [--max-batch B]"
    );
    std::process::exit(2);
}
