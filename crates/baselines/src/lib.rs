//! # econcast-baselines — prior-art comparison protocols
//!
//! Section VII-C compares EconCast against three earlier neighbor-
//! discovery protocols, all operating under stricter assumptions
//! (homogeneous nodes, known `N`, and in Searchlight's case slot
//! synchronization):
//!
//! * [`birthday`] — the probabilistic Birthday protocol of McGlynn &
//!   Borbash (MobiHoc'01): per slot, transmit w.p. `p_x`, listen w.p.
//!   `p_l`, else sleep;
//! * [`panda`] — Panda (Margolies et al., JSAC'16): nodes sleep for an
//!   exponential time, wake to carrier-sense, receive if a transmission
//!   is detected and otherwise transmit;
//! * [`searchlight`] — Searchlight (Bakht et al., MobiCom'12): a
//!   deterministic slotted anchor+probe schedule with a worst-case
//!   pairwise discovery bound.
//!
//! ## Fidelity note (substitutions)
//!
//! The paper evaluates these baselines from their original papers'
//! *analytical* throughput expressions, which are not reproduced in the
//! EconCast text. This crate substitutes:
//!
//! * Birthday — the standard slotted analysis (exact for the model
//!   stated above), optimized under the power budget;
//! * Panda — a faithful discrete-event Monte-Carlo implementation of
//!   the sleep → carrier-sense → receive/transmit cycle, with the wake
//!   rate tuned so measured consumption meets the budget (Panda's own
//!   optimizer does the analytical equivalent);
//! * Searchlight — the period is set by the power budget's duty cycle
//!   and the worst-case bound of the *striped* variant
//!   (`(t/2)²` slots) is used; with the paper's 50 ms slots, 1 ms
//!   beacons, and `ρ/L = 2%` duty cycle this reproduces the quoted
//!   125 s worst case. Its throughput "upper bound" multiplies the
//!   pairwise rate by `N − 1` exactly as the paper does.
//!
//! Each module's docs state the model assumptions precisely so results
//! are interpretable.

pub mod birthday;
pub mod panda;
pub mod searchlight;

pub use birthday::BirthdayProtocol;
pub use panda::{PandaConfig, PandaResult};
pub use searchlight::Searchlight;
