//! Request-mix-driven grid prewarming.
//!
//! The interpolation-grid tier builds lazily: the first homogeneous
//! request of a family pays ~2·`points` exact solves before being
//! served. Under live traffic that latency spike lands on an unlucky
//! caller. The prewarmer moves it off the request path: each shard
//! records the observed mix of homogeneous `(N, ρ)` families (a
//! [`MixRecorder`]), and a background pass builds grids for the
//! hottest not-yet-resident families between batches.
//!
//! Prewarming is a pure latency optimization — a prewarmed grid is
//! bit-identical to the lazily built one (the build is deterministic),
//! so responses never depend on whether, or when, the prewarmer ran.

use crate::grid::FamilyKey;
use std::collections::HashMap;
use std::time::Duration;

/// Tuning knobs for the prewarmer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrewarmConfig {
    /// Observations of a family before it qualifies for prewarming —
    /// a one-off request never justifies a grid build.
    pub min_hits: u64,
    /// Upper bound on grid builds per prewarm cycle, keeping each
    /// background pass short so it never starves request serving.
    pub max_per_cycle: usize,
    /// Period of the server's background prewarm thread.
    pub interval: Duration,
}

impl Default for PrewarmConfig {
    fn default() -> Self {
        PrewarmConfig {
            min_hits: 3,
            max_per_cycle: 2,
            interval: Duration::from_millis(100),
        }
    }
}

/// Per-shard record of the observed homogeneous request mix.
#[derive(Debug, Default)]
pub struct MixRecorder {
    counts: HashMap<FamilyKey, u64>,
    observations: u64,
}

impl MixRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observed homogeneous request of `family`.
    pub fn record(&mut self, family: FamilyKey) {
        *self.counts.entry(family).or_insert(0) += 1;
        self.observations += 1;
    }

    /// Total homogeneous requests recorded.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Distinct families observed.
    pub fn families(&self) -> usize {
        self.counts.len()
    }

    /// Families with at least `min_hits` observations, hottest first.
    /// Ties break on the family fields so the order never depends on
    /// hash-map iteration order.
    pub fn candidates(&self, min_hits: u64) -> Vec<(FamilyKey, u64)> {
        let mut out: Vec<(FamilyKey, u64)> = self
            .counts
            .iter()
            .filter(|(_, &c)| c >= min_hits)
            .map(|(&f, &c)| (f, c))
            .collect();
        out.sort_by(|(fa, ca), (fb, cb)| {
            cb.cmp(ca)
                .then_with(|| fa.n.cmp(&fb.n))
                .then_with(|| fa.sigma.cmp(&fb.sigma))
                .then_with(|| fa.listen.cmp(&fb.listen))
                .then_with(|| fa.transmit.cmp(&fb.transmit))
                .then_with(|| fa.mode.cmp(&fb.mode))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use econcast_core::ThroughputMode::{Anyput, Groupput};

    fn family(n: usize) -> FamilyKey {
        FamilyKey::new(n, 500e-6, 450e-6, 0.5, Groupput)
    }

    #[test]
    fn candidates_rank_by_heat_with_deterministic_ties() {
        let mut rec = MixRecorder::new();
        for _ in 0..5 {
            rec.record(family(12));
        }
        for _ in 0..2 {
            rec.record(family(50));
        }
        // Tied families order by their fields, not hash order.
        for _ in 0..5 {
            rec.record(family(8));
        }
        rec.record(FamilyKey::new(12, 500e-6, 450e-6, 0.5, Anyput));
        assert_eq!(rec.observations(), 13);
        assert_eq!(rec.families(), 4);

        let hot = rec.candidates(2);
        assert_eq!(hot.len(), 3, "the single-hit anyput family is cold");
        assert_eq!((hot[0].0.n, hot[0].1), (8, 5));
        assert_eq!((hot[1].0.n, hot[1].1), (12, 5));
        assert_eq!((hot[2].0.n, hot[2].1), (50, 2));
    }
}
