//! The SEH-01 solar harvester as a pluggable power profile.
//!
//! The paper's experiments disable the solar cell and emulate the
//! budget in software; real deployments harvest 10–100 µW indoors
//! (Section I's references 7 and 8). The profile abstraction lets
//! experiments exercise the time-varying-budget extension the paper
//! sketches in Section III-A ("the analysis can be easily extended to
//! the case with time-varying power budget with the same constant
//! mean").

/// A deterministic harvest-power profile (W as a function of time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolarHarvester {
    /// Constant output — the paper's emulated budget.
    Constant {
        /// Output power (W).
        power_w: f64,
    },
    /// Office lighting: `power_w` while lights are on, zero otherwise,
    /// with the given period and on-fraction. The long-run mean is
    /// `power_w · duty`.
    OnOff {
        /// Output while lit (W).
        power_w: f64,
        /// Full cycle length (s).
        period_s: f64,
        /// Fraction of the period that is lit, in `(0, 1]`.
        duty: f64,
    },
}

impl SolarHarvester {
    /// Instantaneous output at time `t` (s).
    pub fn power_at(&self, t: f64) -> f64 {
        match *self {
            SolarHarvester::Constant { power_w } => power_w,
            SolarHarvester::OnOff {
                power_w,
                period_s,
                duty,
            } => {
                let phase = (t / period_s).fract();
                if phase < duty {
                    power_w
                } else {
                    0.0
                }
            }
        }
    }

    /// Long-run mean output (W) — the effective `ρ` a node should plan
    /// around.
    pub fn mean_power(&self) -> f64 {
        match *self {
            SolarHarvester::Constant { power_w } => power_w,
            SolarHarvester::OnOff { power_w, duty, .. } => power_w * duty,
        }
    }

    /// An on/off profile with the same mean as a constant budget —
    /// useful for A/B experiments on budget variability.
    pub fn on_off_with_mean(mean_w: f64, period_s: f64, duty: f64) -> Self {
        assert!(duty > 0.0 && duty <= 1.0);
        SolarHarvester::OnOff {
            power_w: mean_w / duty,
            period_s,
            duty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile() {
        let h = SolarHarvester::Constant { power_w: 10e-6 };
        assert_eq!(h.power_at(0.0), 10e-6);
        assert_eq!(h.power_at(12345.6), 10e-6);
        assert_eq!(h.mean_power(), 10e-6);
    }

    #[test]
    fn on_off_cycles() {
        let h = SolarHarvester::OnOff {
            power_w: 40e-6,
            period_s: 100.0,
            duty: 0.25,
        };
        assert_eq!(h.power_at(10.0), 40e-6); // lit
        assert_eq!(h.power_at(30.0), 0.0); // dark
        assert_eq!(h.power_at(110.0), 40e-6); // next cycle
        assert!((h.mean_power() - 10e-6).abs() < 1e-18);
    }

    #[test]
    fn mean_preserving_construction() {
        let h = SolarHarvester::on_off_with_mean(10e-6, 60.0, 0.5);
        assert!((h.mean_power() - 10e-6).abs() < 1e-18);
        assert_eq!(h.power_at(1.0), 20e-6);
    }

    #[test]
    fn empirical_mean_matches() {
        let h = SolarHarvester::on_off_with_mean(10e-6, 7.0, 0.3);
        let steps = 700_000;
        let dt = 0.01;
        let sum: f64 = (0..steps).map(|i| h.power_at(i as f64 * dt)).sum();
        let mean = sum / steps as f64;
        assert!((mean - 10e-6).abs() / 10e-6 < 0.01, "empirical mean {mean}");
    }
}
