//! Smoke tests: every registered experiment runs at quick scale and
//! produces plausible, non-empty output. These are the same entry
//! points `repro all` uses, so a green run here means the full harness
//! is wired correctly.

use econcast_bench::experiments::registry;
use econcast_bench::Scale;

#[test]
fn registry_covers_every_paper_artifact() {
    let ids: Vec<&str> = registry().iter().map(|(id, _, _)| *id).collect();
    for expected in [
        "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table3", "table4",
    ] {
        assert!(ids.contains(&expected), "missing experiment {expected}");
    }
    assert!(ids.contains(&"ablations"), "ablation suite not registered");
    assert_eq!(ids.len(), 10);
}

#[test]
fn cheap_experiments_produce_output() {
    // The fast subset runs in seconds even at quick scale.
    for id in ["table2", "fig4", "table4"] {
        let (_, _, runner) = registry()
            .into_iter()
            .find(|(rid, _, _)| *rid == id)
            .expect("registered");
        let out = runner(Scale::Quick);
        assert!(out.len() > 100, "{id} produced almost no output");
        assert!(!out.contains("NaN"), "{id} produced NaN:\n{out}");
    }
}

#[test]
fn fig3_quick_headline_is_sane() {
    let (_, _, runner) = registry()
        .into_iter()
        .find(|(rid, _, _)| *rid == "fig3")
        .expect("registered");
    let out = runner(Scale::Quick);
    // The headline line reports EconCast/Panda factors; parse them.
    let line = out
        .lines()
        .find(|l| l.starts_with("headline"))
        .expect("headline line present");
    // Speedup factors are the tokens ending in "x" (e.g. "4.9x").
    let nums: Vec<f64> = line
        .split_whitespace()
        .filter_map(|t| t.strip_suffix('x').and_then(|v| v.parse::<f64>().ok()))
        .collect();
    assert!(nums.len() >= 2, "could not parse factors from: {line}");
    assert!(
        nums[0] > 1.5 && nums[1] > nums[0],
        "speedups not ordered/plausible: {line}"
    );
}
