//! CRC-16/CCITT-FALSE, the checksum used by the CC2500's packet engine
//! (polynomial 0x1021, init 0xFFFF, no reflection, no final XOR).
//!
//! Slicing-by-8 table lookup (tables built in a `const` context from
//! the polynomial definition). The radio frames are tens of bytes, but
//! the policy data plane checksums hundreds of kilobytes per pipelined
//! batch — every frame is CRC'd once on encode and once on decode, in
//! both directions, so the CRC runs over roughly 4× the wire volume
//! per round trip. A single-table implementation is a serial
//! load-xor-shift chain (one dependent lookup per byte) and measured
//! as the largest single cost on the socket path; slicing-by-8 makes
//! the eight lookups per 8-byte block independent, so they pipeline.
//!
//! Table semantics: `TABLES[k][v]` is the CRC (init 0) of the message
//! consisting of byte `v` followed by `k` zero bytes. By linearity of
//! the CRC over GF(2), the state after absorbing 8 bytes is the XOR of
//! each byte's independent contribution, with the incoming 16-bit
//! state folded into the first two bytes.

/// `TABLES[k][v]`: CRC-16/CCITT (init 0) of byte `v` followed by `k`
/// zero bytes, for polynomial 0x1021.
const TABLES: [[u16; 256]; 8] = {
    let mut tables = [[0u16; 256]; 8];
    let mut byte = 0usize;
    while byte < 256 {
        let mut crc = (byte as u16) << 8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
            bit += 1;
        }
        tables[0][byte] = crc;
        byte += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut byte = 0usize;
        while byte < 256 {
            let prev = tables[k - 1][byte];
            // Advance the 16-bit state through one zero byte.
            tables[k][byte] = (prev << 8) ^ tables[0][(prev >> 8) as usize];
            byte += 1;
        }
        k += 1;
    }
    tables
};

/// Computes CRC-16/CCITT-FALSE over `data`.
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        crc = TABLES[7][usize::from(c[0] ^ (crc >> 8) as u8)]
            ^ TABLES[6][usize::from(c[1] ^ (crc & 0xFF) as u8)]
            ^ TABLES[5][usize::from(c[2])]
            ^ TABLES[4][usize::from(c[3])]
            ^ TABLES[3][usize::from(c[4])]
            ^ TABLES[2][usize::from(c[5])]
            ^ TABLES[1][usize::from(c[6])]
            ^ TABLES[0][usize::from(c[7])];
    }
    for &byte in chunks.remainder() {
        crc = (crc << 8) ^ TABLES[0][usize::from((crc >> 8) as u8 ^ byte)];
    }
    crc
}

/// Convenience: checks that `data`'s trailing two bytes are the CRC of
/// the preceding bytes. Returns the payload slice on success.
pub fn verify_trailing_crc(data: &[u8]) -> Option<&[u8]> {
    if data.len() < 2 {
        return None;
    }
    let (payload, tail) = data.split_at(data.len() - 2);
    let expected = u16::from_be_bytes([tail[0], tail[1]]);
    (crc16_ccitt(payload) == expected).then_some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_check_value() {
        // The CRC-16/CCITT-FALSE check value for "123456789" is 0x29B1.
        assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
    }

    #[test]
    fn empty_input_is_initial_value() {
        assert_eq!(crc16_ccitt(&[]), 0xFFFF);
    }

    #[test]
    fn verify_roundtrip_and_rejection() {
        let payload = b"econcast";
        let mut framed = payload.to_vec();
        framed.extend_from_slice(&crc16_ccitt(payload).to_be_bytes());
        assert_eq!(verify_trailing_crc(&framed), Some(&payload[..]));
        // Flip one bit anywhere → rejected.
        framed[3] ^= 0x10;
        assert_eq!(verify_trailing_crc(&framed), None);
        // Too short → rejected.
        assert_eq!(verify_trailing_crc(&[0x12]), None);
    }

    proptest! {
        /// Any single-bit flip in payload or CRC is detected (CRC-16
        /// detects all single-bit errors by construction).
        #[test]
        fn prop_single_bit_flips_detected(
            payload in proptest::collection::vec(any::<u8>(), 1..64),
            flip_bit in 0usize..512,
        ) {
            let mut framed = payload.clone();
            framed.extend_from_slice(&crc16_ccitt(&payload).to_be_bytes());
            let bit = flip_bit % (framed.len() * 8);
            framed[bit / 8] ^= 1 << (bit % 8);
            prop_assert_eq!(verify_trailing_crc(&framed), None);
        }

        /// Round-trip always verifies.
        #[test]
        fn prop_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..128)) {
            let mut framed = payload.clone();
            framed.extend_from_slice(&crc16_ccitt(&payload).to_be_bytes());
            prop_assert_eq!(verify_trailing_crc(&framed), Some(&payload[..]));
        }
    }
}
