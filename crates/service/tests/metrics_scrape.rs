//! Socket-level v7 metrics scrape against a live [`PolicyServer`]:
//! the always-on serve-path counters and histograms must be visible
//! through `MetricsRequest`/`MetricsResponse`, and the injected
//! gauges must agree with the stats plane's view of the same server.

use econcast_metrics::{
    CTR_BATCHES, CTR_REQUESTS, GAUGE_KIND_MAX, GAUGE_KIND_SUM, GAUGE_LRU_ENTRIES,
    GAUGE_QUEUE_DEPTH, GAUGE_QUEUE_DEPTH_PEAK, HIST_BATCH_NS, HIST_REQUEST_NS, NUM_COUNTERS,
    NUM_GAUGES, NUM_HISTS,
};
use econcast_proto::service::WIRE_VERSION;
use econcast_service::workload::mixed_batch;
use econcast_service::{PolicyClient, PolicyServer, RouterConfig, ServerConfig, ServiceConfig};

#[test]
fn scrape_reports_serve_path_counters_histograms_and_gauges() {
    let handle = PolicyServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            router: RouterConfig {
                shards: 2,
                service: ServiceConfig {
                    workers: Some(1),
                    ..ServiceConfig::default()
                },
                ..RouterConfig::default()
            },
            background_prewarm: false,
            ..ServerConfig::default()
        },
    )
    .expect("bind")
    .spawn();

    let batch = mixed_batch(24);
    let mut client = PolicyClient::connect(handle.addr(), batch.len() as u16).expect("connect");
    assert_eq!(client.wire_version(), WIRE_VERSION);

    let before = client.metrics().expect("first scrape");
    // The snapshot carries the full registry shape.
    assert_eq!(before.counters.len(), NUM_COUNTERS);
    assert_eq!(before.gauges.len(), NUM_GAUGES);
    assert_eq!(before.hists.len(), NUM_HISTS);
    assert_eq!(before.gauges[GAUGE_QUEUE_DEPTH].0, GAUGE_KIND_SUM);
    assert_eq!(before.gauges[GAUGE_QUEUE_DEPTH_PEAK].0, GAUGE_KIND_MAX);

    let got = client.serve_batch(&batch).expect("serve");
    assert_eq!(got.len(), batch.len());

    // The serve path recorded unconditionally — no tracing armed, no
    // opt-in: the delta across the batch shows up in counters and in
    // both latency histograms.
    let after = client.metrics().expect("second scrape");
    assert!(
        after.counters[CTR_REQUESTS] >= before.counters[CTR_REQUESTS] + batch.len() as u64,
        "requests counter must advance by the batch"
    );
    assert!(after.counters[CTR_BATCHES] > before.counters[CTR_BATCHES]);
    assert!(after.hists[HIST_BATCH_NS].total() > before.hists[HIST_BATCH_NS].total());
    assert!(
        after.hists[HIST_REQUEST_NS].total()
            >= before.hists[HIST_REQUEST_NS].total() + batch.len() as u64
    );
    // Quiescent connection: every admitted request was released.
    assert_eq!(after.gauges[GAUGE_QUEUE_DEPTH].1, 0);
    assert!(after.gauges[GAUGE_QUEUE_DEPTH_PEAK].1 >= 1);

    // The injected LRU gauge agrees with the stats plane's view of
    // the same (quiescent) server.
    let stats = client.stats(None).expect("stats");
    let scrape = client.metrics().expect("third scrape");
    assert_eq!(scrape.gauges[GAUGE_LRU_ENTRIES].1, stats.lru_len);

    drop(client);
    handle.shutdown();
}
