//! Canonical (P4) instance keys for policy caching.
//!
//! Two requests describe *the same* (P4) instance whenever they agree
//! on the radio powers, the temperature, the objective, and the
//! multiset of budgets — node order is irrelevant because the Gibbs
//! measure and the dual are permutation-equivariant: permuting the
//! budgets permutes the optimal `(α, β)` the same way. A policy cache
//! therefore keys on the *sorted* budget vector and remembers the
//! sorting permutation so served policies can be handed back in the
//! caller's original node order.
//!
//! Tolerances are quantized **downward** onto decade tiers
//! (`…, 1e-3, 1e-2, 1e-1`): a cached entry solved at the tier floor is
//! at least as accurate as any request that maps to the tier, so
//! sharing entries across nearby tolerances never weakens a caller's
//! contract.
//!
//! Keys hash the IEEE-754 bit patterns of the canonical floats —
//! exact-match semantics, no epsilon comparisons. `-0.0` and `0.0`
//! hash differently, which is irrelevant here because every power is
//! validated strictly positive.

use econcast_core::ThroughputMode;

/// The coarsest tolerance tier (requests looser than this still map
/// to it).
pub const TOLERANCE_TIER_MAX: f64 = 1e-1;
/// The finest tolerance tier (requests tighter than this are clamped
/// up to it — the dual descent's own floor).
pub const TOLERANCE_TIER_MIN: f64 = 1e-9;

/// Quantizes a requested tolerance down to its decade tier in
/// `[TOLERANCE_TIER_MIN, TOLERANCE_TIER_MAX]`.
///
/// # Panics
///
/// Panics when `tol` is non-positive or non-finite.
pub fn quantize_tolerance(tol: f64) -> f64 {
    assert!(tol > 0.0 && tol.is_finite(), "tolerance must be positive");
    let clamped = tol.clamp(TOLERANCE_TIER_MIN, TOLERANCE_TIER_MAX);
    let tier = 10f64.powi(clamped.log10().floor() as i32);
    // floor() on a log10 that lands exactly on an integer can dip one
    // decade too low through rounding; never return a tier the input
    // already clears by a full decade.
    if tier * 10.0 <= clamped {
        (tier * 10.0).min(TOLERANCE_TIER_MAX)
    } else {
        tier.clamp(TOLERANCE_TIER_MIN, TOLERANCE_TIER_MAX)
    }
}

/// Exact-match cache key: bit patterns of the canonicalized instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InstanceKey {
    /// 0 = groupput, 1 = anyput.
    mode: u8,
    /// `σ` bits.
    sigma: u64,
    /// `L` bits.
    listen: u64,
    /// `X` bits.
    transmit: u64,
    /// Quantized tolerance tier bits.
    tolerance: u64,
    /// Sorted budget bits (ascending).
    budgets: Vec<u64>,
}

impl InstanceKey {
    /// Number of nodes in the keyed instance.
    pub fn num_nodes(&self) -> usize {
        self.budgets.len()
    }

    /// A stable 64-bit hash of the canonical instance
    /// ([`fnv1a_64`] over the key's fields) for routing decisions —
    /// e.g. consistent-hashing instances across policy-cache shards.
    /// Unlike `std`'s `DefaultHasher`, the value is pinned by this
    /// implementation: identical canonical instances hash identically
    /// across processes, platforms, and toolchain versions, so a shard
    /// assignment observed in a test is the assignment production
    /// sees.
    pub fn route_hash(&self) -> u64 {
        let head = [
            u64::from(self.mode),
            self.sigma,
            self.listen,
            self.transmit,
            self.tolerance,
        ];
        fnv1a_64(head.iter().chain(&self.budgets).copied())
    }
}

/// Pinned FNV-1a over a stream of u64 words (big-endian bytes) — the
/// shared routing hash primitive. Both [`InstanceKey::route_hash`] and
/// the shard ring's virtual-node points use this single
/// implementation, so the two sides of the consistent-hash contract
/// can never drift apart.
pub fn fnv1a_64(words: impl IntoIterator<Item = u64>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for w in words {
        for b in w.to_be_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// A canonicalized (P4) instance: the sorted view a cache solves and
/// stores, plus the permutation needed to answer the caller in their
/// own node order.
#[derive(Debug, Clone)]
pub struct CanonicalInstance {
    /// Exact-match cache key.
    pub key: InstanceKey,
    /// Budgets in ascending order: `sorted_budgets[k] = budgets[perm[k]]`.
    pub sorted_budgets: Vec<f64>,
    /// `perm[k]` = caller index of the node at canonical position `k`.
    pub perm: Vec<usize>,
    /// The decade tier the request's tolerance quantized to.
    pub tolerance_tier: f64,
    /// Whether every budget is bit-identical (enables the homogeneous
    /// tiers).
    pub homogeneous: bool,
}

impl CanonicalInstance {
    /// Canonicalizes a request. Budgets are sorted ascending with ties
    /// broken by caller index, so equal inputs always produce the same
    /// key *and* the same permutation.
    ///
    /// # Panics
    ///
    /// Panics when `budgets` is empty or any parameter is non-positive
    /// or non-finite (callers validate requests before keying them).
    pub fn new(
        budgets: &[f64],
        listen_w: f64,
        transmit_w: f64,
        sigma: f64,
        mode: ThroughputMode,
        tolerance: f64,
    ) -> Self {
        assert!(!budgets.is_empty(), "need at least one node");
        for &b in budgets {
            assert!(b > 0.0 && b.is_finite(), "budgets must be positive");
        }
        assert!(listen_w > 0.0 && listen_w.is_finite());
        assert!(transmit_w > 0.0 && transmit_w.is_finite());
        assert!(sigma > 0.0 && sigma.is_finite());

        let mut perm: Vec<usize> = (0..budgets.len()).collect();
        perm.sort_by(|&a, &b| budgets[a].total_cmp(&budgets[b]).then_with(|| a.cmp(&b)));
        let sorted_budgets: Vec<f64> = perm.iter().map(|&i| budgets[i]).collect();
        let homogeneous = sorted_budgets
            .iter()
            .all(|b| b.to_bits() == sorted_budgets[0].to_bits());
        let tolerance_tier = quantize_tolerance(tolerance);
        let key = InstanceKey {
            mode: match mode {
                ThroughputMode::Groupput => 0,
                ThroughputMode::Anyput => 1,
            },
            sigma: sigma.to_bits(),
            listen: listen_w.to_bits(),
            transmit: transmit_w.to_bits(),
            tolerance: tolerance_tier.to_bits(),
            budgets: sorted_budgets.iter().map(|b| b.to_bits()).collect(),
        };
        CanonicalInstance {
            key,
            sorted_budgets,
            perm,
            tolerance_tier,
            homogeneous,
        }
    }

    /// Maps per-node values from canonical (sorted) order back to the
    /// caller's original node order.
    pub fn restore_order<T: Copy>(&self, canonical: &[T]) -> Vec<T> {
        assert_eq!(canonical.len(), self.perm.len());
        let mut out = vec![canonical[0]; canonical.len()];
        for (k, &caller_idx) in self.perm.iter().enumerate() {
            out[caller_idx] = canonical[k];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use econcast_core::ThroughputMode::{Anyput, Groupput};

    fn canon(budgets: &[f64]) -> CanonicalInstance {
        CanonicalInstance::new(budgets, 500e-6, 450e-6, 0.5, Groupput, 1e-3)
    }

    #[test]
    fn permuted_budgets_share_a_key() {
        let a = canon(&[3e-6, 1e-6, 2e-6]);
        let b = canon(&[1e-6, 2e-6, 3e-6]);
        let c = canon(&[2e-6, 3e-6, 1e-6]);
        assert_eq!(a.key, b.key);
        assert_eq!(b.key, c.key);
        assert_eq!(a.sorted_budgets, vec![1e-6, 2e-6, 3e-6]);
    }

    #[test]
    fn restore_order_inverts_the_sort() {
        let budgets = [5e-6, 1e-6, 9e-6, 3e-6];
        let ci = canon(&budgets);
        // Tag canonical entries with their sorted budget; restoring
        // must place each tag at the caller index holding that budget.
        let restored = ci.restore_order(&ci.sorted_budgets);
        assert_eq!(restored, budgets.to_vec());
    }

    #[test]
    fn ties_are_broken_by_caller_index() {
        let ci = canon(&[2e-6, 2e-6, 1e-6]);
        assert_eq!(ci.perm, vec![2, 0, 1]);
        // Restoring canonical labels [a, b, c] puts b at caller 0.
        assert_eq!(ci.restore_order(&['a', 'b', 'c']), vec!['b', 'c', 'a']);
    }

    #[test]
    fn different_parameters_change_the_key() {
        let base = canon(&[1e-6, 2e-6]);
        let other_sigma =
            CanonicalInstance::new(&[1e-6, 2e-6], 500e-6, 450e-6, 0.25, Groupput, 1e-3);
        let other_mode = CanonicalInstance::new(&[1e-6, 2e-6], 500e-6, 450e-6, 0.5, Anyput, 1e-3);
        let other_tol = CanonicalInstance::new(&[1e-6, 2e-6], 500e-6, 450e-6, 0.5, Groupput, 1e-5);
        assert_ne!(base.key, other_sigma.key);
        assert_ne!(base.key, other_mode.key);
        assert_ne!(base.key, other_tol.key);
    }

    #[test]
    fn homogeneous_detection_is_exact() {
        assert!(canon(&[1e-6, 1e-6, 1e-6]).homogeneous);
        assert!(!canon(&[1e-6, 1.0000001e-6]).homogeneous);
        assert!(canon(&[7e-6]).homogeneous);
    }

    #[test]
    fn tolerance_quantizes_down_to_decades() {
        assert_eq!(quantize_tolerance(5e-4), 1e-4);
        assert_eq!(quantize_tolerance(1e-3), 1e-3);
        assert_eq!(quantize_tolerance(9.99e-2), 1e-2);
        // Clamped at both ends.
        assert_eq!(quantize_tolerance(0.5), TOLERANCE_TIER_MAX);
        assert_eq!(quantize_tolerance(1e-12), TOLERANCE_TIER_MIN);
        // Same tier ⇒ same key; different tiers ⇒ different keys.
        let a = CanonicalInstance::new(&[1e-6], 5e-4, 5e-4, 0.5, Groupput, 4e-4);
        let b = CanonicalInstance::new(&[1e-6], 5e-4, 5e-4, 0.5, Groupput, 8e-4);
        assert_eq!(a.key, b.key);
        assert_eq!(a.tolerance_tier, 1e-4);
    }

    #[test]
    fn route_hash_is_stable_and_key_sensitive() {
        // Pinned value: the routing hash is part of the sharding
        // contract (same instance → same shard across processes), so a
        // change here is a cache-topology migration, not a refactor.
        let a = canon(&[3e-6, 1e-6, 2e-6]);
        assert_eq!(a.key.route_hash(), 0x5985_4c9e_da54_368d);
        // Permutations share the hash (same canonical key)…
        let b = canon(&[1e-6, 2e-6, 3e-6]);
        assert_eq!(a.key.route_hash(), b.key.route_hash());
        // …while any keyed field perturbs it.
        let other_sigma =
            CanonicalInstance::new(&[1e-6, 2e-6, 3e-6], 500e-6, 450e-6, 0.25, Groupput, 1e-3);
        let other_mode =
            CanonicalInstance::new(&[1e-6, 2e-6, 3e-6], 500e-6, 450e-6, 0.5, Anyput, 1e-3);
        let other_budget = canon(&[1e-6, 2e-6, 4e-6]);
        assert_ne!(a.key.route_hash(), other_sigma.key.route_hash());
        assert_ne!(a.key.route_hash(), other_mode.key.route_hash());
        assert_ne!(a.key.route_hash(), other_budget.key.route_hash());
    }

    #[test]
    fn quantization_never_loosens_the_contract() {
        // The tier floor is ≤ the requested tolerance for every
        // in-range input — the property the cache contract rests on.
        let mut t = 1.2e-9;
        while t < 0.1 {
            let q = quantize_tolerance(t);
            assert!(q <= t * (1.0 + 1e-12), "tier {q} above request {t}");
            assert!(q >= t / 10.0, "tier {q} needlessly tight for {t}");
            t *= 1.7;
        }
    }
}
