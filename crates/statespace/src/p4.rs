//! The (P4) achievable-throughput solver (Section VI, Algorithm 1).
//!
//! (P4) adds an entropy regularizer to the oracle LP (P1):
//!
//! ```text
//! max_π  Σ_w π_w T_w − σ Σ_w π_w log π_w
//! s.t.   α_i L_i + β_i X_i ≤ ρ_i   ∀i,   π a distribution over W
//! ```
//!
//! With the power constraints dualized (multipliers `η_i ≥ 0`), the
//! inner maximization over `π` is solved in closed form by the Gibbs
//! distribution (19); the dual `D(η)` is then minimized by gradient
//! descent, the gradient being the budget slack
//! `∂D/∂η_i = ρ_i − (α_i L_i + β_i X_i)` (eq. (22)).
//!
//! Algorithm 1 prescribes `δ_k = 1/k`; on heterogeneous instances the
//! raw powers span orders of magnitude, so we use the same descent with
//! per-coordinate AdaGrad scaling of a *normalized* gradient
//! `g̃_i = (ρ_i − cons_i)/(ρ_i + cons_i) ∈ (−1, 1]` — a diagonal
//! preconditioner, which preserves the convex-dual convergence
//! guarantee while making one tolerance work across all of the paper's
//! parameter ranges.
//!
//! The descent's inner loop is a [`SummaryWorkspace`]: the state table
//! and every accumulator are allocated once per solve ([`P4Solver`])
//! and reused across the up-to-30 000 dual iterations, with the
//! per-transmitter blocks of the summary fanned out over the worker
//! pool for larger networks.
//!
//! The achievable throughput `T^σ` reported by the paper's figures is
//! the expected throughput `E_π[T_w]` at the optimal dual point.

use crate::factorized::FactorizedWorkspace;
use crate::gibbs::{GibbsParams, GibbsSummary, SummaryWorkspace};
use crate::homogeneous::HomogeneousP4;
use crate::space::StateSpace;
use econcast_core::{NodeParams, ThroughputMode};

/// Which summarization kernel a solve actually ran — recorded in
/// [`P4Solution::kernel`] so callers (the policy service's cache tags,
/// the bench suite) can observe the dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SummaryKernel {
    /// The Gray-code streaming enumeration (`(N+2)·2^{N−1}` states).
    GrayCode,
    /// The factorized polynomial kernel (O(N) per evaluation).
    Factorized,
    /// The homogeneous aggregation + scalar-dual bisection.
    Homogeneous,
}

/// Kernel selection policy for a (P4) solve.
///
/// `Auto` resolves **deterministically from the instance alone** —
/// node count, throughput mode, and heterogeneity; never thread count,
/// timing, or environment — so the same request dispatches the same
/// way on every machine and at every `ECONCAST_THREADS` (pinned by a
/// regression test).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelSelect {
    /// Pick automatically (the default):
    ///
    /// * bit-identical nodes, `n ≥ 2` → [`SummaryKernel::Homogeneous`]
    ///   (the scalar dual is exact and O(N) per evaluation);
    /// * `n > StateSpace::MAX_N` → [`SummaryKernel::Factorized`]
    ///   (enumeration is impossible);
    /// * groupput → [`SummaryKernel::Factorized`] (O(N) beats the
    ///   Gray-code sweep at every size);
    /// * anyput, `n ≤ ANYPUT_GRAY_MAX` → [`SummaryKernel::GrayCode`]
    ///   (the exp-heavy factorized path only wins once the hypercube
    ///   outgrows it), else factorized.
    #[default]
    Auto,
    /// Force the Gray-code enumeration kernel (requires
    /// `n ≤ StateSpace::MAX_N`). Fixed-iteration profiling runs pin
    /// this so benchmark baselines keep measuring the same work.
    GrayCode,
    /// Force the factorized kernel.
    Factorized,
}

/// Below/at this anyput node count `Auto` keeps the Gray-code sweep:
/// the `(N+2)·2^{N−1}` walk of tight O(1) steps still undercuts the
/// factorized path's per-node `exp` calls.
pub const ANYPUT_GRAY_MAX: usize = 10;

impl KernelSelect {
    /// Resolves the selection for an instance. Pure in
    /// `(n, mode, homogeneous)` — the dispatch-determinism contract.
    pub fn resolve(self, n: usize, mode: ThroughputMode, homogeneous: bool) -> SummaryKernel {
        match self {
            KernelSelect::GrayCode => SummaryKernel::GrayCode,
            KernelSelect::Factorized => SummaryKernel::Factorized,
            KernelSelect::Auto => {
                if homogeneous && n >= 2 {
                    SummaryKernel::Homogeneous
                } else if n > StateSpace::MAX_N {
                    SummaryKernel::Factorized
                } else {
                    match mode {
                        ThroughputMode::Groupput => SummaryKernel::Factorized,
                        ThroughputMode::Anyput => {
                            if n <= ANYPUT_GRAY_MAX {
                                SummaryKernel::GrayCode
                            } else {
                                SummaryKernel::Factorized
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Whether every node is bit-identical (the homogeneous fast-path
/// gate — exact comparison, mirroring the instance canonicalizer).
fn is_homogeneous(nodes: &[NodeParams]) -> bool {
    nodes.windows(2).all(|w| w[0] == w[1])
}

/// Tuning knobs for the dual descent.
#[derive(Debug, Clone, Copy)]
pub struct P4Options {
    /// Maximum number of dual iterations.
    pub max_iters: usize,
    /// KKT residual tolerance (on the normalized gradient).
    pub tol: f64,
    /// Base step size for the AdaGrad-scaled updates, in units of the
    /// dimensionless multiplier `η·max(L,X)/σ`.
    pub step0: f64,
    /// Which summarization kernel evaluates the Gibbs summary.
    pub kernel: KernelSelect,
}

impl Default for P4Options {
    fn default() -> Self {
        P4Options {
            max_iters: 30_000,
            tol: 1e-4,
            step0: 2.0,
            kernel: KernelSelect::Auto,
        }
    }
}

impl P4Options {
    /// A faster, looser preset for smoke tests and sweeps where 1%
    /// accuracy suffices.
    pub fn fast() -> Self {
        P4Options {
            max_iters: 4_000,
            tol: 1e-3,
            ..P4Options::default()
        }
    }
}

/// Result of solving (P4).
#[derive(Debug, Clone)]
pub struct P4Solution {
    /// `T^σ = E_π[T_w]` at the optimal multipliers — the achievable
    /// throughput every figure normalizes against.
    pub throughput: f64,
    /// The full (P4) objective `E[T_w] + σ·H(π)` (throughput plus
    /// entropy bonus).
    pub objective: f64,
    /// Optimal Lagrange multipliers `η*` (natural units, 1/W·time).
    pub eta: Vec<f64>,
    /// Listen-time fractions at the optimum.
    pub alpha: Vec<f64>,
    /// Transmit-time fractions at the optimum.
    pub beta: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Whether the KKT residual met the tolerance.
    pub converged: bool,
    /// Which summarization kernel the solve dispatched to.
    pub kernel: SummaryKernel,
    /// The final Gibbs summary (burst masses etc.).
    pub summary: GibbsSummary,
}

impl P4Solution {
    /// Largest relative power-budget violation across nodes:
    /// `max_i (cons_i − ρ_i)/ρ_i`, clamped below at 0. A converged
    /// solution has this ≈ 0.
    pub fn max_power_violation(&self, nodes: &[NodeParams]) -> f64 {
        nodes
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let cons = p.average_power(self.alpha[i], self.beta[i]);
                ((cons - p.budget_w) / p.budget_w).max(0.0)
            })
            .fold(0.0, f64::max)
    }
}

/// The common face the dual descent needs from a summary kernel —
/// evaluate at the current multipliers, expose the marginals, and
/// materialize the final summary.
trait GibbsKernel {
    fn compute(&mut self, params: &GibbsParams<'_>);
    fn alpha(&self) -> &[f64];
    fn beta(&self) -> &[f64];
    fn to_summary(&self) -> GibbsSummary;
}

impl GibbsKernel for SummaryWorkspace {
    fn compute(&mut self, params: &GibbsParams<'_>) {
        SummaryWorkspace::compute(self, params);
    }
    fn alpha(&self) -> &[f64] {
        SummaryWorkspace::alpha(self)
    }
    fn beta(&self) -> &[f64] {
        SummaryWorkspace::beta(self)
    }
    fn to_summary(&self) -> GibbsSummary {
        SummaryWorkspace::to_summary(self)
    }
}

impl GibbsKernel for FactorizedWorkspace {
    fn compute(&mut self, params: &GibbsParams<'_>) {
        FactorizedWorkspace::compute(self, params);
    }
    fn alpha(&self) -> &[f64] {
        FactorizedWorkspace::alpha(self)
    }
    fn beta(&self) -> &[f64] {
        FactorizedWorkspace::beta(self)
    }
    fn to_summary(&self) -> GibbsSummary {
        FactorizedWorkspace::to_summary(self)
    }
}

/// A reusable (P4) solver holding the summary workspaces and the dual
/// descent state, so sweeps over `σ`, modes, or warm-started budgets
/// amortize every allocation. One instance serves one node count.
///
/// Workspaces are built lazily per kernel on first dispatch: a solver
/// for `n = 64` never allocates the `(n+2)·2^{n−1}` Gray-code table it
/// could not hold, and a small-`n` solver that only ever runs the
/// factorized kernel skips the table too.
#[derive(Debug, Clone)]
pub struct P4Solver {
    n: usize,
    /// Gray-code streaming workspace (lazily built; `n ≤ MAX_N` only).
    gray: Option<SummaryWorkspace>,
    /// Factorized polynomial workspace (lazily built).
    factorized: Option<FactorizedWorkspace>,
    /// Dual iterate.
    eta: Vec<f64>,
    /// AdaGrad accumulator.
    grad_sq: Vec<f64>,
    /// Normalized gradient scratch.
    grads: Vec<f64>,
    /// Dimensionless step scale per node.
    scale: Vec<f64>,
}

impl P4Solver {
    /// Allocates a solver for `n` nodes.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one node");
        P4Solver {
            n,
            gray: None,
            factorized: None,
            eta: vec![0.0; n],
            grad_sq: vec![0.0; n],
            grads: vec![0.0; n],
            scale: vec![0.0; n],
        }
    }

    /// Solves (P4) for an arbitrary (possibly heterogeneous) network,
    /// dispatching to the summarization kernel [`KernelSelect`]
    /// resolves for the instance: the factorized polynomial kernel for
    /// groupput and all `N > StateSpace::MAX_N`, the Gray-code
    /// enumeration for small anyput instances, and the scalar-dual
    /// closed form for homogeneous networks.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is empty, its length differs from the
    /// solver's node count, `sigma ≤ 0`, or a forced
    /// [`KernelSelect::GrayCode`] exceeds [`StateSpace::MAX_N`].
    pub fn solve(
        &mut self,
        nodes: &[NodeParams],
        sigma: f64,
        mode: ThroughputMode,
        opts: P4Options,
    ) -> P4Solution {
        assert!(!nodes.is_empty(), "need at least one node");
        assert_eq!(nodes.len(), self.n, "solver node count");
        assert!(sigma > 0.0 && sigma.is_finite());

        match opts.kernel.resolve(self.n, mode, is_homogeneous(nodes)) {
            SummaryKernel::Homogeneous => solve_homogeneous(nodes, sigma, mode),
            SummaryKernel::GrayCode => {
                let n = self.n;
                let mut ws = self.gray.take().unwrap_or_else(|| SummaryWorkspace::new(n));
                let sol = descend(
                    DescentState {
                        eta: &mut self.eta,
                        grad_sq: &mut self.grad_sq,
                        grads: &mut self.grads,
                        scale: &mut self.scale,
                    },
                    &mut ws,
                    SummaryKernel::GrayCode,
                    nodes,
                    sigma,
                    mode,
                    opts,
                );
                self.gray = Some(ws);
                sol
            }
            SummaryKernel::Factorized => {
                let n = self.n;
                let mut ws = self
                    .factorized
                    .take()
                    .unwrap_or_else(|| FactorizedWorkspace::new(n));
                let sol = descend(
                    DescentState {
                        eta: &mut self.eta,
                        grad_sq: &mut self.grad_sq,
                        grads: &mut self.grads,
                        scale: &mut self.scale,
                    },
                    &mut ws,
                    SummaryKernel::Factorized,
                    nodes,
                    sigma,
                    mode,
                    opts,
                );
                self.factorized = Some(ws);
                sol
            }
        }
    }
}

/// The descent's mutable state, borrowed from the solver so the loop
/// below can be generic over the kernel without fighting the borrow
/// checker over `&mut self`.
struct DescentState<'a> {
    eta: &'a mut [f64],
    grad_sq: &'a mut [f64],
    grads: &'a mut [f64],
    scale: &'a mut [f64],
}

/// Algorithm 1's AdaGrad-preconditioned dual descent over any summary
/// kernel. The trajectory is a pure function of the instance and the
/// kernel's arithmetic — never of thread count.
fn descend(
    st: DescentState<'_>,
    ws: &mut dyn GibbsKernel,
    kernel: SummaryKernel,
    nodes: &[NodeParams],
    sigma: f64,
    mode: ThroughputMode,
    opts: P4Options,
) -> P4Solution {
    let n = nodes.len();
    // Dimensionless multiplier scale: steps are expressed in units
    // of σ / max(L_i, X_i) so that one unit shifts the Gibbs
    // exponent by O(1) regardless of the absolute power scale.
    for (i, p) in nodes.iter().enumerate() {
        st.scale[i] = sigma / p.listen_w.max(p.transmit_w);
        st.eta[i] = 0.0;
        st.grad_sq[i] = 0.0;
    }

    let mut converged = false;
    let mut iterations = 0;

    for k in 0..opts.max_iters {
        iterations = k + 1;
        let params = GibbsParams {
            nodes,
            eta: st.eta,
            sigma,
            mode,
        };
        ws.compute(&params);

        // Normalized budget-slack gradient and KKT residual, read
        // straight from the workspace buffers (no per-iteration
        // allocation).
        let alpha = ws.alpha();
        let beta = ws.beta();
        let mut residual = 0.0f64;
        for i in 0..n {
            let cons = nodes[i].average_power(alpha[i], beta[i]);
            let g = (nodes[i].budget_w - cons) / (nodes[i].budget_w + cons);
            st.grads[i] = g;
            let r = if st.eta[i] > 0.0 {
                g.abs()
            } else {
                (-g).max(0.0) // at η=0 only over-consumption violates KKT
            };
            residual = residual.max(r);
        }
        if residual < opts.tol {
            converged = true;
            break;
        }
        // AdaGrad-preconditioned projected descent step (23).
        for i in 0..n {
            st.grad_sq[i] += st.grads[i] * st.grads[i];
            let step = opts.step0 / st.grad_sq[i].sqrt().max(1e-12);
            st.eta[i] = (st.eta[i] - step * st.scale[i] * st.grads[i]).max(0.0);
        }
    }

    let summary = ws.to_summary();
    P4Solution {
        throughput: summary.expected_throughput,
        objective: summary.p4_objective(sigma),
        eta: st.eta.to_vec(),
        alpha: summary.alpha.clone(),
        beta: summary.beta.clone(),
        iterations,
        converged,
        kernel,
        summary,
    }
}

/// The homogeneous dispatch target: the scalar-dual bisection of
/// [`HomogeneousP4`], broadcast back into the per-node solution shape.
/// The bisection is exact (200 halvings), so the solution always
/// reports convergence; `iterations` counts the aggregated-summary
/// evaluations a caller would meaningfully compare.
fn solve_homogeneous(nodes: &[NodeParams], sigma: f64, mode: ThroughputMode) -> P4Solution {
    let n = nodes.len();
    let sol = HomogeneousP4::new(n, nodes[0], sigma, mode).solve();
    let s = &sol.summary;
    let summary = GibbsSummary {
        log_partition: s.log_partition,
        alpha: vec![sol.alpha; n],
        beta: vec![sol.beta; n],
        expected_throughput: s.expected_throughput,
        entropy: s.entropy,
        burst_mass: s.burst_mass,
        burst_exit_mass: s.burst_exit_mass,
    };
    P4Solution {
        throughput: sol.throughput,
        objective: summary.p4_objective(sigma),
        eta: vec![sol.eta; n],
        alpha: summary.alpha.clone(),
        beta: summary.beta.clone(),
        iterations: 1,
        converged: true,
        kernel: SummaryKernel::Homogeneous,
        summary,
    }
}

/// A pool of [`P4Solver`]s keyed by node count, for callers that solve
/// a mixed stream of instance sizes (the policy service's per-worker
/// workspace). The first solve at each `n` allocates the
/// `(n + 2)·2^{n−1}` state table; every later solve at that `n` reuses
/// it.
#[derive(Debug, Default)]
pub struct SolverPool {
    solvers: std::collections::HashMap<usize, P4Solver>,
}

impl SolverPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// The reusable solver for `n`-node instances (allocated on first
    /// use).
    pub fn solver(&mut self, n: usize) -> &mut P4Solver {
        self.solvers.entry(n).or_insert_with(|| P4Solver::new(n))
    }

    /// Node counts currently held.
    pub fn sizes(&self) -> usize {
        self.solvers.len()
    }

    /// Solves (P4) with the pooled workspace for `nodes.len()`.
    pub fn solve(
        &mut self,
        nodes: &[NodeParams],
        sigma: f64,
        mode: ThroughputMode,
        opts: P4Options,
    ) -> P4Solution {
        self.solver(nodes.len()).solve(nodes, sigma, mode, opts)
    }
}

/// One-shot convenience wrapper around [`P4Solver`].
///
/// # Panics
///
/// Panics when `nodes` is empty or `sigma ≤ 0`.
pub fn solve_p4(
    nodes: &[NodeParams],
    sigma: f64,
    mode: ThroughputMode,
    opts: P4Options,
) -> P4Solution {
    assert!(!nodes.is_empty(), "need at least one node");
    P4Solver::new(nodes.len()).solve(nodes, sigma, mode, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use econcast_core::ThroughputMode::{Anyput, Groupput};

    fn homogeneous(n: usize) -> Vec<NodeParams> {
        vec![NodeParams::from_microwatts(10.0, 500.0, 500.0); n]
    }

    #[test]
    fn p4_respects_power_budgets() {
        let nodes = homogeneous(5);
        let sol = solve_p4(&nodes, 0.5, Groupput, P4Options::default());
        assert!(
            sol.converged,
            "did not converge in {} iters",
            sol.iterations
        );
        assert!(
            sol.max_power_violation(&nodes) < 2e-3,
            "violation {}",
            sol.max_power_violation(&nodes)
        );
    }

    #[test]
    fn p4_throughput_below_oracle_and_positive() {
        let nodes = homogeneous(5);
        // Closed-form oracle groupput for the homogeneous clique.
        let (rho, l, x) = (10e-6, 500e-6, 500e-6);
        let beta_star = rho / (x + 4.0 * l);
        let t_star = 5.0 * 4.0 * beta_star;
        let sol = solve_p4(&nodes, 0.5, Groupput, P4Options::default());
        assert!(sol.throughput > 0.0);
        assert!(
            sol.throughput <= t_star + 1e-9,
            "T^σ {} exceeds oracle {}",
            sol.throughput,
            t_star
        );
    }

    #[test]
    fn smaller_sigma_gives_higher_throughput() {
        // The paper's central σ tradeoff: T^σ increases as σ decreases
        // (Figs. 2–3).
        let nodes = homogeneous(5);
        let t_05 = solve_p4(&nodes, 0.5, Groupput, P4Options::default()).throughput;
        let t_025 = solve_p4(&nodes, 0.25, Groupput, P4Options::default()).throughput;
        assert!(
            t_025 > t_05,
            "σ=0.25 gave {t_025}, σ=0.5 gave {t_05} — ordering violated"
        );
    }

    #[test]
    fn solver_reuse_matches_fresh_solves() {
        // One P4Solver across a σ sweep gives exactly the one-shot
        // results — workspace reuse leaks no state between solves.
        let nodes = homogeneous(4);
        let mut solver = P4Solver::new(4);
        for sigma in [0.5, 0.25, 0.75] {
            let reused = solver.solve(&nodes, sigma, Groupput, P4Options::fast());
            let fresh = solve_p4(&nodes, sigma, Groupput, P4Options::fast());
            assert_eq!(
                reused.throughput.to_bits(),
                fresh.throughput.to_bits(),
                "sigma {sigma}"
            );
            assert_eq!(reused.eta, fresh.eta);
            assert_eq!(reused.iterations, fresh.iterations);
        }
    }

    #[test]
    fn solver_pool_reuses_and_matches_fresh() {
        let mut pool = SolverPool::new();
        for n in [3usize, 4, 3, 4, 3] {
            let nodes = homogeneous(n);
            let pooled = pool.solve(&nodes, 0.5, Groupput, P4Options::fast());
            let fresh = solve_p4(&nodes, 0.5, Groupput, P4Options::fast());
            assert_eq!(pooled.throughput.to_bits(), fresh.throughput.to_bits());
        }
        assert_eq!(pool.sizes(), 2, "one workspace per node count");
    }

    #[test]
    fn anyput_p4_bounded_by_one_and_budget_respected() {
        let nodes = homogeneous(5);
        let sol = solve_p4(&nodes, 0.5, Anyput, P4Options::default());
        assert!(sol.converged);
        assert!(sol.throughput <= 1.0);
        assert!(sol.max_power_violation(&nodes) < 2e-3);
    }

    #[test]
    fn heterogeneous_budgets_yield_heterogeneous_activity() {
        // Nodes with larger budgets should be awake more (Table II's
        // qualitative structure).
        let nodes = vec![
            NodeParams::from_microwatts(5.0, 1000.0, 1000.0),
            NodeParams::from_microwatts(10.0, 1000.0, 1000.0),
            NodeParams::from_microwatts(50.0, 1000.0, 1000.0),
            NodeParams::from_microwatts(100.0, 1000.0, 1000.0),
        ];
        let sol = solve_p4(&nodes, 0.25, Groupput, P4Options::default());
        let awake: Vec<f64> = (0..4).map(|i| sol.alpha[i] + sol.beta[i]).collect();
        assert!(awake[0] < awake[1] && awake[1] < awake[2] && awake[2] < awake[3]);
        assert!(sol.max_power_violation(&nodes) < 5e-3);
    }

    #[test]
    fn rich_nodes_have_zero_multiplier() {
        // A node whose budget dwarfs its consumption never binds (9):
        // its multiplier should stay ~0 while poor nodes' rise.
        let nodes = vec![
            NodeParams::from_microwatts(10.0, 500.0, 500.0),
            NodeParams::new(1.0, 500e-6, 500e-6), // 1 W budget: unconstrained
        ];
        let sol = solve_p4(&nodes, 0.5, Groupput, P4Options::default());
        assert!(sol.eta[1] < 1e-9, "rich node multiplier {}", sol.eta[1]);
        assert!(sol.eta[0] > 0.0);
    }

    #[test]
    fn fast_preset_is_close_to_default() {
        let nodes = homogeneous(4);
        let full = solve_p4(&nodes, 0.5, Groupput, P4Options::default());
        let fast = solve_p4(&nodes, 0.5, Groupput, P4Options::fast());
        let rel = (full.throughput - fast.throughput).abs() / full.throughput;
        assert!(rel < 0.05, "fast preset off by {rel}");
    }

    /// A deterministic heterogeneous instance for the dispatch tests.
    fn het(n: usize) -> Vec<NodeParams> {
        (0..n)
            .map(|i| NodeParams::from_microwatts(2.0 + 3.0 * i as f64, 500.0, 450.0))
            .collect()
    }

    #[test]
    fn auto_dispatch_is_pure_in_the_instance() {
        use econcast_core::ThroughputMode::{Anyput, Groupput};
        // The resolution table, pinned: changing it is a cache/bench
        // semantics migration, not a refactor.
        let auto = KernelSelect::Auto;
        assert_eq!(auto.resolve(5, Groupput, true), SummaryKernel::Homogeneous);
        assert_eq!(auto.resolve(1000, Anyput, true), SummaryKernel::Homogeneous);
        assert_eq!(auto.resolve(1, Groupput, true), SummaryKernel::Factorized);
        assert_eq!(auto.resolve(5, Groupput, false), SummaryKernel::Factorized);
        assert_eq!(auto.resolve(64, Groupput, false), SummaryKernel::Factorized);
        assert_eq!(auto.resolve(10, Anyput, false), SummaryKernel::GrayCode);
        assert_eq!(auto.resolve(11, Anyput, false), SummaryKernel::Factorized);
        assert_eq!(auto.resolve(64, Anyput, false), SummaryKernel::Factorized);
        // Forced selections resolve to themselves.
        assert_eq!(
            KernelSelect::GrayCode.resolve(8, Groupput, true),
            SummaryKernel::GrayCode
        );
        assert_eq!(
            KernelSelect::Factorized.resolve(8, Anyput, true),
            SummaryKernel::Factorized
        );
    }

    #[test]
    fn dispatch_is_deterministic_across_thread_counts() {
        // The satellite regression pin: the kernel choice and the full
        // solution are bit-identical at any ECONCAST_THREADS (the
        // factorized kernel never forks; the Gray-code merge is
        // order-fixed).
        for (nodes, mode) in [
            (het(6), Groupput),         // Auto → Factorized
            (het(6), Anyput),           // Auto → GrayCode
            (het(24), Groupput),        // Auto → Factorized, beyond MAX_N
            (homogeneous(5), Groupput), // Auto → Homogeneous
        ] {
            let mut solutions = Vec::new();
            for threads in [1usize, 2, 8] {
                econcast_parallel::set_threads(Some(threads));
                let sol = solve_p4(&nodes, 0.5, mode, P4Options::fast());
                solutions.push(sol);
            }
            econcast_parallel::set_threads(None);
            let first = &solutions[0];
            for sol in &solutions[1..] {
                assert_eq!(sol.kernel, first.kernel, "kernel choice drifted");
                assert_eq!(sol.iterations, first.iterations);
                assert_eq!(sol.throughput.to_bits(), first.throughput.to_bits());
                for i in 0..nodes.len() {
                    assert_eq!(sol.eta[i].to_bits(), first.eta[i].to_bits());
                    assert_eq!(sol.alpha[i].to_bits(), first.alpha[i].to_bits());
                    assert_eq!(sol.beta[i].to_bits(), first.beta[i].to_bits());
                }
            }
        }
    }

    #[test]
    fn factorized_and_gray_solves_agree() {
        // Forcing either enumeration-free kernel against the Gray-code
        // sweep on the same heterogeneous instance lands on the same
        // optimum: identical fixed-budget trajectories within 1e-9.
        let nodes = het(7);
        for mode in [Groupput, Anyput] {
            let fixed = |kernel| P4Options {
                max_iters: 300,
                tol: 0.0,
                step0: 2.0,
                kernel,
            };
            let gray = solve_p4(&nodes, 0.5, mode, fixed(KernelSelect::GrayCode));
            let fact = solve_p4(&nodes, 0.5, mode, fixed(KernelSelect::Factorized));
            assert_eq!(gray.kernel, SummaryKernel::GrayCode);
            assert_eq!(fact.kernel, SummaryKernel::Factorized);
            assert!(
                (gray.throughput - fact.throughput).abs() <= 1e-9 * (1.0 + gray.throughput.abs()),
                "{mode:?}: gray {} vs factorized {}",
                gray.throughput,
                fact.throughput
            );
            for i in 0..nodes.len() {
                assert!((gray.alpha[i] - fact.alpha[i]).abs() <= 1e-8);
                assert!((gray.beta[i] - fact.beta[i]).abs() <= 1e-8);
                assert!(
                    (gray.eta[i] - fact.eta[i]).abs() <= 1e-6 * (1.0 + gray.eta[i].abs()),
                    "eta[{i}] {} vs {}",
                    gray.eta[i],
                    fact.eta[i]
                );
            }
        }
    }

    #[test]
    fn large_n_solve_beyond_enumeration() {
        // N = 32 heterogeneous groupput: impossible for the Gray-code
        // kernel (2^31 states per block), routine for the factorized
        // one. The optimum must respect every budget and the
        // structural cap T ≤ N − 1.
        let nodes = het(32);
        let sol = solve_p4(&nodes, 0.5, Groupput, P4Options::default());
        assert_eq!(sol.kernel, SummaryKernel::Factorized);
        assert!(sol.converged, "no convergence in {} iters", sol.iterations);
        assert!(sol.throughput > 0.0 && sol.throughput <= 31.0);
        assert!(
            sol.max_power_violation(&nodes) < 5e-3,
            "violation {}",
            sol.max_power_violation(&nodes)
        );
        // Richer nodes are more active, as at small N.
        let awake = |i: usize| sol.alpha[i] + sol.beta[i];
        assert!(awake(31) > awake(0));
    }

    #[test]
    fn homogeneous_dispatch_matches_descent() {
        // Auto's closed-form answer for a homogeneous instance agrees
        // with the explicit Gray-code dual descent to descent accuracy.
        let nodes = homogeneous(5);
        let auto = solve_p4(&nodes, 0.5, Groupput, P4Options::default());
        assert_eq!(auto.kernel, SummaryKernel::Homogeneous);
        assert!(auto.converged);
        let gray = solve_p4(
            &nodes,
            0.5,
            Groupput,
            P4Options {
                kernel: KernelSelect::GrayCode,
                ..P4Options::default()
            },
        );
        assert_eq!(gray.kernel, SummaryKernel::GrayCode);
        let rel = (auto.throughput - gray.throughput).abs() / gray.throughput;
        assert!(
            rel < 5e-3,
            "closed form {} vs descent {}",
            auto.throughput,
            gray.throughput
        );
    }
}
