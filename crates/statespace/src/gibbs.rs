//! The product-form stationary distribution of Lemma 2, eq. (19):
//!
//! ```text
//! π^η_w = (1/Z_η) · exp[ (T_w − Σ_{i: w_i=l} η_i L_i − Σ_{i: w_i=x} η_i X_i) / σ ]
//! ```
//!
//! All computations run in the log domain because at the paper's small
//! temperatures (σ = 0.1 ⇒ exponents of ±90 for N = 10) naive
//! exponentiation over- or underflows.
//!
//! ## The fast kernel
//!
//! [`summarize`] is the inner loop of Algorithm 1 and runs tens of
//! thousands of times per (P4) solve, so it is built for speed:
//!
//! * **Block decomposition.** `W` splits into `N + 2` equal blocks of
//!   `2^{N−1}` states — the cardinality formula made literal: the
//!   transmitter-free states split on the last node's listen bit, plus
//!   one block per transmitter `t` (the listener subsets of the other
//!   nodes). Within a block the transmit cost and any pinned
//!   listener's cost are constant, and equal block sizes mean the
//!   round-robin fan-out below is load-balanced by construction.
//! * **Gray-code enumeration.** Each block walks its listener subsets
//!   in reflected-Gray-code order: consecutive states differ in exactly
//!   one listener, so the energy-cost term of the exponent updates in
//!   O(1) per state (one add/sub) instead of O(N) bit-scans.
//! * **Analytic maximum + one pass.** The per-block maximum exponent
//!   has a closed form (choose exactly the listeners with positive
//!   marginal weight), so the usual max-then-accumulate double pass
//!   collapses into a single accumulation pass per block.
//! * **Interval marginals.** Listen-time numerators `α_i` come from a
//!   running-mass telescoping trick: when node `i`'s bit flips in, the
//!   current block mass is marked; when it flips out, the difference is
//!   added to `α_i`. O(1) per state instead of O(popcount).
//! * **Parallel blocks, deterministic merge.** Blocks are independent
//!   and are fanned out over the [`econcast_parallel`] pool; partial
//!   sums are always merged sequentially in block order, so results
//!   are bit-identical at every thread count.
//!
//! [`SummaryWorkspace`] owns every buffer the kernel needs so repeated
//! evaluations (the dual-descent loop, the oracle bounds) allocate
//! nothing after construction. The original two-pass enumeration
//! survives as [`summarize_naive`], the golden reference for the
//! equivalence property tests and the benchmark baseline.

use crate::space::StateSpace;
use crate::state::NetworkState;
use econcast_core::{NodeParams, ThroughputMode};

/// Inputs for evaluating the Gibbs distribution (19).
#[derive(Debug, Clone, Copy)]
pub struct GibbsParams<'a> {
    /// Per-node power parameters `(ρ_i, L_i, X_i)`.
    pub nodes: &'a [NodeParams],
    /// Lagrange multipliers `η_i ≥ 0`, one per node.
    pub eta: &'a [f64],
    /// Temperature `σ > 0`.
    pub sigma: f64,
    /// Throughput objective defining `T_w`.
    pub mode: ThroughputMode,
}

impl<'a> GibbsParams<'a> {
    /// Validates the shape of the inputs.
    fn check(&self) {
        assert_eq!(
            self.nodes.len(),
            self.eta.len(),
            "one multiplier per node required"
        );
        assert!(self.sigma > 0.0 && self.sigma.is_finite());
        assert!(self.eta.iter().all(|&e| e >= 0.0 && e.is_finite()));
    }

    /// The log-weight (exponent of (19) before normalization) of one
    /// state.
    pub fn log_weight(&self, w: &NetworkState) -> f64 {
        let mut cost = 0.0;
        for i in w.listeners() {
            cost += self.eta[i] * self.nodes[i].listen_w;
        }
        if let Some(t) = w.transmitter() {
            cost += self.eta[t] * self.nodes[t].transmit_w;
        }
        (w.throughput(self.mode) - cost) / self.sigma
    }
}

/// Aggregates of the Gibbs distribution needed by Algorithm 1 and the
/// burstiness analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct GibbsSummary {
    /// `log Z_η` — the log partition function.
    pub log_partition: f64,
    /// `α_i = Σ_{w ∈ W_i^l} π_w` — listen-time fractions (eq. (24)).
    pub alpha: Vec<f64>,
    /// `β_i = Σ_{w ∈ W_i^x} π_w` — transmit-time fractions (eq. (24)).
    pub beta: Vec<f64>,
    /// `E_π[T_w]` — the expected throughput, i.e. the protocol's
    /// long-run `T^σ` at these multipliers.
    pub expected_throughput: f64,
    /// Shannon entropy `−Σ π log π` (nats) — the regularizer of (P4).
    pub entropy: f64,
    /// `Σ_{w ∈ W'} π_w` where `W' = {ν_w = 1, c_w ≥ 1}` — the
    /// numerator of the burst-length formula (34).
    pub burst_mass: f64,
    /// `Σ_{w ∈ W'} π_w · λ_xl(w)` — the denominator of (34), where the
    /// capture-release rate is `e^{−c_w/σ}` in groupput mode and
    /// `e^{−γ_w/σ}` in anyput mode (so that `B_a = e^{1/σ}` exactly,
    /// eq. (35)).
    pub burst_exit_mass: f64,
}

impl GibbsSummary {
    /// The average burst length of EconCast-C, eq. (34) (and its anyput
    /// specialization (35)): `B = burst_mass / burst_exit_mass`.
    /// Returns `None` when no burst state has mass (e.g. a single-node
    /// network).
    pub fn average_burst_length(&self) -> Option<f64> {
        if self.burst_exit_mass > 0.0 {
            Some(self.burst_mass / self.burst_exit_mass)
        } else {
            None
        }
    }

    /// The (P4) objective at this distribution:
    /// `E[T_w] + σ·H(π)` — throughput plus the entropy bonus.
    pub fn p4_objective(&self, sigma: f64) -> f64 {
        self.expected_throughput + sigma * self.entropy
    }
}

/// One block of `W`: a fixed transmitter (or none), an optional
/// always-listening node, and the Gray-coded subsets of the remaining
/// listeners.
#[derive(Debug, Clone)]
struct Block {
    /// The transmitting node, `None` for the transmitter-free blocks.
    transmitter: Option<usize>,
    /// A node pinned to the listen state throughout the block (the
    /// transmitter-free states are split on the last node's listen
    /// bit so that *every* block walks exactly `2^{N−1}` states —
    /// equal-sized jobs for the worker pool).
    fixed_listener: Option<usize>,
    /// Compact listener-bit index → node index (skips the transmitter
    /// / fixed listener).
    remap: Vec<usize>,
}

/// The precomputed, cache-friendly description of `W` for a fixed node
/// count: the block decomposition used by the streaming kernel — the
/// cardinality formula `|W| = (N+2)·2^{N−1}` realized literally as
/// `N + 2` blocks of `2^{N−1}` Gray-coded states each. The Gray-code
/// flip sequence itself needs no storage — the bit flipped between
/// subsets `k` and `k+1` is `trailing_zeros(k+1)`.
#[derive(Debug, Clone)]
pub struct StateTable {
    n: usize,
    blocks: Vec<Block>,
}

impl StateTable {
    /// Builds the block decomposition for `n` nodes (same `n` limits as
    /// [`StateSpace`]).
    pub fn new(n: usize) -> Self {
        // Reuse StateSpace's validation of n.
        let _ = StateSpace::new(n);
        let mut blocks = Vec::with_capacity(n + 2);
        // The 2^N transmitter-free states, split on node n−1's listen
        // bit into two equal 2^{N−1} halves.
        blocks.push(Block {
            transmitter: None,
            fixed_listener: None,
            remap: (0..n - 1).collect(),
        });
        blocks.push(Block {
            transmitter: None,
            fixed_listener: Some(n - 1),
            remap: (0..n - 1).collect(),
        });
        for t in 0..n {
            blocks.push(Block {
                transmitter: Some(t),
                fixed_listener: None,
                remap: (0..n).filter(|&i| i != t).collect(),
            });
        }
        StateTable { n, blocks }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The exact maximum log-weight over all of `W` in closed form:
    /// within a block the optimum keeps exactly the listeners whose
    /// marginal exponent contribution is positive (groupput), or the
    /// single cheapest listener if any is worth waking (anyput).
    pub fn max_log_weight(&self, params: &GibbsParams<'_>) -> f64 {
        params.check();
        let inv_sigma = 1.0 / params.sigma;
        self.blocks
            .iter()
            .map(|b| block_max_log_weight(b, params, inv_sigma))
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// The analytic maximum exponent of one block (see
/// [`StateTable::max_log_weight`]).
fn block_max_log_weight(block: &Block, params: &GibbsParams<'_>, inv_sigma: f64) -> f64 {
    // Unavoidable exponent contributions: the transmit cost and the
    // pinned listener's cost.
    let mut base = match block.transmitter {
        Some(t) => -params.eta[t] * params.nodes[t].transmit_w * inv_sigma,
        None => 0.0,
    };
    if let Some(f) = block.fixed_listener {
        base -= params.eta[f] * params.nodes[f].listen_w * inv_sigma;
    }
    match block.transmitter {
        // No transmitter ⇒ T_w = 0 and every free listener only
        // costs: the empty free subset is optimal.
        None => base,
        Some(_) => match params.mode {
            // T_w = c_w: include exactly the listeners with positive
            // marginal weight (1 − η_i L_i)/σ.
            ThroughputMode::Groupput => {
                let mut m = base;
                for &i in &block.remap {
                    let gain = (1.0 - params.eta[i] * params.nodes[i].listen_w) * inv_sigma;
                    if gain > 0.0 {
                        m += gain;
                    }
                }
                m
            }
            // T_w = 1{c_w ≥ 1}: either nobody listens, or the single
            // cheapest listener does (extra listeners only add cost).
            ThroughputMode::Anyput => {
                let min_cost = block
                    .remap
                    .iter()
                    .map(|&i| params.eta[i] * params.nodes[i].listen_w * inv_sigma)
                    .fold(f64::INFINITY, f64::min);
                if min_cost.is_finite() {
                    base + (1.0 * inv_sigma - min_cost).max(0.0)
                } else {
                    base // single-node network: no possible listener
                }
            }
        },
    }
}

/// Scalar partial sums of one block, shifted by the block's analytic
/// maximum exponent. `alpha` partials live in the workspace scratch.
#[derive(Debug, Clone, Copy, Default)]
struct BlockSums {
    max_lw: f64,
    z: f64,
    tw: f64,
    /// Σ u_w · lw_w with the *unshifted* log-weight (for the entropy).
    exp_lw: f64,
    burst: f64,
    burst_exit: f64,
}

/// Per-block mutable scratch, preallocated once per workspace.
#[derive(Debug, Clone)]
struct BlockScratch {
    /// α numerators of this block (indexed by node).
    alpha: Vec<f64>,
    /// Running-mass marks for the interval trick (indexed by node).
    mark: Vec<f64>,
    /// The block's scalar partial sums (written by the kernel, read by
    /// the merge — kept here so the fan-out returns nothing and the
    /// steady state allocates nothing).
    sums: BlockSums,
}

/// Reusable buffers and the precomputed [`StateTable`] for repeated
/// summary evaluations. Construct once per solver / per node count;
/// every [`SummaryWorkspace::summarize`] call after the first performs
/// no heap allocation besides the returned summary's `alpha`/`beta`
/// clones (use [`SummaryWorkspace::alpha`]/[`beta`](Self::beta) to
/// avoid even those in hot loops).
#[derive(Debug, Clone)]
pub struct SummaryWorkspace {
    table: StateTable,
    /// Listen-cost deltas `η_i L_i / σ` for the current evaluation.
    d: Vec<f64>,
    /// Per-listener-count throughput `T(m)` for the current mode.
    t_raw: Vec<f64>,
    /// Per-listener-count capture-release rate `e^{−signal(m)/σ}`.
    exit: Vec<f64>,
    scratch: Vec<BlockScratch>,
    /// Merged marginal numerators (then normalized in place).
    alpha: Vec<f64>,
    beta: Vec<f64>,
    log_partition: f64,
    expected_throughput: f64,
    entropy: f64,
    burst_mass: f64,
    burst_exit_mass: f64,
}

/// Below this node count the whole summary runs serially: the pool
/// spawns scoped OS threads per call (it deliberately has no
/// persistent workers), which costs on the order of 100 µs — worth it
/// only once a block (~`2^{N−1}` exponentials, ≈ 60 µs at N = 13)
/// clearly dominates the dispatch.
const PARALLEL_MIN_NODES: usize = 14;

impl SummaryWorkspace {
    /// Allocates a workspace for `n` nodes.
    pub fn new(n: usize) -> Self {
        let table = StateTable::new(n);
        let scratch = (0..n + 2)
            .map(|_| BlockScratch {
                alpha: vec![0.0; n],
                mark: vec![0.0; n],
                sums: BlockSums::default(),
            })
            .collect();
        SummaryWorkspace {
            table,
            d: vec![0.0; n],
            t_raw: vec![0.0; n + 1],
            exit: vec![0.0; n + 1],
            scratch,
            alpha: vec![0.0; n],
            beta: vec![0.0; n],
            log_partition: 0.0,
            expected_throughput: 0.0,
            entropy: 0.0,
            burst_mass: 0.0,
            burst_exit_mass: 0.0,
        }
    }

    /// Number of nodes this workspace serves.
    pub fn num_nodes(&self) -> usize {
        self.table.n
    }

    /// Evaluates the Gibbs summary in place; read the results through
    /// the accessors. Allocation-free after construction.
    pub fn compute(&mut self, params: &GibbsParams<'_>) {
        params.check();
        let n = self.table.n;
        assert_eq!(params.nodes.len(), n, "workspace sized for {n} nodes");
        let inv_sigma = 1.0 / params.sigma;

        for i in 0..n {
            self.d[i] = params.eta[i] * params.nodes[i].listen_w * inv_sigma;
        }
        for m in 0..=n {
            self.t_raw[m] = params.mode.state_throughput(true, m);
            self.exit[m] = (-params.mode.listener_signal(m as f64) * inv_sigma).exp();
        }

        // Fan the blocks out. Each job reads the shared tables and
        // writes only its own scratch (partials included), so the
        // fan-out returns unit and the steady state allocates nothing;
        // partials are merged sequentially in block order below, so
        // the result is bit-identical at any worker count.
        let table = &self.table;
        let d = &self.d;
        let t_raw = &self.t_raw;
        let exit = &self.exit;
        let workers = if n >= PARALLEL_MIN_NODES {
            econcast_parallel::effective_threads(n + 2)
        } else {
            1
        };
        econcast_parallel::run_on_slices(
            &mut self.scratch,
            workers,
            |b, scratch: &mut BlockScratch| {
                scratch.sums =
                    accumulate_block(&table.blocks[b], params, inv_sigma, d, t_raw, exit, scratch);
            },
        );

        // Deterministic merge in block order.
        let global_max = self
            .scratch
            .iter()
            .map(|s| s.sums.max_lw)
            .fold(f64::NEG_INFINITY, f64::max);
        debug_assert!(global_max.is_finite());
        let mut z = 0.0;
        let mut tw_acc = 0.0;
        let mut exp_acc = 0.0;
        let mut burst_acc = 0.0;
        let mut burst_exit_acc = 0.0;
        self.alpha.iter_mut().for_each(|a| *a = 0.0);
        self.beta.iter_mut().for_each(|b| *b = 0.0);
        for (b, scratch) in self.scratch.iter().enumerate() {
            let s = &scratch.sums;
            let scale = (s.max_lw - global_max).exp();
            z += scale * s.z;
            tw_acc += scale * s.tw;
            exp_acc += scale * s.exp_lw;
            burst_acc += scale * s.burst;
            burst_exit_acc += scale * s.burst_exit;
            if let Some(t) = self.table.blocks[b].transmitter {
                self.beta[t] += scale * s.z;
            }
            for i in 0..n {
                self.alpha[i] += scale * scratch.alpha[i];
            }
        }

        let inv_z = 1.0 / z;
        self.log_partition = global_max + z.ln();
        self.expected_throughput = tw_acc * inv_z;
        // H(π) = log Z − E[log weight] (log π_w = lw_w − log Z).
        self.entropy = self.log_partition - exp_acc * inv_z;
        self.burst_mass = burst_acc * inv_z;
        self.burst_exit_mass = burst_exit_acc * inv_z;
        for i in 0..n {
            self.alpha[i] *= inv_z;
            self.beta[i] *= inv_z;
        }
    }

    /// Listen-time fractions `α` of the last [`compute`](Self::compute).
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// Transmit-time fractions `β` of the last compute.
    pub fn beta(&self) -> &[f64] {
        &self.beta
    }

    /// `log Z_η` of the last compute.
    pub fn log_partition(&self) -> f64 {
        self.log_partition
    }

    /// `E_π[T_w]` of the last compute.
    pub fn expected_throughput(&self) -> f64 {
        self.expected_throughput
    }

    /// Materializes the last compute as an owned [`GibbsSummary`].
    pub fn to_summary(&self) -> GibbsSummary {
        GibbsSummary {
            log_partition: self.log_partition,
            alpha: self.alpha.clone(),
            beta: self.beta.clone(),
            expected_throughput: self.expected_throughput,
            entropy: self.entropy,
            burst_mass: self.burst_mass,
            burst_exit_mass: self.burst_exit_mass,
        }
    }

    /// Evaluates and materializes in one call.
    pub fn summarize(&mut self, params: &GibbsParams<'_>) -> GibbsSummary {
        self.compute(params);
        self.to_summary()
    }
}

/// The streaming kernel for one block: a single Gray-code pass with
/// incremental exponent, analytic shift, and interval marginals.
fn accumulate_block(
    block: &Block,
    params: &GibbsParams<'_>,
    inv_sigma: f64,
    d: &[f64],
    t_raw: &[f64],
    exit: &[f64],
    scratch: &mut BlockScratch,
) -> BlockSums {
    let width = block.remap.len();
    let max_lw = block_max_log_weight(block, params, inv_sigma);
    let mut base = match block.transmitter {
        Some(t) => -params.eta[t] * params.nodes[t].transmit_w * inv_sigma,
        None => 0.0,
    };
    let has_tx = block.transmitter.is_some();

    for &i in &block.remap {
        scratch.alpha[i] = 0.0;
    }
    if let Some(f) = block.fixed_listener {
        scratch.alpha[f] = 0.0;
        base -= d[f];
    }

    // State 0: only the pinned listener (if any) is awake.
    let mut cost = 0.0f64; // Σ d_i over the free listeners (base holds the rest)
    let mut m = usize::from(block.fixed_listener.is_some()); // current listener count
    let mut listeners = 0u64; // current compact listener mask
    let mut mass = 0.0f64; // running Σ u over states visited so far

    let mut sums = BlockSums {
        max_lw,
        ..BlockSums::default()
    };
    let t_of = |m: usize| if has_tx { t_raw[m] } else { 0.0 };

    let count = 1u64 << width;
    let mut k = 0u64;
    loop {
        // Accumulate the current state.
        let lw = t_of(m) * inv_sigma + base - cost;
        debug_assert!(lw <= max_lw + 1e-9 * (1.0 + max_lw.abs()));
        let u = (lw - max_lw).exp();
        sums.z += u;
        sums.tw += u * t_of(m);
        sums.exp_lw += u * lw;
        if has_tx && m >= 1 {
            sums.burst += u;
            sums.burst_exit += u * exit[m];
        }
        mass += u;

        k += 1;
        if k == count {
            break;
        }
        // Gray step: flip the bit at trailing_zeros(k).
        let j = k.trailing_zeros() as usize;
        let node = block.remap[j];
        let bit = 1u64 << j;
        if listeners & bit == 0 {
            listeners |= bit;
            cost += d[node];
            m += 1;
            // Node enters the listener set: everything accumulated
            // from here until it leaves belongs to α_node.
            scratch.mark[node] = mass;
        } else {
            listeners &= !bit;
            cost -= d[node];
            m -= 1;
            scratch.alpha[node] += mass - scratch.mark[node];
        }
    }
    // Close the intervals still open at the end of the walk.
    let mut rest = listeners;
    while rest != 0 {
        let j = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        let node = block.remap[j];
        scratch.alpha[node] += mass - scratch.mark[node];
    }
    // The pinned listener listened through the whole block.
    if let Some(f) = block.fixed_listener {
        scratch.alpha[f] += mass;
    }
    sums
}

/// Evaluates the Gibbs distribution summary with the streaming
/// Gray-code kernel (see the module docs). Allocates a fresh
/// [`SummaryWorkspace`]; hot loops should hold their own workspace and
/// call [`SummaryWorkspace::compute`] instead.
pub fn summarize(params: &GibbsParams<'_>) -> GibbsSummary {
    params.check();
    SummaryWorkspace::new(params.nodes.len()).summarize(params)
}

/// The original two-pass enumeration kernel, kept as the golden
/// reference for the equivalence property tests and as the benchmark
/// baseline. Do not use in hot paths.
#[doc(hidden)]
pub fn summarize_naive(params: &GibbsParams<'_>) -> GibbsSummary {
    params.check();
    let n = params.nodes.len();
    let space = StateSpace::new(n);

    // Pass 1: the maximum exponent for a stable log-sum-exp.
    let mut max_lw = f64::NEG_INFINITY;
    for w in space.iter() {
        max_lw = max_lw.max(params.log_weight(&w));
    }
    debug_assert!(max_lw.is_finite());

    // Pass 2: accumulate unnormalized (shifted) masses.
    let mut z = 0.0;
    let mut alpha_acc = vec![0.0; n];
    let mut beta_acc = vec![0.0; n];
    let mut tw_acc = 0.0;
    let mut exponent_acc = 0.0; // Σ u_w · lw_w for the entropy
    let mut burst_acc = 0.0;
    let mut burst_exit_acc = 0.0;
    for w in space.iter() {
        let lw = params.log_weight(&w);
        let u = (lw - max_lw).exp();
        z += u;
        for i in w.listeners() {
            alpha_acc[i] += u;
        }
        if let Some(t) = w.transmitter() {
            beta_acc[t] += u;
        }
        tw_acc += u * w.throughput(params.mode);
        exponent_acc += u * lw;
        if w.is_burst_state() {
            burst_acc += u;
            let signal = params.mode.listener_signal(w.listener_count() as f64);
            burst_exit_acc += u * (-signal / params.sigma).exp();
        }
    }

    let log_partition = max_lw + z.ln();
    let inv_z = 1.0 / z;
    // H(π) = log Z − E[log weight]  (since log π_w = lw_w − log Z).
    let entropy = log_partition - exponent_acc * inv_z;
    GibbsSummary {
        log_partition,
        alpha: alpha_acc.iter().map(|a| a * inv_z).collect(),
        beta: beta_acc.iter().map(|b| b * inv_z).collect(),
        expected_throughput: tw_acc * inv_z,
        entropy,
        burst_mass: burst_acc * inv_z,
        burst_exit_mass: burst_exit_acc * inv_z,
    }
}

/// The full probability vector aligned with [`StateSpace::iter`] order.
/// Only sensible for small `n`; used by tests and the detailed-balance
/// checks. The normalizer comes from the factorized kernel's exact
/// `log Z_η` (O(N) for both throughput modes), so each state's
/// probability is emitted fully normalized in a single enumeration
/// pass — no accumulate-then-divide second sweep.
pub fn distribution(params: &GibbsParams<'_>) -> Vec<(NetworkState, f64)> {
    params.check();
    let space = StateSpace::new(params.nodes.len());
    let mut ws = crate::factorized::FactorizedWorkspace::new(params.nodes.len());
    ws.compute(params);
    let log_z = ws.log_partition();
    space
        .iter()
        .map(|w| (w, (params.log_weight(&w) - log_z).exp()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use econcast_core::rates::{ProtocolConfig, TransitionRates, Variant};
    use econcast_core::ThroughputMode::{Anyput, Groupput};
    use proptest::prelude::*;

    fn homogeneous(n: usize) -> Vec<NodeParams> {
        vec![NodeParams::from_microwatts(10.0, 500.0, 500.0); n]
    }

    /// Heterogeneous instance deterministically derived from a seed,
    /// exercising wide power and multiplier spreads.
    fn heterogeneous(n: usize, seed: u64) -> (Vec<NodeParams>, Vec<f64>) {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let nodes = (0..n)
            .map(|_| {
                NodeParams::from_microwatts(
                    1.0 + 99.0 * next(),
                    300.0 + 400.0 * next(),
                    300.0 + 400.0 * next(),
                )
            })
            .collect();
        let eta = (0..n).map(|_| 5000.0 * next()).collect();
        (nodes, eta)
    }

    fn assert_summaries_close(a: &GibbsSummary, b: &GibbsSummary, tol: f64, ctx: &str) {
        assert!(
            (a.log_partition - b.log_partition).abs() <= tol * (1.0 + a.log_partition.abs()),
            "{ctx}: log_partition {} vs {}",
            a.log_partition,
            b.log_partition
        );
        for i in 0..a.alpha.len() {
            assert!(
                (a.alpha[i] - b.alpha[i]).abs() <= tol,
                "{ctx}: alpha[{i}] {} vs {}",
                a.alpha[i],
                b.alpha[i]
            );
            assert!(
                (a.beta[i] - b.beta[i]).abs() <= tol,
                "{ctx}: beta[{i}] {} vs {}",
                a.beta[i],
                b.beta[i]
            );
        }
        assert!(
            (a.expected_throughput - b.expected_throughput).abs()
                <= tol * (1.0 + b.expected_throughput.abs()),
            "{ctx}: E[T] {} vs {}",
            a.expected_throughput,
            b.expected_throughput
        );
        assert!(
            (a.entropy - b.entropy).abs() <= tol * (1.0 + b.entropy.abs()),
            "{ctx}: entropy {} vs {}",
            a.entropy,
            b.entropy
        );
        assert!((a.burst_mass - b.burst_mass).abs() <= tol, "{ctx}: burst");
        assert!(
            (a.burst_exit_mass - b.burst_exit_mass).abs() <= tol,
            "{ctx}: burst exit"
        );
    }

    #[test]
    fn streaming_matches_naive_on_homogeneous_grid() {
        for n in [1usize, 2, 3, 5, 8, 10] {
            for mode in [Groupput, Anyput] {
                for eta in [0.0, 500.0, 3000.0] {
                    for sigma in [0.1, 0.5, 1.0] {
                        let nodes = homogeneous(n);
                        let etas = vec![eta; n];
                        let p = GibbsParams {
                            nodes: &nodes,
                            eta: &etas,
                            sigma,
                            mode,
                        };
                        let fast = summarize(&p);
                        let slow = summarize_naive(&p);
                        assert_summaries_close(
                            &fast,
                            &slow,
                            1e-9,
                            &format!("n={n} mode={mode:?} eta={eta} sigma={sigma}"),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn analytic_max_matches_enumerated_max() {
        for seed in 0..20u64 {
            let (nodes, eta) = heterogeneous(6, seed);
            for mode in [Groupput, Anyput] {
                let p = GibbsParams {
                    nodes: &nodes,
                    eta: &eta,
                    sigma: 0.3,
                    mode,
                };
                let analytic = StateTable::new(6).max_log_weight(&p);
                let enumerated = StateSpace::new(6)
                    .iter()
                    .map(|w| p.log_weight(&w))
                    .fold(f64::NEG_INFINITY, f64::max);
                assert!(
                    (analytic - enumerated).abs() <= 1e-9 * (1.0 + enumerated.abs()),
                    "seed {seed} mode {mode:?}: analytic {analytic} vs {enumerated}"
                );
            }
        }
    }

    #[test]
    fn workspace_reuse_is_stable() {
        // Repeated compute() calls on one workspace give identical
        // results — no state leaks between evaluations.
        let (nodes, eta) = heterogeneous(7, 3);
        let p = GibbsParams {
            nodes: &nodes,
            eta: &eta,
            sigma: 0.4,
            mode: Groupput,
        };
        let mut ws = SummaryWorkspace::new(7);
        let first = ws.summarize(&p);
        // Interleave a different evaluation to try to poison buffers.
        let other_eta = vec![1.0; 7];
        let p2 = GibbsParams {
            nodes: &nodes,
            eta: &other_eta,
            sigma: 0.9,
            mode: Anyput,
        };
        ws.compute(&p2);
        let again = ws.summarize(&p);
        assert_eq!(first, again, "workspace reuse must be deterministic");
    }

    #[test]
    fn parallel_and_serial_are_bit_identical() {
        // The rayon-on/off determinism pin: the merged reduction must
        // not depend on the worker count. n ≥ PARALLEL_MIN_NODES so
        // the parallel path actually engages.
        const { assert!(14 >= PARALLEL_MIN_NODES) };
        let (nodes, eta) = heterogeneous(14, 11);
        let p = GibbsParams {
            nodes: &nodes,
            eta: &eta,
            sigma: 0.25,
            mode: Groupput,
        };
        econcast_parallel::set_threads(Some(1));
        let serial = summarize(&p);
        econcast_parallel::set_threads(Some(8));
        let parallel = summarize(&p);
        econcast_parallel::set_threads(None);
        assert_eq!(
            serial.log_partition.to_bits(),
            parallel.log_partition.to_bits()
        );
        assert_eq!(
            serial.expected_throughput.to_bits(),
            parallel.expected_throughput.to_bits()
        );
        for i in 0..14 {
            assert_eq!(serial.alpha[i].to_bits(), parallel.alpha[i].to_bits());
            assert_eq!(serial.beta[i].to_bits(), parallel.beta[i].to_bits());
        }
        assert_eq!(serial.entropy.to_bits(), parallel.entropy.to_bits());
        assert_eq!(serial.burst_mass.to_bits(), parallel.burst_mass.to_bits());
        assert_eq!(
            serial.burst_exit_mass.to_bits(),
            parallel.burst_exit_mass.to_bits()
        );
    }

    #[test]
    fn distribution_sums_to_one_and_matches_summary() {
        let nodes = homogeneous(5);
        let eta = vec![1000.0; 5];
        let p = GibbsParams {
            nodes: &nodes,
            eta: &eta,
            sigma: 0.5,
            mode: Groupput,
        };
        let dist = distribution(&p);
        let total: f64 = dist.iter().map(|(_, pr)| pr).sum();
        assert!((total - 1.0).abs() < 1e-12);

        let s = summarize(&p);
        // Cross-check α_0 against the explicit distribution.
        let alpha0: f64 = dist
            .iter()
            .filter(|(w, _)| w.is_listening(0))
            .map(|(_, pr)| pr)
            .sum();
        assert!((s.alpha[0] - alpha0).abs() < 1e-12);
        let beta0: f64 = dist
            .iter()
            .filter(|(w, _)| w.transmitter() == Some(0))
            .map(|(_, pr)| pr)
            .sum();
        assert!((s.beta[0] - beta0).abs() < 1e-12);
    }

    #[test]
    fn zero_eta_favors_max_throughput_states() {
        // With η = 0 the weight is exp(T_w/σ): the most likely states
        // are those with one transmitter and all others listening.
        let nodes = homogeneous(4);
        let eta = vec![0.0; 4];
        let p = GibbsParams {
            nodes: &nodes,
            eta: &eta,
            sigma: 0.25,
            mode: Groupput,
        };
        let dist = distribution(&p);
        let (best, _) = dist
            .iter()
            .fold((NetworkState::all_sleep(), -1.0), |acc, (w, pr)| {
                if *pr > acc.1 {
                    (*w, *pr)
                } else {
                    acc
                }
            });
        assert!(best.nu());
        assert_eq!(best.listener_count(), 3);
    }

    #[test]
    fn large_eta_favors_all_sleep() {
        let nodes = homogeneous(4);
        let eta = vec![1e9; 4];
        let p = GibbsParams {
            nodes: &nodes,
            eta: &eta,
            sigma: 0.5,
            mode: Groupput,
        };
        let s = summarize(&p);
        // Everyone asleep nearly all the time.
        assert!(s.alpha.iter().all(|&a| a < 1e-6));
        assert!(s.beta.iter().all(|&b| b < 1e-6));
        assert!(s.expected_throughput < 1e-6);
    }

    #[test]
    fn log_domain_survives_tiny_sigma() {
        let nodes = homogeneous(8);
        let eta = vec![5000.0; 8];
        let p = GibbsParams {
            nodes: &nodes,
            eta: &eta,
            sigma: 0.05,
            mode: Groupput,
        };
        let s = summarize(&p);
        assert!(s.log_partition.is_finite());
        assert!(s.expected_throughput.is_finite());
        assert!(s.entropy.is_finite());
        assert!(s.alpha.iter().all(|a| a.is_finite() && *a >= 0.0));
    }

    #[test]
    fn anyput_throughput_never_exceeds_one() {
        let nodes = homogeneous(6);
        let eta = vec![100.0; 6];
        let p = GibbsParams {
            nodes: &nodes,
            eta: &eta,
            sigma: 0.5,
            mode: Anyput,
        };
        let s = summarize(&p);
        assert!(s.expected_throughput <= 1.0 + 1e-12);
    }

    #[test]
    fn entropy_is_nonnegative_and_bounded_by_log_cardinality() {
        let nodes = homogeneous(5);
        let eta = vec![2000.0; 5];
        let p = GibbsParams {
            nodes: &nodes,
            eta: &eta,
            sigma: 0.5,
            mode: Groupput,
        };
        let s = summarize(&p);
        let log_w = (StateSpace::new(5).len() as f64).ln();
        assert!(s.entropy >= -1e-9);
        assert!(s.entropy <= log_w + 1e-9);
    }

    #[test]
    fn detailed_balance_of_rates_18_under_pi_19() {
        // Lemma 2 (Appendix C): π_w · r(w,w') = π_w' · r(w',w) for the
        // four transition cases, for the capture variant with perfect
        // estimates, A(t)=1, σ folded in. We verify numerically on a
        // heterogeneous 4-node network.
        let nodes = vec![
            NodeParams::from_microwatts(5.0, 400.0, 600.0),
            NodeParams::from_microwatts(10.0, 500.0, 500.0),
            NodeParams::from_microwatts(50.0, 600.0, 400.0),
            NodeParams::from_microwatts(100.0, 550.0, 450.0),
        ];
        let eta = vec![800.0, 1200.0, 300.0, 150.0];
        let sigma = 0.5;
        let p = GibbsParams {
            nodes: &nodes,
            eta: &eta,
            sigma,
            mode: Groupput,
        };
        let cfg = ProtocolConfig::new(sigma, Variant::Capture, ThroughputMode::Groupput);
        let dist: std::collections::HashMap<NetworkState, f64> =
            distribution(&p).into_iter().collect();

        let rate = |w: &NetworkState, i: usize, to: econcast_core::NodeState| {
            // Evaluate node i's rate out of its state in w; A(t)=1
            // whenever no one transmits or i itself transmits.
            let listeners = w.listener_count();
            let carrier_free = !w.nu();
            let r = TransitionRates::evaluate(
                &cfg,
                eta[i],
                nodes[i].listen_w,
                nodes[i].transmit_w,
                carrier_free,
                // The transmitter estimates the listeners it serves;
                // a listener entering transmit sees current listeners
                // minus itself.
                if w.transmitter() == Some(i) {
                    listeners as f64
                } else {
                    listeners as f64 - 1.0
                },
            );
            match to {
                econcast_core::NodeState::Listen
                    if w.node_state(i) == econcast_core::NodeState::Sleep =>
                {
                    r.sleep_to_listen
                }
                econcast_core::NodeState::Sleep => r.listen_to_sleep,
                econcast_core::NodeState::Transmit => r.listen_to_transmit,
                econcast_core::NodeState::Listen => r.transmit_to_listen,
            }
        };

        use econcast_core::NodeState::*;
        let mut checked = 0usize;
        for (w, pw) in &dist {
            for i in 0..nodes.len() {
                match w.node_state(i) {
                    Sleep if !w.nu() => {
                        // s→l and back.
                        let w2 = NetworkState::new(w.transmitter(), w.listener_mask() | (1 << i));
                        let fwd = pw * rate(w, i, Listen);
                        let bwd = dist[&w2] * rate(&w2, i, Sleep);
                        assert!(
                            (fwd - bwd).abs() <= 1e-9 * fwd.max(bwd).max(1e-300),
                            "s↔l balance broken at {w:?} node {i}: {fwd} vs {bwd}"
                        );
                        checked += 1;
                    }
                    Listen if !w.nu() => {
                        // l→x and back.
                        let w2 = NetworkState::new(Some(i), w.listener_mask() & !(1 << i));
                        let fwd = pw * rate(w, i, Transmit);
                        let bwd = dist[&w2] * rate(&w2, i, Listen);
                        assert!(
                            (fwd - bwd).abs() <= 1e-9 * fwd.max(bwd).max(1e-300),
                            "l↔x balance broken at {w:?} node {i}: {fwd} vs {bwd}"
                        );
                        checked += 1;
                    }
                    _ => {}
                }
            }
        }
        // Every transmitter-free state contributes one reversible pair
        // per node: 2^4 states × 4 nodes = 64 checks.
        assert_eq!(checked, 64, "expected to exercise every reversible pair");
    }

    proptest! {
        /// The headline equivalence pin: the Gray-code/streaming kernel
        /// matches the naive reference within 1e-9 across random
        /// heterogeneous instances, both modes, wide σ and η ranges.
        #[test]
        fn prop_streaming_matches_naive_heterogeneous(
            n in 1usize..9,
            seed in 0u64..1_000_000,
            sigma in 0.05f64..1.5,
        ) {
            let (nodes, eta) = heterogeneous(n, seed);
            for mode in [Groupput, Anyput] {
                let p = GibbsParams { nodes: &nodes, eta: &eta, sigma, mode };
                let fast = summarize(&p);
                let slow = summarize_naive(&p);
                prop_assert!((fast.log_partition - slow.log_partition).abs()
                    <= 1e-9 * (1.0 + slow.log_partition.abs()));
                for i in 0..n {
                    prop_assert!((fast.alpha[i] - slow.alpha[i]).abs() <= 1e-9);
                    prop_assert!((fast.beta[i] - slow.beta[i]).abs() <= 1e-9);
                }
                prop_assert!((fast.expected_throughput - slow.expected_throughput).abs()
                    <= 1e-9 * (1.0 + slow.expected_throughput.abs()));
                prop_assert!((fast.entropy - slow.entropy).abs()
                    <= 1e-9 * (1.0 + slow.entropy.abs()));
                prop_assert!((fast.burst_mass - slow.burst_mass).abs() <= 1e-9);
                prop_assert!((fast.burst_exit_mass - slow.burst_exit_mass).abs() <= 1e-9);
            }
        }

        /// α and β are valid time fractions and α_i + β_i ≤ 1.
        #[test]
        fn prop_marginals_are_fractions(
            n in 2usize..7,
            eta_scale in 0.0f64..5000.0,
            sigma in 0.1f64..1.0,
        ) {
            let nodes = homogeneous(n);
            let eta = vec![eta_scale; n];
            let p = GibbsParams { nodes: &nodes, eta: &eta, sigma, mode: Groupput };
            let s = summarize(&p);
            for i in 0..n {
                prop_assert!(s.alpha[i] >= -1e-12 && s.alpha[i] <= 1.0 + 1e-12);
                prop_assert!(s.beta[i] >= -1e-12 && s.beta[i] <= 1.0 + 1e-12);
                prop_assert!(s.alpha[i] + s.beta[i] <= 1.0 + 1e-9);
            }
            // Σβ_i ≤ 1: at most one transmitter at a time.
            let total_beta: f64 = s.beta.iter().sum();
            prop_assert!(total_beta <= 1.0 + 1e-9);
        }

        /// Expected throughput is bounded by the unconstrained oracle.
        #[test]
        fn prop_throughput_bounds(
            n in 2usize..7,
            eta_scale in 0.0f64..3000.0,
        ) {
            let nodes = homogeneous(n);
            let eta = vec![eta_scale; n];
            for mode in [Groupput, Anyput] {
                let p = GibbsParams { nodes: &nodes, eta: &eta, sigma: 0.5, mode };
                let s = summarize(&p);
                prop_assert!(s.expected_throughput <= mode.unconstrained_oracle(n) + 1e-9);
                prop_assert!(s.expected_throughput >= -1e-12);
            }
        }
    }
}
