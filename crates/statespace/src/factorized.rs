//! The factorized large-N summarization kernel: the Gibbs summary in
//! polynomial time, breaking the `2^N` wall of exact enumeration.
//!
//! ## Why the block sums factorize
//!
//! Fix a transmitter `t` (or none). Over the free listener set `F`
//! (everyone but `t`), the unnormalized weight of the state with
//! listener subset `S ⊆ F` is
//!
//! ```text
//! u(S) = exp[(T(|S|) − Σ_{i∈S} η_i L_i − η_t X_t)/σ]
//! ```
//!
//! * **Groupput** (`T = c_w`): the throughput is *linear* in the
//!   listener set, so the weight is a pure product,
//!   `u(S) = e^{base_t} · Π_{i∈S} g_i` with
//!   `g_i = e^{(1 − η_i L_i)/σ}`. Every block sum collapses by
//!   independence: the block partition is `e^{base_t}·Π_i (1 + g_i)`,
//!   node `i` listens with probability `σ(x_i) = g_i/(1 + g_i)`
//!   *independently of the rest of the block*, and the expected
//!   listener count / log-weight / burst masses are sums of per-node
//!   terms. One evaluation costs **O(N)** after an O(N) per-node
//!   precompute — down from `(N + 2)·2^{N−1}` states.
//! * **Anyput** (`T = 1{c_w ≥ 1}`): the throughput indicator is not
//!   linear in `S`, but it only depends on whether `S` is empty —
//!   equivalently on the *maximum* listener (any fixed order): `S` is
//!   non-empty iff it has a largest element. Conditioning on that
//!   event splits the block into the empty state plus an
//!   `e^{1/σ}`-tilted product measure over non-empty subsets, both in
//!   closed form: `Z_t = e^{base_t}[1 + e^{1/σ}(P_t − 1)]` with
//!   `P_t = Π_{i∈F}(1 + s_i)`, `s_i = e^{−η_i L_i/σ} ≤ 1` (so the
//!   products cannot overflow). The conditional marginals separate as
//!   `q_i · e_t` (the `i`- and `t`-dependence factor apart through
//!   `σ(−d_i)`), so one leave-one-out sum over the block weights
//!   makes the whole evaluation **O(N)** — see `merge`.
//!   Per-state quantities that decompose neither linearly nor through
//!   the emptiness event (none of the summary's fields — but e.g. an
//!   arbitrary nonlinear `f(c_w)` would) have no such closed form and
//!   must fall back to the Gray-code sweep; the dispatcher in
//!   [`crate::p4`] keeps that path alive for exactly this reason.
//! * **Burst masses**: groupput's capture-release rate `e^{−c_w/σ}`
//!   is itself a product over listeners (each contributes `e^{−1/σ}`),
//!   so the exit mass re-factorizes with `g_i ↦ g_i e^{−1/σ} = s_i`;
//!   anyput's rate `e^{−γ_w/σ}` is constant on burst states.
//!
//! All sums run in the log domain (`softplus`/`log1p`), so the kernel
//! survives the same tiny-σ regimes as the streaming kernel: exponents
//! of ±10³ never materialize as raw `exp`s. The per-block log masses
//! are merged with one global log-sum-exp exactly like the Gray-code
//! merge, and the whole evaluation is **serial and allocation-free**
//! after construction — bit-identical at any worker count by
//! construction, with no fan-out to keep deterministic.
//!
//! [`FactorizedWorkspace`] mirrors the accessor surface of
//! [`crate::SummaryWorkspace`] so the (P4) dual descent, the oracle's
//! certificate machinery, and `gibbs::distribution()` can swap kernels
//! without touching the surrounding code. Equivalence with the
//! streaming kernel is pinned within 1e-9 by the property tests below
//! for every `N ≤ 16`, both throughput modes, across random
//! heterogeneous instances.

use crate::gibbs::{GibbsParams, GibbsSummary};
use econcast_core::ThroughputMode;

/// Hard cap on the factorized kernel's node count — far above anything
/// the wire accepts (`MAX_WIRE_NODES = 4000`), present only so a
/// corrupted length cannot request a terabyte of scratch.
pub const MAX_FACTORIZED_NODES: usize = 1 << 16;

/// Above this `1/σ`, `e^{1/σ}` overflows f64 and the anyput marginal
/// pass falls back to per-pair log-domain exponentiation (O(N²));
/// below it, the O(N) leave-one-out path is exact and safe.
const ANYPUT_LINEAR_MAX_INV_SIGMA: f64 = 700.0;

/// `log(1 + e^x)`, stable for any `x`.
#[inline]
fn softplus(x: f64) -> f64 {
    x.max(0.0) + (-x.abs()).exp().ln_1p()
}

/// `1 / (1 + e^{−x})`, stable for any `x`.
#[inline]
fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// `log(e^a − 1)` for `a ≥ 0`, stable at both ends (`−∞` at `a = 0`).
#[inline]
fn log_expm1(a: f64) -> f64 {
    if a > 36.0 {
        // e^{−a} < 2^{−52}: the −1 is below the ulp.
        a
    } else {
        a.exp_m1().ln()
    }
}

/// Reusable buffers for the factorized summary. Construct once per
/// node count; every [`compute`](Self::compute) after the first
/// allocates nothing (the owned-summary path clones `alpha`/`beta`,
/// same as the streaming workspace).
#[derive(Debug, Clone)]
pub struct FactorizedWorkspace {
    n: usize,
    /// Listen-cost exponents `d_i = η_i L_i / σ`.
    d: Vec<f64>,
    /// Groupput listener log-gains `x_i = (1 − η_i L_i)/σ`.
    x: Vec<f64>,
    /// `softplus(x_i)` — node `i`'s log-factor in a groupput block.
    sp_x: Vec<f64>,
    /// `σ(x_i)` — node `i`'s listen probability in a groupput block.
    p: Vec<f64>,
    /// `softplus(−d_i)` — node `i`'s log-factor under zero throughput.
    sp_s: Vec<f64>,
    /// `σ(−d_i)` — listen probability under zero throughput.
    q: Vec<f64>,
    /// Per-block log masses: slot 0 = the transmitter-free states,
    /// slot `t + 1` = transmitter `t`'s block.
    ell: Vec<f64>,
    /// Shifted block masses `e^{ℓ_b − max ℓ}` (merge scratch).
    zt: Vec<f64>,
    /// Per-block conditional mean throughput.
    tbar: Vec<f64>,
    /// Per-block conditional mean (unshifted) log-weight.
    mbar: Vec<f64>,
    /// Per-block conditional burst fraction.
    bfrac: Vec<f64>,
    /// Per-block conditional burst-exit fraction.
    befrac: Vec<f64>,
    alpha: Vec<f64>,
    beta: Vec<f64>,
    log_partition: f64,
    expected_throughput: f64,
    entropy: f64,
    burst_mass: f64,
    burst_exit_mass: f64,
}

impl FactorizedWorkspace {
    /// Allocates a workspace for `n` nodes. Unlike the enumeration
    /// kernels there is no `2^N` table, so `n` may go far beyond
    /// [`crate::StateSpace::MAX_N`].
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `n > MAX_FACTORIZED_NODES`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "factorized kernel needs at least one node");
        assert!(
            n <= MAX_FACTORIZED_NODES,
            "factorized kernel capped at {MAX_FACTORIZED_NODES} nodes (got {n})"
        );
        FactorizedWorkspace {
            n,
            d: vec![0.0; n],
            x: vec![0.0; n],
            sp_x: vec![0.0; n],
            p: vec![0.0; n],
            sp_s: vec![0.0; n],
            q: vec![0.0; n],
            ell: vec![0.0; n + 1],
            zt: vec![0.0; n + 1],
            tbar: vec![0.0; n + 1],
            mbar: vec![0.0; n + 1],
            bfrac: vec![0.0; n + 1],
            befrac: vec![0.0; n + 1],
            alpha: vec![0.0; n],
            beta: vec![0.0; n],
            log_partition: 0.0,
            expected_throughput: 0.0,
            entropy: 0.0,
            burst_mass: 0.0,
            burst_exit_mass: 0.0,
        }
    }

    /// Number of nodes this workspace serves.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Evaluates the Gibbs summary in place; read results through the
    /// accessors. Allocation-free after construction, fully serial
    /// (nothing to fan out: the per-block work is O(1)–O(N)).
    pub fn compute(&mut self, params: &GibbsParams<'_>) {
        let n = self.n;
        assert_eq!(params.nodes.len(), n, "workspace sized for {n} nodes");
        assert_eq!(params.eta.len(), n, "one multiplier per node required");
        assert!(params.sigma > 0.0 && params.sigma.is_finite());
        let inv_sigma = 1.0 / params.sigma;

        // Shared per-node precompute.
        for i in 0..n {
            let d = params.eta[i] * params.nodes[i].listen_w * inv_sigma;
            self.d[i] = d;
            self.sp_s[i] = softplus(-d);
            self.q[i] = sigmoid(-d);
        }

        match params.mode {
            ThroughputMode::Groupput => self.compute_groupput(params, inv_sigma),
            ThroughputMode::Anyput => self.compute_anyput(params, inv_sigma),
        }
        self.merge(params, inv_sigma);
    }

    /// Per-block aggregates for groupput: everything is a difference
    /// of full-population sums, O(1) per block.
    fn compute_groupput(&mut self, params: &GibbsParams<'_>, inv_sigma: f64) {
        let n = self.n;
        let mut sum_sp_x = 0.0;
        let mut sum_p = 0.0;
        let mut sum_xp = 0.0;
        let mut sum_sp_s = 0.0;
        let mut sum_dq = 0.0;
        for i in 0..n {
            let x = inv_sigma - self.d[i];
            self.x[i] = x;
            self.sp_x[i] = softplus(x);
            self.p[i] = sigmoid(x);
            sum_sp_x += self.sp_x[i];
            sum_p += self.p[i];
            sum_xp += x * self.p[i];
            sum_sp_s += self.sp_s[i];
            sum_dq += self.d[i] * self.q[i];
        }

        // Block 0: no transmitter, T_w = 0, every node free to listen.
        self.ell[0] = sum_sp_s;
        self.tbar[0] = 0.0;
        self.mbar[0] = -sum_dq;
        self.bfrac[0] = 0.0;
        self.befrac[0] = 0.0;

        for t in 0..n {
            let base = -params.eta[t] * params.nodes[t].transmit_w * inv_sigma;
            // Leave-one-out log partition over the free listeners.
            let a = sum_sp_x - self.sp_x[t];
            self.ell[t + 1] = base + a;
            self.tbar[t + 1] = sum_p - self.p[t];
            self.mbar[t + 1] = base + (sum_xp - self.x[t] * self.p[t]);
            // Burst states drop only the empty-listener state:
            // fraction 1 − e^{−a}.
            self.bfrac[t + 1] = -(-a).exp_m1();
            // Exit mass re-factorizes with g_i e^{−1/σ} = s_i.
            let b = sum_sp_s - self.sp_s[t];
            self.befrac[t + 1] = (base + log_expm1(b) - self.ell[t + 1]).exp();
        }
    }

    /// Per-block aggregates for anyput: the throughput indicator is a
    /// function of the non-empty-listener event alone, so each block
    /// is the empty state plus an `e^{1/σ}`-tilted product measure —
    /// exact, O(1) per block here; the marginals follow in `merge`
    /// from one leave-one-out sum (O(N) total).
    fn compute_anyput(&mut self, params: &GibbsParams<'_>, inv_sigma: f64) {
        let n = self.n;
        let mut sum_sp_s = 0.0;
        let mut sum_dq = 0.0;
        for i in 0..n {
            sum_sp_s += self.sp_s[i];
            sum_dq += self.d[i] * self.q[i];
        }

        // Block 0: no transmitter — identical to groupput's block 0.
        self.ell[0] = sum_sp_s;
        self.tbar[0] = 0.0;
        self.mbar[0] = -sum_dq;
        self.bfrac[0] = 0.0;
        self.befrac[0] = 0.0;

        let exit = (-inv_sigma).exp(); // e^{−γ/σ} on burst states
        for t in 0..n {
            let base = -params.eta[t] * params.nodes[t].transmit_w * inv_sigma;
            // log P_t over the free listeners (s_i ≤ 1 ⇒ a ≤ N ln 2).
            // Stashed in `x` — unused by anyput — for the marginal
            // pass in `merge`, which would otherwise re-sum per block.
            let a = sum_sp_s - self.sp_s[t];
            self.x[t] = a;
            // log of the tilted non-empty mass e^{1/σ}(P_t − 1)…
            let g = inv_sigma + log_expm1(a);
            // …and log Z_t/e^{base} = log(1 + e^g) via one softplus.
            let lse = softplus(g);
            self.ell[t + 1] = base + lse;
            let frac = sigmoid(g); // P(S ≠ ∅ | block t)
            self.tbar[t + 1] = frac;
            self.bfrac[t + 1] = frac;
            self.befrac[t + 1] = frac * exit;
            self.mbar[t + 1] = base + inv_sigma * frac; // − Σ d_i α_cond below
        }
    }

    /// Global log-sum-exp merge of the per-block aggregates, plus the
    /// marginals. Block order is fixed, so results are reproducible to
    /// the bit regardless of thread count (the kernel never forks).
    fn merge(&mut self, params: &GibbsParams<'_>, inv_sigma: f64) {
        let n = self.n;
        let ell_max = self.ell.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        debug_assert!(ell_max.is_finite());

        let mut z = 0.0;
        let mut sum_zt_tx = 0.0; // Σ over transmitter blocks only
        for b in 0..=n {
            let zb = (self.ell[b] - ell_max).exp();
            self.zt[b] = zb;
            z += zb;
            if b > 0 {
                sum_zt_tx += zb;
            }
        }
        let inv_z = 1.0 / z;
        self.log_partition = ell_max + z.ln();

        // α: for groupput the listen probability `p_i` is the same in
        // every block not transmitted by `i`, so one leave-one-out sum
        // suffices; for anyput the conditional depends on the block
        // and is accumulated explicitly.
        match params.mode {
            ThroughputMode::Groupput => {
                for i in 0..n {
                    self.alpha[i] =
                        (self.q[i] * self.zt[0] + self.p[i] * (sum_zt_tx - self.zt[i + 1])) * inv_z;
                }
            }
            ThroughputMode::Anyput => {
                let mut sum_dq = 0.0;
                for i in 0..n {
                    sum_dq += self.d[i] * self.q[i];
                }
                if inv_sigma < ANYPUT_LINEAR_MAX_INV_SIGMA {
                    // The conditional marginal
                    //   P(i ∈ S | block t)
                    //     = e^{1/σ} s_i Π_{j≠i,t}(1+s_j) / (Z_t/e^{base})
                    // separates: e^{−d_i − softplus(−d_i)} = σ(−d_i)
                    // = q_i, so it equals `q_i · e_t` with
                    // e_t = e^{1/σ} P_t / (1 + e^{1/σ}(P_t − 1)) — the
                    // t- and i-dependence factor apart, and one
                    // leave-one-out sum over the block weights
                    // w_t = z_t e_t replaces the per-(t, i)
                    // re-exponentiation: O(N) total, not O(N²).
                    let mut w_total = 0.0;
                    for t in 0..n {
                        let base = self.mbar[t + 1] - inv_sigma * self.tbar[t + 1];
                        // log(Z_t / e^{base_t}); `x[t]` is log P_t,
                        // stashed by `compute_anyput`.
                        let lse = self.ell[t + 1] - base;
                        // e_t ≤ e^{1/σ} (P ↦ e^{1/σ}P/(1+e^{1/σ}(P−1))
                        // decreases in P ≥ 1), so the linear-domain
                        // value is finite whenever e^{1/σ} is.
                        let e_t = (inv_sigma + self.x[t] - lse).exp();
                        let w = self.zt[t + 1] * e_t;
                        // `p` is groupput scratch, unused on the
                        // anyput path: borrow it for w_t.
                        self.p[t] = w;
                        w_total += w;
                        self.mbar[t + 1] -= e_t * (sum_dq - self.d[t] * self.q[t]);
                    }
                    for i in 0..n {
                        self.alpha[i] = self.q[i] * (w_total - self.p[i] + self.zt[0]) * inv_z;
                    }
                } else {
                    // σ ≲ 1/700: e^{1/σ} overflows f64, so fold every
                    // exponent into a single exp per (t, i) pair. The
                    // quadratic cost is irrelevant in this degenerate
                    // near-deterministic regime.
                    self.alpha.fill(0.0);
                    for t in 0..n {
                        let zb = self.zt[t + 1];
                        let base = self.mbar[t + 1] - inv_sigma * self.tbar[t + 1];
                        let a = self.x[t];
                        let lse = self.ell[t + 1] - base;
                        let mut mean_cost = 0.0;
                        for i in 0..n {
                            if i == t {
                                continue;
                            }
                            let cond = (inv_sigma - self.d[i] + (a - self.sp_s[i]) - lse).exp();
                            self.alpha[i] += zb * cond;
                            mean_cost += self.d[i] * cond;
                        }
                        self.mbar[t + 1] -= mean_cost;
                    }
                    for i in 0..n {
                        self.alpha[i] = (self.alpha[i] + self.q[i] * self.zt[0]) * inv_z;
                    }
                }
            }
        }

        let mut tw = 0.0;
        let mut exp_lw = 0.0;
        let mut burst = 0.0;
        let mut burst_exit = 0.0;
        for b in 0..=n {
            let zb = self.zt[b];
            tw += zb * self.tbar[b];
            exp_lw += zb * self.mbar[b];
            burst += zb * self.bfrac[b];
            burst_exit += zb * self.befrac[b];
            if b > 0 {
                self.beta[b - 1] = zb * inv_z;
            }
        }
        self.expected_throughput = tw * inv_z;
        // H(π) = log Z − E[log weight].
        self.entropy = self.log_partition - exp_lw * inv_z;
        self.burst_mass = burst * inv_z;
        self.burst_exit_mass = burst_exit * inv_z;
    }

    /// Listen-time fractions `α` of the last [`compute`](Self::compute).
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// Transmit-time fractions `β` of the last compute.
    pub fn beta(&self) -> &[f64] {
        &self.beta
    }

    /// `log Z_η` of the last compute.
    pub fn log_partition(&self) -> f64 {
        self.log_partition
    }

    /// `E_π[T_w]` of the last compute.
    pub fn expected_throughput(&self) -> f64 {
        self.expected_throughput
    }

    /// Materializes the last compute as an owned [`GibbsSummary`].
    pub fn to_summary(&self) -> GibbsSummary {
        GibbsSummary {
            log_partition: self.log_partition,
            alpha: self.alpha.clone(),
            beta: self.beta.clone(),
            expected_throughput: self.expected_throughput,
            entropy: self.entropy,
            burst_mass: self.burst_mass,
            burst_exit_mass: self.burst_exit_mass,
        }
    }

    /// Evaluates and materializes in one call.
    pub fn summarize(&mut self, params: &GibbsParams<'_>) -> GibbsSummary {
        self.compute(params);
        self.to_summary()
    }
}

/// One-shot factorized evaluation. Hot loops should hold a
/// [`FactorizedWorkspace`] and call [`FactorizedWorkspace::compute`].
pub fn summarize_factorized(params: &GibbsParams<'_>) -> GibbsSummary {
    FactorizedWorkspace::new(params.nodes.len()).summarize(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::summarize;
    use econcast_core::NodeParams;
    use econcast_core::ThroughputMode::{Anyput, Groupput};
    use proptest::prelude::*;

    fn homogeneous(n: usize) -> Vec<NodeParams> {
        vec![NodeParams::from_microwatts(10.0, 500.0, 500.0); n]
    }

    /// Heterogeneous instance deterministically derived from a seed
    /// (same generator as the gibbs tests: wide power and multiplier
    /// spreads).
    fn heterogeneous(n: usize, seed: u64) -> (Vec<NodeParams>, Vec<f64>) {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let nodes = (0..n)
            .map(|_| {
                NodeParams::from_microwatts(
                    1.0 + 99.0 * next(),
                    300.0 + 400.0 * next(),
                    300.0 + 400.0 * next(),
                )
            })
            .collect();
        let eta = (0..n).map(|_| 5000.0 * next()).collect();
        (nodes, eta)
    }

    fn assert_close(a: &GibbsSummary, b: &GibbsSummary, tol: f64, ctx: &str) {
        assert!(
            (a.log_partition - b.log_partition).abs() <= tol * (1.0 + b.log_partition.abs()),
            "{ctx}: log_partition {} vs {}",
            a.log_partition,
            b.log_partition
        );
        for i in 0..a.alpha.len() {
            assert!(
                (a.alpha[i] - b.alpha[i]).abs() <= tol,
                "{ctx}: alpha[{i}] {} vs {}",
                a.alpha[i],
                b.alpha[i]
            );
            assert!(
                (a.beta[i] - b.beta[i]).abs() <= tol,
                "{ctx}: beta[{i}] {} vs {}",
                a.beta[i],
                b.beta[i]
            );
        }
        assert!(
            (a.expected_throughput - b.expected_throughput).abs()
                <= tol * (1.0 + b.expected_throughput.abs()),
            "{ctx}: E[T] {} vs {}",
            a.expected_throughput,
            b.expected_throughput
        );
        assert!(
            (a.entropy - b.entropy).abs() <= tol * (1.0 + b.entropy.abs()),
            "{ctx}: entropy {} vs {}",
            a.entropy,
            b.entropy
        );
        assert!(
            (a.burst_mass - b.burst_mass).abs() <= tol,
            "{ctx}: burst {} vs {}",
            a.burst_mass,
            b.burst_mass
        );
        assert!(
            (a.burst_exit_mass - b.burst_exit_mass).abs() <= tol,
            "{ctx}: burst exit {} vs {}",
            a.burst_exit_mass,
            b.burst_exit_mass
        );
    }

    #[test]
    fn matches_streaming_on_heterogeneous_grid_all_n_to_16() {
        // The headline pin of the tentpole: for every N ≤ 16, both
        // modes, the factorized kernel agrees with the Gray-code
        // streaming kernel within 1e-9 on heterogeneous instances.
        for n in 1..=16usize {
            for mode in [Groupput, Anyput] {
                for seed in [1u64, 7, 42] {
                    let (nodes, eta) = heterogeneous(n, seed.wrapping_add(n as u64 * 1000));
                    for sigma in [0.1, 0.5] {
                        let p = GibbsParams {
                            nodes: &nodes,
                            eta: &eta,
                            sigma,
                            mode,
                        };
                        let fact = summarize_factorized(&p);
                        let stream = summarize(&p);
                        assert_close(
                            &fact,
                            &stream,
                            1e-9,
                            &format!("n={n} mode={mode:?} seed={seed} sigma={sigma}"),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn survives_tiny_sigma_at_large_n() {
        // σ = 0.05 at N = 64: raw exponentials span e^{±1280}; the log
        // domain must keep every field finite and the marginals in
        // range. (Enumeration could never check this size — the point
        // of the kernel.)
        let (nodes, eta) = heterogeneous(64, 5);
        for mode in [Groupput, Anyput] {
            let p = GibbsParams {
                nodes: &nodes,
                eta: &eta,
                sigma: 0.05,
                mode,
            };
            let s = summarize_factorized(&p);
            assert!(s.log_partition.is_finite());
            assert!(s.expected_throughput.is_finite() && s.expected_throughput >= 0.0);
            assert!(s.entropy.is_finite() && s.entropy >= -1e-9);
            let total_beta: f64 = s.beta.iter().sum();
            assert!(total_beta <= 1.0 + 1e-9);
            for i in 0..64 {
                assert!(s.alpha[i] >= -1e-12 && s.alpha[i] <= 1.0 + 1e-12);
                assert!(s.beta[i] >= -1e-12 && s.beta[i] <= 1.0 + 1e-12);
            }
            if mode == Anyput {
                assert!(s.expected_throughput <= 1.0 + 1e-12);
                // Eq. (35): B_a = e^{1/σ} exactly.
                let b = s.average_burst_length().expect("burst states have mass");
                assert!(
                    (b - (1.0 / 0.05f64).exp()).abs() <= 1e-6 * (1.0 / 0.05f64).exp(),
                    "anyput burst length {b} vs e^{{1/σ}}"
                );
            }
        }
    }

    #[test]
    fn workspace_reuse_is_stable() {
        let (nodes, eta) = heterogeneous(9, 3);
        let p = GibbsParams {
            nodes: &nodes,
            eta: &eta,
            sigma: 0.4,
            mode: Groupput,
        };
        let mut ws = FactorizedWorkspace::new(9);
        let first = ws.summarize(&p);
        // Interleave a different evaluation to try to poison buffers.
        let other_eta = vec![1.0; 9];
        let p2 = GibbsParams {
            nodes: &nodes,
            eta: &other_eta,
            sigma: 0.9,
            mode: Anyput,
        };
        ws.compute(&p2);
        let again = ws.summarize(&p);
        assert_eq!(first, again, "workspace reuse must be deterministic");
    }

    #[test]
    fn single_node_degenerates_correctly() {
        // N = 1: three states (sleep, listen, transmit), zero
        // throughput and zero burst mass in both modes.
        let nodes = homogeneous(1);
        let eta = vec![700.0];
        for mode in [Groupput, Anyput] {
            let p = GibbsParams {
                nodes: &nodes,
                eta: &eta,
                sigma: 0.5,
                mode,
            };
            let fact = summarize_factorized(&p);
            let stream = summarize(&p);
            assert_close(&fact, &stream, 1e-12, &format!("n=1 {mode:?}"));
            assert_eq!(fact.expected_throughput, 0.0);
            assert_eq!(fact.burst_mass, 0.0);
        }
    }

    #[test]
    fn scales_polynomially_not_exponentially() {
        // A smoke-level scaling check: N = 256 groupput evaluates in
        // well under a second (enumeration would need ~10^77 states).
        let (nodes, eta) = heterogeneous(256, 11);
        let p = GibbsParams {
            nodes: &nodes,
            eta: &eta,
            sigma: 0.25,
            mode: Groupput,
        };
        let t0 = std::time::Instant::now();
        let s = summarize_factorized(&p);
        assert!(
            t0.elapsed().as_secs_f64() < 1.0,
            "O(N) kernel took too long"
        );
        assert!(s.log_partition.is_finite());
        let total_beta: f64 = s.beta.iter().sum();
        assert!(total_beta <= 1.0 + 1e-9);
    }

    /// Self-contained quadratic reference for the anyput α marginals:
    /// the pre-leave-one-out formulation, one log-domain exp per
    /// (t, i) pair. Lets the O(N) production path be pinned at sizes
    /// the Gray-code streaming kernel cannot reach.
    fn quadratic_anyput_alpha(nodes: &[NodeParams], eta: &[f64], sigma: f64) -> Vec<f64> {
        let n = nodes.len();
        let inv_sigma = 1.0 / sigma;
        let softplus = |x: f64| x.max(0.0) + (-x.abs()).exp().ln_1p();
        let d: Vec<f64> = (0..n)
            .map(|i| eta[i] * nodes[i].listen_w * inv_sigma)
            .collect();
        let sp_s: Vec<f64> = d.iter().map(|&d| softplus(-d)).collect();
        let q: Vec<f64> = d.iter().map(|&d| 1.0 / (1.0 + d.exp())).collect();
        let sum_sp_s: f64 = sp_s.iter().sum();
        let mut ell = vec![sum_sp_s];
        let mut log_p = Vec::with_capacity(n);
        let mut lses = Vec::with_capacity(n);
        for t in 0..n {
            let base = -eta[t] * nodes[t].transmit_w * inv_sigma;
            let a = sum_sp_s - sp_s[t];
            log_p.push(a);
            let lse = softplus(inv_sigma + a.exp_m1().ln());
            lses.push(lse);
            ell.push(base + lse);
        }
        let ell_max = ell.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        let zt: Vec<f64> = ell.iter().map(|&l| (l - ell_max).exp()).collect();
        let z: f64 = zt.iter().sum();
        let mut alpha: Vec<f64> = (0..n).map(|i| q[i] * zt[0]).collect();
        for t in 0..n {
            for i in 0..n {
                if i == t {
                    continue;
                }
                let cond = (inv_sigma - d[i] + (log_p[t] - sp_s[i]) - lses[t]).exp();
                alpha[i] += zt[t + 1] * cond;
            }
        }
        alpha.iter().map(|a| a / z).collect()
    }

    proptest! {
        /// The O(N) leave-one-out anyput marginal pass against the
        /// quadratic per-pair reference, at N beyond enumeration's
        /// reach — the satellite's 1e-9 pin.
        #[test]
        fn prop_linear_anyput_marginals_match_quadratic_reference(
            n in 17usize..=96,
            seed in 0u64..100_000,
            sigma in 0.05f64..1.5,
        ) {
            let (nodes, eta) = heterogeneous(n, seed);
            let p = GibbsParams { nodes: &nodes, eta: &eta, sigma, mode: Anyput };
            let fast = summarize_factorized(&p);
            let reference = quadratic_anyput_alpha(&nodes, &eta, sigma);
            for i in 0..n {
                prop_assert!(
                    (fast.alpha[i] - reference[i]).abs() <= 1e-9,
                    "alpha[{}]: {} vs {}", i, fast.alpha[i], reference[i]
                );
            }
        }
    }

    proptest! {
        /// Factorized vs streaming equivalence on random heterogeneous
        /// instances, N ∈ 2..=16, both modes: partition function,
        /// marginals, expected throughput, entropy, burst masses —
        /// the satellite's coverage contract.
        #[test]
        fn prop_matches_streaming_heterogeneous(
            n in 2usize..=16,
            seed in 0u64..1_000_000,
            sigma in 0.05f64..1.5,
        ) {
            let (nodes, eta) = heterogeneous(n, seed);
            for mode in [Groupput, Anyput] {
                let p = GibbsParams { nodes: &nodes, eta: &eta, sigma, mode };
                let fact = summarize_factorized(&p);
                let stream = summarize(&p);
                prop_assert!((fact.log_partition - stream.log_partition).abs()
                    <= 1e-9 * (1.0 + stream.log_partition.abs()));
                for i in 0..n {
                    prop_assert!((fact.alpha[i] - stream.alpha[i]).abs() <= 1e-9);
                    prop_assert!((fact.beta[i] - stream.beta[i]).abs() <= 1e-9);
                }
                prop_assert!((fact.expected_throughput - stream.expected_throughput).abs()
                    <= 1e-9 * (1.0 + stream.expected_throughput.abs()));
                prop_assert!((fact.entropy - stream.entropy).abs()
                    <= 1e-9 * (1.0 + stream.entropy.abs()));
                prop_assert!((fact.burst_mass - stream.burst_mass).abs() <= 1e-9);
                prop_assert!((fact.burst_exit_mass - stream.burst_exit_mass).abs() <= 1e-9);
            }
        }

        /// Marginals stay valid time fractions at sizes enumeration
        /// cannot reach.
        #[test]
        fn prop_large_n_marginals_are_fractions(
            n in 17usize..=96,
            seed in 0u64..100_000,
            sigma in 0.1f64..1.0,
        ) {
            let (nodes, eta) = heterogeneous(n, seed);
            for mode in [Groupput, Anyput] {
                let p = GibbsParams { nodes: &nodes, eta: &eta, sigma, mode };
                let s = summarize_factorized(&p);
                let mut total_beta = 0.0;
                for i in 0..n {
                    prop_assert!(s.alpha[i] >= -1e-12 && s.alpha[i] <= 1.0 + 1e-12);
                    prop_assert!(s.beta[i] >= -1e-12 && s.beta[i] <= 1.0 + 1e-12);
                    prop_assert!(s.alpha[i] + s.beta[i] <= 1.0 + 1e-9);
                    total_beta += s.beta[i];
                }
                prop_assert!(total_beta <= 1.0 + 1e-9);
                prop_assert!(s.entropy >= -1e-9);
                prop_assert!(s.expected_throughput
                    <= mode.unconstrained_oracle(n) + 1e-9);
            }
        }
    }
}
