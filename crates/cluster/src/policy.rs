//! The supervisor policy loop and live-rebalance helpers: detection,
//! decision, and repair with no operator in the loop.
//!
//! PR 5 deliberately split mechanism from policy: the [`Supervisor`]
//! can spawn/kill/respawn, the router can retarget — but *somebody*
//! had to watch the health state and drive the repair. This module is
//! that somebody.
//!
//! ## The healer
//!
//! A [`ClusterHealer`] runs a sweep thread that, every
//! [`HealerConfig::sweep_interval`]:
//!
//! 1. **probes** every remote slot through the wire `Ping`/`Pong`
//!    health machine (`ClusterRouter::ping_all`) — re-adopting
//!    recovered backends and marking wedged ones down;
//! 2. **reaps** dead backend processes (`Supervisor::try_wait` via
//!    [`Supervisor::is_alive`]) and **respawns** them, with
//!    per-backend crash-loop damping: respawn attempts back off
//!    exponentially, and more than
//!    [`HealerConfig::max_respawns_per_window`] respawns inside
//!    [`HealerConfig::respawn_window`] **quarantines** the slot onto a
//!    fresh in-process local solver
//!    ([`ClusterRouter::quarantine_slot`]) — a crash-looping binary
//!    must not be restarted forever;
//! 3. **retargets** the ring slot at the replacement only after an
//!    out-of-lock readiness probe answers a `Ping`, counting the
//!    repair in [`ClusterStats::auto_respawns`](crate::ClusterStats).
//!
//! Requests never wait for any of this: a down slot's sub-batches are
//! served by the router's local fallback (bit-identical bits) the
//! whole time.
//!
//! ## Live rebalancing with warm handoff
//!
//! [`add_backend_with_warmup`] and [`remove_backend_with_handoff`]
//! grow and shrink the ring under load. The ring math is the easy
//! part; the latency cliff is the *caches*: an inheriting backend has
//! no grids for the families it just inherited. So the router keeps
//! shadow per-slot mix recorders, and a rebalance ships them over the
//! wire-v4 `MixSeed` message to whoever inherits the keys — grids are
//! prewarmed before the first inherited request arrives, counted in
//! [`ClusterStats::reshard_handoffs`](crate::ClusterStats).

use crate::router::ClusterRouter;
use crate::supervisor::Supervisor;
use econcast_service::{FamilyKey, PolicyClient};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maps a respawned backend's fresh address to the address the ring
/// slot should be retargeted at. The identity map is right for
/// direct-dial deployments; a fault-injection harness retargets its
/// proxy's upstream here and keeps the router dialing the proxy.
pub type RetargetFn = dyn Fn(usize, SocketAddr) -> SocketAddr + Send;

/// Tuning knobs for the policy loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealerConfig {
    /// Period of the sweep thread.
    pub sweep_interval: Duration,
    /// Backoff before re-attempting a respawn after a failed one;
    /// doubles per consecutive failure (crash-loop damping).
    pub respawn_backoff: Duration,
    /// Respawns tolerated inside [`respawn_window`](Self::respawn_window)
    /// before the slot is quarantined onto a local solver.
    pub max_respawns_per_window: u32,
    /// Sliding window over which respawns are counted.
    pub respawn_window: Duration,
    /// Readiness-probe attempts against a freshly respawned backend
    /// before the attempt is declared failed.
    pub probe_retries: u32,
    /// Pause between readiness-probe attempts.
    pub probe_backoff: Duration,
    /// Dial/I-O timeout of each readiness probe.
    pub probe_timeout: Duration,
}

impl Default for HealerConfig {
    fn default() -> Self {
        HealerConfig {
            sweep_interval: Duration::from_millis(100),
            respawn_backoff: Duration::from_millis(250),
            max_respawns_per_window: 3,
            respawn_window: Duration::from_secs(30),
            probe_retries: 5,
            probe_backoff: Duration::from_millis(50),
            probe_timeout: Duration::from_secs(1),
        }
    }
}

/// Per-managed-backend crash-loop bookkeeping.
struct Managed {
    /// Router slot this backend serves.
    slot: usize,
    /// Supervisor index of the process.
    backend: usize,
    /// Respawn timestamps inside the sliding window.
    respawns: Vec<Instant>,
    /// Consecutive failed respawn attempts (drives the backoff).
    consecutive_failures: u32,
    /// Earliest next respawn attempt (damping).
    not_before: Option<Instant>,
    /// Quarantined: the healer has given up on this backend.
    quarantined: bool,
}

/// The running policy loop; stops on [`shutdown`](Self::shutdown) or
/// drop.
pub struct ClusterHealer {
    stop: Arc<AtomicBool>,
    sweeper: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ClusterHealer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterHealer")
            .field("stopped", &self.stop.load(Ordering::SeqCst))
            .finish()
    }
}

impl ClusterHealer {
    /// Spawns a sweep-only healer: periodic `Ping` probes keep the
    /// health machines fresh (down detection, recovery re-adoption),
    /// but nobody respawns processes — for deployments whose backends
    /// are managed elsewhere (e.g. the benchmark's in-process
    /// servers).
    pub fn spawn(router: Arc<Mutex<ClusterRouter>>, cfg: HealerConfig) -> Self {
        Self::spawn_inner(router, None, Vec::new(), None, cfg)
    }

    /// Spawns the full policy loop over supervised backend processes.
    /// `slot_of_backend[i]` is the router slot that supervisor
    /// backend `i` serves; `retarget` (when given) maps a respawned
    /// backend's address to the address the slot is retargeted at.
    pub fn spawn_supervised(
        router: Arc<Mutex<ClusterRouter>>,
        supervisor: Arc<Mutex<Supervisor>>,
        slot_of_backend: Vec<usize>,
        retarget: Option<Box<RetargetFn>>,
        cfg: HealerConfig,
    ) -> Self {
        Self::spawn_inner(router, Some(supervisor), slot_of_backend, retarget, cfg)
    }

    fn spawn_inner(
        router: Arc<Mutex<ClusterRouter>>,
        supervisor: Option<Arc<Mutex<Supervisor>>>,
        slot_of_backend: Vec<usize>,
        retarget: Option<Box<RetargetFn>>,
        cfg: HealerConfig,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let sweeper = {
            let stop = Arc::clone(&stop);
            let mut managed: Vec<Managed> = slot_of_backend
                .iter()
                .enumerate()
                .map(|(backend, &slot)| Managed {
                    slot,
                    backend,
                    respawns: Vec::new(),
                    consecutive_failures: 0,
                    not_before: None,
                    quarantined: false,
                })
                .collect();
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    {
                        // Sweeps are X events (the sweep thread outlives
                        // any one drain), sized by the probe + repair
                        // work, excluding the idle sleep.
                        let t0 = econcast_trace::armed_now();
                        // Health sweep: the probe dials are cheap on the
                        // deployments this loop serves (localhost refusals
                        // fail in microseconds), and holding the lock keeps
                        // the health machine's state transitions atomic
                        // with respect to batch routing.
                        lock(&router).ping_all();
                        if let Some(sup) = &supervisor {
                            for m in managed.iter_mut().filter(|m| !m.quarantined) {
                                heal_backend(&router, sup, &retarget, &cfg, m);
                            }
                        }
                        econcast_trace::complete_from("cluster", "healer_sweep", t0, &[]);
                    }
                    sleep_ticks(cfg.sweep_interval, &stop);
                }
            })
        };
        ClusterHealer {
            stop,
            sweeper: Some(sweeper),
        }
    }

    /// Stops the sweep thread and joins it.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.sweeper.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ClusterHealer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// One backend's detect→decide→repair step.
fn heal_backend(
    router: &Arc<Mutex<ClusterRouter>>,
    sup: &Arc<Mutex<Supervisor>>,
    retarget: &Option<Box<RetargetFn>>,
    cfg: &HealerConfig,
    m: &mut Managed,
) {
    if lock(sup).is_alive(m.backend) {
        return;
    }
    let now = Instant::now();
    m.respawns
        .retain(|t| now.duration_since(*t) < cfg.respawn_window);
    // Quarantine decision comes *before* another respawn: a backend
    // that already burned its window crash-looping gets pinned onto a
    // local solver instead of restarted forever.
    if m.respawns.len() as u32 >= cfg.max_respawns_per_window {
        lock(router).quarantine_slot(m.slot);
        m.quarantined = true;
        return;
    }
    if m.not_before.is_some_and(|t| now < t) {
        return; // damped: too soon since the last attempt
    }
    m.respawns.push(now);
    let backoff = cfg
        .respawn_backoff
        .saturating_mul(2u32.saturating_pow(m.consecutive_failures.min(16)));
    m.not_before = Some(now + backoff);
    let t0 = econcast_trace::armed_now();
    let spawned = lock(sup).respawn(m.backend);
    match spawned {
        Ok(addr) if probe_ready(addr, cfg) => {
            let target = retarget.as_ref().map_or(addr, |f| f(m.backend, addr));
            let mut r = lock(router);
            r.retarget_slot(m.slot, target);
            r.note_auto_respawn();
            m.consecutive_failures = 0;
            econcast_trace::complete_from(
                "cluster",
                "respawn",
                t0,
                &[("slot", m.slot as u64), ("ok", 1)],
            );
        }
        // Spawn failed or the replacement never answered: the slot
        // stays down (fallback keeps serving), the attempt counts
        // toward the window, and the next try backs off further.
        _ => {
            m.consecutive_failures += 1;
            econcast_trace::complete_from(
                "cluster",
                "respawn",
                t0,
                &[("slot", m.slot as u64), ("ok", 0)],
            );
        }
    }
}

/// Out-of-lock readiness probe: the replacement must answer a wire
/// `Ping` before any slot is pointed at it.
fn probe_ready(addr: SocketAddr, cfg: &HealerConfig) -> bool {
    for attempt in 0..cfg.probe_retries.max(1) {
        if attempt > 0 {
            std::thread::sleep(cfg.probe_backoff);
        }
        if let Ok(mut client) = PolicyClient::connect_with_timeout(addr, 1, cfg.probe_timeout) {
            if client.ping().is_ok() {
                return true;
            }
        }
    }
    false
}

/// Sleeps `total` in short ticks so a shutdown is prompt.
fn sleep_ticks(total: Duration, stop: &AtomicBool) {
    let tick = Duration::from_millis(20);
    let mut remaining = total;
    while !remaining.is_zero() && !stop.load(Ordering::SeqCst) {
        let step = remaining.min(tick);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

/// Dial/I-O timeout for warm-handoff `MixSeed` shipments.
const HANDOFF_DIAL_TIMEOUT: Duration = Duration::from_secs(2);

/// Adds a backend to a live ring with warm handoff: the new slot
/// takes its vnodes immediately, and the router's merged shadow mix
/// is shipped to the new backend (out of lock) so the families whose
/// keys it inherits grid-serve from the first request. Returns the
/// new slot id.
pub fn add_backend_with_warmup(router: &Arc<Mutex<ClusterRouter>>, addr: SocketAddr) -> u16 {
    let _handoff = econcast_trace::trace_span!("cluster", "reshard_handoff");
    let (slot, mix) = {
        let mut r = lock(router);
        let slot = r.add_backend(addr);
        (slot, r.export_mix())
    };
    if !mix.is_empty() && seed_backend(addr, &mix).is_ok() {
        lock(router).note_reshard_handoff();
    }
    slot
}

/// Retires a backend from a live ring with warm handoff: the slot's
/// vnodes vanish (its key ranges fall to the ring successors) and the
/// departing owner's shadow mix is shipped (out of lock) to every
/// remaining attemptable remote backend — any of them may inherit any
/// of the keys. Returns `false` when the slot is not remote or is the
/// last one. The handoff needs nothing from the departing backend, so
/// removing an already-dead backend still warms its inheritors.
pub fn remove_backend_with_handoff(router: &Arc<Mutex<ClusterRouter>>, slot: usize) -> bool {
    let _handoff = econcast_trace::trace_span!("cluster", "reshard_handoff");
    let (mix, targets) = {
        let mut r = lock(router);
        let Some(mix) = r.remove_backend(slot) else {
            return false;
        };
        let targets: Vec<SocketAddr> = r
            .remote_slot_addrs()
            .into_iter()
            .filter(|&(_, _, attempt)| attempt)
            .map(|(_, addr, _)| addr)
            .collect();
        (mix, targets)
    };
    for addr in targets {
        if !mix.is_empty() && seed_backend(addr, &mix).is_ok() {
            lock(router).note_reshard_handoff();
        }
    }
    true
}

/// Ships a mix to one backend over the wire-v4 `MixSeed` path.
fn seed_backend(addr: SocketAddr, mix: &[(FamilyKey, u64)]) -> std::io::Result<(u16, u16)> {
    PolicyClient::connect_with_timeout(addr, 1, HANDOFF_DIAL_TIMEOUT)?.seed_mix(mix)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
