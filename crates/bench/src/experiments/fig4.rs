//! Fig. 4: average burst length vs σ — analytic curves (eqs. (34)/(35))
//! with simulation markers at σ ∈ {0.25, 0.5}.
//!
//! Homogeneous cliques, `N ∈ {5, 10}`, `ρ = 10 µW`, `L = X = 500 µW`.
//! Paper findings: burst length explodes as σ falls (≈85 packets at
//! σ = 0.25, N = 10; 4·10⁵ at σ = 0.1); the anyput burst length is
//! `e^{1/σ}` independent of `N`; simulation markers match the curves.

use crate::Scale;
use econcast_analysis::{anyput_burst_length, groupput_burst_curve};
use econcast_core::{NodeParams, ProtocolConfig, ThroughputMode};
use econcast_sim::{SimConfig, Simulator};
use econcast_statespace::HomogeneousP4;

fn params() -> NodeParams {
    NodeParams::from_microwatts(10.0, 500.0, 500.0)
}

fn simulate_burst(n: usize, sigma: f64, mode: ThroughputMode, t_end: f64, seed: u64) -> f64 {
    let protocol = match mode {
        ThroughputMode::Groupput => ProtocolConfig::capture_groupput(sigma),
        ThroughputMode::Anyput => ProtocolConfig::capture_anyput(sigma),
    };
    let mut cfg = SimConfig::ideal_clique(n, params(), protocol, t_end, seed);
    cfg.eta0 = HomogeneousP4::new(n, params(), sigma, mode).solve().eta;
    cfg.warmup = t_end * 0.1;
    let report = Simulator::new(cfg).expect("valid config").run();
    report.mean_burst_length().unwrap_or(f64::NAN)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> String {
    let sigma_grid: Vec<f64> = (1..=20).map(|i| 0.05 * i as f64).collect();
    let marker_sigmas = [0.25, 0.5];
    let mut out = String::new();
    out.push_str("Fig. 4 — average burst length vs σ (ρ = 10 µW, L = X = 500 µW)\n");
    out.push_str("paper: ~85 packets at σ=0.25/N=10; anyput burst = e^{1/σ}, N-independent\n\n");

    for n in [5usize, 10] {
        out.push_str(&format!("[groupput, N = {n}] analytic curve (σ → B_g):\n"));
        for point in groupput_burst_curve(n, params(), &sigma_grid) {
            out.push_str(&format!(
                "  σ={:.2}  B={:.2}\n",
                point.sigma, point.burst_length
            ));
        }
        out.push_str("  simulation markers:\n");
        for &sigma in &marker_sigmas {
            let t_end = scale.duration(if sigma < 0.4 {
                8_000_000.0
            } else {
                2_000_000.0
            });
            let b = simulate_burst(n, sigma, ThroughputMode::Groupput, t_end, 0xF14 + n as u64);
            let analytic = groupput_burst_curve(n, params(), &[sigma])[0].burst_length;
            out.push_str(&format!(
                "  σ={sigma:.2}  sim B={b:.1}  analytic B={analytic:.1}\n"
            ));
        }
        out.push('\n');
    }

    out.push_str("[anyput] B_a = e^{1/σ} for every N:\n");
    for &sigma in &marker_sigmas {
        let analytic = anyput_burst_length(sigma);
        let t_end = scale.duration(2_000_000.0);
        let b5 = simulate_burst(5, sigma, ThroughputMode::Anyput, t_end, 0xA5);
        let b10 = simulate_burst(10, sigma, ThroughputMode::Anyput, t_end, 0xA10);
        out.push_str(&format!(
            "  σ={sigma:.2}  analytic={analytic:.1}  sim N=5: {b5:.1}  sim N=10: {b10:.1}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_marker_tracks_analytic_at_sigma_half() {
        let b = simulate_burst(5, 0.5, ThroughputMode::Groupput, 1_500_000.0, 99);
        let analytic = groupput_burst_curve(5, params(), &[0.5])[0].burst_length;
        let rel = (b - analytic).abs() / analytic;
        assert!(rel < 0.25, "sim {b} vs analytic {analytic} (rel {rel})");
    }

    #[test]
    fn anyput_sim_marker_near_e2() {
        let b = simulate_burst(5, 0.5, ThroughputMode::Anyput, 1_000_000.0, 7);
        let analytic = anyput_burst_length(0.5); // e² ≈ 7.39
        let rel = (b - analytic).abs() / analytic;
        assert!(rel < 0.25, "sim {b} vs analytic {analytic}");
    }
}
