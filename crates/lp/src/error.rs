//! Error type for LP construction and solving.

use std::fmt;

/// Everything that can go wrong while building or solving a linear
/// program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The constraint system admits no feasible point (phase 1 of the
    /// simplex terminated with a positive artificial objective).
    Infeasible,
    /// The objective is unbounded above over the feasible region (a
    /// pivot column with no positive entries was found in phase 2).
    Unbounded,
    /// A constraint row has a different number of coefficients than the
    /// problem has variables.
    DimensionMismatch {
        /// Number of variables declared by the objective.
        expected: usize,
        /// Number of coefficients supplied in the offending row.
        got: usize,
    },
    /// A coefficient or right-hand side was NaN or infinite.
    NotFinite,
    /// The solver exceeded its iteration budget. With Bland's rule this
    /// indicates a bug or a pathologically large problem, not cycling.
    IterationLimit(usize),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::DimensionMismatch { expected, got } => write!(
                f,
                "constraint has {got} coefficients but the problem has {expected} variables"
            ),
            LpError::NotFinite => write!(f, "coefficient or bound is NaN or infinite"),
            LpError::IterationLimit(n) => {
                write!(f, "simplex exceeded the iteration limit of {n}")
            }
        }
    }
}

impl std::error::Error for LpError {}
