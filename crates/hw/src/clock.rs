//! The drifting low-power sleep clock.
//!
//! During sleep the MSP430 keeps time with its VLO (very-low-power
//! oscillator), whose frequency varies by several percent with
//! temperature and supply voltage — the paper lists this drift among
//! the reasons experimental throughput falls short of the achievable
//! value (Section VIII-D). A node with a fast clock wakes early; a
//! slow one oversleeps.

use rand::Rng;

/// A per-node sleep-clock model: real elapsed time = nominal × factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SleepClock {
    /// Multiplicative drift factor (1.0 = perfect).
    pub factor: f64,
}

impl SleepClock {
    /// A perfect clock.
    pub fn perfect() -> Self {
        SleepClock { factor: 1.0 }
    }

    /// A clock with a fixed drift in parts-per-million (positive =
    /// slow: sleeps stretch).
    pub fn from_ppm(ppm: f64) -> Self {
        SleepClock {
            factor: 1.0 + ppm * 1e-6,
        }
    }

    /// Samples a clock uniformly within ±`spread_fraction` — e.g.
    /// `0.04` for the ±4% VLO-class tolerance.
    pub fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, spread_fraction: f64) -> Self {
        assert!((0.0..1.0).contains(&spread_fraction));
        let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        SleepClock {
            factor: 1.0 + u * spread_fraction,
        }
    }

    /// Converts a nominal sleep duration into the real elapsed time.
    pub fn stretch(&self, nominal: f64) -> f64 {
        nominal * self.factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_clock_is_identity() {
        let c = SleepClock::perfect();
        assert_eq!(c.stretch(123.4), 123.4);
        assert_eq!(c.factor, 1.0);
    }

    #[test]
    fn ppm_conversion() {
        let slow = SleepClock::from_ppm(200.0);
        assert!((slow.factor - 1.0002).abs() < 1e-12);
        let fast = SleepClock::from_ppm(-500.0);
        assert!((fast.factor - 0.9995).abs() < 1e-12);
        assert!(fast.stretch(1000.0) < 1000.0);
        assert!(slow.stretch(1000.0) > 1000.0);
    }

    #[test]
    fn sampled_clocks_stay_in_band() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..1000 {
            let c = SleepClock::sample_uniform(&mut rng, 0.04);
            assert!((0.96..=1.04).contains(&c.factor), "factor {}", c.factor);
        }
    }

    #[test]
    fn sampled_clocks_spread_out() {
        let mut rng = StdRng::seed_from_u64(9);
        let fs: Vec<f64> = (0..500)
            .map(|_| SleepClock::sample_uniform(&mut rng, 0.04).factor)
            .collect();
        let min = fs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = fs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.05, "spread {}..{} too tight", min, max);
    }
}
