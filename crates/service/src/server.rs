//! The TCP front-end: a [`ShardRouter`] behind a `std::net` listener.
//!
//! ## Threading model
//!
//! One acceptor thread plus one thread per live connection, bounded by
//! a counting gate ([`ServerConfig::max_connections`]): when the pool
//! is full the acceptor blocks *before* accepting, so excess clients
//! queue in the kernel backlog instead of spawning unbounded threads.
//! The environment is offline (no tokio); blocking I/O over OS threads
//! is the deployment story this repo can actually run, and the shard
//! mutexes already serialize what must be serialized — handlers whose
//! batches touch disjoint shards proceed in parallel.
//!
//! ## Protocol
//!
//! Connections speak the length-prefixed `econcast-proto` service
//! family ([`ServiceCodec`]). A client *should* open with `Hello`
//! (answered by `Welcome` carrying the shard count and batch cap) but
//! the server also serves handshake-less streams. Every fully received
//! `Request` in one read cycle is served as a single routed batch —
//! pipelining `k` requests buys `k`-way batching exactly like the
//! in-process [`crate::WireServer`]. `StatsRequest` answers from the
//! router's per-shard or aggregate counters. Decode errors (CRC,
//! framing, version) are fatal for the connection, matching the
//! codec's semantics: the server drops the stream without a reply.
//!
//! ## Prewarming
//!
//! With [`ServerConfig::background_prewarm`] set, a janitor thread
//! runs [`ShardRouter::prewarm_once`] every
//! `prewarm.interval`, building interpolation grids for the hottest
//! observed request families off the request path (see
//! [`crate::prewarm`]).

use crate::admission::{degraded_tolerance, Admission, AdmissionController};
use crate::grid::FamilyKey;
use crate::request::{PolicyRequest, PolicyResponse, ServiceError};
use crate::shard::{RouterConfig, ShardRouter};
use bytes::BytesMut;
use econcast_metrics::{
    MetricsSnapshot, OpsKind, CTR_DEGRADED, CTR_OVERLOADED_SENT, GAUGE_QUEUE_DEPTH,
    GAUGE_QUEUE_DEPTH_PEAK,
};
use econcast_proto::service::{
    ServiceCodec, ServiceErrorCode, ServiceMessage, WireMetricsResponse, WireMixAck,
    WirePolicyError, WirePong, WireStatsResponse, WireWelcome, METRICS_WIRE_VERSION,
    OVERLOAD_WIRE_VERSION, STATS_SHARD_AGGREGATE, WIRE_VERSION,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`PolicyServer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Shard/routing/prewarm configuration.
    pub router: RouterConfig,
    /// Maximum concurrently served connections (the accept pool
    /// bound); further clients wait in the listen backlog.
    pub max_connections: usize,
    /// Largest request batch served as one unit; longer pipelines are
    /// split. Advertised in the `Welcome` handshake.
    pub max_batch: usize,
    /// Whether to run the background prewarm thread.
    pub background_prewarm: bool,
    /// Highest wire version this server speaks. Frames above it are a
    /// fatal decode error (the connection drops without a reply),
    /// which is exactly how a binary predating that version behaves —
    /// pin to 4 to stand in for a pre-pipelining server in
    /// cross-version tests.
    pub max_wire_version: u8,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            router: RouterConfig::default(),
            max_connections: 64,
            max_batch: 1024,
            background_prewarm: true,
            max_wire_version: WIRE_VERSION,
        }
    }
}

/// Counting gate bounding the connection-handler pool.
#[derive(Debug)]
struct ConnGate {
    active: Mutex<usize>,
    freed: Condvar,
    cap: usize,
}

impl ConnGate {
    fn new(cap: usize) -> Self {
        ConnGate {
            active: Mutex::new(0),
            freed: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Blocks until a handler slot is free and claims it, or returns
    /// `false` when `stop` is raised while waiting (shutdown wakes
    /// waiters via [`ConnGate::interrupt`]).
    fn acquire(&self, stop: &AtomicBool) -> bool {
        let mut active = self.active.lock().expect("gate poisoned");
        while *active >= self.cap {
            if stop.load(Ordering::SeqCst) {
                return false;
            }
            active = self.freed.wait(active).expect("gate poisoned");
        }
        if stop.load(Ordering::SeqCst) {
            return false;
        }
        *active += 1;
        true
    }

    fn release(&self) {
        *self.active.lock().expect("gate poisoned") -= 1;
        // notify_all: waiters are both the acceptor (acquire) and a
        // draining shutdown (wait_idle); one freed slot must wake both
        // classes or the drain can miss the last release.
        self.freed.notify_all();
    }

    /// Wakes every waiter so a raised stop flag is observed.
    fn interrupt(&self) {
        let _guard = self.active.lock().expect("gate poisoned");
        self.freed.notify_all();
    }

    /// Blocks until every handler slot is free or `timeout` elapses —
    /// the shutdown drain barrier. Returns whether the pool emptied.
    fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut active = self.active.lock().expect("gate poisoned");
        while *active > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .freed
                .wait_timeout(active, deadline - now)
                .expect("gate poisoned");
            active = guard;
        }
        true
    }
}

/// A bound, not-yet-serving policy server.
#[derive(Debug)]
pub struct PolicyServer {
    listener: TcpListener,
    router: Arc<ShardRouter>,
    cfg: ServerConfig,
}

impl PolicyServer {
    /// Binds the listener and builds the shards. Use port 0 for an
    /// ephemeral port (tests, benches).
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(PolicyServer {
            listener,
            router: Arc::new(ShardRouter::new(cfg.router)),
            cfg,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// The shard router (stats, manual prewarming).
    pub fn router(&self) -> &Arc<ShardRouter> {
        &self.router
    }

    /// Starts the acceptor (and, if configured, the prewarmer) and
    /// returns a handle that stops them on [`ServerHandle::shutdown`]
    /// or drop. Live connection handlers are not joined — they end
    /// when their client disconnects.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(ConnGate::new(self.cfg.max_connections));
        let router = Arc::clone(&self.router);
        let svc = self.cfg.router.service;
        let admission = Arc::new(AdmissionController::new(
            svc.queue_capacity,
            svc.max_queue_delay,
        ));
        let opts = ConnOptions {
            max_batch: self.cfg.max_batch.max(1),
            max_wire_version: self.cfg.max_wire_version,
        };

        let acceptor = {
            let (stop, router) = (Arc::clone(&stop), Arc::clone(&router));
            let (gate, admission) = (Arc::clone(&gate), Arc::clone(&admission));
            std::thread::spawn(move || {
                // Claim a handler slot *before* accepting, so when the
                // pool is full excess clients really do wait in the
                // kernel backlog instead of being accepted and parked.
                while gate.acquire(&stop) {
                    let stream = match self.listener.accept() {
                        Ok((stream, _)) => stream,
                        Err(_) => {
                            // Transient accept failure (fd exhaustion,
                            // aborted handshake): return the slot and
                            // back off instead of spinning.
                            gate.release();
                            if stop.load(Ordering::SeqCst) {
                                break;
                            }
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            continue;
                        }
                    };
                    if stop.load(Ordering::SeqCst) {
                        gate.release();
                        break;
                    }
                    let (gate, router) = (Arc::clone(&gate), Arc::clone(&router));
                    let (stop, admission) = (Arc::clone(&stop), Arc::clone(&admission));
                    std::thread::spawn(move || {
                        // Return the slot on unwind too: a panicking
                        // handler (bad request tripping a solver
                        // assertion) must not leak pool capacity.
                        struct SlotGuard(Arc<ConnGate>);
                        impl Drop for SlotGuard {
                            fn drop(&mut self) {
                                self.0.release();
                            }
                        }
                        let _slot = SlotGuard(gate);
                        serve_connection_admitted(stream, &*router, opts, &admission, &stop);
                    });
                }
            })
        };

        let prewarmer = self.cfg.background_prewarm.then(|| {
            let (stop, router) = (Arc::clone(&stop), Arc::clone(&router));
            let interval = router.prewarm_config().interval;
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    std::thread::park_timeout(interval);
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    router.prewarm_once();
                }
            })
        });

        ServerHandle {
            addr,
            router,
            admission,
            stop,
            gate,
            acceptor: Some(acceptor),
            prewarmer,
        }
    }
}

/// Running-server handle; shuts the server down when dropped.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    router: Arc<ShardRouter>,
    admission: Arc<AdmissionController>,
    stop: Arc<AtomicBool>,
    gate: Arc<ConnGate>,
    acceptor: Option<JoinHandle<()>>,
    prewarmer: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The served address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shard router (stats, manual prewarming).
    pub fn router(&self) -> &Arc<ShardRouter> {
        &self.router
    }

    /// The admission controller shared by every connection handler
    /// (queue depth, overload counters).
    pub fn admission(&self) -> &Arc<AdmissionController> {
        &self.admission
    }

    /// Stops accepting, joins the acceptor and prewarmer threads, and
    /// **drains** live connections: handlers observe the stop flag at
    /// their next idle tick, finish serving everything their clients
    /// already sent (complete batches, full replies on the wire), and
    /// close cleanly — an in-flight `serve_batch` sees its whole
    /// result, never a mid-frame disconnect. The drain wait is bounded
    /// ([`DRAIN_WAIT`]) so a wedged client cannot hold shutdown
    /// hostage.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The acceptor is parked either in the gate (pool saturated —
        // interrupt() wakes it to observe the stop flag) or in
        // accept() (a throwaway connection wakes it).
        self.gate.interrupt();
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.prewarmer.take() {
            h.thread().unpark();
            let _ = h.join();
        }
        self.gate.wait_idle(DRAIN_WAIT);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// What a TCP connection loop serves. One implementation of the
/// protocol dispatch ([`serve_connection`]) fronts every deployment
/// shape: [`PolicyServer`] implements this for [`ShardRouter`]
/// (in-process shards), the cluster crate implements it for its
/// router-behind-a-mutex (remote backends) — so a new wire message is
/// wired up exactly once, not per front-end.
pub trait ServeTarget {
    /// Shard (or cluster-slot) count advertised in the `Welcome`
    /// handshake.
    fn shard_count(&self) -> usize;

    /// Serves one routed batch; results in request order.
    fn serve(&self, reqs: &[PolicyRequest]) -> Vec<Result<PolicyResponse, ServiceError>>;

    /// One shard's counters, or the deployment aggregate for
    /// [`STATS_SHARD_AGGREGATE`]; `None` = unknown shard (or a
    /// backend the target cannot reach), answered with a typed
    /// refusal.
    fn stats(&self, shard: u16) -> Option<crate::stats::ServiceStats>;

    /// Absorbs a warm-handoff request mix (a `MixSeed` message, wire
    /// v4) into the target's prewarmer; returns `(families_absorbed,
    /// grids_built)`. The default ignores the seed — only targets
    /// with a grid prewarmer override this.
    fn seed_mix(&self, mix: &[(FamilyKey, u64)]) -> (usize, usize) {
        let _ = mix;
        (0, 0)
    }

    /// A point-in-time metrics scrape (wire v7): the process-global
    /// counter/histogram hub plus whatever gauges this target owns.
    /// The default serves the bare hub snapshot; targets that own
    /// gauge sources (LRU residency, cluster slot health) override
    /// and inject them. The connection loop injects the admission
    /// queue gauge on top — admission is per front, not per target.
    fn metrics(&self) -> MetricsSnapshot {
        econcast_metrics::snapshot()
    }
}

impl ServeTarget for ShardRouter {
    fn shard_count(&self) -> usize {
        self.num_shards()
    }

    fn serve(&self, reqs: &[PolicyRequest]) -> Vec<Result<PolicyResponse, ServiceError>> {
        self.serve_batch(reqs)
    }

    fn stats(&self, shard: u16) -> Option<crate::stats::ServiceStats> {
        if shard == STATS_SHARD_AGGREGATE {
            Some(self.aggregate_stats())
        } else if usize::from(shard) < self.num_shards() {
            Some(self.shard_stats(usize::from(shard)))
        } else {
            None
        }
    }

    fn seed_mix(&self, mix: &[(FamilyKey, u64)]) -> (usize, usize) {
        self.absorb_mix(mix)
    }

    fn metrics(&self) -> MetricsSnapshot {
        let mut snap = econcast_metrics::snapshot();
        let (entries, bytes) = self.cache_residency();
        snap.gauges[econcast_metrics::GAUGE_LRU_ENTRIES].1 = entries;
        snap.gauges[econcast_metrics::GAUGE_LRU_BYTES].1 = bytes;
        snap
    }
}

/// Idle-tick period of the gated connection loop: how often a handler
/// parked in `read()` re-checks the drain/stop flag.
const GATE_TICK: Duration = Duration::from_millis(100);

/// After the stop flag is observed, how long a handler waits for the
/// tail of a partially received frame before force-closing — a client
/// that stalls mid-frame cannot hold the drain open forever.
const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// How long shutdown waits for live handlers to drain.
const DRAIN_WAIT: Duration = Duration::from_secs(5);

/// Per-connection protocol options; what [`serve_connection_opts`]
/// needs beyond the stream and the target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnOptions {
    /// Largest request batch served as one unit.
    pub max_batch: usize,
    /// Highest wire version spoken (see
    /// [`ServerConfig::max_wire_version`]).
    pub max_wire_version: u8,
}

impl Default for ConnOptions {
    fn default() -> Self {
        ConnOptions {
            max_batch: 1024,
            max_wire_version: WIRE_VERSION,
        }
    }
}

/// Serves one connection until EOF, I/O error, or a (fatal) decode
/// error — the single protocol loop shared by every TCP front-end
/// (see [`ServeTarget`]). Equivalent to [`serve_connection_gated`]
/// with a stop flag that is never raised.
pub fn serve_connection(stream: TcpStream, target: &impl ServeTarget, max_batch: usize) {
    serve_connection_gated(stream, target, max_batch, &AtomicBool::new(false));
}

/// [`serve_connection`] with a cooperative drain: reads tick every
/// [`GATE_TICK`] so a raised `stop` flag is observed even on an idle
/// connection. On stop, the handler finishes what the client already
/// sent — complete batches served, full replies written — and closes
/// only once the stream is quiet (no partially received frame, or the
/// [`DRAIN_GRACE`] ran out), so a draining shutdown is never a
/// mid-frame disconnect from the client's point of view.
pub fn serve_connection_gated(
    stream: TcpStream,
    target: &impl ServeTarget,
    max_batch: usize,
    stop: &AtomicBool,
) {
    serve_connection_opts(
        stream,
        target,
        ConnOptions {
            max_batch,
            ..ConnOptions::default()
        },
        stop,
    );
}

/// [`serve_connection_opts`] with the overload-control plane armed:
/// every request walks `admission`'s shed ladder before joining a
/// batch (see [`crate::admission`]), deadline-carrying batches are
/// served earliest-deadline-first, results that outlived their
/// `deadline_us` budget are replaced by `Overloaded`, and aggregate
/// stats responses carry the overload counters. [`PolicyServer`]
/// handlers run this; the plain entry points serve unadmitted (the
/// closed-loop in-process paths, where the caller is the queue).
pub fn serve_connection_admitted(
    stream: TcpStream,
    target: &impl ServeTarget,
    opts: ConnOptions,
    admission: &AdmissionController,
    stop: &AtomicBool,
) {
    serve_connection_inner(stream, target, opts, Some(admission), stop);
}

/// The full-option connection loop behind [`serve_connection`] and
/// [`serve_connection_gated`].
///
/// The read path is greedy: after each blocking read it drains
/// whatever else the client already queued (non-blocking), so a
/// pipelined client's second and third batches ride the same serve
/// cycle instead of waiting out another wakeup. The write path
/// streams: each batch's replies are flushed as soon as that batch is
/// served, so the first submitted batch's responses are on the wire
/// while later batches are still being solved. Replies echo the
/// request's correlation id and are encoded at the version the peer
/// spoke, clamped to [`ConnOptions::max_wire_version`].
pub fn serve_connection_opts(
    stream: TcpStream,
    target: &impl ServeTarget,
    opts: ConnOptions,
    stop: &AtomicBool,
) {
    serve_connection_inner(stream, target, opts, None, stop);
}

/// One admitted request's batch bookkeeping: reply routing (`corr`,
/// `id`) plus what the deadline ladder needs on the way out.
#[derive(Debug, Clone, Copy)]
struct ReqMeta {
    corr: u32,
    id: u32,
    /// Deadline budget in µs from `arrival`; 0 = none.
    deadline_us: u32,
    arrival: Instant,
}

fn serve_connection_inner(
    mut stream: TcpStream,
    target: &impl ServeTarget,
    opts: ConnOptions,
    admission: Option<&AdmissionController>,
    stop: &AtomicBool,
) {
    use std::io::ErrorKind::{Interrupted, TimedOut, WouldBlock};
    let max_batch = opts.max_batch.max(1);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(GATE_TICK));
    let mut codec = ServiceCodec::new();
    codec.set_max_version(opts.max_wire_version);
    // Reused across cycles: the read buffer, the encoded-reply buffer
    // and the batch scratch — steady-state serving allocates nothing
    // but the responses themselves.
    let mut buf = vec![0u8; 256 * 1024];
    let mut out = BytesMut::new();
    let mut ids: Vec<ReqMeta> = Vec::new();
    let mut batch: Vec<PolicyRequest> = Vec::new();
    let mut draining_since: Option<Instant> = None;
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e) if matches!(e.kind(), WouldBlock | TimedOut) => {
                // Idle tick. Every fully received request was served
                // on the cycle it arrived, so the only state a close
                // could strand is a partially received frame —
                // grant those a bounded grace.
                if stop.load(Ordering::SeqCst) {
                    if codec.pending() == 0 {
                        return;
                    }
                    let since = *draining_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= DRAIN_GRACE {
                        return;
                    }
                }
                continue;
            }
            Err(e) if e.kind() == Interrupted => continue,
            Err(_) => return,
        };
        codec.feed(&buf[..n]);
        // Greedy drain: a pipelining client may have more batches
        // already queued in the socket buffer; absorb them into this
        // cycle without blocking. EOF and errors are deferred — what
        // was received still gets served and answered first.
        let mut closing = false;
        if stream.set_nonblocking(true).is_ok() {
            loop {
                match stream.read(&mut buf) {
                    Ok(0) => {
                        closing = true;
                        break;
                    }
                    Ok(n) => codec.feed(&buf[..n]),
                    Err(e) if e.kind() == WouldBlock => break,
                    Err(e) if e.kind() == Interrupted => {}
                    Err(_) => {
                        closing = true;
                        break;
                    }
                }
            }
            if stream.set_nonblocking(false).is_err() {
                closing = true;
            }
        }
        let Ok(messages) = codec.drain() else {
            // Corrupt or misframed stream: integrity-fail hard, like
            // the codec contract says — no best-effort resync.
            return;
        };
        // Replies speak the version the client does (a v4 client
        // must not receive v5 frames), clamped to what this server
        // is allowed to speak.
        let version = codec
            .peer_version()
            .unwrap_or(opts.max_wire_version)
            .min(opts.max_wire_version);

        for msg in messages {
            match msg {
                ServiceMessage::Request(w) => {
                    // A new correlation id closes the previous batch:
                    // serve and flush it so its submitter's replies
                    // stream out before the next batch is solved.
                    if let Some(m) = ids.first() {
                        if m.corr != w.corr {
                            serve_into(target, &mut ids, &mut batch, &mut out, version, admission);
                            if flush(&mut stream, &mut out).is_err() {
                                return;
                            }
                        }
                    }
                    // The shed ladder: only peers that negotiated v6
                    // can decode an `Overloaded` frame; older peers
                    // top out at the degraded rung, never a drop.
                    let can_shed = version >= OVERLOAD_WIRE_VERSION;
                    let decision = admission
                        .map(|a| a.admit(can_shed))
                        .unwrap_or(Admission::Admit);
                    match decision {
                        Admission::Shed { retry_after_us } => {
                            // Flight-recorder: the shed and the
                            // Overloaded frame it turned into.
                            econcast_metrics::ops_event(
                                OpsKind::Shed,
                                0,
                                u64::from(retry_after_us),
                            );
                            econcast_metrics::counter_add(CTR_OVERLOADED_SENT, 1);
                            ServiceCodec::encode_versioned(
                                &ServiceMessage::Error(WirePolicyError {
                                    corr: w.corr,
                                    id: w.id,
                                    code: ServiceErrorCode::Overloaded,
                                    retry_after_us,
                                }),
                                &mut out,
                                version,
                            );
                        }
                        rung => {
                            let mut req = PolicyRequest::from_wire(&w);
                            if rung == Admission::AdmitDegraded {
                                econcast_metrics::counter_add(CTR_DEGRADED, 1);
                                req.tolerance = degraded_tolerance(req.tolerance);
                            }
                            ids.push(ReqMeta {
                                corr: w.corr,
                                id: w.id,
                                deadline_us: w.deadline_us,
                                arrival: Instant::now(),
                            });
                            batch.push(req);
                            if batch.len() >= max_batch {
                                serve_into(
                                    target, &mut ids, &mut batch, &mut out, version, admission,
                                );
                                if flush(&mut stream, &mut out).is_err() {
                                    return;
                                }
                            }
                        }
                    }
                }
                ServiceMessage::Hello(h) => {
                    ServiceCodec::encode_versioned(
                        &ServiceMessage::Welcome(WireWelcome {
                            id: h.id,
                            shards: target.shard_count() as u16,
                            max_batch: max_batch.min(usize::from(u16::MAX)) as u16,
                        }),
                        &mut out,
                        version,
                    );
                }
                ServiceMessage::StatsRequest(r) => {
                    let msg = match target.stats(r.shard) {
                        Some(mut stats) => {
                            // The aggregate carries the overload
                            // counters: admission is front-wide, not
                            // per shard, so only the aggregate view
                            // overlays it (like the cluster front's
                            // robustness counters).
                            if r.shard == STATS_SHARD_AGGREGATE {
                                if let Some(a) = admission {
                                    a.overlay(&mut stats);
                                }
                            }
                            ServiceMessage::StatsResponse(WireStatsResponse {
                                id: r.id,
                                shard: r.shard,
                                stats: stats.to_wire(),
                            })
                        }
                        None => ServiceMessage::Error(WirePolicyError {
                            corr: 0,
                            id: r.id,
                            code: ServiceErrorCode::BadRequest,
                            retry_after_us: 0,
                        }),
                    };
                    ServiceCodec::encode_versioned(&msg, &mut out, version);
                }
                // Liveness probe: answer immediately, touching no
                // shard state (health checkers ride a tight cadence).
                ServiceMessage::Ping(p) => {
                    ServiceCodec::encode_versioned(
                        &ServiceMessage::Pong(WirePong { id: p.id }),
                        &mut out,
                        version,
                    );
                }
                // Warm handoff: fold the shipped mix into the
                // prewarmer and report what happened.
                ServiceMessage::MixSeed(s) => {
                    let mix = crate::prewarm::mix_from_wire(&s.families);
                    let (absorbed, grids_built) = target.seed_mix(&mix);
                    ServiceCodec::encode_versioned(
                        &ServiceMessage::MixAck(WireMixAck {
                            id: s.id,
                            absorbed: absorbed.min(usize::from(u16::MAX)) as u16,
                            grids_built: grids_built.min(usize::from(u16::MAX)) as u16,
                        }),
                        &mut out,
                        version,
                    );
                }
                // Metrics scrape (wire v7): the target's snapshot
                // (hub counters + histograms + target-owned gauges)
                // with the front's admission queue gauge injected on
                // top. The frame only ever rides a v7 reply stream —
                // the request itself is v7-stamped, so `version` is
                // only below 7 if this server is pinned older, and a
                // pinned server's codec already dropped the stream.
                ServiceMessage::MetricsRequest(r) => {
                    if version >= METRICS_WIRE_VERSION {
                        let mut snap = target.metrics();
                        if let Some(a) = admission {
                            let g = a.queue_gauge();
                            snap.gauges[GAUGE_QUEUE_DEPTH].1 += g.value();
                            let peak = &mut snap.gauges[GAUGE_QUEUE_DEPTH_PEAK].1;
                            *peak = (*peak).max(g.peak());
                        }
                        ServiceCodec::encode_versioned(
                            &ServiceMessage::MetricsResponse(WireMetricsResponse {
                                id: r.id,
                                snapshot: crate::metrics::snapshot_to_wire(&snap),
                            }),
                            &mut out,
                            version,
                        );
                    }
                }
                // Server-to-client message types arriving here are
                // protocol misuse; drop them.
                ServiceMessage::Response(_)
                | ServiceMessage::Error(_)
                | ServiceMessage::Welcome(_)
                | ServiceMessage::StatsResponse(_)
                | ServiceMessage::Pong(_)
                | ServiceMessage::MixAck(_)
                | ServiceMessage::MetricsResponse(_) => {}
            }
        }
        serve_into(target, &mut ids, &mut batch, &mut out, version, admission);
        if flush(&mut stream, &mut out).is_err() {
            return;
        }
        if closing {
            return;
        }
    }
}

/// Writes and clears the encoded-reply buffer, keeping its capacity
/// for the next cycle.
fn flush(stream: &mut TcpStream, out: &mut BytesMut) -> std::io::Result<()> {
    if out.is_empty() {
        return Ok(());
    }
    let res = stream.write_all(out);
    out.clear();
    res
}

/// Serves the buffered requests (if any) as one routed batch and
/// encodes the replies, echoing each request's correlation id.
///
/// With `admission` armed this is also where the deadline ladder
/// lands: deadline-carrying batches are reordered earliest-deadline-
/// first before serving, and a result whose request ran past its
/// `deadline_us` budget is replaced by an `Overloaded` frame — the
/// caller gave up on it, so a late (stale) result must never reach
/// the wire. Served batches return their queue slots and feed the
/// controller's service-time estimate.
fn serve_into(
    target: &impl ServeTarget,
    ids: &mut Vec<ReqMeta>,
    batch: &mut Vec<PolicyRequest>,
    out: &mut BytesMut,
    version: u8,
    admission: Option<&AdmissionController>,
) {
    if batch.is_empty() {
        return;
    }
    if ids.iter().any(|m| m.deadline_us != 0) {
        sort_by_deadline(ids, batch);
    }
    let t_serve = Instant::now();
    let results = target.serve(batch);
    if let Some(a) = admission {
        a.release(results.len(), t_serve.elapsed());
    }
    let t0 = econcast_trace::armed_now();
    for (m, result) in ids.drain(..).zip(&results) {
        let expired = m.deadline_us != 0
            && m.arrival.elapsed() > Duration::from_micros(u64::from(m.deadline_us));
        let mut msg = if expired {
            // `deadline_us` only decodes on a v6 frame, so `version`
            // is ≥ 6 here and the peer can decode the reply.
            if let Some(a) = admission {
                a.note_deadline_expired();
            }
            econcast_metrics::ops_event(OpsKind::DeadlineMiss, 0, u64::from(m.deadline_us));
            econcast_metrics::counter_add(CTR_OVERLOADED_SENT, 1);
            ServiceMessage::Error(WirePolicyError {
                corr: m.corr,
                id: m.id,
                code: ServiceErrorCode::Overloaded,
                retry_after_us: admission.map(|a| a.retry_after_us()).unwrap_or(0),
            })
        } else {
            match result {
                Ok(resp) => ServiceMessage::Response(resp.to_wire(m.id)),
                Err(e) => ServiceMessage::Error(crate::request::error_to_wire(e, m.id)),
            }
        };
        match &mut msg {
            ServiceMessage::Response(r) => r.corr = m.corr,
            ServiceMessage::Error(e) => e.corr = m.corr,
            _ => unreachable!(),
        }
        ServiceCodec::encode_versioned(&msg, out, version);
    }
    econcast_trace::complete_from(
        "proto",
        "frame_encode",
        t0,
        &[("msgs", results.len() as u64)],
    );
    batch.clear();
}

/// Reorders one batch (metadata and requests in lockstep) earliest-
/// deadline-first; requests without a deadline keep their relative
/// order at the back. Replies demultiplex by id on the client, so
/// serving order is free to differ from submission order.
fn sort_by_deadline(ids: &mut Vec<ReqMeta>, batch: &mut Vec<PolicyRequest>) {
    let mut order: Vec<usize> = (0..ids.len()).collect();
    order.sort_by_key(|&i| {
        let m = &ids[i];
        (
            m.deadline_us == 0,
            m.arrival + Duration::from_micros(u64::from(m.deadline_us)),
        )
    });
    let old_ids = std::mem::take(ids);
    let mut old_batch: Vec<Option<PolicyRequest>> =
        std::mem::take(batch).into_iter().map(Some).collect();
    for &i in &order {
        ids.push(old_ids[i]);
        batch.push(old_batch[i].take().expect("permutation visits once"));
    }
}
