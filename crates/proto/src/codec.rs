//! Length-prefixed stream codec.
//!
//! The paper's observer node (Section VIII-D) forwards every received
//! packet to a PC over a USB serial link for storage and
//! post-processing. Serial links deliver byte streams, not frames, so
//! the emulated observer uses this codec: each frame is prefixed with a
//! `u16` length, and the decoder is incremental — feed it arbitrary
//! chunks, pull out complete frames as they become available.

use crate::error::DecodeError;
use crate::frame::Frame;
use bytes::{Buf, BufMut, BytesMut};

/// Incremental encoder/decoder for a stream of length-prefixed frames.
#[derive(Debug, Default)]
pub struct StreamCodec {
    buffer: BytesMut,
}

impl StreamCodec {
    /// Creates an empty codec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes one frame with its length prefix into `out`.
    pub fn encode(frame: &Frame, out: &mut BytesMut) {
        let len = frame.encoded_len();
        assert!(len <= u16::MAX as usize, "frame too large for u16 prefix");
        out.put_u16(len as u16);
        frame.encode_into(out);
    }

    /// Appends received bytes to the internal reassembly buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Bytes currently buffered and not yet decoded.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Attempts to decode the next complete frame. Returns `Ok(None)`
    /// when more bytes are needed; errors are fatal for the stream
    /// (framing is lost), matching serial-link semantics.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, DecodeError> {
        if self.buffer.len() < 2 {
            return Ok(None);
        }
        let len = u16::from_be_bytes([self.buffer[0], self.buffer[1]]) as usize;
        if self.buffer.len() < 2 + len {
            return Ok(None);
        }
        self.buffer.advance(2);
        let frame_bytes = self.buffer.split_to(len);
        let (frame, used) = Frame::decode(&frame_bytes)?;
        if used != len {
            return Err(DecodeError::MalformedLength);
        }
        Ok(Some(frame))
    }

    /// Drains all currently decodable frames.
    pub fn drain(&mut self) -> Result<Vec<Frame>, DecodeError> {
        let mut out = Vec::new();
        while let Some(f) = self.next_frame()? {
            out.push(f);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{DataFrame, PingFrame, ReceptionReport};
    use proptest::prelude::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Ping(PingFrame { node_id: 1 }),
            Frame::Preamble,
            Frame::Data(DataFrame {
                source: 2,
                seq: 42,
                report: vec![ReceptionReport { peer: 1, count: 3 }],
            }),
        ]
    }

    #[test]
    fn whole_stream_roundtrip() {
        let mut wire = BytesMut::new();
        for f in sample_frames() {
            StreamCodec::encode(&f, &mut wire);
        }
        let mut codec = StreamCodec::new();
        codec.feed(&wire);
        let decoded = codec.drain().unwrap();
        assert_eq!(decoded, sample_frames());
        assert_eq!(codec.pending(), 0);
    }

    #[test]
    fn byte_at_a_time_reassembly() {
        let mut wire = BytesMut::new();
        for f in sample_frames() {
            StreamCodec::encode(&f, &mut wire);
        }
        let mut codec = StreamCodec::new();
        let mut decoded = Vec::new();
        for &b in wire.iter() {
            codec.feed(&[b]);
            while let Some(f) = codec.next_frame().unwrap() {
                decoded.push(f);
            }
        }
        assert_eq!(decoded, sample_frames());
    }

    #[test]
    fn incomplete_frame_waits() {
        let mut wire = BytesMut::new();
        StreamCodec::encode(&Frame::Ping(PingFrame { node_id: 5 }), &mut wire);
        let mut codec = StreamCodec::new();
        codec.feed(&wire[..3]); // length + 1 byte
        assert_eq!(codec.next_frame().unwrap(), None);
        codec.feed(&wire[3..]);
        assert_eq!(
            codec.next_frame().unwrap(),
            Some(Frame::Ping(PingFrame { node_id: 5 }))
        );
    }

    #[test]
    fn corrupted_payload_is_fatal() {
        let mut wire = BytesMut::new();
        StreamCodec::encode(&Frame::Ping(PingFrame { node_id: 5 }), &mut wire);
        wire[3] ^= 0xFF; // corrupt inside the frame body
        let mut codec = StreamCodec::new();
        codec.feed(&wire);
        assert!(codec.next_frame().is_err());
    }

    proptest! {
        /// Random chunking never changes the decoded sequence.
        #[test]
        fn prop_chunked_roundtrip(
            ids in proptest::collection::vec(any::<u16>(), 1..20),
            chunk in 1usize..16,
        ) {
            let frames: Vec<Frame> =
                ids.iter().map(|&id| Frame::Ping(PingFrame { node_id: id })).collect();
            let mut wire = BytesMut::new();
            for f in &frames {
                StreamCodec::encode(f, &mut wire);
            }
            let mut codec = StreamCodec::new();
            let mut decoded = Vec::new();
            for piece in wire.chunks(chunk) {
                codec.feed(piece);
                while let Some(f) = codec.next_frame().unwrap() {
                    decoded.push(f);
                }
            }
            prop_assert_eq!(decoded, frames);
        }
    }
}
