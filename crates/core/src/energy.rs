//! The per-node energy storage `b(t)` (Section III-A).
//!
//! Energy arrives at the (possibly time-varying) budget rate `ρ` and
//! drains at the power of the current state. Two storage semantics are
//! provided:
//!
//! * **Ledger** — the idealized "virtual battery" used both in the
//!   paper's simulations (Section VII-A) and on its testbed
//!   (Section VIII-A): an unbounded signed accumulator whose *drift*
//!   drives the multiplier update (17). It may go negative; only the
//!   change over an interval matters.
//! * **Bounded** — a physical store (capacitor or battery) with a
//!   capacity and an empty level; useful for studying protocol behaviour
//!   under hard energy causality, and used by `econcast-hw`'s capacitor
//!   experiments.

/// Storage semantics for [`EnergyStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StorageKind {
    /// Unbounded signed accumulator (the paper's virtual battery).
    Ledger,
    /// Physical store clamped to `[0, capacity_j]` joules.
    Bounded {
        /// Maximum stored energy (J).
        capacity_j: f64,
    },
}

/// A node's energy store with piecewise-constant harvest and drain
/// rates. Time is advanced explicitly with [`EnergyStore::advance`];
/// the store does not own a clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyStore {
    level_j: f64,
    kind: StorageKind,
    /// Energy harvested per unit time (W when time is in seconds; any
    /// consistent unit works since only ratios matter).
    harvest_rate: f64,
    /// Current drain (state power), same unit as `harvest_rate`.
    drain_rate: f64,
    /// Lifetime totals for audits.
    total_harvested: f64,
    total_consumed: f64,
    /// Energy that could not be stored because the store was full
    /// (only non-zero for bounded stores).
    total_spilled: f64,
}

impl EnergyStore {
    /// Creates an unbounded ledger store starting at `level_j` with the
    /// given harvest rate.
    pub fn ledger(level_j: f64, harvest_rate: f64) -> Self {
        assert!(harvest_rate >= 0.0 && harvest_rate.is_finite());
        EnergyStore {
            level_j,
            kind: StorageKind::Ledger,
            harvest_rate,
            drain_rate: 0.0,
            total_harvested: 0.0,
            total_consumed: 0.0,
            total_spilled: 0.0,
        }
    }

    /// Creates a bounded store with the given capacity, starting level,
    /// and harvest rate.
    ///
    /// # Panics
    ///
    /// Panics when `level_j ∉ [0, capacity_j]` or the capacity is not
    /// positive.
    pub fn bounded(level_j: f64, capacity_j: f64, harvest_rate: f64) -> Self {
        assert!(capacity_j > 0.0 && capacity_j.is_finite());
        assert!(
            (0.0..=capacity_j).contains(&level_j),
            "initial level {level_j} outside [0, {capacity_j}]"
        );
        assert!(harvest_rate >= 0.0 && harvest_rate.is_finite());
        EnergyStore {
            level_j,
            kind: StorageKind::Bounded { capacity_j },
            harvest_rate,
            drain_rate: 0.0,
            total_harvested: 0.0,
            total_consumed: 0.0,
            total_spilled: 0.0,
        }
    }

    /// Current stored energy `b(t)` (J; may be negative for ledgers).
    #[inline]
    pub fn level(&self) -> f64 {
        self.level_j
    }

    /// The configured harvest rate.
    pub fn harvest_rate(&self) -> f64 {
        self.harvest_rate
    }

    /// Changes the harvest rate (time-varying budgets, Section III-A).
    pub fn set_harvest_rate(&mut self, rate: f64) {
        assert!(rate >= 0.0 && rate.is_finite());
        self.harvest_rate = rate;
    }

    /// Sets the drain to the power of the node's new state.
    pub fn set_drain_rate(&mut self, rate: f64) {
        assert!(rate >= 0.0 && rate.is_finite());
        self.drain_rate = rate;
    }

    /// Current drain rate.
    pub fn drain_rate(&self) -> f64 {
        self.drain_rate
    }

    /// Advances time by `dt`, integrating harvest minus drain.
    ///
    /// For bounded stores the level saturates at the capacity (excess
    /// harvest is spilled and recorded) and at zero (the *caller* is
    /// responsible for not scheduling work an empty store cannot pay
    /// for; any shortfall is clamped and the consumed total only counts
    /// energy actually delivered).
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0, "time cannot go backwards");
        let harvested = self.harvest_rate * dt;
        let wanted = self.drain_rate * dt;
        self.total_harvested += harvested;
        match self.kind {
            StorageKind::Ledger => {
                self.level_j += harvested - wanted;
                self.total_consumed += wanted;
            }
            StorageKind::Bounded { capacity_j } => {
                let mut level = self.level_j + harvested;
                // Drain what is actually available.
                let delivered = wanted.min(level.max(0.0));
                self.total_consumed += delivered;
                level -= delivered;
                if level > capacity_j {
                    self.total_spilled += level - capacity_j;
                    level = capacity_j;
                }
                self.level_j = level.max(0.0);
            }
        }
    }

    /// True when a bounded store has no energy left (ledgers never
    /// deplete — they go negative instead).
    pub fn is_depleted(&self) -> bool {
        match self.kind {
            StorageKind::Ledger => false,
            StorageKind::Bounded { .. } => self.level_j <= 0.0,
        }
    }

    /// Lifetime harvested energy (J).
    pub fn total_harvested(&self) -> f64 {
        self.total_harvested
    }

    /// Lifetime consumed energy (J) actually delivered to the radio.
    pub fn total_consumed(&self) -> f64 {
        self.total_consumed
    }

    /// Lifetime energy lost to a full bounded store (J).
    pub fn total_spilled(&self) -> f64 {
        self.total_spilled
    }

    /// Average consumption rate over `elapsed` time units — the quantity
    /// audited against the budget in Section VIII-B.
    pub fn average_consumption(&self, elapsed: f64) -> f64 {
        if elapsed <= 0.0 {
            0.0
        } else {
            self.total_consumed / elapsed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_integrates_signed_drift() {
        let mut s = EnergyStore::ledger(0.0, 10e-6);
        s.set_drain_rate(500e-6); // listening
        s.advance(1.0);
        // Net −490 µJ.
        assert!((s.level() + 490e-6).abs() < 1e-12);
        s.set_drain_rate(0.0); // sleeping
        s.advance(49.0);
        // Harvested 49·10 µJ back: level = −490µ + 490µ = 0.
        assert!(s.level().abs() < 1e-10);
        assert!((s.total_harvested() - 500e-6).abs() < 1e-12);
        assert!((s.total_consumed() - 500e-6).abs() < 1e-12);
    }

    #[test]
    fn ledger_energy_conservation_invariant() {
        let mut s = EnergyStore::ledger(2.5, 3.0);
        let start = s.level();
        for (dt, drain) in [(0.5, 1.0), (1.5, 7.0), (2.0, 0.0), (0.25, 3.0)] {
            s.set_drain_rate(drain);
            s.advance(dt);
        }
        let expected = start + s.total_harvested() - s.total_consumed();
        assert!((s.level() - expected).abs() < 1e-12);
    }

    #[test]
    fn bounded_store_saturates_and_spills() {
        let mut s = EnergyStore::bounded(0.9, 1.0, 1.0);
        s.advance(0.5); // would reach 1.4 → clamps to 1.0, spills 0.4
        assert_eq!(s.level(), 1.0);
        assert!((s.total_spilled() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn bounded_store_depletes_and_reports() {
        let mut s = EnergyStore::bounded(0.1, 1.0, 0.0);
        s.set_drain_rate(1.0);
        s.advance(0.5); // wants 0.5 J, only 0.1 available
        assert!(s.is_depleted());
        assert_eq!(s.level(), 0.0);
        assert!((s.total_consumed() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ledger_never_reports_depletion() {
        let mut s = EnergyStore::ledger(0.0, 0.0);
        s.set_drain_rate(1.0);
        s.advance(10.0);
        assert!(s.level() < 0.0);
        assert!(!s.is_depleted());
    }

    #[test]
    fn average_consumption_audit() {
        let mut s = EnergyStore::ledger(0.0, 10e-6);
        s.set_drain_rate(500e-6);
        s.advance(2.0); // consumed 1 mJ over 2 s
        assert!((s.average_consumption(100.0) - 10e-6).abs() < 1e-12);
        assert_eq!(s.average_consumption(0.0), 0.0);
    }

    #[test]
    fn time_varying_harvest_rate() {
        let mut s = EnergyStore::ledger(0.0, 1.0);
        s.advance(1.0);
        s.set_harvest_rate(3.0);
        s.advance(1.0);
        assert!((s.level() - 4.0).abs() < 1e-12);
        assert!((s.harvest_rate() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bounded_initial_level_validated() {
        EnergyStore::bounded(2.0, 1.0, 0.0);
    }
}
