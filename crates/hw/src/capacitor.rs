//! Capacitor energy storage and the discharge-based power measurement
//! of Section VIII-B.
//!
//! The measurement rig replaces the 1 mF on-board capacitor with a
//! pre-charged 5 F capacitor, disables the solar cell, and infers
//! consumption from the voltage drop:
//!
//! ```text
//! E_consumed = ½ C (V_t0² − V_t1²)        (25)
//! P = E_consumed / (t1 − t0)              (26)
//! ```

/// An ideal capacitor used as an energy store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capacitor {
    /// Capacitance (F).
    pub farads: f64,
    /// Present voltage (V).
    pub volts: f64,
}

impl Capacitor {
    /// The 5 F measurement capacitor charged to the 3.6 V top of the
    /// stable working range.
    pub fn measurement_rig() -> Self {
        Capacitor {
            farads: 5.0,
            volts: 3.6,
        }
    }

    /// The 1 mF on-board storage capacitor.
    pub fn onboard() -> Self {
        Capacitor {
            farads: 1e-3,
            volts: 3.6,
        }
    }

    /// Stored energy `½CV²` (J).
    pub fn energy_j(&self) -> f64 {
        0.5 * self.farads * self.volts * self.volts
    }

    /// Energy available above a cutoff voltage (J) — the usable budget
    /// within the stable working range.
    pub fn usable_energy_j(&self, cutoff_v: f64) -> f64 {
        (0.5 * self.farads * (self.volts * self.volts - cutoff_v * cutoff_v)).max(0.0)
    }

    /// Discharges `energy_j` joules, lowering the voltage; clamps at
    /// 0 V when the ask exceeds the store.
    pub fn discharge_j(&mut self, energy_j: f64) {
        assert!(energy_j >= 0.0);
        let remaining = (self.energy_j() - energy_j).max(0.0);
        self.volts = (2.0 * remaining / self.farads).sqrt();
    }

    /// Lifetime (s) at a constant power draw until `cutoff_v`, the
    /// quantity behind the paper's "a node with a power budget of 1 mW
    /// (5 mW) has a lifetime of only 135 (27) minutes".
    pub fn lifetime_s(&self, power_w: f64, cutoff_v: f64) -> f64 {
        assert!(power_w > 0.0);
        self.usable_energy_j(cutoff_v) / power_w
    }
}

/// One discharge measurement per eqs. (25)–(26).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DischargeMeasurement {
    /// Capacitance of the rig (F).
    pub farads: f64,
    /// Voltage at the start of the window (V).
    pub v_start: f64,
    /// Voltage at the end of the window (V).
    pub v_end: f64,
    /// Window length (s).
    pub duration_s: f64,
}

impl DischargeMeasurement {
    /// Consumed energy, eq. (25).
    pub fn energy_consumed_j(&self) -> f64 {
        0.5 * self.farads * (self.v_start * self.v_start - self.v_end * self.v_end)
    }

    /// Empirical average power, eq. (26).
    pub fn average_power_w(&self) -> f64 {
        assert!(self.duration_s > 0.0);
        self.energy_consumed_j() / self.duration_s
    }

    /// Constructs the measurement a rig would record for a node that
    /// consumed energy at `power_w` for `duration_s`, starting from
    /// `cap` — the forward model used by the emulated experiments.
    pub fn synthesize(cap: Capacitor, power_w: f64, duration_s: f64) -> Self {
        let mut after = cap;
        after.discharge_j(power_w * duration_s);
        DischargeMeasurement {
            farads: cap.farads,
            v_start: cap.volts,
            v_end: after.volts,
            duration_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_formula() {
        let c = Capacitor {
            farads: 5.0,
            volts: 3.6,
        };
        assert!((c.energy_j() - 0.5 * 5.0 * 12.96).abs() < 1e-9);
        // Usable energy 3.6 → 3.0 V: ½·5·(12.96 − 9.0) = 9.9 J.
        assert!((c.usable_energy_j(3.0) - 9.9).abs() < 1e-9);
    }

    #[test]
    fn paper_lifetimes_are_in_range() {
        // "a node with a power budget of 1 mW (5 mW) has a lifetime of
        // only 135 (27) minutes" — our ideal-capacitor figure is 165
        // (33) minutes; the shortfall is the regulator overhead the
        // paper measures separately, so accept the 120–170 band.
        let rig = Capacitor::measurement_rig();
        let t1 = rig.lifetime_s(1e-3, 3.0) / 60.0;
        let t5 = rig.lifetime_s(5e-3, 3.0) / 60.0;
        assert!((120.0..=170.0).contains(&t1), "1 mW lifetime {t1} min");
        assert!((24.0..=34.0).contains(&t5), "5 mW lifetime {t5} min");
        // And the measured-with-overhead lifetime (P ≈ 1.11 mW) lands
        // close to the paper's 135 min.
        let t1_real = rig.lifetime_s(1.11e-3, 3.0) / 60.0;
        assert!(
            (130.0..=155.0).contains(&t1_real),
            "with overhead {t1_real} min"
        );
    }

    #[test]
    fn discharge_lowers_voltage_and_clamps() {
        let mut c = Capacitor::onboard();
        let before = c.energy_j();
        c.discharge_j(before / 2.0);
        assert!((c.energy_j() - before / 2.0).abs() < 1e-12);
        c.discharge_j(1e9);
        assert_eq!(c.volts, 0.0);
    }

    #[test]
    fn measurement_roundtrip() {
        // Synthesize a discharge at a known power and recover it.
        let m = DischargeMeasurement::synthesize(Capacitor::measurement_rig(), 2e-3, 1800.0);
        assert!((m.average_power_w() - 2e-3).abs() < 1e-9);
        assert!((m.energy_consumed_j() - 3.6).abs() < 1e-9);
        assert!(m.v_end < m.v_start);
    }

    #[test]
    fn thirty_minute_window_stays_in_working_range() {
        // The paper logs V after 30 minutes; at 1 mW the rig must stay
        // above 3.0 V so the measurement is valid.
        let m = DischargeMeasurement::synthesize(Capacitor::measurement_rig(), 1e-3, 1800.0);
        assert!(m.v_end > 3.0, "fell out of range: {}", m.v_end);
    }
}
