//! Simulation configuration.

use econcast_core::{NodeParams, ProtocolConfig, StepSchedule, Topology};

/// How the transmitter's listener estimate `ĉ(t)` is derived from the
/// ground truth at each packet boundary (Section V-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EstimatorKind {
    /// `ĉ = c` exactly — the idealized assumption of the numerical
    /// evaluation (Section VII-A).
    Perfect,
    /// Deterministic degradation: `ĉ = clamp(gain·c + bias, 0, cap)`.
    Noisy {
        /// Multiplicative detection gain.
        gain: f64,
        /// Additive bias.
        bias: f64,
        /// Report cap (`f64::INFINITY` to disable).
        cap: f64,
    },
    /// Ping-collision model (Section VIII-C): each of the `c`
    /// recipients sends one ping of length `ping_len` at a uniform
    /// random offset inside the configured ping interval; overlapping
    /// pings are lost, and `ĉ` is the number of pings decoded. Only
    /// meaningful with `ping_interval > 0`.
    PingCollision {
        /// Ping airtime, same unit as the packet time.
        ping_len: f64,
    },
}

/// A time-varying harvest profile with constant mean (the Section
/// III-A extension: "the analysis can be easily extended to the case
/// with time-varying power budget with the same constant mean").
///
/// All nodes share the phase — modeling office lighting: during the
/// on-phase (`duty` fraction of each period) every node harvests
/// `ρ_i/duty`; during the off-phase nothing arrives. The long-run mean
/// equals the configured budget `ρ_i` exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarvestSpec {
    /// Full on+off cycle length (packet-time units).
    pub period: f64,
    /// Fraction of the period with power available, in `(0, 1]`.
    pub duty: f64,
}

/// How each node's multiplier step schedule is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScheduleSpec {
    /// Every node uses this exact schedule. The caller owns the
    /// unit-consistency of `δ` (see `StepSchedule`'s type-level note).
    Shared(StepSchedule),
    /// Per-node constant schedules derived from a dimensionless step
    /// fraction: node `i` gets `δ_i = step·σ/max(L_i, X_i)²`
    /// ([`StepSchedule::normalized_constant`]), which makes one knob
    /// work across heterogeneous power levels.
    Normalized {
        /// Worst-case per-update movement of the dimensionless
        /// multiplier (0.02–0.1 is a good range: smaller = steadier,
        /// slower — the Section V-F tradeoff).
        step: f64,
        /// Update interval `τ` (packet-times).
        tau: f64,
    },
    /// Per-node variance-normalized gain-scheduled controllers
    /// ([`StepSchedule::variance_normalized`]): each node normalizes
    /// its battery-drift gradient by a running variance estimate, so
    /// one `gain` tracks across power scales *and* burst statistics —
    /// full gain under persistent over/under-spend, vanishing gain at
    /// noisy balance.
    GainScheduled {
        /// Full-gain per-update movement of the dimensionless
        /// multiplier (0.02–0.1).
        gain: f64,
        /// Update interval `τ` (packet-times).
        tau: f64,
    },
}

impl ScheduleSpec {
    /// Resolves the schedule for one node.
    pub fn for_node(&self, sigma: f64, params: &NodeParams) -> StepSchedule {
        match *self {
            ScheduleSpec::Shared(s) => s,
            ScheduleSpec::Normalized { step, tau } => StepSchedule::normalized_constant(
                step,
                tau,
                sigma,
                params.listen_w,
                params.transmit_w,
            ),
            ScheduleSpec::GainScheduled { gain, tau } => StepSchedule::variance_normalized(
                gain,
                tau,
                sigma,
                params.listen_w,
                params.transmit_w,
            ),
        }
    }
}

/// Full description of one simulation run. Plain data throughout, so
/// experiment records are self-describing.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Connectivity. Cliques reproduce Section VII-A–D, grids VII-E.
    pub topology: Topology,
    /// Per-node power parameters; length must equal `topology.len()`.
    pub nodes: Vec<NodeParams>,
    /// Protocol: σ, capture/non-capture, groupput/anyput.
    pub protocol: ProtocolConfig,
    /// Multiplier step schedule (constant δ/τ in practice,
    /// Section V-F).
    pub schedule: ScheduleSpec,
    /// Initial multiplier value `η[0]` for every node. Seeding near the
    /// converged value shortens warm-up; 0 is always safe.
    pub eta0: f64,
    /// Post-packet ping interval duration (packet-time units);
    /// 0 disables the interval (idealized simulations).
    pub ping_interval: f64,
    /// Listener estimator at packet boundaries.
    pub estimator: EstimatorKind,
    /// Per-node sleep-clock drift factors (sampled sleep dwells are
    /// multiplied by these); `None` = no drift. Length must match the
    /// node count when present.
    pub clock_drift: Option<Vec<f64>>,
    /// Extra constant power drawn at all times — the regulator
    /// quiescent and MCU standby overhead Section VIII-B measures as a
    /// 4–11% excess over the target budget. Invisible to the protocol's
    /// virtual battery; counted only by the physical meter. Watts.
    pub overhead_w: f64,
    /// Simulated duration (packet-time units), metrics window included.
    pub t_end: f64,
    /// Metrics are discarded before this time (multiplier warm-up).
    pub warmup: f64,
    /// RNG seed; identical configs with identical seeds reproduce runs
    /// bit-for-bit.
    pub seed: u64,
    /// Record every successful packet delivery in the report's
    /// `deliveries` log (time, source, receiver set). Off by default —
    /// long runs would allocate heavily.
    pub record_deliveries: bool,
    /// Optional on/off harvest modulation with the same mean as the
    /// constant budget (`None` = the paper's constant-ρ setting).
    pub harvest: Option<HarvestSpec>,
}

impl SimConfig {
    /// A ready-to-run idealized clique configuration matching the
    /// Section VII-A setup: perfect estimates, no ping interval, no
    /// drift or overhead, constant δ/τ schedule.
    pub fn ideal_clique(
        n: usize,
        params: NodeParams,
        protocol: ProtocolConfig,
        t_end: f64,
        seed: u64,
    ) -> Self {
        SimConfig {
            topology: Topology::clique(n),
            nodes: vec![params; n],
            protocol,
            schedule: ScheduleSpec::Normalized {
                step: 0.05,
                tau: 200.0,
            },
            eta0: 0.0,
            ping_interval: 0.0,
            estimator: EstimatorKind::Perfect,
            clock_drift: None,
            overhead_w: 0.0,
            t_end,
            warmup: (t_end * 0.2).min(50_000.0),
            seed,
            record_deliveries: false,
            harvest: None,
        }
    }

    /// Validates cross-field consistency; called by the engine.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.topology.len();
        if n == 0 {
            return Err("topology has no nodes".into());
        }
        if self.nodes.len() != n {
            return Err(format!(
                "{} node parameter sets for {} topology nodes",
                self.nodes.len(),
                n
            ));
        }
        if let Some(d) = &self.clock_drift {
            if d.len() != n {
                return Err(format!("{} drift factors for {n} nodes", d.len()));
            }
            if d.iter().any(|&f| f <= 0.0 || !f.is_finite()) {
                return Err("drift factors must be positive and finite".into());
            }
        }
        if self.ping_interval < 0.0 || !self.ping_interval.is_finite() {
            return Err("ping interval must be non-negative and finite".into());
        }
        if let EstimatorKind::PingCollision { ping_len } = self.estimator {
            if self.ping_interval <= 0.0 {
                return Err("PingCollision estimator requires ping_interval > 0".into());
            }
            if ping_len <= 0.0 || ping_len > self.ping_interval {
                return Err("ping_len must lie in (0, ping_interval]".into());
            }
        }
        if self.overhead_w < 0.0 {
            return Err("overhead power cannot be negative".into());
        }
        if !(self.t_end > 0.0) {
            return Err("t_end must be positive".into());
        }
        if !(0.0..self.t_end).contains(&self.warmup) {
            return Err("warmup must lie in [0, t_end)".into());
        }
        if self.eta0 < 0.0 {
            return Err("eta0 must be non-negative".into());
        }
        if let Some(h) = self.harvest {
            if !(h.period > 0.0 && h.period.is_finite()) {
                return Err("harvest period must be positive and finite".into());
            }
            if !(h.duty > 0.0 && h.duty <= 1.0) {
                return Err("harvest duty must lie in (0, 1]".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use econcast_core::ProtocolConfig;

    fn base() -> SimConfig {
        SimConfig::ideal_clique(
            5,
            NodeParams::from_microwatts(10.0, 500.0, 500.0),
            ProtocolConfig::capture_groupput(0.5),
            10_000.0,
            1,
        )
    }

    #[test]
    fn ideal_clique_validates() {
        assert!(base().validate().is_ok());
    }

    #[test]
    fn mismatched_nodes_rejected() {
        let mut c = base();
        c.nodes.pop();
        assert!(c.validate().is_err());
    }

    #[test]
    fn drift_vector_length_checked() {
        let mut c = base();
        c.clock_drift = Some(vec![1.0; 3]);
        assert!(c.validate().is_err());
        c.clock_drift = Some(vec![1.0; 5]);
        assert!(c.validate().is_ok());
        c.clock_drift = Some(vec![1.0, 1.0, 1.0, 1.0, -0.5]);
        assert!(c.validate().is_err());
    }

    #[test]
    fn ping_collision_requires_interval() {
        let mut c = base();
        c.estimator = EstimatorKind::PingCollision { ping_len: 0.01 };
        assert!(c.validate().is_err());
        c.ping_interval = 0.2;
        assert!(c.validate().is_ok());
        c.estimator = EstimatorKind::PingCollision { ping_len: 0.5 };
        assert!(c.validate().is_err()); // ping longer than interval
    }

    #[test]
    fn warmup_bounds_checked() {
        let mut c = base();
        c.warmup = c.t_end;
        assert!(c.validate().is_err());
        c.warmup = 0.0;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn config_clones_are_independent_and_valid() {
        let c = base();
        let mut copy = c.clone();
        assert!(copy.validate().is_ok());
        copy.seed = c.seed + 1;
        assert_eq!(c.seed + 1, copy.seed);
        assert_eq!(copy.topology.len(), 5);
        assert!(c.validate().is_ok());
    }
}
