//! `bench_gate` — the CI bench-regression gate.
//!
//! ```text
//! bench_gate --fresh FILE [--baseline-dir DIR] [--max-regression PCT]
//!            [--max-latency-regression PCT] [--max-metrics-overhead PCT]
//! ```
//!
//! Compares the fresh `BENCH_*.json` against the newest committed
//! baseline (by `created_unix`) in `DIR` (default `.`) whose `threads`
//! matches the fresh run's — numbers are machine- and thread-specific,
//! so only like compares with like. Exits 1 when any shared kernel or
//! service throughput regressed by more than `PCT` percent (default
//! 30), or any shared service p99 latency *grew* by more than the
//! latency threshold (default 50). Exits 0 with a notice when no
//! comparable baseline exists (a fresh machine or thread count is not
//! a regression).
//!
//! One check binds even without a baseline: `warm_rps_metrics_on`, the
//! always-on metrics-plane overhead. The fresh record's warm batch-256
//! row with recording on must hold within `--max-metrics-overhead`
//! percent (default 5) of its recording-off twin from the *same* run —
//! paired within one record, so machine speed divides out and the
//! contract holds from the first run on any machine.

use econcast_bench::gate::{
    bench_doc, compare, metrics_overhead_check, parse_json, ratio_rows, BenchDoc,
    METRICS_OVERHEAD_BATCH,
};
use std::path::{Path, PathBuf};

fn load(path: &Path) -> Result<BenchDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    bench_doc(&parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?)
        .map_err(|e| format!("{}: {e}", path.display()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let Some(fresh_path) = flag("--fresh").map(PathBuf::from) else {
        eprintln!(
            "usage: bench_gate --fresh FILE [--baseline-dir DIR] [--max-regression PCT] \
             [--max-latency-regression PCT] [--max-metrics-overhead PCT]"
        );
        std::process::exit(2);
    };
    let baseline_dir = PathBuf::from(flag("--baseline-dir").unwrap_or_else(|| ".".into()));
    let max_loss = match flag("--max-regression").as_deref() {
        None => 0.30,
        Some(v) => match v.parse::<f64>() {
            Ok(pct) if pct > 0.0 && pct < 100.0 => pct / 100.0,
            _ => {
                eprintln!("--max-regression expects a percentage in (0, 100), got `{v}`");
                std::process::exit(2);
            }
        },
    };
    // Latency regressions have no 100% ceiling — a p99 can triple.
    let max_lat_gain = match flag("--max-latency-regression").as_deref() {
        None => 0.50,
        Some(v) => match v.parse::<f64>() {
            Ok(pct) if pct > 0.0 => pct / 100.0,
            _ => {
                eprintln!("--max-latency-regression expects a positive percentage, got `{v}`");
                std::process::exit(2);
            }
        },
    };

    let max_metrics_loss = match flag("--max-metrics-overhead").as_deref() {
        None => 0.05,
        Some(v) => match v.parse::<f64>() {
            Ok(pct) if pct > 0.0 && pct < 100.0 => pct / 100.0,
            _ => {
                eprintln!("--max-metrics-overhead expects a percentage in (0, 100), got `{v}`");
                std::process::exit(2);
            }
        },
    };

    let fresh = match load(&fresh_path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_gate: cannot load fresh record: {e}");
            std::process::exit(2);
        }
    };

    // The always-on-overhead contract is paired within the fresh record
    // itself, so it runs before baseline discovery — it binds on a
    // brand-new machine with nothing committed yet.
    match metrics_overhead_check(&fresh, max_metrics_loss) {
        Ok(Some((warm, on))) => println!(
            "bench_gate: warm_rps_metrics_on OK — {on:.0} req/s recording vs {warm:.0} req/s \
             off at batch {METRICS_OVERHEAD_BATCH} ({:+.2}% , budget {:.0}%)",
            (on / warm - 1.0) * 100.0,
            max_metrics_loss * 100.0
        ),
        Ok(None) => println!(
            "bench_gate: warm_rps_metrics_on skipped — no warm batch-{METRICS_OVERHEAD_BATCH} \
             row in this (filtered) record"
        ),
        Err(e) => {
            eprintln!("bench_gate: REGRESSION {e}");
            std::process::exit(1);
        }
    }

    // Newest committed baseline at the same thread count, skipping the
    // fresh file itself if it happens to live in the baseline dir.
    let fresh_canon = std::fs::canonicalize(&fresh_path).ok();
    let mut baselines: Vec<(PathBuf, BenchDoc)> = Vec::new();
    let dir = match std::fs::read_dir(&baseline_dir) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_gate: cannot read {}: {e}", baseline_dir.display());
            std::process::exit(2);
        }
    };
    for entry in dir.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        if std::fs::canonicalize(&path).ok() == fresh_canon {
            continue;
        }
        match load(&path) {
            Ok(doc) if doc.threads == fresh.threads => baselines.push((path, doc)),
            Ok(doc) => eprintln!(
                "bench_gate: skipping {} (threads {} != {})",
                path.display(),
                doc.threads,
                fresh.threads
            ),
            Err(e) => eprintln!("bench_gate: skipping unreadable baseline: {e}"),
        }
    }
    let Some((base_path, baseline)) = baselines.into_iter().max_by_key(|(_, d)| d.created_unix)
    else {
        println!(
            "bench_gate: no committed baseline matches threads={}; nothing to gate",
            fresh.threads
        );
        return;
    };

    println!(
        "bench_gate: {} (sha {}, quick {}) vs baseline {} (sha {}, quick {}), \
         max regression {:.0}% (throughput), {:.0}% (p99 latency)",
        fresh_path.display(),
        fresh.git_sha,
        fresh.quick,
        base_path.display(),
        baseline.git_sha,
        baseline.quick,
        max_loss * 100.0,
        max_lat_gain * 100.0
    );
    // The per-entry table prints on every run — a passing gate still
    // shows where each throughput moved. Fresh-only rows are
    // informational "new" (no baseline yet, never an error).
    println!(
        "{:<36} {:>14} {:>14} {:>9}",
        "entry", "baseline/s", "fresh/s", "ratio"
    );
    for row in ratio_rows(&fresh, &baseline) {
        let fmt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.3}"),
            None => "-".to_string(),
        };
        let note = match (row.baseline, row.fresh, row.skipped) {
            (_, _, true) => "  [skipped: quick-sensitive]",
            (None, _, _) => "  [new]",
            (_, None, _) => "  [missing from fresh run]",
            _ => "",
        };
        let ratio = match row.ratio() {
            Some(r) => format!("{r:.3}x"),
            None => "-".to_string(),
        };
        println!(
            "{:<36} {:>14} {:>14} {:>9}{note}",
            row.what,
            fmt(row.baseline),
            fmt(row.fresh),
            ratio
        );
    }
    let regressions = compare(&fresh, &baseline, max_loss, max_lat_gain);
    if regressions.is_empty() {
        println!(
            "bench_gate: OK — no throughput regressed by more than {:.0}%, \
             no p99 latency grew by more than {:.0}%",
            max_loss * 100.0,
            max_lat_gain * 100.0
        );
        return;
    }
    for r in &regressions {
        if r.latency {
            eprintln!(
                "bench_gate: REGRESSION {}: {:.1}us -> {:.1}us p99 ({:.0}% increase)",
                r.what,
                r.baseline,
                r.fresh,
                r.loss() * 100.0
            );
        } else {
            eprintln!(
                "bench_gate: REGRESSION {}: {:.3}/s -> {:.3}/s ({:.0}% loss)",
                r.what,
                r.baseline,
                r.fresh,
                r.loss() * 100.0
            );
        }
    }
    std::process::exit(1);
}
