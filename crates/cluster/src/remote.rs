//! The remote-shard dialer: a pooled, reconnecting, health-tracked
//! wrapper over [`PolicyClient`].
//!
//! A [`RemoteShard`] owns one backend address and at most one live
//! connection to it. Operations dial lazily with **bounded retry and
//! exponential backoff**, and every operation outcome feeds a small
//! health machine:
//!
//! * a success resets the failure streak and marks the backend
//!   healthy;
//! * `unhealthy_after` consecutive failures mark it **down** — from
//!   then on [`RemoteShard::should_attempt`] answers `false` and the
//!   cluster router stops burning dial timeouts on it (requests fall
//!   back to the local solver instead);
//! * after `reprobe_after` of downtime the next operation is allowed
//!   through as a probe; if the backend answers, it is healthy again.
//!
//! The dialer speaks the ordinary `econcast-proto` service family —
//! backends are stock `PolicyServer` processes that cannot tell a
//! dialer from any other client.

use econcast_service::{ready, PolicyClient, PolicyRequest, ServiceStats, Ticket, WireResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Tuning knobs for one backend connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteConfig {
    /// Dial attempts per connection establishment (≥ 1).
    pub dial_retries: u32,
    /// Backoff before the second dial attempt; doubles per attempt.
    pub backoff: Duration,
    /// Timeout applied to the TCP connect, the handshake, and every
    /// read/write on the pooled connection (`None` = block forever) —
    /// a backend that is wedged rather than dead (accepts but never
    /// answers) surfaces as an error, not a hung cluster.
    pub io_timeout: Option<Duration>,
    /// Consecutive operation failures before the backend is marked
    /// down.
    pub unhealthy_after: u32,
    /// Downtime before a probe operation is allowed through again.
    pub reprobe_after: Duration,
    /// `max_batch` announced in the connection handshake.
    pub hello_batch: u16,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        RemoteConfig {
            dial_retries: 2,
            backoff: Duration::from_millis(25),
            io_timeout: Some(Duration::from_secs(10)),
            unhealthy_after: 1,
            reprobe_after: Duration::from_millis(250),
            hello_batch: 1024,
        }
    }
}

/// Cumulative per-backend counters (plain data, cheap to copy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteShardStats {
    /// Successful connection establishments.
    pub connects: u64,
    /// Requests served by the backend through this dialer.
    pub served: u64,
    /// Failed operations (dial or I/O), each of which drops the
    /// pooled connection.
    pub failures: u64,
    /// healthy → down transitions.
    pub down_transitions: u64,
    /// down → healthy recoveries.
    pub recoveries: u64,
}

/// An in-flight remote sub-batch: the connection-level [`Ticket`]
/// plus the accounting ([`RemoteShardStats::served`], trace span,
/// deadline) applied when it completes.
#[derive(Debug)]
pub struct RemoteTicket {
    ticket: Ticket,
    /// `remote_serve` span start (armed only while tracing).
    t0: Option<u64>,
    /// Absolute completion deadline derived from
    /// [`RemoteConfig::io_timeout`] at submit time.
    deadline: Option<Instant>,
    /// Requests in the sub-batch.
    n: usize,
}

/// One backend policy server, dialed on demand.
#[derive(Debug)]
pub struct RemoteShard {
    addr: SocketAddr,
    cfg: RemoteConfig,
    conn: Option<PolicyClient>,
    consecutive_failures: u32,
    /// `Some(since)` while the backend is considered down.
    down_since: Option<Instant>,
    /// Deterministic per-shard multiplier in `[1.0, 1.5)` applied to
    /// every reconnect backoff sleep.
    jitter: f64,
    stats: RemoteShardStats,
}

/// The per-shard backoff jitter factor: seeded from the shard's slot
/// index, so a cluster of dialers reconnecting after one backend
/// restart spreads its dial storm deterministically instead of
/// stampeding in lockstep — and two runs of the same topology jitter
/// identically (reproducible tests and benchmarks).
fn jitter_factor(index: u64) -> f64 {
    // Golden-ratio XOR decorrelates small consecutive indices before
    // they seed the generator.
    let mut rng = StdRng::seed_from_u64(index ^ 0x9E37_79B9_7F4A_7C15);
    rng.gen_range(1.0, 1.5)
}

impl RemoteShard {
    /// Wraps a backend address; nothing is dialed until the first
    /// operation. Backoff jitter is seeded as slot index 0 — cluster
    /// routers use [`RemoteShard::with_index`] so each slot jitters
    /// differently.
    pub fn new(addr: SocketAddr, cfg: RemoteConfig) -> Self {
        Self::with_index(addr, cfg, 0)
    }

    /// Wraps a backend address with an explicit slot index seeding the
    /// deterministic backoff jitter.
    pub fn with_index(addr: SocketAddr, cfg: RemoteConfig, index: u64) -> Self {
        RemoteShard {
            addr,
            cfg,
            conn: None,
            consecutive_failures: 0,
            down_since: None,
            jitter: jitter_factor(index),
            stats: RemoteShardStats::default(),
        }
    }

    /// The deterministic backoff multiplier this shard was seeded
    /// with (in `[1.0, 1.5)`).
    pub fn backoff_jitter(&self) -> f64 {
        self.jitter
    }

    /// The backend address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the backend is currently considered healthy.
    pub fn healthy(&self) -> bool {
        self.down_since.is_none()
    }

    /// Whether an operation should be attempted right now: healthy,
    /// or down for long enough that a reprobe is due.
    pub fn should_attempt(&self) -> bool {
        match self.down_since {
            None => true,
            Some(since) => since.elapsed() >= self.cfg.reprobe_after,
        }
    }

    /// Counter snapshot.
    pub fn shard_stats(&self) -> RemoteShardStats {
        self.stats
    }

    /// Re-targets the dialer at a replacement backend (a respawned
    /// process listens on a fresh port): drops the pooled connection
    /// and resets the health machine, so the next operation probes
    /// the new address immediately.
    pub fn retarget(&mut self, addr: SocketAddr) {
        self.addr = addr;
        self.conn = None;
        self.consecutive_failures = 0;
        self.down_since = None;
    }

    /// Serves one batch on the backend, blocking until it completes.
    /// An `Err` means the *stream* failed (dial, I/O, corruption) —
    /// the connection is dropped, the failure is recorded, and the
    /// caller should fall back; the cluster router re-serves the
    /// whole sub-batch locally. Exactly
    /// [`begin_batch`](RemoteShard::begin_batch) followed by the
    /// blocking finish.
    pub fn serve_batch(&mut self, reqs: &[PolicyRequest]) -> std::io::Result<Vec<WireResult>> {
        let t = self.begin_batch(reqs)?;
        self.finish(&t)
    }

    /// Submits one batch on the backend without waiting for replies
    /// (dialing first if needed): the cluster router's scatter step.
    /// Poll the returned ticket with
    /// [`try_finish`](RemoteShard::try_finish) — several backends'
    /// tickets can be in flight at once, multiplexed on one thread
    /// via [`RemoteShard::poll_fd`]. A submit-side failure is
    /// recorded like any stream failure.
    pub fn begin_batch(&mut self, reqs: &[PolicyRequest]) -> std::io::Result<RemoteTicket> {
        let t0 = econcast_trace::armed_now();
        let deadline = self.cfg.io_timeout.map(|t| Instant::now() + t);
        let n = reqs.len();
        match self.connect().and_then(|conn| conn.submit_batch(reqs)) {
            Ok(ticket) => Ok(RemoteTicket {
                ticket,
                t0,
                deadline,
                n,
            }),
            Err(e) => {
                econcast_trace::complete_from(
                    "cluster",
                    "remote_serve",
                    t0,
                    &[("requests", n as u64)],
                );
                self.note_failure();
                Err(e)
            }
        }
    }

    /// Non-blocking progress check on an in-flight batch: absorbs
    /// whatever replies are readable and reports completion.
    /// `Ok(None)` means "not done yet — wait for readability and
    /// retry". Completion (either way) closes the `remote_serve`
    /// trace span and feeds the health machine; blowing the
    /// [`RemoteConfig::io_timeout`] deadline counts as a stream
    /// failure.
    pub fn try_finish(&mut self, t: &RemoteTicket) -> std::io::Result<Option<Vec<WireResult>>> {
        let polled = match self.conn.as_mut() {
            None => Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "connection was dropped mid-batch",
            )),
            Some(conn) => conn.try_collect(&t.ticket),
        };
        match polled {
            Ok(Some(out)) => {
                self.settle(t, true);
                Ok(Some(out))
            }
            Ok(None) => {
                if t.deadline.is_some_and(|d| Instant::now() >= d) {
                    self.settle(t, false);
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "backend did not complete the batch within the I/O timeout",
                    ));
                }
                Ok(None)
            }
            Err(e) => {
                self.settle(t, false);
                Err(e)
            }
        }
    }

    /// Blocks until an in-flight batch completes (the single-backend
    /// path behind [`RemoteShard::serve_batch`]).
    fn finish(&mut self, t: &RemoteTicket) -> std::io::Result<Vec<WireResult>> {
        let collected = match self.conn.as_mut() {
            None => Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "connection was dropped mid-batch",
            )),
            Some(conn) => conn.collect(t.ticket),
        };
        let ok = collected.is_ok();
        self.settle(t, ok);
        collected
    }

    /// Completion bookkeeping shared by the blocking and polled
    /// finish paths: health machine, served counter, trace span.
    fn settle(&mut self, t: &RemoteTicket, ok: bool) {
        if ok {
            self.note_success();
            self.stats.served += t.n as u64;
        } else {
            self.note_failure();
        }
        econcast_trace::complete_from("cluster", "remote_serve", t.t0, &[("requests", t.n as u64)]);
    }

    /// The pooled connection's descriptor for readiness multiplexing
    /// (`None` while undialed or after a failure dropped the stream).
    pub fn poll_fd(&self) -> Option<ready::RawFdAlias> {
        self.conn.as_ref().map(PolicyClient::poll_fd)
    }

    /// The per-operation I/O timeout this dialer was configured with.
    pub fn io_timeout(&self) -> Option<Duration> {
        self.cfg.io_timeout
    }

    /// Liveness probe: dial if needed, round-trip a `Ping`. Returns
    /// the post-probe health.
    pub fn ping(&mut self) -> bool {
        let result = self.connect().and_then(PolicyClient::ping);
        match result {
            Ok(()) => {
                self.note_success();
                true
            }
            Err(_) => {
                self.note_failure();
                false
            }
        }
    }

    /// Fetches the backend's aggregate serving counters over the
    /// existing `StatsRequest` path.
    pub fn backend_stats(&mut self) -> std::io::Result<ServiceStats> {
        let result = self.connect().and_then(|conn| conn.stats(None));
        match result {
            Ok(stats) => {
                self.note_success();
                Ok(stats)
            }
            Err(e) => {
                self.note_failure();
                Err(e)
            }
        }
    }

    /// Returns the pooled connection, dialing with bounded
    /// retry/backoff when none is live.
    fn connect(&mut self) -> std::io::Result<&mut PolicyClient> {
        if self.conn.is_none() {
            let t0 = econcast_trace::armed_now();
            let mut attempts = 0u64;
            let mut last_err = None;
            for attempt in 0..self.cfg.dial_retries.max(1) {
                attempts += 1;
                if attempt > 0 {
                    let base = self.cfg.backoff * 2u32.pow(attempt - 1);
                    std::thread::sleep(base.mul_f64(self.jitter));
                }
                // The timeout must already be armed while dialing and
                // handshaking: applying it only afterwards would leave
                // a wedged backend able to hang the dial itself.
                let dial = match self.cfg.io_timeout {
                    Some(timeout) => {
                        PolicyClient::connect_with_timeout(self.addr, self.cfg.hello_batch, timeout)
                    }
                    None => PolicyClient::connect(self.addr, self.cfg.hello_batch),
                };
                match dial {
                    Ok(client) => {
                        self.stats.connects += 1;
                        self.conn = Some(client);
                        last_err = None;
                        break;
                    }
                    Err(e) => last_err = Some(e),
                }
            }
            econcast_trace::complete_from(
                "cluster",
                "dial",
                t0,
                &[("attempts", attempts), ("ok", last_err.is_none() as u64)],
            );
            if let Some(e) = last_err {
                return Err(e);
            }
        }
        Ok(self.conn.as_mut().expect("dialed above"))
    }

    fn note_success(&mut self) {
        self.consecutive_failures = 0;
        if self.down_since.take().is_some() {
            self.stats.recoveries += 1;
        }
    }

    fn note_failure(&mut self) {
        // A failed stream is never reused: the next operation redials.
        self.conn = None;
        self.stats.failures += 1;
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.cfg.unhealthy_after.max(1) {
            // (Re-)stamp the downtime so the reprobe window restarts
            // after every failed probe, not just the first failure.
            if self.down_since.replace(Instant::now()).is_none() {
                self.stats.down_transitions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use econcast_core::{NodeParams, ThroughputMode};

    /// An address with nothing listening (bind, learn, drop).
    fn dead_addr() -> SocketAddr {
        std::net::TcpListener::bind("127.0.0.1:0")
            .expect("bind probe")
            .local_addr()
            .expect("addr")
    }

    fn one_request() -> Vec<PolicyRequest> {
        vec![PolicyRequest::homogeneous(
            4,
            NodeParams::from_microwatts(10.0, 500.0, 450.0),
            0.5,
            ThroughputMode::Groupput,
            1e-2,
        )]
    }

    #[test]
    fn dead_backend_goes_down_and_respects_the_reprobe_window() {
        let mut shard = RemoteShard::new(
            dead_addr(),
            RemoteConfig {
                dial_retries: 1,
                reprobe_after: Duration::from_secs(3600),
                ..RemoteConfig::default()
            },
        );
        assert!(shard.healthy());
        assert!(shard.should_attempt());
        assert!(shard.serve_batch(&one_request()).is_err());
        assert!(!shard.healthy(), "one failure marks it down");
        assert!(
            !shard.should_attempt(),
            "an hour-long reprobe window gates further attempts"
        );
        let s = shard.shard_stats();
        assert_eq!(s.failures, 1);
        assert_eq!(s.down_transitions, 1);
        assert_eq!(s.served, 0);
    }

    #[test]
    fn live_backend_serves_and_recovers_after_retarget() {
        use econcast_service::{PolicyServer, RouterConfig, ServerConfig, ServiceConfig};
        let server = PolicyServer::bind(
            "127.0.0.1:0",
            ServerConfig {
                router: RouterConfig {
                    shards: 1,
                    service: ServiceConfig {
                        workers: Some(1),
                        ..ServiceConfig::default()
                    },
                    ..RouterConfig::default()
                },
                background_prewarm: false,
                ..ServerConfig::default()
            },
        )
        .expect("bind")
        .spawn();

        // Start pointed at a dead port: down after one failure.
        let mut shard = RemoteShard::new(
            dead_addr(),
            RemoteConfig {
                dial_retries: 1,
                reprobe_after: Duration::from_secs(3600),
                ..RemoteConfig::default()
            },
        );
        assert!(shard.serve_batch(&one_request()).is_err());
        assert!(!shard.healthy());

        // Re-target at the live backend (the replace-a-dead-backend
        // path): health resets, the probe succeeds, requests serve.
        shard.retarget(server.addr());
        assert!(shard.should_attempt());
        assert!(shard.ping(), "live backend answers the probe");
        let out = shard.serve_batch(&one_request()).expect("remote serve");
        assert_eq!(out.len(), 1);
        assert!(out[0].is_ok());
        assert!(shard.healthy());
        let s = shard.shard_stats();
        assert_eq!(s.served, 1);
        assert!(s.connects >= 1);

        // Stats fan-in sees the request the backend served.
        let backend = shard.backend_stats().expect("stats");
        assert_eq!(backend.requests, 1);
        server.shutdown();
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_spreads_across_indices() {
        let addr = dead_addr();
        let cfg = RemoteConfig::default();
        let factors: Vec<f64> = (0..8)
            .map(|i| RemoteShard::with_index(addr, cfg, i).backoff_jitter())
            .collect();
        for (i, &f) in factors.iter().enumerate() {
            assert!((1.0..1.5).contains(&f), "index {i} jitter {f} out of range");
            // Same index ⇒ same factor, every time: reconnect pacing is
            // reproducible run to run.
            let again = RemoteShard::with_index(addr, cfg, i as u64).backoff_jitter();
            assert_eq!(f.to_bits(), again.to_bits());
        }
        // Neighbouring slots must not share a factor, or a fleet of
        // dialers stampedes in lockstep after one backend restart.
        let distinct: std::collections::HashSet<u64> =
            factors.iter().map(|f| f.to_bits()).collect();
        assert_eq!(
            distinct.len(),
            factors.len(),
            "jitter collapsed: {factors:?}"
        );
        assert_eq!(
            RemoteShard::new(addr, cfg).backoff_jitter().to_bits(),
            factors[0].to_bits(),
            "plain constructor is index 0"
        );
    }

    #[test]
    fn failed_reprobe_restamps_the_window_without_a_fresh_down_transition() {
        // Down backend, short reprobe window: after the cooldown a
        // probe is allowed through; when the backend is *still* dead
        // the window re-stamps (no hammering) and the down transition
        // is not double-counted as a fresh failure burst.
        let mut shard = RemoteShard::new(
            dead_addr(),
            RemoteConfig {
                dial_retries: 1,
                reprobe_after: Duration::from_millis(80),
                ..RemoteConfig::default()
            },
        );
        assert!(shard.serve_batch(&one_request()).is_err());
        assert!(!shard.healthy());
        assert!(!shard.should_attempt(), "inside the cooldown window");

        std::thread::sleep(Duration::from_millis(120));
        assert!(shard.should_attempt(), "cooldown elapsed: reprobe is due");
        assert!(!shard.ping(), "backend is still dead");
        assert!(
            !shard.should_attempt(),
            "failed reprobe re-stamps the window"
        );
        let s = shard.shard_stats();
        assert_eq!(s.failures, 2, "initial failure plus one probe");
        assert_eq!(s.down_transitions, 1, "still the same outage");
        assert_eq!(s.recoveries, 0);
    }

    #[test]
    fn recovery_is_adopted_at_the_next_probe_not_mid_window() {
        use econcast_service::{PolicyServer, RouterConfig, ServerConfig, ServiceConfig};
        // Mark the shard down while nothing listens, with a long
        // reprobe window.
        let addr = dead_addr();
        let mut shard = RemoteShard::new(
            addr,
            RemoteConfig {
                dial_retries: 1,
                reprobe_after: Duration::from_secs(3600),
                ..RemoteConfig::default()
            },
        );
        assert!(shard.serve_batch(&one_request()).is_err());
        assert!(!shard.healthy());

        // The backend comes back on the same port mid-window. The
        // health machine must NOT silently re-adopt it: serve-path
        // attempts stay gated until a sweep probes explicitly.
        let server = PolicyServer::bind(
            addr,
            ServerConfig {
                router: RouterConfig {
                    shards: 1,
                    service: ServiceConfig {
                        workers: Some(1),
                        ..ServiceConfig::default()
                    },
                    ..RouterConfig::default()
                },
                background_prewarm: false,
                ..ServerConfig::default()
            },
        )
        .expect("rebind released port")
        .spawn();
        assert!(
            !shard.should_attempt(),
            "recovery is invisible until the next health sweep"
        );

        // The sweep's explicit probe dials regardless of the window
        // and re-adopts the recovered backend.
        assert!(shard.ping(), "sweep probe re-adopts the backend");
        assert!(shard.healthy());
        assert!(shard.should_attempt());
        let s = shard.shard_stats();
        assert_eq!(s.recoveries, 1);
        let out = shard.serve_batch(&one_request()).expect("serves again");
        assert!(out[0].is_ok());
        server.shutdown();
    }
}
