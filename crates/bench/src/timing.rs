//! A tiny measurement harness (offline stand-in for criterion).
//!
//! Auto-calibrates the iteration count so each benchmark runs for
//! roughly [`TARGET_SECONDS`], then reports mean / best wall-clock per
//! iteration. Also the engine behind `repro --bench-json`.

use std::time::Instant;

/// Target measurement time per benchmark.
pub const TARGET_SECONDS: f64 = 2.0;

/// One registered benchmark: a name and a repeatable workload.
pub struct Bench {
    /// Display / filter name.
    pub name: &'static str,
    workload: Box<dyn FnMut()>,
}

impl Bench {
    /// Wraps a workload closure.
    pub fn new(name: &'static str, workload: impl FnMut() + 'static) -> Self {
        Bench {
            name,
            workload: Box::new(workload),
        }
    }
}

/// Result of measuring one benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Iterations measured (after warm-up).
    pub iterations: u64,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Fastest single batch, seconds per iteration.
    pub best_s: f64,
}

impl Measurement {
    /// Iterations per second at the mean.
    pub fn throughput(&self) -> f64 {
        if self.mean_s > 0.0 {
            1.0 / self.mean_s
        } else {
            f64::INFINITY
        }
    }
}

/// Human-readable time with an adaptive unit.
pub fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Measures one workload: warm-up run, calibration, then batched
/// timing until [`TARGET_SECONDS`] of samples accumulate.
pub fn measure(name: &str, workload: &mut dyn FnMut()) -> Measurement {
    // Warm-up + calibration: time a single iteration.
    let t0 = Instant::now();
    workload();
    let once = t0.elapsed().as_secs_f64().max(1e-9);

    // Pick a batch size aiming at ~10 batches within the target time.
    let batch = ((TARGET_SECONDS / 10.0 / once).ceil() as u64).clamp(1, 1_000_000);
    let mut iterations = 0u64;
    let mut total = 0.0f64;
    let mut best = f64::INFINITY;
    while total < TARGET_SECONDS && iterations < 10_000_000 {
        let t = Instant::now();
        for _ in 0..batch {
            workload();
        }
        let dt = t.elapsed().as_secs_f64();
        total += dt;
        iterations += batch;
        best = best.min(dt / batch as f64);
        if once > TARGET_SECONDS {
            break; // a single iteration already exceeds the budget
        }
    }
    Measurement {
        name: name.to_string(),
        iterations,
        mean_s: total / iterations as f64,
        best_s: best,
    }
}

/// Runs benchmarks whose name contains `filter` (all when `None`),
/// printing a criterion-like report line per entry.
pub fn run_benchmarks(benches: Vec<Bench>, filter: Option<&str>) {
    let mut ran = 0;
    for mut b in benches {
        if let Some(f) = filter {
            if !b.name.contains(f) {
                continue;
            }
        }
        let m = measure(b.name, &mut *b.workload);
        ran += 1;
        println!(
            "{:<34} {:>12}/iter (best {:>12}, {} iters)",
            m.name,
            format_seconds(m.mean_s),
            format_seconds(m.best_s),
            m.iterations
        );
    }
    if ran == 0 {
        eprintln!("no benchmark matched the filter");
        std::process::exit(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_sane_numbers() {
        let mut count = 0u64;
        let m = measure("spin", &mut || {
            count = count.wrapping_add(1);
            std::hint::black_box(count);
        });
        assert!(m.iterations > 0);
        assert!(m.mean_s > 0.0);
        assert!(m.best_s <= m.mean_s * 1.5 + 1e-9);
        assert!(m.throughput() > 1.0);
    }

    #[test]
    fn formatting_picks_units() {
        assert!(format_seconds(2.5).ends_with(" s"));
        assert!(format_seconds(2.5e-3).ends_with(" ms"));
        assert!(format_seconds(2.5e-6).ends_with(" µs"));
        assert!(format_seconds(2.5e-9).ends_with(" ns"));
    }
}
