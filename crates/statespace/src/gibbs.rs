//! The product-form stationary distribution of Lemma 2, eq. (19):
//!
//! ```text
//! π^η_w = (1/Z_η) · exp[ (T_w − Σ_{i: w_i=l} η_i L_i − Σ_{i: w_i=x} η_i X_i) / σ ]
//! ```
//!
//! All computations run in the log domain with a streaming
//! log-sum-exp, because at the paper's small temperatures
//! (σ = 0.1 ⇒ exponents of ±90 for N = 10) naive exponentiation
//! over- or underflows.

use crate::space::StateSpace;
use crate::state::NetworkState;
use econcast_core::{NodeParams, ThroughputMode};

/// Inputs for evaluating the Gibbs distribution (19).
#[derive(Debug, Clone, Copy)]
pub struct GibbsParams<'a> {
    /// Per-node power parameters `(ρ_i, L_i, X_i)`.
    pub nodes: &'a [NodeParams],
    /// Lagrange multipliers `η_i ≥ 0`, one per node.
    pub eta: &'a [f64],
    /// Temperature `σ > 0`.
    pub sigma: f64,
    /// Throughput objective defining `T_w`.
    pub mode: ThroughputMode,
}

impl<'a> GibbsParams<'a> {
    /// Validates the shape of the inputs.
    fn check(&self) {
        assert_eq!(
            self.nodes.len(),
            self.eta.len(),
            "one multiplier per node required"
        );
        assert!(self.sigma > 0.0 && self.sigma.is_finite());
        assert!(self.eta.iter().all(|&e| e >= 0.0 && e.is_finite()));
    }

    /// The log-weight (exponent of (19) before normalization) of one
    /// state.
    pub fn log_weight(&self, w: &NetworkState) -> f64 {
        let mut cost = 0.0;
        for i in w.listeners() {
            cost += self.eta[i] * self.nodes[i].listen_w;
        }
        if let Some(t) = w.transmitter() {
            cost += self.eta[t] * self.nodes[t].transmit_w;
        }
        (w.throughput(self.mode) - cost) / self.sigma
    }
}

/// Aggregates of the Gibbs distribution needed by Algorithm 1 and the
/// burstiness analysis, computed in two streaming passes over `W`.
#[derive(Debug, Clone, PartialEq)]
pub struct GibbsSummary {
    /// `log Z_η` — the log partition function.
    pub log_partition: f64,
    /// `α_i = Σ_{w ∈ W_i^l} π_w` — listen-time fractions (eq. (24)).
    pub alpha: Vec<f64>,
    /// `β_i = Σ_{w ∈ W_i^x} π_w` — transmit-time fractions (eq. (24)).
    pub beta: Vec<f64>,
    /// `E_π[T_w]` — the expected throughput, i.e. the protocol's
    /// long-run `T^σ` at these multipliers.
    pub expected_throughput: f64,
    /// Shannon entropy `−Σ π log π` (nats) — the regularizer of (P4).
    pub entropy: f64,
    /// `Σ_{w ∈ W'} π_w` where `W' = {ν_w = 1, c_w ≥ 1}` — the
    /// numerator of the burst-length formula (34).
    pub burst_mass: f64,
    /// `Σ_{w ∈ W'} π_w · λ_xl(w)` — the denominator of (34), where the
    /// capture-release rate is `e^{−c_w/σ}` in groupput mode and
    /// `e^{−γ_w/σ}` in anyput mode (so that `B_a = e^{1/σ}` exactly,
    /// eq. (35)).
    pub burst_exit_mass: f64,
}

impl GibbsSummary {
    /// The average burst length of EconCast-C, eq. (34) (and its anyput
    /// specialization (35)): `B = burst_mass / burst_exit_mass`.
    /// Returns `None` when no burst state has mass (e.g. a single-node
    /// network).
    pub fn average_burst_length(&self) -> Option<f64> {
        if self.burst_exit_mass > 0.0 {
            Some(self.burst_mass / self.burst_exit_mass)
        } else {
            None
        }
    }

    /// The (P4) objective at this distribution:
    /// `E[T_w] + σ·H(π)` — throughput plus the entropy bonus.
    pub fn p4_objective(&self, sigma: f64) -> f64 {
        self.expected_throughput + sigma * self.entropy
    }
}

/// Evaluates the Gibbs distribution summary by exact enumeration of
/// `W` (two passes: max exponent, then normalized accumulation).
pub fn summarize(params: &GibbsParams<'_>) -> GibbsSummary {
    params.check();
    let n = params.nodes.len();
    let space = StateSpace::new(n);

    // Pass 1: the maximum exponent for a stable log-sum-exp.
    let mut max_lw = f64::NEG_INFINITY;
    for w in space.iter() {
        max_lw = max_lw.max(params.log_weight(&w));
    }
    debug_assert!(max_lw.is_finite());

    // Pass 2: accumulate unnormalized (shifted) masses.
    let mut z = 0.0;
    let mut alpha_acc = vec![0.0; n];
    let mut beta_acc = vec![0.0; n];
    let mut tw_acc = 0.0;
    let mut exponent_acc = 0.0; // Σ u_w · lw_w for the entropy
    let mut burst_acc = 0.0;
    let mut burst_exit_acc = 0.0;
    for w in space.iter() {
        let lw = params.log_weight(&w);
        let u = (lw - max_lw).exp();
        z += u;
        for i in w.listeners() {
            alpha_acc[i] += u;
        }
        if let Some(t) = w.transmitter() {
            beta_acc[t] += u;
        }
        tw_acc += u * w.throughput(params.mode);
        exponent_acc += u * lw;
        if w.is_burst_state() {
            burst_acc += u;
            let signal = params.mode.listener_signal(w.listener_count() as f64);
            burst_exit_acc += u * (-signal / params.sigma).exp();
        }
    }

    let log_partition = max_lw + z.ln();
    let inv_z = 1.0 / z;
    // H(π) = log Z − E[log weight]  (since log π_w = lw_w − log Z).
    let entropy = log_partition - exponent_acc * inv_z;
    GibbsSummary {
        log_partition,
        alpha: alpha_acc.iter().map(|a| a * inv_z).collect(),
        beta: beta_acc.iter().map(|b| b * inv_z).collect(),
        expected_throughput: tw_acc * inv_z,
        entropy,
        burst_mass: burst_acc * inv_z,
        burst_exit_mass: burst_exit_acc * inv_z,
    }
}

/// The full probability vector aligned with [`StateSpace::iter`] order.
/// Only sensible for small `n`; used by tests and the detailed-balance
/// checks.
pub fn distribution(params: &GibbsParams<'_>) -> Vec<(NetworkState, f64)> {
    params.check();
    let space = StateSpace::new(params.nodes.len());
    let mut max_lw = f64::NEG_INFINITY;
    for w in space.iter() {
        max_lw = max_lw.max(params.log_weight(&w));
    }
    let mut out: Vec<(NetworkState, f64)> = space
        .iter()
        .map(|w| {
            let u = (params.log_weight(&w) - max_lw).exp();
            (w, u)
        })
        .collect();
    let z: f64 = out.iter().map(|(_, u)| u).sum();
    for (_, u) in &mut out {
        *u /= z;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use econcast_core::rates::{ProtocolConfig, TransitionRates, Variant};
    use econcast_core::ThroughputMode::{Anyput, Groupput};
    use proptest::prelude::*;

    fn homogeneous(n: usize) -> Vec<NodeParams> {
        vec![NodeParams::from_microwatts(10.0, 500.0, 500.0); n]
    }

    #[test]
    fn distribution_sums_to_one_and_matches_summary() {
        let nodes = homogeneous(5);
        let eta = vec![1000.0; 5];
        let p = GibbsParams {
            nodes: &nodes,
            eta: &eta,
            sigma: 0.5,
            mode: Groupput,
        };
        let dist = distribution(&p);
        let total: f64 = dist.iter().map(|(_, pr)| pr).sum();
        assert!((total - 1.0).abs() < 1e-12);

        let s = summarize(&p);
        // Cross-check α_0 against the explicit distribution.
        let alpha0: f64 = dist
            .iter()
            .filter(|(w, _)| w.is_listening(0))
            .map(|(_, pr)| pr)
            .sum();
        assert!((s.alpha[0] - alpha0).abs() < 1e-12);
        let beta0: f64 = dist
            .iter()
            .filter(|(w, _)| w.transmitter() == Some(0))
            .map(|(_, pr)| pr)
            .sum();
        assert!((s.beta[0] - beta0).abs() < 1e-12);
    }

    #[test]
    fn zero_eta_favors_max_throughput_states() {
        // With η = 0 the weight is exp(T_w/σ): the most likely states
        // are those with one transmitter and all others listening.
        let nodes = homogeneous(4);
        let eta = vec![0.0; 4];
        let p = GibbsParams {
            nodes: &nodes,
            eta: &eta,
            sigma: 0.25,
            mode: Groupput,
        };
        let dist = distribution(&p);
        let (best, _) = dist
            .iter()
            .fold((NetworkState::all_sleep(), -1.0), |acc, (w, pr)| {
                if *pr > acc.1 {
                    (*w, *pr)
                } else {
                    acc
                }
            });
        assert!(best.nu());
        assert_eq!(best.listener_count(), 3);
    }

    #[test]
    fn large_eta_favors_all_sleep() {
        let nodes = homogeneous(4);
        let eta = vec![1e9; 4];
        let p = GibbsParams {
            nodes: &nodes,
            eta: &eta,
            sigma: 0.5,
            mode: Groupput,
        };
        let s = summarize(&p);
        // Everyone asleep nearly all the time.
        assert!(s.alpha.iter().all(|&a| a < 1e-6));
        assert!(s.beta.iter().all(|&b| b < 1e-6));
        assert!(s.expected_throughput < 1e-6);
    }

    #[test]
    fn log_domain_survives_tiny_sigma() {
        let nodes = homogeneous(8);
        let eta = vec![5000.0; 8];
        let p = GibbsParams {
            nodes: &nodes,
            eta: &eta,
            sigma: 0.05,
            mode: Groupput,
        };
        let s = summarize(&p);
        assert!(s.log_partition.is_finite());
        assert!(s.expected_throughput.is_finite());
        assert!(s.entropy.is_finite());
        assert!(s.alpha.iter().all(|a| a.is_finite() && *a >= 0.0));
    }

    #[test]
    fn anyput_throughput_never_exceeds_one() {
        let nodes = homogeneous(6);
        let eta = vec![100.0; 6];
        let p = GibbsParams {
            nodes: &nodes,
            eta: &eta,
            sigma: 0.5,
            mode: Anyput,
        };
        let s = summarize(&p);
        assert!(s.expected_throughput <= 1.0 + 1e-12);
    }

    #[test]
    fn entropy_is_nonnegative_and_bounded_by_log_cardinality() {
        let nodes = homogeneous(5);
        let eta = vec![2000.0; 5];
        let p = GibbsParams {
            nodes: &nodes,
            eta: &eta,
            sigma: 0.5,
            mode: Groupput,
        };
        let s = summarize(&p);
        let log_w = (StateSpace::new(5).len() as f64).ln();
        assert!(s.entropy >= -1e-9);
        assert!(s.entropy <= log_w + 1e-9);
    }

    #[test]
    fn detailed_balance_of_rates_18_under_pi_19() {
        // Lemma 2 (Appendix C): π_w · r(w,w') = π_w' · r(w',w) for the
        // four transition cases, for the capture variant with perfect
        // estimates, A(t)=1, σ folded in. We verify numerically on a
        // heterogeneous 4-node network.
        let nodes = vec![
            NodeParams::from_microwatts(5.0, 400.0, 600.0),
            NodeParams::from_microwatts(10.0, 500.0, 500.0),
            NodeParams::from_microwatts(50.0, 600.0, 400.0),
            NodeParams::from_microwatts(100.0, 550.0, 450.0),
        ];
        let eta = vec![800.0, 1200.0, 300.0, 150.0];
        let sigma = 0.5;
        let p = GibbsParams {
            nodes: &nodes,
            eta: &eta,
            sigma,
            mode: Groupput,
        };
        let cfg = ProtocolConfig::new(sigma, Variant::Capture, ThroughputMode::Groupput);
        let dist: std::collections::HashMap<NetworkState, f64> =
            distribution(&p).into_iter().collect();

        let rate = |w: &NetworkState, i: usize, to: econcast_core::NodeState| {
            // Evaluate node i's rate out of its state in w; A(t)=1
            // whenever no one transmits or i itself transmits.
            let listeners = w.listener_count();
            let carrier_free = !w.nu();
            let r = TransitionRates::evaluate(
                &cfg,
                eta[i],
                nodes[i].listen_w,
                nodes[i].transmit_w,
                carrier_free,
                // The transmitter estimates the listeners it serves;
                // a listener entering transmit sees current listeners
                // minus itself.
                if w.transmitter() == Some(i) {
                    listeners as f64
                } else {
                    listeners as f64 - 1.0
                },
            );
            match to {
                econcast_core::NodeState::Listen if w.node_state(i) == econcast_core::NodeState::Sleep => r.sleep_to_listen,
                econcast_core::NodeState::Sleep => r.listen_to_sleep,
                econcast_core::NodeState::Transmit => r.listen_to_transmit,
                econcast_core::NodeState::Listen => r.transmit_to_listen,
            }
        };

        use econcast_core::NodeState::*;
        let mut checked = 0usize;
        for (w, pw) in &dist {
            for i in 0..nodes.len() {
                match w.node_state(i) {
                    Sleep if !w.nu() => {
                        // s→l and back.
                        let w2 = NetworkState::new(w.transmitter(), w.listener_mask() | (1 << i));
                        let fwd = pw * rate(w, i, Listen);
                        let bwd = dist[&w2] * rate(&w2, i, Sleep);
                        assert!(
                            (fwd - bwd).abs() <= 1e-9 * fwd.max(bwd).max(1e-300),
                            "s↔l balance broken at {w:?} node {i}: {fwd} vs {bwd}"
                        );
                        checked += 1;
                    }
                    Listen if !w.nu() => {
                        // l→x and back.
                        let w2 = NetworkState::new(Some(i), w.listener_mask() & !(1 << i));
                        let fwd = pw * rate(w, i, Transmit);
                        let bwd = dist[&w2] * rate(&w2, i, Listen);
                        assert!(
                            (fwd - bwd).abs() <= 1e-9 * fwd.max(bwd).max(1e-300),
                            "l↔x balance broken at {w:?} node {i}: {fwd} vs {bwd}"
                        );
                        checked += 1;
                    }
                    _ => {}
                }
            }
        }
        // Every transmitter-free state contributes one reversible pair
        // per node: 2^4 states × 4 nodes = 64 checks.
        assert_eq!(checked, 64, "expected to exercise every reversible pair");
    }

    proptest! {
        /// α and β are valid time fractions and α_i + β_i ≤ 1.
        #[test]
        fn prop_marginals_are_fractions(
            n in 2usize..7,
            eta_scale in 0.0f64..5000.0,
            sigma in 0.1f64..1.0,
        ) {
            let nodes = homogeneous(n);
            let eta = vec![eta_scale; n];
            let p = GibbsParams { nodes: &nodes, eta: &eta, sigma, mode: Groupput };
            let s = summarize(&p);
            for i in 0..n {
                prop_assert!(s.alpha[i] >= -1e-12 && s.alpha[i] <= 1.0 + 1e-12);
                prop_assert!(s.beta[i] >= -1e-12 && s.beta[i] <= 1.0 + 1e-12);
                prop_assert!(s.alpha[i] + s.beta[i] <= 1.0 + 1e-9);
            }
            // Σβ_i ≤ 1: at most one transmitter at a time.
            let total_beta: f64 = s.beta.iter().sum();
            prop_assert!(total_beta <= 1.0 + 1e-9);
        }

        /// Expected throughput is bounded by the unconstrained oracle.
        #[test]
        fn prop_throughput_bounds(
            n in 2usize..7,
            eta_scale in 0.0f64..3000.0,
        ) {
            let nodes = homogeneous(n);
            let eta = vec![eta_scale; n];
            for mode in [Groupput, Anyput] {
                let p = GibbsParams { nodes: &nodes, eta: &eta, sigma: 0.5, mode };
                let s = summarize(&p);
                prop_assert!(s.expected_throughput <= mode.unconstrained_oracle(n) + 1e-9);
                prop_assert!(s.expected_throughput >= -1e-12);
            }
        }
    }
}
