//! # econcast-analysis — burstiness, heterogeneity, and statistics
//!
//! Analysis-side machinery for the paper's evaluation (Section VII):
//!
//! * [`burst`] — the analytical average burst length of EconCast-C,
//!   eqs. (34)–(35) from Appendix E, as plotted in Fig. 4;
//! * [`heterogeneity`] — the heterogeneous-network sampler behind
//!   Fig. 2: for a heterogeneity level `h`, listen/transmit powers are
//!   drawn uniformly from `[510 − h, 490 + h] µW` and the budget is
//!   log-uniform between `100/h` and `h` µW;
//! * [`stats`] — means, confidence intervals, and CDFs used when
//!   aggregating over 1000 network samples per figure point.

pub mod burst;
pub mod heterogeneity;
pub mod stats;

pub use burst::{anyput_burst_length, groupput_burst_curve, BurstPoint};
pub use heterogeneity::{HeterogeneitySampler, PAPER_H_VALUES};
pub use stats::{mean_and_ci95, Cdf};
