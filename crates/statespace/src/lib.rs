//! # econcast-statespace — the collision-free state space and (P4)
//!
//! Everything in the paper's Markov-chain analysis (Section VI) lives
//! here:
//!
//! * [`NetworkState`] — one collision-free network state `w ∈ W`: at
//!   most one transmitter plus a set of listeners (Section III-C), with
//!   the indicators `ν_w`, `c_w`, `γ_w` and the per-state throughput
//!   `T_w` of Definition 3;
//! * [`StateSpace`] — enumeration of `W`, whose size is
//!   `(N + 2)·2^{N−1}` (the reduction from `3^N` noted in
//!   Section III-C);
//! * [`gibbs`] — the product-form stationary distribution of Lemma 2,
//!   eq. (19), computed in the log domain so that small temperatures
//!   `σ` (where weights span hundreds of orders of magnitude) remain
//!   exact, with a Gray-code streaming kernel ([`SummaryWorkspace`])
//!   that evaluates all marginals in one allocation-free pass and fans
//!   per-transmitter blocks out over a deterministic thread pool;
//! * [`factorized`] — the polynomial-time summarization kernel
//!   ([`FactorizedWorkspace`]): per-block weights are products over
//!   listeners, so every summary aggregate collapses to per-node
//!   sigmoid/softplus sums — O(N) per evaluation in both throughput
//!   modes — serving `N ≫ 16` where enumeration is hopeless;
//! * [`p4`] — the achievable-throughput solver: Algorithm 1's dual
//!   gradient descent on the Lagrange multipliers `η`, yielding the
//!   `T^σ` that every figure in Section VII normalizes against, with a
//!   kernel-dispatch layer ([`KernelSelect`]) that auto-selects the
//!   factorized, Gray-code, or homogeneous closed-form kernel by node
//!   count, throughput mode, and heterogeneity;
//! * [`instance`] — canonical instance keys (sorted budgets +
//!   permutation, decade-quantized tolerance tiers) for the policy
//!   cache in `econcast-service`;
//! * [`homogeneous`] — a combinatorial fast path for homogeneous
//!   networks that aggregates states by `(listener count, transmitter
//!   present)`, supporting thousands of nodes where enumeration would
//!   be hopeless, and cross-checked against enumeration in tests.

pub mod factorized;
pub mod gibbs;
pub mod homogeneous;
pub mod instance;
pub mod p4;
pub mod space;
pub mod state;

pub use factorized::{summarize_factorized, FactorizedWorkspace};
pub use gibbs::{summarize, GibbsParams, GibbsSummary, StateTable, SummaryWorkspace};
pub use homogeneous::{HomogeneousGibbs, HomogeneousP4};
pub use instance::{fnv1a_64, quantize_tolerance, CanonicalInstance, InstanceKey};
pub use p4::{solve_p4, KernelSelect, P4Options, P4Solution, P4Solver, SolverPool, SummaryKernel};
pub use space::StateSpace;
pub use state::NetworkState;
