//! The Lagrange multiplier `η` and its noisy-gradient update, eq. (17).
//!
//! Each node maintains one scalar multiplier. At the end of the `k`-th
//! interval (length `τ_k`) it observes the change of its energy storage
//! level and updates
//!
//! ```text
//! η[k] = ( η[k−1] − δ_k/τ_k · (b[k] − b[k−1]) )⁺            (17)
//! ```
//!
//! `(b[k] − b[k−1])/τ_k` is an unbiased estimate of `ρ − (αL + βX)`,
//! the dual gradient (22): if the node under-spends its budget the
//! battery drifts up and `η` falls (be more active); if it over-spends
//! `η` rises (sleep more). Theorem 1 requires the diminishing schedule
//! `δ_k = 1/((k+1) log(k+1))`, `τ_k = k`; Section V-F notes that in
//! practice constant `δ` and `τ` work and trade convergence speed
//! against oscillation.

/// Step-size / interval-length schedule for the multiplier update.
///
/// Note on units: `δ` multiplies raw energy deltas (joules when time is
/// in seconds and power in watts), so its useful magnitude depends on
/// the power scale — the paper's "δ ∈ (0, 1)" presumes energy measured
/// in units where the per-interval drift is O(1). Use
/// [`StepSchedule::normalized_constant`] to pick `δ` from a
/// dimensionless step fraction instead of guessing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepSchedule {
    /// Constant `δ` and `τ` — the practical choice of Section V-F
    /// ("small constant δ and large constant τ").
    Constant {
        /// Step size `δ > 0` (units: 1/(energy·time) such that
        /// `δ/τ·Δb` moves `η` usefully; see the type-level note).
        delta: f64,
        /// Interval length `τ > 0` (packet-times).
        tau: f64,
    },
    /// The provably convergent schedule from Theorem 1:
    /// `δ_k = 1/((k+1)·log(k+1))`, `τ_k = k`.
    Theorem1,
    /// Variance-normalized, gain-scheduled controller (the principled
    /// replacement for hand-recalibrated constant steps — see the
    /// ROADMAP triage note on `hw::testbed`).
    ///
    /// The node tracks exponential moving estimates of the mean `m`
    /// and second moment `v` of its per-interval power slack
    /// `ĝ = Δb/τ`, forms the *confidence ratio*
    /// `c = min(1, |m̂|/√(v̂ + ε²))` — how much of the observed slack
    /// is drift rather than noise — and updates
    ///
    /// ```text
    /// η ← ( η − gain · (σ/C̄) · c · m̂ / √(v̂ + ε²) )⁺
    /// ```
    ///
    /// with bias-corrected `m̂`, `v̂` (Adam-style). Two properties make
    /// this scale-free where a constant `δ` is not:
    ///
    /// * **variance normalization** — `c·m̂/√v̂ ∈ [−1, 1]`, so the
    ///   worst-case per-update movement of the dimensionless
    ///   multiplier `η·C̄/σ` is exactly `gain`, independent of the
    ///   power scale, the budget, or the burst statistics;
    /// * **gain scheduling** — the effective gain is `gain·c²`:
    ///   near budget balance the slack is noise-dominated
    ///   (`|m̂| ≪ √v̂`, capture bursts) and steps attenuate
    ///   *quadratically* toward zero — consumption is convex in `η`,
    ///   so multiplier wander inflates mean power, and the quadratic
    ///   deadband is what keeps the virtual battery pinned at ρ; under
    ///   persistent over/under-spend `c → 1` and the controller
    ///   tracks at full gain.
    VarianceNormalized {
        /// Full-gain per-update movement of the dimensionless
        /// multiplier (0.02–0.1 is a good range).
        gain: f64,
        /// Update interval `τ` (packet-times).
        tau: f64,
        /// Precomputed `σ/C̄` (multiplier units per dimensionless
        /// step); use [`StepSchedule::variance_normalized`].
        scale: f64,
        /// Noise floor `ε` (W) added under the square root so a
        /// perfectly balanced node holds still instead of dividing
        /// 0 by 0.
        floor: f64,
    },
}

/// Forgetting factor for the slack-mean EWMA (effective window ≈ 10
/// update intervals — several capture bursts).
const VN_BETA_M: f64 = 0.9;
/// Forgetting factor for the slack second-moment EWMA (≈ 100
/// intervals — the noise scale must outlive individual transients or
/// burst-correlated noise masquerades as drift).
const VN_BETA_V: f64 = 0.99;

impl StepSchedule {
    /// Builds a constant schedule whose worst-case per-update movement
    /// of the *dimensionless* multiplier `η·max(L,X)/σ` is `step_frac`.
    ///
    /// Derivation: one update moves `η` by `δ·|ρ − cons| ≤ δ·C̄` with
    /// `C̄ = max(L, X)`, i.e. moves `η·C̄/σ` by at most `δ·C̄²/σ`;
    /// solving for `δ` gives `δ = step_frac·σ/C̄²`.
    pub fn normalized_constant(
        step_frac: f64,
        tau: f64,
        sigma: f64,
        listen_w: f64,
        transmit_w: f64,
    ) -> Self {
        assert!(step_frac > 0.0 && step_frac.is_finite());
        assert!(sigma > 0.0 && sigma.is_finite());
        let cbar = listen_w.max(transmit_w);
        assert!(cbar > 0.0);
        StepSchedule::Constant {
            delta: step_frac * sigma / (cbar * cbar),
            tau,
        }
    }

    /// Builds the variance-normalized gain-scheduled schedule for a
    /// node with powers `(L, X)` at temperature σ: one `gain` works
    /// across all power scales.
    pub fn variance_normalized(
        gain: f64,
        tau: f64,
        sigma: f64,
        listen_w: f64,
        transmit_w: f64,
    ) -> Self {
        assert!(gain > 0.0 && gain.is_finite());
        assert!(tau > 0.0 && tau.is_finite());
        assert!(sigma > 0.0 && sigma.is_finite());
        let cbar = listen_w.max(transmit_w);
        assert!(cbar > 0.0);
        StepSchedule::VarianceNormalized {
            gain,
            tau,
            scale: sigma / cbar,
            // Nine orders below the radio power: far beneath any real
            // slack, far above f64 underflow.
            floor: 1e-9 * cbar,
        }
    }
}

impl StepSchedule {
    /// Step size `δ_k` for interval `k` (1-based).
    ///
    /// # Panics
    ///
    /// Panics for [`StepSchedule::VarianceNormalized`], whose
    /// effective step depends on the observed slack statistics, not on
    /// `k` alone.
    pub fn delta(&self, k: u64) -> f64 {
        match self {
            StepSchedule::Constant { delta, .. } => *delta,
            StepSchedule::Theorem1 => {
                let kf = k as f64;
                1.0 / ((kf + 1.0) * (kf + 1.0).ln())
            }
            StepSchedule::VarianceNormalized { .. } => {
                panic!("variance-normalized steps are state-dependent, not a δ_k sequence")
            }
        }
    }

    /// Interval length `τ_k` for interval `k` (1-based), in packet-times.
    pub fn tau(&self, k: u64) -> f64 {
        match self {
            StepSchedule::Constant { tau, .. } => *tau,
            StepSchedule::Theorem1 => k as f64,
            StepSchedule::VarianceNormalized { tau, .. } => *tau,
        }
    }
}

/// One node's Lagrange multiplier state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Multiplier {
    eta: f64,
    schedule: StepSchedule,
    /// Interval counter `k` (the next update closes interval `k`).
    k: u64,
    /// EWMA of the power slack `ĝ` (variance-normalized schedule
    /// only).
    slack_mean: f64,
    /// EWMA of `ĝ²` (variance-normalized schedule only).
    slack_sq: f64,
}

impl Multiplier {
    /// Creates a multiplier starting at `η[0] = eta0 ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `eta0` is negative/non-finite or a constant schedule
    /// has `δ ∉ (0,1)` or `τ ≤ 0`.
    pub fn new(eta0: f64, schedule: StepSchedule) -> Self {
        assert!(
            eta0 >= 0.0 && eta0.is_finite(),
            "initial multiplier must be non-negative and finite"
        );
        match schedule {
            StepSchedule::Constant { delta, tau } => {
                assert!(
                    delta > 0.0 && delta.is_finite(),
                    "step size delta must be positive and finite, got {delta}"
                );
                assert!(tau > 0.0 && tau.is_finite(), "tau must be positive");
            }
            StepSchedule::VarianceNormalized {
                gain,
                tau,
                scale,
                floor,
            } => {
                assert!(gain > 0.0 && gain.is_finite(), "gain must be positive");
                assert!(tau > 0.0 && tau.is_finite(), "tau must be positive");
                assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
                assert!(floor >= 0.0 && floor.is_finite(), "floor must be finite");
            }
            StepSchedule::Theorem1 => {}
        }
        Multiplier {
            eta: eta0,
            schedule,
            k: 1,
            slack_mean: 0.0,
            slack_sq: 0.0,
        }
    }

    /// The current multiplier value `η[k]`, frozen within an interval.
    #[inline]
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Number of completed update intervals.
    pub fn intervals_completed(&self) -> u64 {
        self.k - 1
    }

    /// Length `τ_k` of the *current* interval, so the caller knows when
    /// to next call [`Multiplier::update`].
    pub fn current_interval_length(&self) -> f64 {
        self.schedule.tau(self.k)
    }

    /// Closes interval `k` with the observed energy-storage drift
    /// `b[k] − b[k−1]` (joules, may be negative) and applies the
    /// schedule's update rule (eq. (17) for the classic schedules).
    /// Returns the new `η[k]`.
    pub fn update(&mut self, battery_delta: f64) -> f64 {
        let tau_k = self.schedule.tau(self.k);
        self.apply_gradient(battery_delta / tau_k)
    }

    /// Equivalent update expressed with the *gradient estimate*
    /// `ĝ = ρ − power_consumed/τ = (b[k]−b[k−1])/τ_k` directly, matching
    /// the centralized form (23): `η ← (η − δ_k · ĝ)⁺`.
    pub fn update_with_gradient(&mut self, gradient_estimate: f64) -> f64 {
        self.apply_gradient(gradient_estimate)
    }

    /// Applies one update given the slack estimate `ĝ = Δb/τ_k` (W).
    fn apply_gradient(&mut self, g: f64) -> f64 {
        match self.schedule {
            StepSchedule::Constant { delta, .. } => {
                self.eta = (self.eta - delta * g).max(0.0);
            }
            StepSchedule::Theorem1 => {
                let delta = self.schedule.delta(self.k);
                self.eta = (self.eta - delta * g).max(0.0);
            }
            StepSchedule::VarianceNormalized {
                gain, scale, floor, ..
            } => {
                self.slack_mean = VN_BETA_M * self.slack_mean + (1.0 - VN_BETA_M) * g;
                self.slack_sq = VN_BETA_V * self.slack_sq + (1.0 - VN_BETA_V) * g * g;
                // Bias correction (Adam): the EWMAs start at zero, so
                // early estimates are scaled up to be unbiased.
                let kf = self.k as f64;
                let m_hat = self.slack_mean / (1.0 - VN_BETA_M.powf(kf));
                let v_hat = self.slack_sq / (1.0 - VN_BETA_V.powf(kf));
                let rms = (v_hat + floor * floor).sqrt();
                let confidence = (m_hat.abs() / rms).min(1.0);
                let step = gain * scale * confidence * m_hat / rms;
                self.eta = (self.eta - step).max(0.0);
            }
        }
        self.k += 1;
        self.eta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overspending_raises_eta_underspending_lowers_it() {
        let mut m = Multiplier::new(
            1.0,
            StepSchedule::Constant {
                delta: 0.1,
                tau: 10.0,
            },
        );
        // Battery fell by 5 J over the interval (over-spending): η rises
        // by δ/τ·5 = 0.05.
        let eta = m.update(-5.0);
        assert!((eta - 1.05).abs() < 1e-12);
        // Battery rose by 5 J (under-spending): η falls back.
        let eta = m.update(5.0);
        assert!((eta - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eta_is_clamped_at_zero() {
        let mut m = Multiplier::new(
            0.01,
            StepSchedule::Constant {
                delta: 0.5,
                tau: 1.0,
            },
        );
        let eta = m.update(100.0); // huge surplus
        assert_eq!(eta, 0.0);
        // And it can rise again from zero.
        let eta = m.update(-1.0);
        assert!(eta > 0.0);
    }

    #[test]
    fn theorem1_schedule_values() {
        let s = StepSchedule::Theorem1;
        // δ_k = 1/((k+1) ln(k+1)), τ_k = k.
        assert!((s.delta(1) - 1.0 / (2.0 * 2.0f64.ln())).abs() < 1e-12);
        assert!((s.delta(9) - 1.0 / (10.0 * 10.0f64.ln())).abs() < 1e-12);
        assert_eq!(s.tau(1), 1.0);
        assert_eq!(s.tau(7), 7.0);
        // The step sizes diminish.
        assert!(s.delta(2) < s.delta(1));
        assert!(s.delta(100) < s.delta(10));
    }

    #[test]
    fn theorem1_interval_grows_as_updates_accrue() {
        let mut m = Multiplier::new(0.0, StepSchedule::Theorem1);
        assert_eq!(m.current_interval_length(), 1.0);
        m.update(0.0);
        assert_eq!(m.current_interval_length(), 2.0);
        m.update(0.0);
        assert_eq!(m.current_interval_length(), 3.0);
        assert_eq!(m.intervals_completed(), 2);
    }

    #[test]
    fn gradient_form_matches_battery_form() {
        let sched = StepSchedule::Constant {
            delta: 0.2,
            tau: 4.0,
        };
        let mut a = Multiplier::new(2.0, sched);
        let mut b = Multiplier::new(2.0, sched);
        // Battery delta of −3 J over τ=4 ⇔ gradient estimate −0.75.
        let ea = a.update(-3.0);
        let eb = b.update_with_gradient(-0.75);
        assert!((ea - eb).abs() < 1e-12);
    }

    #[test]
    fn zero_drift_leaves_eta_unchanged() {
        let mut m = Multiplier::new(
            1.5,
            StepSchedule::Constant {
                delta: 0.1,
                tau: 1.0,
            },
        );
        assert_eq!(m.update(0.0), 1.5);
    }

    #[test]
    #[should_panic(expected = "step size delta")]
    fn delta_out_of_range_rejected() {
        Multiplier::new(
            0.0,
            StepSchedule::Constant {
                delta: 0.0,
                tau: 1.0,
            },
        );
    }

    #[test]
    fn normalized_constant_scales_with_power() {
        // δ = step·σ/C̄²: one update with the worst-case drift |Δb| =
        // C̄·τ moves the dimensionless multiplier ηC̄/σ by exactly step.
        let (sigma, l, x) = (0.5, 500e-6, 400e-6);
        let sched = StepSchedule::normalized_constant(0.05, 100.0, sigma, l, x);
        let StepSchedule::Constant { delta, tau } = sched else {
            panic!("expected constant schedule");
        };
        let cbar: f64 = l.max(x);
        let mut m = Multiplier::new(0.0, sched);
        m.update(-cbar * tau); // node drew C̄ the whole interval, ρ≈0
        let dimensionless = m.eta() * cbar / sigma;
        assert!(
            (dimensionless - 0.05).abs() < 1e-12,
            "normalized step {dimensionless}"
        );
        assert!((delta - 0.05 * sigma / (cbar * cbar)).abs() < 1e-9 * delta);
    }

    fn vn_schedule() -> StepSchedule {
        // σ = 0.5, L = X = 67 mW (the CC2500 scale that broke the
        // constant-step controller).
        StepSchedule::variance_normalized(0.05, 400.0, 0.5, 67e-3, 67e-3)
    }

    #[test]
    fn vn_worst_case_step_is_the_gain() {
        // A persistent, constant slack: m̂/√v̂ → ±1, so each update
        // moves the dimensionless multiplier η·C̄/σ by → gain, no
        // matter how large the raw slack is.
        let cbar = 67e-3;
        let mut m = Multiplier::new(1.0, vn_schedule());
        let mut last = m.eta();
        for k in 1..=50u64 {
            let eta = m.update_with_gradient(-cbar); // overspend by C̄ (huge)
            let step = (eta - last) * cbar / 0.5;
            assert!(step > 0.0, "overspend must raise eta");
            assert!(
                step <= 0.05 + 1e-12,
                "k={k}: dimensionless step {step} exceeds the gain"
            );
            last = eta;
        }
        // At steady state the constant drift gives exactly the gain.
        let eta = m.update_with_gradient(-cbar);
        let step = (eta - last) * cbar / 0.5;
        assert!((step - 0.05).abs() < 1e-3, "steady-state step {step}");
    }

    #[test]
    fn vn_is_scale_invariant() {
        // Identical *relative* slack sequences at µW and mW radio
        // scales produce identical dimensionless multiplier
        // trajectories — the property the constant-δ controller
        // lacked (ROADMAP triage).
        let seq = [1.0, -0.5, 0.25, -1.0, 0.75, 0.1, -0.2];
        let run = |cbar: f64| -> Vec<f64> {
            let sched = StepSchedule::variance_normalized(0.05, 400.0, 0.5, cbar, cbar);
            let mut m = Multiplier::new(0.0, sched);
            seq.iter()
                .map(|s| m.update_with_gradient(s * 0.01 * cbar) * cbar / 0.5)
                .collect()
        };
        let micro = run(500e-6);
        let milli = run(67e-3);
        for (a, b) in micro.iter().zip(&milli) {
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn vn_noise_shrinks_the_effective_gain() {
        // Zero-mean alternating slack (a balanced node under capture
        // bursts): after warm-up the effective step collapses well
        // below the gain — no limit cycle.
        let mut m = Multiplier::new(1.0, vn_schedule());
        let amp = 0.5e-3; // ±0.5 mW of burst noise around balance
        for k in 0..40u64 {
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            m.update_with_gradient(sign * amp);
        }
        let before = m.eta();
        let sign = if 40 % 2 == 0 { 1.0 } else { -1.0 };
        let after = m.update_with_gradient(sign * amp);
        let step = (after - before).abs() * 67e-3 / 0.5;
        assert!(
            step < 0.05 / 3.0,
            "balanced-node step {step} should sit far below the gain 0.05"
        );
    }

    #[test]
    fn vn_holds_still_at_exact_balance() {
        let mut m = Multiplier::new(2.0, vn_schedule());
        for _ in 0..10 {
            assert_eq!(m.update(0.0), 2.0, "no drift, no movement");
        }
    }

    #[test]
    fn vn_battery_and_gradient_forms_agree() {
        let mut a = Multiplier::new(1.0, vn_schedule());
        let mut b = Multiplier::new(1.0, vn_schedule());
        // Δb = −0.4 J over τ = 400 ⇔ ĝ = −1 mW.
        let ea = a.update(-0.4);
        let eb = b.update_with_gradient(-1e-3);
        assert!((ea - eb).abs() < 1e-15 * ea.abs().max(1.0));
    }

    #[test]
    #[should_panic(expected = "state-dependent")]
    fn vn_has_no_delta_sequence() {
        vn_schedule().delta(1);
    }

    #[test]
    #[should_panic(expected = "initial multiplier")]
    fn negative_eta0_rejected() {
        Multiplier::new(
            -0.1,
            StepSchedule::Constant {
                delta: 0.1,
                tau: 1.0,
            },
        );
    }
}
