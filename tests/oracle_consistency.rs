//! Cross-crate consistency of the analytical chain:
//! `T^σ ≤ T* ≤ unconstrained cap`, closed forms vs LPs, non-clique
//! bounds vs the clique oracle, and the σ → 0 convergence of
//! Theorem 1.

use econcast::core::{NodeParams, ThroughputMode, Topology};
use econcast::oracle::{
    non_clique_groupput_bounds, oracle_anyput, oracle_anyput_homogeneous, oracle_groupput,
    oracle_groupput_homogeneous,
};
use econcast::statespace::{solve_p4, HomogeneousP4, P4Options};

fn params() -> NodeParams {
    NodeParams::from_microwatts(10.0, 500.0, 500.0)
}

#[test]
fn sandwich_t_sigma_below_oracle_below_cap() {
    for n in [2usize, 3, 5, 8] {
        let nodes = vec![params(); n];
        let t_star = oracle_groupput(&nodes).throughput;
        for sigma in [0.25, 0.5, 1.0] {
            let t_sigma = HomogeneousP4::new(n, params(), sigma, ThroughputMode::Groupput)
                .solve()
                .throughput;
            assert!(
                t_sigma <= t_star + 1e-9,
                "n={n} σ={sigma}: T^σ {t_sigma} above T* {t_star}"
            );
        }
        assert!(t_star <= (n as f64) - 1.0 + 1e-9);
    }
}

#[test]
fn theorem1_sigma_to_zero_convergence() {
    // T^σ/T* should climb toward 1 as σ shrinks (Theorem 1's limit).
    let n = 5;
    let t_star = oracle_groupput(&vec![params(); n]).throughput;
    let ratios: Vec<f64> = [1.0, 0.5, 0.25, 0.1, 0.05]
        .iter()
        .map(|&sigma| {
            HomogeneousP4::new(n, params(), sigma, ThroughputMode::Groupput)
                .solve()
                .throughput
                / t_star
        })
        .collect();
    for pair in ratios.windows(2) {
        assert!(
            pair[1] > pair[0],
            "ratio not increasing as σ falls: {ratios:?}"
        );
    }
    assert!(
        ratios.last().expect("non-empty") > &0.85,
        "σ=0.05 should be within 15% of the oracle: {ratios:?}"
    );
}

#[test]
fn closed_forms_match_lps_in_constrained_regime() {
    for n in [2usize, 4, 7] {
        let nodes = vec![params(); n];
        let g_lp = oracle_groupput(&nodes).throughput;
        let g_cf = oracle_groupput_homogeneous(n, &params())
            .expect("constrained regime")
            .throughput;
        assert!(
            (g_lp - g_cf).abs() < 1e-9,
            "groupput n={n}: {g_lp} vs {g_cf}"
        );
        let a_lp = oracle_anyput(&nodes).throughput;
        let a_cf = oracle_anyput_homogeneous(n, &params())
            .expect("constrained regime")
            .throughput;
        assert!((a_lp - a_cf).abs() < 1e-9, "anyput n={n}: {a_lp} vs {a_cf}");
    }
}

#[test]
fn grid_oracle_below_clique_oracle_per_node_neighborhood() {
    // Hearing fewer nodes cannot increase groupput: grid T*_nc ≤ clique T*.
    for k in [2usize, 3, 4] {
        let n = k * k;
        let nodes = vec![params(); n];
        let grid = non_clique_groupput_bounds(&nodes, &Topology::square_grid(k));
        let clique = oracle_groupput(&nodes).throughput;
        assert!(
            grid.upper.throughput <= clique + 1e-9,
            "grid {k}x{k} upper {} above clique {clique}",
            grid.upper.throughput
        );
        assert!(grid.lower.throughput <= grid.upper.throughput + 1e-9);
    }
}

#[test]
fn heterogeneous_p4_consistent_with_lp_oracle() {
    let nodes = vec![
        NodeParams::from_microwatts(3.0, 700.0, 300.0),
        NodeParams::from_microwatts(12.0, 500.0, 500.0),
        NodeParams::from_microwatts(80.0, 350.0, 650.0),
    ];
    let t_star = oracle_groupput(&nodes).throughput;
    for sigma in [0.5, 0.25] {
        let sol = solve_p4(
            &nodes,
            sigma,
            ThroughputMode::Groupput,
            P4Options::default(),
        );
        assert!(sol.converged, "σ={sigma} did not converge");
        assert!(
            sol.throughput <= t_star + 1e-6,
            "σ={sigma}: T^σ {} above T* {t_star}",
            sol.throughput
        );
        assert!(sol.max_power_violation(&nodes) < 5e-3);
    }
}

#[test]
fn anyput_cap_of_one_is_respected_everywhere() {
    // Even with generous budgets, anyput ≤ 1 through LP and (P4).
    let rich = vec![NodeParams::new(0.5, 0.5, 0.5); 6];
    assert!(oracle_anyput(&rich).throughput <= 1.0 + 1e-9);
    let sol = solve_p4(&rich, 0.5, ThroughputMode::Anyput, P4Options::fast());
    assert!(sol.throughput <= 1.0 + 1e-9);
}
