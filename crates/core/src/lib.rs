//! # econcast-core — node model and EconCast protocol engine
//!
//! This crate holds the paper-faithful building blocks shared by every
//! other crate in the workspace:
//!
//! * [`NodeParams`] — the per-node power triple `(ρ_i, L_i, X_i)` of
//!   Section III-A (budget, listen and transmit power consumption);
//! * [`NodeState`] — the sleep / listen / transmit state machine of
//!   Fig. 1, with the legality of transitions encoded in the type;
//! * [`ThroughputMode`] — groupput vs. anyput (Definitions 1 and 2);
//! * [`rates`] — the EconCast transition rates of eq. (18a)–(18f) for
//!   both the capture (`EconCast-C`) and non-capture (`EconCast-NC`)
//!   variants;
//! * [`Multiplier`] — the Lagrange multiplier `η` and its noisy
//!   gradient update from energy-storage drift, eq. (17), together with
//!   the step-size/interval schedules of Theorem 1 and Section V-F;
//! * [`EnergyStore`] — the energy ledger `b(t)` (harvest at `ρ`, drain
//!   at `L`/`X`), in both idealized (unbounded "virtual battery") and
//!   physical (capacity-clamped capacitor) flavours;
//! * [`ListenerEstimator`] — the `ĉ(t)` / `γ̂(t)` estimation interface
//!   of Section V-C, with perfect and noisy implementations (the
//!   ping-collision estimator lives in `econcast-hw` where the radio
//!   model is);
//! * [`Topology`] — clique and general-graph connectivity shared by the
//!   oracle solvers and the simulator.
//!
//! Everything here is deterministic and allocation-light; the
//! stochastic machinery (timers, event queues) lives in `econcast-sim`.

pub mod energy;
pub mod estimator;
pub mod multiplier;
pub mod node;
pub mod rates;
pub mod state;
pub mod topology;

pub use energy::EnergyStore;
pub use estimator::{ListenerEstimate, ListenerEstimator, NoisyEstimator, PerfectEstimator};
pub use multiplier::{Multiplier, StepSchedule};
pub use node::{NodeId, NodeParams};
pub use rates::{ProtocolConfig, TransitionRates, Variant};
pub use state::{NodeState, ThroughputMode};
pub use topology::Topology;
