//! The cluster backend executable: a stock sharded `PolicyServer`
//! behind a minimal CLI, spawned and monitored by
//! `econcast_cluster::Supervisor`.
//!
//! ```text
//! policy_backend [--addr 127.0.0.1:0] [--shards N] [--workers W]
//!                [--max-batch B] [--prewarm] [--crash-after-ms T]
//! ```
//!
//! `--crash-after-ms T` makes the process abort (exit code 1) `T`
//! milliseconds after readiness — a deliberately crash-looping
//! backend for exercising the supervisor policy loop's damping and
//! quarantine paths. Never set it in a real deployment.
//!
//! Prints `LISTENING <addr>` on stdout once bound (the supervisor's
//! readiness signal), then serves until killed **or until stdin hits
//! EOF** — the supervisor holds the write end of stdin, so a dying
//! supervisor takes its backends with it instead of leaking
//! processes.

use econcast_service::{PolicyServer, RouterConfig, ServerConfig, ServiceConfig};
use std::io::{Read, Write};

fn usage(err: &str) -> ! {
    eprintln!("policy_backend: {err}");
    eprintln!(
        "usage: policy_backend [--addr HOST:PORT] [--shards N] [--workers W] \
         [--max-batch B] [--prewarm] [--crash-after-ms T]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut shards = 2usize;
    let mut workers: Option<usize> = None;
    let mut max_batch = 1024usize;
    let mut prewarm = false;
    let mut crash_after_ms: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--shards" => {
                shards = value("--shards")
                    .parse()
                    .unwrap_or_else(|_| usage("--shards must be a positive integer"));
            }
            "--workers" => {
                workers = Some(
                    value("--workers")
                        .parse()
                        .unwrap_or_else(|_| usage("--workers must be a positive integer")),
                );
            }
            "--max-batch" => {
                max_batch = value("--max-batch")
                    .parse()
                    .unwrap_or_else(|_| usage("--max-batch must be a positive integer"));
            }
            "--prewarm" => prewarm = true,
            "--crash-after-ms" => {
                crash_after_ms = Some(
                    value("--crash-after-ms")
                        .parse()
                        .unwrap_or_else(|_| usage("--crash-after-ms must be an integer")),
                );
            }
            other => usage(&format!("unknown flag `{other}`")),
        }
    }

    let server = PolicyServer::bind(
        addr.as_str(),
        ServerConfig {
            router: RouterConfig {
                shards,
                service: ServiceConfig {
                    workers,
                    ..ServiceConfig::default()
                },
                ..RouterConfig::default()
            },
            max_batch,
            background_prewarm: prewarm,
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| usage(&format!("cannot bind {addr}: {e}")));

    // Readiness signal: the supervisor parses this line.
    println!("LISTENING {}", server.local_addr());
    std::io::stdout().flush().expect("flush readiness line");

    // Fault-harness crash timer: die hard (no shutdown, no drain) so
    // the policy loop sees a genuine process death.
    if let Some(ms) = crash_after_ms {
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            std::process::exit(1);
        });
    }

    let handle = server.spawn();

    // Serve until the supervisor goes away: stdin EOF is the parent's
    // death (or an explicit close). Under a plain terminal this blocks
    // on the user's ctrl-d, which is also the right semantics.
    let mut sink = [0u8; 256];
    let mut stdin = std::io::stdin();
    loop {
        match stdin.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    handle.shutdown();
}
