//! Deterministic fault injection for the cluster's data plane.
//!
//! A [`FaultProxy`] is a transparent TCP interposer between the
//! cluster router and one backend: the router dials the proxy, the
//! proxy forwards bytes both ways untouched — until a fault is armed.
//! Each armed fault fires **exactly once**, at a well-defined point
//! (connection acceptance for [`Fault::RefuseConnect`], the next
//! backend→router chunk for the stream faults), and bumps the shared
//! injected-fault counter
//! ([`ClusterRouter::injected_fault_counter`](crate::ClusterRouter::injected_fault_counter)),
//! so a chaos run is auditable through the ordinary stats plane.
//!
//! Which faults fire when is scripted by a [`FaultPlan`]: a per-round
//! schedule that is **deterministic in its seed** — the same seed
//! always produces the same kills, corruptions, and stalls at the
//! same request-batch indices, which is what makes a chaos test a
//! regression test instead of a dice roll. The plan is generated with
//! the vendored `rand` shim (xoshiro256++), never from wall-clock
//! entropy.
//!
//! The faults map one-to-one onto the failure classes the serving
//! stack claims to absorb:
//!
//! | fault | what the dialer sees | healing path |
//! |-------|----------------------|--------------|
//! | [`Fault::RefuseConnect`] | dial succeeds, stream dies instantly | retry/backoff, then local fallback |
//! | [`Fault::CorruptFrame`] | CRC/decode failure mid-stream | sub-batch voided, local fallback |
//! | [`Fault::Stall`] | read deadline expires | sub-batch voided, local fallback |
//! | [`Fault::PartialWrite`] | truncated frame + EOF | sub-batch voided, local fallback |
//! | [`FaultEvent::Kill`] | process death (scripted by the test via `Supervisor::kill`) | policy loop respawns + retargets |

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One injectable stream- or connection-level fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Accept the router's connection and drop it immediately —
    /// indistinguishable from a backend refusing connections.
    RefuseConnect,
    /// Flip one byte inside the next backend→router chunk: the frame
    /// CRC (or length) check fails and the dialer must treat the
    /// stream as poisoned.
    CorruptFrame,
    /// Hold the next backend→router chunk past the dialer's I/O
    /// deadline — a wedged-but-alive backend.
    Stall(Duration),
    /// Forward only half of the next backend→router chunk, then close
    /// both directions — a backend dying mid-response.
    PartialWrite,
}

/// One scheduled fault in a [`FaultPlan`] round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Arm `fault` on backend `backend`'s proxy before the round's
    /// batch.
    Proxy {
        /// Index of the targeted backend.
        backend: usize,
        /// The fault to arm.
        fault: Fault,
    },
    /// Kill backend `backend`'s process before the round's batch (the
    /// test scripts this through `Supervisor::kill`; the policy loop
    /// is what brings it back).
    Kill {
        /// Index of the targeted backend.
        backend: usize,
    },
}

/// A deterministic per-round fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// `events[r]` fires before round `r`'s batch (`None` = quiet
    /// round).
    pub events: Vec<Option<FaultEvent>>,
}

impl FaultPlan {
    /// Builds a seeded plan over `rounds` request batches against
    /// `backends` backends. By construction (given enough rounds) the
    /// plan covers every fault class at least once — one kill, one
    /// corruption, one stall, one partial write, one connect refusal
    /// — on odd rounds, leaving the even rounds for the policy loop
    /// to heal (round 0 is always quiet so caches warm faultlessly).
    /// Remaining odd rounds draw random extra stream faults. Same
    /// seed, same arguments ⇒ the identical plan, every run.
    pub fn seeded(seed: u64, rounds: usize, backends: usize, stall: Duration) -> FaultPlan {
        assert!(backends >= 1, "need a backend to fault");
        let mut rng = StdRng::seed_from_u64(seed);
        let pick_backend = move |rng: &mut StdRng| {
            (rng.gen_range(0.0, backends as f64) as usize).min(backends - 1)
        };
        let mandatory = [
            None, // placeholder: Kill carries no Fault payload
            Some(Fault::CorruptFrame),
            Some(Fault::Stall(stall)),
            Some(Fault::PartialWrite),
            Some(Fault::RefuseConnect),
        ];
        let mut events = vec![None; rounds];
        let mut slots = (1..rounds).step_by(2);
        for kind in mandatory {
            let Some(round) = slots.next() else { break };
            let backend = pick_backend(&mut rng);
            events[round] = Some(match kind {
                None => FaultEvent::Kill { backend },
                Some(fault) => FaultEvent::Proxy { backend, fault },
            });
        }
        for round in slots {
            if rng.gen_range(0.0, 1.0) < 0.5 {
                let fault = match rng.gen_range(0.0, 3.0) as u32 {
                    0 => Fault::CorruptFrame,
                    1 => Fault::Stall(stall),
                    _ => Fault::PartialWrite,
                };
                let backend = pick_backend(&mut rng);
                events[round] = Some(FaultEvent::Proxy { backend, fault });
            }
        }
        FaultPlan { events }
    }

    /// Whether the plan contains at least one event matching `pred`.
    pub fn contains(&self, pred: impl Fn(&FaultEvent) -> bool) -> bool {
        self.events.iter().flatten().any(pred)
    }
}

/// Shared per-proxy injector state.
#[derive(Debug)]
struct Injector {
    /// The armed fault, consumed by the first matching firing point.
    armed: Mutex<Option<Fault>>,
    /// Incremented once per fault that actually fires.
    fired: AtomicU64,
    /// Cluster-wide injected-fault counter (the router's).
    cluster_fired: Arc<AtomicU64>,
}

impl Injector {
    /// Takes the armed fault if it fires at the accept point.
    fn take_connect_fault(&self) -> bool {
        let mut armed = self
            .armed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if matches!(*armed, Some(Fault::RefuseConnect)) {
            *armed = None;
            self.note_fired();
            true
        } else {
            false
        }
    }

    /// Takes the armed fault if it fires on a backend→router chunk.
    fn take_stream_fault(&self) -> Option<Fault> {
        let mut armed = self
            .armed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match *armed {
            Some(Fault::RefuseConnect) | None => None,
            Some(fault) => {
                *armed = None;
                self.note_fired();
                Some(fault)
            }
        }
    }

    fn note_fired(&self) {
        self.fired.fetch_add(1, Ordering::Relaxed);
        self.cluster_fired.fetch_add(1, Ordering::Relaxed);
    }
}

/// A fault-injecting TCP interposer in front of one backend.
#[derive(Debug)]
pub struct FaultProxy {
    addr: SocketAddr,
    upstream: Arc<Mutex<SocketAddr>>,
    injector: Arc<Injector>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Binds a proxy on an ephemeral port forwarding to `upstream`.
    /// `cluster_fired` is the router's shared injected-fault counter
    /// ([`ClusterRouter::injected_fault_counter`](crate::ClusterRouter::injected_fault_counter)).
    pub fn spawn(upstream: SocketAddr, cluster_fired: Arc<AtomicU64>) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let upstream = Arc::new(Mutex::new(upstream));
        let injector = Arc::new(Injector {
            armed: Mutex::new(None),
            fired: AtomicU64::new(0),
            cluster_fired,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let (upstream, injector, stop) = (
                Arc::clone(&upstream),
                Arc::clone(&injector),
                Arc::clone(&stop),
            );
            std::thread::spawn(move || loop {
                let client = match listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(_) => continue,
                };
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                if injector.take_connect_fault() {
                    // Drop the stream on the floor: the dialer's
                    // connect "succeeds" and instantly dies.
                    continue;
                }
                let target = *lock(&upstream);
                let backend = match TcpStream::connect(target) {
                    Ok(stream) => stream,
                    // Upstream gone (e.g. just killed): behave like a
                    // refused connection, but scripted kills are
                    // counted by the test, not the proxy.
                    Err(_) => continue,
                };
                let client2 = client.try_clone().expect("clone client stream");
                let backend2 = backend.try_clone().expect("clone backend stream");
                // router→backend: always clean (faults model backend
                // misbehaviour, and corrupting requests would reach
                // the backend's decoder, not the dialer's).
                std::thread::spawn(move || pump_clean(client, backend));
                let injector = Arc::clone(&injector);
                std::thread::spawn(move || pump_faulty(backend2, client2, &injector));
            })
        };
        Ok(FaultProxy {
            addr,
            upstream,
            injector,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The proxy's listen address — what the cluster router dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Points the proxy at a replacement backend (the policy loop's
    /// retarget hook after a respawn: the router keeps dialing the
    /// proxy, the proxy follows the fresh backend port).
    pub fn set_upstream(&self, addr: SocketAddr) {
        *lock(&self.upstream) = addr;
    }

    /// Arms `fault` to fire exactly once at its next firing point.
    /// Re-arming before the previous fault fired replaces it.
    pub fn arm(&self, fault: Fault) {
        *lock(&self.injector.armed) = Some(fault);
    }

    /// Faults this proxy has actually fired.
    pub fn fired(&self) -> u64 {
        self.injector.fired.load(Ordering::Relaxed)
    }

    /// Stops accepting new connections. Live pumps die with their
    /// streams.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor out of accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Forwards bytes until either side closes, then closes both.
fn pump_clean(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Forwards backend→router bytes, applying at most one armed fault.
fn pump_faulty(mut from: TcpStream, mut to: TcpStream, injector: &Injector) {
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        match injector.take_stream_fault() {
            Some(Fault::CorruptFrame) => {
                // Flip a bit early in the chunk: chunks start on a
                // frame boundary here, so the flip lands in the
                // CRC-protected head of a frame and the decoder must
                // reject the stream.
                buf[4.min(n - 1)] ^= 0x40;
            }
            Some(Fault::Stall(d)) => {
                // Outlive the dialer's read deadline before
                // forwarding; the write below then fails against the
                // abandoned socket, which is fine.
                std::thread::sleep(d);
            }
            Some(Fault::PartialWrite) => {
                let _ = to.write_all(&buf[..n / 2]);
                break;
            }
            Some(Fault::RefuseConnect) | None => {}
        }
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    const STALL: Duration = Duration::from_millis(600);

    #[test]
    fn seeded_plans_are_reproducible_and_cover_every_fault_class() {
        let plan = FaultPlan::seeded(7, 12, 2, STALL);
        assert_eq!(
            plan,
            FaultPlan::seeded(7, 12, 2, STALL),
            "same seed, same plan"
        );
        assert_ne!(
            plan,
            FaultPlan::seeded(8, 12, 2, STALL),
            "different seed, different plan"
        );
        assert_eq!(plan.events.len(), 12);
        assert!(plan.events[0].is_none(), "round 0 is always quiet");
        for (r, e) in plan.events.iter().enumerate() {
            if r % 2 == 0 {
                assert!(e.is_none(), "even rounds are healing rounds");
            }
            if let Some(FaultEvent::Proxy { backend, .. } | FaultEvent::Kill { backend }) = e {
                assert!(*backend < 2);
            }
        }
        assert!(plan.contains(|e| matches!(e, FaultEvent::Kill { .. })));
        for fault in [
            Fault::CorruptFrame,
            Fault::Stall(STALL),
            Fault::PartialWrite,
            Fault::RefuseConnect,
        ] {
            assert!(
                plan.contains(|e| matches!(e, FaultEvent::Proxy { fault: f, .. } if *f == fault)),
                "plan never fires {fault:?}"
            );
        }
    }

    #[test]
    fn proxy_forwards_transparently_and_refuse_connect_fires_once() {
        // A trivial upstream echo server.
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let upstream_addr = upstream.local_addr().expect("addr");
        std::thread::spawn(move || {
            for stream in upstream.incoming().flatten() {
                std::thread::spawn(move || {
                    let mut stream = stream;
                    let mut buf = [0u8; 256];
                    while let Ok(n) = stream.read(&mut buf) {
                        if n == 0 || stream.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });

        let counter = Arc::new(AtomicU64::new(0));
        let proxy = FaultProxy::spawn(upstream_addr, Arc::clone(&counter)).expect("spawn proxy");

        // Clean pass-through.
        let mut conn = TcpStream::connect(proxy.addr()).expect("dial proxy");
        conn.write_all(b"ping").expect("write");
        let mut buf = [0u8; 4];
        conn.read_exact(&mut buf).expect("echoed through proxy");
        assert_eq!(&buf, b"ping");
        assert_eq!(proxy.fired(), 0);

        // Armed refusal fires exactly once, then the next connection
        // is clean again.
        proxy.arm(Fault::RefuseConnect);
        let mut refused = TcpStream::connect(proxy.addr()).expect("tcp accept still happens");
        let mut scratch = [0u8; 1];
        assert_eq!(
            refused.read(&mut scratch).unwrap_or(0),
            0,
            "refused connection yields EOF"
        );
        assert_eq!(proxy.fired(), 1);
        assert_eq!(counter.load(Ordering::Relaxed), 1, "shared counter tracks");

        let mut again = TcpStream::connect(proxy.addr()).expect("dial proxy");
        again.write_all(b"pong").expect("write");
        again
            .read_exact(&mut buf)
            .expect("clean again after firing");
        assert_eq!(&buf, b"pong");
        assert_eq!(proxy.fired(), 1, "fault fired exactly once");
        proxy.shutdown();
    }

    #[test]
    fn corrupt_frame_flips_exactly_one_byte_of_the_response_path() {
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let upstream_addr = upstream.local_addr().expect("addr");
        std::thread::spawn(move || {
            for stream in upstream.incoming().flatten() {
                let mut stream = stream;
                let _ = stream.write_all(&[0u8; 16]);
            }
        });
        let counter = Arc::new(AtomicU64::new(0));
        let proxy = FaultProxy::spawn(upstream_addr, Arc::clone(&counter)).expect("spawn proxy");
        proxy.arm(Fault::CorruptFrame);
        let mut conn = TcpStream::connect(proxy.addr()).expect("dial proxy");
        let mut buf = [0u8; 16];
        conn.read_exact(&mut buf).expect("forwarded chunk");
        let flipped: Vec<usize> = (0..16).filter(|&i| buf[i] != 0).collect();
        assert_eq!(flipped, vec![4], "exactly byte 4 flipped");
        assert_eq!(buf[4], 0x40);
        assert_eq!(proxy.fired(), 1);
        proxy.shutdown();
    }
}
