//! Problem description types: objective, constraints, and solutions.

use crate::error::LpError;
use crate::simplex;

/// The sense of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
    /// `a·x ≥ b`
    Ge,
}

/// One linear constraint `coeffs · x  (≤ | = | ≥)  rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Row coefficients, one per variable.
    pub coeffs: Vec<f64>,
    /// Constraint sense.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// Evaluates the left-hand side at `x`.
    pub fn lhs_at(&self, x: &[f64]) -> f64 {
        self.coeffs.iter().zip(x).map(|(a, v)| a * v).sum()
    }

    /// Returns `true` if the constraint holds at `x` within tolerance
    /// `tol` (absolute, on the constraint residual).
    pub fn satisfied_at(&self, x: &[f64], tol: f64) -> bool {
        let lhs = self.lhs_at(x);
        match self.relation {
            Relation::Le => lhs <= self.rhs + tol,
            Relation::Eq => (lhs - self.rhs).abs() <= tol,
            Relation::Ge => lhs >= self.rhs - tol,
        }
    }
}

/// A linear program in the form
///
/// ```text
/// maximize    c · x
/// subject to  A x (≤ | = | ≥) b     (row-wise senses)
///             x ≥ 0
/// ```
///
/// Minimization problems are expressed by negating the objective
/// ([`Problem::minimize`] does this for you and flips the sign of the
/// reported optimum back).
#[derive(Debug, Clone)]
pub struct Problem {
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
    /// `true` when built via [`Problem::minimize`]; the reported
    /// objective is negated back on solve.
    minimizing: bool,
}

/// An optimal solution returned by [`Problem::solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal objective value (in the caller's orientation: a maximum
    /// for [`Problem::maximize`], a minimum for [`Problem::minimize`]).
    pub objective: f64,
    /// Optimal primal point, one entry per variable.
    pub x: Vec<f64>,
}

impl Problem {
    /// Creates a maximization problem with the given objective
    /// coefficients; the number of variables is `objective.len()`.
    pub fn maximize(objective: &[f64]) -> Self {
        Problem {
            objective: objective.to_vec(),
            constraints: Vec::new(),
            minimizing: false,
        }
    }

    /// Creates a minimization problem. Internally the solver always
    /// maximizes; the objective is negated here and the optimum negated
    /// back in [`Problem::solve`].
    pub fn minimize(objective: &[f64]) -> Self {
        Problem {
            objective: objective.iter().map(|c| -c).collect(),
            constraints: Vec::new(),
            minimizing: true,
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Objective coefficients in the *maximization* orientation used
    /// internally (negated if the problem was built with `minimize`).
    pub(crate) fn objective_internal(&self) -> &[f64] {
        &self.objective
    }

    /// The constraint rows.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds the constraint `coeffs · x (≤|=|≥) rhs`.
    ///
    /// # Panics
    ///
    /// Does not panic; dimension and finiteness problems are reported by
    /// [`Problem::solve`] so that builders can stay infallible.
    pub fn constrain(&mut self, coeffs: &[f64], relation: Relation, rhs: f64) -> &mut Self {
        self.constraints.push(Constraint {
            coeffs: coeffs.to_vec(),
            relation,
            rhs,
        });
        self
    }

    /// Convenience: adds a sparse constraint given `(index, coeff)`
    /// pairs; unspecified coefficients are zero.
    pub fn constrain_sparse(
        &mut self,
        terms: &[(usize, f64)],
        relation: Relation,
        rhs: f64,
    ) -> &mut Self {
        let mut coeffs = vec![0.0; self.num_vars()];
        for &(i, c) in terms {
            if i < coeffs.len() {
                coeffs[i] += c;
            } else {
                // Record the out-of-range index by growing the row so
                // that validation in `solve` reports DimensionMismatch
                // instead of silently dropping the term.
                coeffs.resize(i + 1, 0.0);
                coeffs[i] += c;
            }
        }
        self.constraints.push(Constraint {
            coeffs,
            relation,
            rhs,
        });
        self
    }

    /// Validates dimensions and finiteness of all rows.
    fn validate(&self) -> Result<(), LpError> {
        let n = self.num_vars();
        if self.objective.iter().any(|c| !c.is_finite()) {
            return Err(LpError::NotFinite);
        }
        for c in &self.constraints {
            if c.coeffs.len() != n {
                return Err(LpError::DimensionMismatch {
                    expected: n,
                    got: c.coeffs.len(),
                });
            }
            if !c.rhs.is_finite() || c.coeffs.iter().any(|a| !a.is_finite()) {
                return Err(LpError::NotFinite);
            }
        }
        Ok(())
    }

    /// Solves the program with the two-phase simplex method.
    ///
    /// Returns the optimum, [`LpError::Infeasible`] when no point
    /// satisfies all constraints, or [`LpError::Unbounded`] when the
    /// objective can grow without limit.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.validate()?;
        let mut sol = simplex::solve(self)?;
        if self.minimizing {
            sol.objective = -sol.objective;
        }
        Ok(sol)
    }

    /// Checks that `x` satisfies every constraint and non-negativity
    /// within `tol`. Useful for tests and for cross-validating solver
    /// output.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        x.len() == self.num_vars()
            && x.iter().all(|&v| v >= -tol)
            && self.constraints.iter().all(|c| c.satisfied_at(x, tol))
    }

    /// Evaluates the objective (in the caller's orientation) at `x`.
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        let v: f64 = self.objective.iter().zip(x).map(|(c, v)| c * v).sum();
        if self.minimizing {
            -v
        } else {
            v
        }
    }
}
