//! Ablation studies for the design choices `DESIGN.md` calls out.
//!
//! These go beyond the paper's figures, quantifying each mechanism's
//! contribution on the reference network (`N = 5`, `ρ = 10 µW`,
//! `L = X = 500 µW`, σ = 0.5 unless stated):
//!
//! 1. **σ frontier** — throughput vs. burstiness vs. latency across σ:
//!    the Section V-F tradeoff on one axis.
//! 2. **Controller (δ, τ)** — how the multiplier schedule trades
//!    power-tracking accuracy against adaptation speed.
//! 3. **Estimator quality** — EconCast's sensitivity to `ĉ` errors
//!    (Section V-C claims graceful degradation).
//! 4. **Ping-interval tax** — what the Section VIII-C overhead costs,
//!    isolating one cause of the testbed's 57–77% band.

use crate::Scale;
use econcast_core::{NodeParams, ProtocolConfig, ThroughputMode};
use econcast_sim::config::{EstimatorKind, ScheduleSpec};
use econcast_sim::{SimConfig, Simulator};
use econcast_statespace::HomogeneousP4;

const N: usize = 5;

fn params() -> NodeParams {
    NodeParams::from_microwatts(10.0, 500.0, 500.0)
}

fn base_cfg(sigma: f64, t_end: f64, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::ideal_clique(
        N,
        params(),
        ProtocolConfig::capture_groupput(sigma),
        t_end,
        seed,
    );
    cfg.eta0 = HomogeneousP4::new(N, params(), sigma, ThroughputMode::Groupput)
        .solve()
        .eta;
    cfg.warmup = t_end * 0.1;
    cfg
}

/// Runs the ablation suite.
pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    let t_long = scale.duration(3_000_000.0);

    // 1. σ frontier.
    out.push_str("[ablation 1] σ frontier: throughput vs burstiness vs latency\n");
    out.push_str("  σ      T^σ      sim T̃     burst    mean latency(s)\n");
    for sigma in [0.75, 0.5, 0.375, 0.3] {
        let p4 = HomogeneousP4::new(N, params(), sigma, ThroughputMode::Groupput).solve();
        let r = Simulator::new(base_cfg(sigma, t_long, 0xAB1))
            .expect("valid")
            .run();
        let lat = r
            .latency_summary()
            .map(|l| l.mean * 1e-3)
            .unwrap_or(f64::NAN);
        out.push_str(&format!(
            "  {sigma:<5}  {:.5}  {:.5}  {:>7.1}  {:>10.2}\n",
            p4.throughput,
            r.groupput,
            r.mean_burst_length().unwrap_or(f64::NAN),
            lat,
        ));
    }

    // 2. Controller schedule.
    out.push_str("\n[ablation 2] multiplier schedule (δ-step, τ): power tracking accuracy\n");
    out.push_str("  step   tau    sim T̃     worst |P−ρ|/ρ\n");
    for (step, tau) in [(0.1, 100.0), (0.05, 200.0), (0.02, 500.0), (0.01, 1000.0)] {
        let mut cfg = base_cfg(0.5, t_long, 0xAB2);
        cfg.schedule = ScheduleSpec::Normalized { step, tau };
        let r = Simulator::new(cfg).expect("valid").run();
        let worst = r
            .nodes
            .iter()
            .map(|n| ((n.average_power(r.elapsed) - params().budget_w) / params().budget_w).abs())
            .fold(0.0f64, f64::max);
        out.push_str(&format!(
            "  {step:<5}  {tau:<5}  {:.5}  {:>12.3}%\n",
            r.groupput,
            100.0 * worst
        ));
    }

    // 3. Estimator quality.
    out.push_str("\n[ablation 3] listener-estimate quality (miss rate → throughput)\n");
    out.push_str("  miss%   sim T̃     vs perfect\n");
    let perfect = Simulator::new(base_cfg(0.5, t_long, 0xAB3))
        .expect("valid")
        .run();
    for miss in [0.0, 0.25, 0.5, 0.75] {
        let mut cfg = base_cfg(0.5, t_long, 0xAB3);
        cfg.estimator = EstimatorKind::Noisy {
            gain: 1.0 - miss,
            bias: 0.0,
            cap: f64::INFINITY,
        };
        let r = Simulator::new(cfg).expect("valid").run();
        out.push_str(&format!(
            "  {:>4.0}%   {:.5}  {:>9.1}%\n",
            100.0 * miss,
            r.groupput,
            100.0 * r.groupput / perfect.groupput
        ));
    }

    // 4. Ping-interval tax.
    out.push_str("\n[ablation 4] ping-interval length (fraction of a packet) → throughput\n");
    out.push_str("  interval   sim T̃     vs none\n");
    for interval in [0.0, 0.1, 0.2, 0.4] {
        let mut cfg = base_cfg(0.5, t_long, 0xAB4);
        cfg.ping_interval = interval;
        let r = Simulator::new(cfg).expect("valid").run();
        out.push_str(&format!(
            "  {interval:<8}   {:.5}  {:>7.1}%\n",
            r.groupput,
            100.0 * r.groupput / perfect.groupput
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_tax_monotone() {
        // More ping interval, less throughput (the core of ablation 4).
        let short = {
            let mut cfg = base_cfg(0.5, 1_200_000.0, 5);
            cfg.ping_interval = 0.1;
            Simulator::new(cfg).expect("valid").run().groupput
        };
        let long = {
            let mut cfg = base_cfg(0.5, 1_200_000.0, 5);
            cfg.ping_interval = 0.4;
            Simulator::new(cfg).expect("valid").run().groupput
        };
        assert!(long < short, "ping tax not monotone: {long} vs {short}");
    }
}
